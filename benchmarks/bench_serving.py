"""Serving-layer throughput: batch inference vs. the per-user loop.

The whole point of the ``repro.serving`` redesign is that production
ranking happens in vectorized batches, not per-request Python loops.  This
bench quantifies that on the shared benchmark dataset:

* ``recommend_batch`` vs. a loop of per-user ``recommend`` calls
  (same rankings, one BLAS pass — the acceptance floor is 3x at 1k users);
* ``RecommenderService.recommend_batch`` (adds routing, exclusion, and the
  query cache) and its single-request path with p50/p95 latency;
* cascaded serving through the service (Sec. 5.1's work dial).

Emits the harness's JSON format into ``benchmarks/results/``.
"""

import time

import numpy as np
import pytest
from _harness import (
    QUICK,
    RESULTS_DIR,
    STRICT,
    bench_split,
    format_table,
    report,
    run_once,
    trained_model,
)

from repro.obs import Tracer, write_snapshot, write_trace_jsonl
from repro.serving.service import RecommenderService
from repro.utils.config import CascadeConfig

N_BATCH_USERS = 200 if QUICK else 1000
K = 10
#: Acceptance floor: batched throughput vs. the per-user loop at 1k users.
MIN_BATCH_SPEEDUP = 1.0 if QUICK else 3.0
#: Instrumentation gate: traced serving may cost at most this much over
#: untraced (quick runs are tiny and noisy, so the smoke gate is looser).
MAX_OBS_OVERHEAD = 0.30 if QUICK else 0.05
#: Timing repeats for the overhead gate (best-of damps scheduler noise).
OBS_REPEATS = 5 if QUICK else 10


@pytest.fixture(scope="module")
def model():
    return trained_model(levels=4, markov=0)


@pytest.fixture(scope="module")
def users(model):
    n = min(N_BATCH_USERS, model.n_users)
    return np.arange(n, dtype=np.int64)


def _throughput(n_users, seconds):
    return n_users / seconds if seconds > 0 else float("inf")


def test_recommend_batch_vs_user_loop(benchmark, model, users):
    """The tentpole claim: one vectorized pass beats the per-user loop."""
    started = time.perf_counter()
    loop_rows = [model.recommend(int(u), k=K) for u in users]
    loop_seconds = time.perf_counter() - started

    batch = run_once(benchmark, lambda: model.recommend_batch(users, k=K))
    started = time.perf_counter()
    model.recommend_batch(users, k=K)
    batch_seconds = time.perf_counter() - started

    for row, per_user in zip(batch, loop_rows):
        assert np.array_equal(row[row >= 0], per_user)

    loop_tp = _throughput(users.size, loop_seconds)
    batch_tp = _throughput(users.size, batch_seconds)
    speedup = batch_tp / loop_tp
    table = format_table(
        "serving: recommend_batch vs per-user loop",
        ["path", "users", "seconds", "users/sec"],
        [
            ["per-user loop", users.size, loop_seconds, loop_tp],
            ["recommend_batch", users.size, batch_seconds, batch_tp],
        ],
        note=f"speedup {speedup:.1f}x (floor {MIN_BATCH_SPEEDUP:.0f}x)",
    )
    report(
        "serving_batch_vs_loop",
        table,
        {
            "n_users": int(users.size),
            "k": K,
            "loop_seconds": loop_seconds,
            "batch_seconds": batch_seconds,
            "loop_users_per_sec": loop_tp,
            "batch_users_per_sec": batch_tp,
            "speedup": speedup,
        },
    )
    assert speedup >= MIN_BATCH_SPEEDUP


def test_service_throughput_and_latency(benchmark, model, users):
    """End-to-end service numbers: batch throughput + per-request tails."""
    service = RecommenderService(model)
    batch_out = run_once(
        benchmark, lambda: service.recommend_batch(users, k=K)
    )
    assert batch_out.shape[0] == users.size
    batch_stats = service.reset_stats()

    # Warm-cache single-request path: every user twice, measured per call.
    single_users = users[: min(200, users.size)]
    for user in single_users:
        service.recommend(int(user), k=K)
    for user in single_users:
        service.recommend(int(user), k=K)
    single_stats = service.reset_stats()

    table = format_table(
        "serving: RecommenderService",
        ["path", "requests", "users/sec", "p50 ms", "p95 ms", "cache hits"],
        [
            [
                "batch",
                batch_stats.requests,
                batch_stats.requests_per_second,
                batch_stats.p50 * 1e3,
                batch_stats.p95 * 1e3,
                batch_stats.cache_hits,
            ],
            [
                "single (warm)",
                single_stats.requests,
                single_stats.requests_per_second,
                single_stats.p50 * 1e3,
                single_stats.p95 * 1e3,
                single_stats.cache_hits,
            ],
        ],
        note="batch path serves every known user with one BLAS product",
    )
    report(
        "serving_service",
        table,
        {
            "batch": batch_stats.as_dict(),
            "single_warm": single_stats.as_dict(),
        },
    )
    assert single_stats.cache_hits >= single_users.size
    if STRICT:
        assert batch_stats.requests_per_second > single_stats.requests_per_second


def test_observability_overhead_gate(model, users):
    """Instrumented serving must stay within the documented overhead budget.

    Runs the same batched workload through an untraced service and a
    fully traced one (root span per batch + histogram recording), takes
    the best of several repeats for each, and fails if tracing costs
    more than ``MAX_OBS_OVERHEAD``.  Also writes the sample telemetry
    artifacts CI uploads (metrics snapshot + trace JSONL).
    """

    def best_seconds(service):
        best = float("inf")
        for _ in range(OBS_REPEATS):
            started = time.perf_counter()
            service.recommend_batch(users, k=K)
            best = min(best, time.perf_counter() - started)
        return best

    plain = RecommenderService(model, cache_size=0)
    tracer = Tracer()
    traced = RecommenderService(model, cache_size=0, tracer=tracer)
    # Warm both paths (BLAS thread pools, allocator) before timing.
    plain.recommend_batch(users, k=K)
    traced.recommend_batch(users, k=K)

    plain_best = best_seconds(plain)
    traced_best = best_seconds(traced)
    overhead = traced_best / plain_best - 1.0

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    write_snapshot(
        RESULTS_DIR / "obs_metrics_sample.json", traced.registry.snapshot()
    )
    trace_path = RESULTS_DIR / "obs_traces_sample.jsonl"
    trace_path.unlink(missing_ok=True)
    write_trace_jsonl(trace_path, tracer.buffer.drain())

    table = format_table(
        "serving: observability overhead gate",
        ["path", "best seconds", "users/sec"],
        [
            ["untraced", plain_best, _throughput(users.size, plain_best)],
            ["traced", traced_best, _throughput(users.size, traced_best)],
        ],
        note=(
            f"overhead {overhead * 100:+.1f}% "
            f"(budget {MAX_OBS_OVERHEAD * 100:.0f}%)"
        ),
    )
    report(
        "serving_obs_overhead",
        table,
        {
            "n_users": int(users.size),
            "repeats": OBS_REPEATS,
            "untraced_best_seconds": plain_best,
            "traced_best_seconds": traced_best,
            "overhead": overhead,
            "budget": MAX_OBS_OVERHEAD,
        },
    )
    assert overhead <= MAX_OBS_OVERHEAD


def test_service_cascade_work_dial(model, users):
    """Cascaded serving trades nodes scored for throughput (Fig. 8 analogue)."""
    sample = users[: min(100, users.size)]
    rows = []
    payload = {}
    for label, cascade in [
        ("exact", None),
        ("cascade 50%", CascadeConfig(keep_fractions=(0.5, 0.5, 0.5))),
        ("cascade 25%", CascadeConfig(keep_fractions=(0.25, 0.25, 0.25))),
    ]:
        service = RecommenderService(model, cascade=cascade, cache_size=0)
        service.recommend_batch(sample, k=K)
        stats = service.reset_stats()
        nodes_per_user = stats.nodes_scored / max(stats.requests, 1)
        rows.append(
            [label, stats.requests, nodes_per_user, stats.requests_per_second]
        )
        payload[label] = stats.as_dict()
    exact_nodes, cascade_nodes = rows[0][2], rows[-1][2]
    table = format_table(
        "serving: cascade work dial",
        ["mode", "requests", "nodes/user", "users/sec"],
        rows,
        note="nodes/user is the paper's hardware-independent work measure",
    )
    report("serving_cascade", table, payload)
    assert cascade_nodes < exact_nodes
