"""Figure 8(c,d) — cascaded-inference accuracy/efficiency trade-off.

Paper (Sec. 7.5): sweeping the per-level keep-percentage K, (c) varying all
of k1,k2,k3 together reaches ~80% of the full accuracy at ~50% of the
computation, with a non-monotone accuracy curve; (d) holding k1=k2=100% and
varying only k3 gives a monotonically increasing accuracy curve.
"""

import numpy as np
from _harness import (
    QUICK,
    STRICT,
    bench_split,
    format_table,
    report,
    run_once,
    trained_model,
)

from repro.eval.protocol import evaluate_cascade
from repro.utils.config import CascadeConfig

PERCENTS = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]


def _sweep(make_config, users):
    split = bench_split()
    model = trained_model(4, 0)
    out = {}
    for pct in PERCENTS:
        fraction = pct / 100.0
        result = evaluate_cascade(
            model, split, make_config(fraction), users=users
        )
        out[pct] = result
    return out


def _users():
    split = bench_split()
    count = 80 if QUICK else 250
    return split.test_users()[:count]


def test_fig8c_uniform_cascade_tradeoff(benchmark):
    def experiment():
        return _sweep(
            lambda f: CascadeConfig(keep_fractions=(f, f, f)), _users()
        )

    results = run_once(benchmark, experiment)
    rows = [
        (pct, r.accuracy_ratio, r.work_ratio, r.time_ratio)
        for pct, r in sorted(results.items())
    ]
    table = format_table(
        "Fig 8(c): cascaded inference — vary k1=k2=k3 together",
        ["K%", "accuracy ratio", "work ratio", "time ratio"],
        rows,
        note="paper shape: ~80% accuracy at ~50% of the computation",
    )
    report(
        "fig8c",
        table,
        {
            str(pct): {
                "accuracy_ratio": r.accuracy_ratio,
                "work_ratio": r.work_ratio,
                "time_ratio": r.time_ratio,
            }
            for pct, r in results.items()
        },
    )
    if STRICT:
        # Paper's headline: high accuracy share at roughly half the work.
        half_work = [r for r in results.values() if r.work_ratio <= 0.55]
        assert max(r.accuracy_ratio for r in half_work) > 0.8
    assert results[100].accuracy_ratio > 0.999


def test_fig8d_leaf_only_cascade_tradeoff(benchmark):
    def experiment():
        return _sweep(
            lambda f: CascadeConfig(keep_fractions=(1.0, 1.0, f)), _users()
        )

    results = run_once(benchmark, experiment)
    rows = [
        (pct, r.accuracy_ratio, r.work_ratio, r.time_ratio)
        for pct, r in sorted(results.items())
    ]
    table = format_table(
        "Fig 8(d): cascaded inference — k1=k2=100%, vary k3",
        ["K%", "accuracy ratio", "work ratio", "time ratio"],
        rows,
        note="paper shape: accuracy increases monotonically with k3",
    )
    report(
        "fig8d",
        table,
        {
            str(pct): {
                "accuracy_ratio": r.accuracy_ratio,
                "work_ratio": r.work_ratio,
                "time_ratio": r.time_ratio,
            }
            for pct, r in results.items()
        },
    )
    ratios = [results[pct].accuracy_ratio for pct in PERCENTS]
    if STRICT:
        # Monotone within a small noise tolerance.
        for earlier, later in zip(ratios, ratios[1:]):
            assert later >= earlier - 0.03
        assert ratios[0] < ratios[-1]
    assert ratios[-1] > 0.999
