"""Benchmark-suite conftest: prints the queued paper-shape tables.

pytest captures stdout during tests, so the figure tables produced by the
benches are queued in the harness and emitted here, in the terminal
summary, where they are always visible (and therefore land in
``bench_output.txt`` when the suite is run under ``tee``).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _harness import drain_reports  # noqa: E402


def pytest_terminal_summary(terminalreporter):
    reports = drain_reports()
    if not reports:
        return
    terminalreporter.write_sep("=", "paper-shape results (also in benchmarks/results/)")
    for table in reports:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
