"""Figure 6 — TF vs. MF accuracy.

Paper (Sec. 7.4.1): (a) TF(4,0) beats MF(0) on AUC at every factor size,
by >6% at the best configuration; (b) TF's average mean rank is an order of
magnitude below MF's; (c) TF's category-level AUC greatly exceeds MF's
product-level AUC; (d) TF's category-level mean rank is a small constant
(~4 of 23 top categories); (e) TF(4,1) beats MF(1) ≡ FPMC.
"""

import numpy as np
from _harness import (
    FACTOR_SIZES,
    STRICT,
    bench_split,
    format_table,
    report,
    run_once,
    trained_model,
)

from repro.eval.protocol import evaluate_category_level, evaluate_model


def _sweep(levels: int, markov: int, metric: str):
    split = bench_split()
    out = {}
    for k in FACTOR_SIZES:
        model = trained_model(levels=levels, markov=markov, factors=k)
        result = evaluate_model(model, split)
        out[k] = getattr(result, metric)
    return out


def test_fig6a_auc_tf40_vs_mf0(benchmark):
    def experiment():
        return _sweep(1, 0, "auc"), _sweep(4, 0, "auc")

    mf, tf = run_once(benchmark, experiment)
    rows = [(k, mf[k], tf[k], tf[k] - mf[k]) for k in FACTOR_SIZES]
    table = format_table(
        "Fig 6(a): average AUC vs factors — MF(0) vs TF(4,0)",
        ["factors", "MF(0)", "TF(4,0)", "gain"],
        rows,
        note="paper shape: TF above MF at every K (paper gain > 6%)",
    )
    report("fig6a", table, {"mf0": mf, "tf40": tf})
    if STRICT:
        assert max(tf.values()) > max(mf.values())
        assert all(tf[k] > mf[k] for k in FACTOR_SIZES)


def test_fig6b_mean_rank_tf40_vs_mf0(benchmark):
    def experiment():
        return _sweep(1, 0, "mean_rank"), _sweep(4, 0, "mean_rank")

    mf, tf = run_once(benchmark, experiment)
    rows = [(k, mf[k], tf[k], mf[k] / tf[k]) for k in FACTOR_SIZES]
    table = format_table(
        "Fig 6(b): average mean rank vs factors — MF(0) vs TF(4,0)",
        ["factors", "MF(0)", "TF(4,0)", "MF/TF"],
        rows,
        note="paper shape: TF rank lower by a large factor (paper: ~order of magnitude)",
    )
    report("fig6b", table, {"mf0": mf, "tf40": tf})
    if STRICT:
        assert min(tf.values()) < min(mf.values())


def test_fig6c_category_level_auc(benchmark):
    split = bench_split()

    def experiment():
        cat = {}
        for k in FACTOR_SIZES:
            model = trained_model(levels=4, markov=0, factors=k)
            cat[k] = evaluate_category_level(model, split, level=1).auc
        product_mf = _sweep(1, 0, "auc")
        return cat, product_mf

    cat, mf = run_once(benchmark, experiment)
    rows = [(k, mf[k], cat[k]) for k in FACTOR_SIZES]
    table = format_table(
        "Fig 6(c): TF(4,0) AUC at category level vs MF(0) product level",
        ["factors", "MF(0) product", "TF(4,0) category"],
        rows,
        note="paper shape: category-level ranking greatly outperforms",
    )
    report("fig6c", table, {"tf_category": cat, "mf_product": mf})
    if STRICT:
        assert all(cat[k] > mf[k] for k in FACTOR_SIZES)


def test_fig6d_category_level_mean_rank(benchmark):
    split = bench_split()

    def experiment():
        out = {}
        for k in FACTOR_SIZES:
            model = trained_model(levels=4, markov=0, factors=k)
            result = evaluate_category_level(model, split, level=1)
            out[k] = (result.mean_rank, result.extras["n_candidates"])
        return out

    ranks = run_once(benchmark, experiment)
    n_categories = next(iter(ranks.values()))[1]
    rows = [(k, ranks[k][0]) for k in FACTOR_SIZES]
    table = format_table(
        "Fig 6(d): TF(4,0) mean rank at category level",
        ["factors", "mean_rank"],
        rows,
        note=(
            f"over {int(n_categories)} top-level categories "
            "(paper: ~4.2 of 23 categories)"
        ),
    )
    report("fig6d", table, {"ranks": {k: v[0] for k, v in ranks.items()}})
    if STRICT:
        # A small constant, far below half the category count.
        assert all(rank < 0.5 * n_categories for rank, _ in ranks.values())


def test_fig6e_auc_tf41_vs_mf1(benchmark):
    def experiment():
        return _sweep(1, 1, "auc"), _sweep(4, 1, "auc")

    mf, tf = run_once(benchmark, experiment)
    rows = [(k, mf[k], tf[k], tf[k] - mf[k]) for k in FACTOR_SIZES]
    table = format_table(
        "Fig 6(e): average AUC vs factors — MF(1)=FPMC vs TF(4,1)",
        ["factors", "MF(1)/FPMC", "TF(4,1)", "gain"],
        rows,
        note="paper shape: taxonomy also lifts the Markov-chain variant",
    )
    report("fig6e", table, {"mf1": mf, "tf41": tf})
    if STRICT:
        assert max(tf.values()) > max(mf.values())
