"""Shared infrastructure for the figure-reproduction benchmarks.

Every module in this directory regenerates one figure of the paper's
evaluation (Sec. 7).  This harness provides:

* **scaling** — ``REPRO_BENCH_SCALE`` (float) multiplies the dataset size;
  ``REPRO_BENCH_QUICK=1`` shrinks everything for smoke runs;
* **caching** — datasets, splits, and trained models are memoized so that
  e.g. the ``TF(4,0), K=20`` model trained for Fig. 6(a) is reused by
  Figs. 6(b,c,d), 7(c) and 8(c,d);
* **reporting** — ``report(...)`` collects the paper-shape tables, which
  the benchmarks' conftest prints in the terminal summary (visible even
  under pytest's output capture) and writes to ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple  # noqa: F401

import numpy as np

from repro import (
    MFModel,
    SerialTrainer,
    SyntheticConfig,
    TaxonomyFactorModel,
    TrainConfig,
    generate_dataset,
    train_test_split,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"
#: Quick mode under-trains on purpose (smoke runs), so the paper-shape
#: assertions are only enforced on full-scale runs.
STRICT = not QUICK

RESULTS_DIR = Path(__file__).parent / "results"

#: Factor sizes swept by the accuracy figures (paper: 10..50).
FACTOR_SIZES: Tuple[int, ...] = (8, 16) if QUICK else (10, 20, 30, 40, 50)
#: The fixed factor size used by single-K experiments.
DEFAULT_FACTORS: int = 8 if QUICK else 20
#: Full-scale runs train to convergence: MF needs ~40 epochs before it
#: learns item similarity beyond popularity on dense splits, and the
#: paper's sparsity shape (Fig. 7b) only holds for converged baselines.
EPOCHS: int = 3 if QUICK else 40
#: The paper's regime is data-sparse per item (1.5M items, ~1.5 samples
#: per item per epoch) — far from convergence.  Sibling-based training is
#: the paper's convergence *accelerator* (Sec. 1), so Fig. 7(d) is
#: reproduced at a limited epoch budget.
EARLY_EPOCHS: int = 2 if QUICK else 5
DATA_SEED = 1234
TRAIN_SEED = 77
SPLIT_SEED = 99

_REPORTS: List[str] = []


# ----------------------------------------------------------------------
# Data
# ----------------------------------------------------------------------
def bench_synthetic_config(n_users: Optional[int] = None) -> SyntheticConfig:
    """The benchmark dataset configuration (paper-shaped, laptop-scaled)."""
    if n_users is None:
        base = 800 if QUICK else 4000
        n_users = max(200, int(base * SCALE))
    return SyntheticConfig(
        branching=(8, 4, 4),
        items_per_leaf=6,
        n_users=n_users,
        mean_transactions=3.5,
        mean_basket_size=1.5,
        seed=DATA_SEED,
    )


@lru_cache(maxsize=4)
def bench_dataset(n_users: Optional[int] = None):
    """The shared synthetic dataset (memoized)."""
    return generate_dataset(bench_synthetic_config(n_users))


@lru_cache(maxsize=8)
def bench_split(mu: float = 0.5):
    """The shared train/test split at sparsity *mu* (memoized)."""
    return train_test_split(bench_dataset().log, mu=mu, seed=SPLIT_SEED)


# ----------------------------------------------------------------------
# Models
# ----------------------------------------------------------------------
def _train_config(
    factors: int,
    levels: int,
    markov: int,
    sibling: float,
    use_bias: bool = True,
    negative_pool: str = "all",
    alpha: float = 1.0,
    epochs: Optional[int] = None,
) -> TrainConfig:
    return TrainConfig(
        factors=factors,
        epochs=EPOCHS if epochs is None else epochs,
        learning_rate=0.05,
        reg=0.01,
        taxonomy_levels=levels,
        markov_order=markov,
        sibling_ratio=sibling,
        use_bias=use_bias,
        negative_pool=negative_pool,
        alpha=alpha,
        seed=TRAIN_SEED,
    )


@lru_cache(maxsize=160)
def trained_model(
    levels: int,
    markov: int,
    factors: int = DEFAULT_FACTORS,
    sibling: float = 0.5,
    mu: float = 0.5,
    use_bias: bool = True,
    negative_pool: str = "all",
    alpha: float = 1.0,
    epochs: Optional[int] = None,
):
    """``TF(levels, markov)`` / ``MF(markov)`` trained on the shared split.

    ``levels = 1`` builds the MF baseline (sibling training is meaningless
    there and is forced off).  ``epochs`` overrides the default budget
    (used by the limited-iteration experiments, Fig. 7d).
    """
    data = bench_dataset()
    split = bench_split(mu)
    if levels == 1:
        model = MFModel(
            data.taxonomy,
            _train_config(
                factors, 1, markov, 0.0, use_bias, negative_pool, alpha, epochs
            ),
        )
    else:
        model = TaxonomyFactorModel(
            data.taxonomy,
            _train_config(
                factors, levels, markov, sibling, use_bias, negative_pool,
                alpha, epochs,
            ),
        )
    SerialTrainer(model).train(split.train)
    return model


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    note: str = "",
) -> str:
    """Fixed-width table matching the series the paper's figure plots."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[c])), *(len(r[c]) for r in str_rows)) if str_rows else len(str(headers[c]))
        for c in range(len(headers))
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if note:
        lines.append(f"   note: {note}")
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)


def report(name: str, table: str, payload: Dict) -> None:
    """Queue *table* for the terminal summary and persist *payload*."""
    _REPORTS.append(table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    with open(RESULTS_DIR / f"{name}.json", "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=_jsonify)


def _jsonify(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"cannot serialize {type(value)!r}")


def drain_reports() -> List[str]:
    """Hand queued report tables to the conftest summary hook."""
    queued = list(_REPORTS)
    _REPORTS.clear()
    return queued


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing.

    Accuracy sweeps are too expensive to repeat; one round still records
    the wall time in the benchmark table.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
