"""Streaming subsystem benchmark: ingestion rate, recall drift, hot-swap.

Three acceptance claims of ``repro.streaming`` are measured on the shared
synthetic dataset shape:

* **ingestion** — sustained events/sec through the full pipeline
  (micro-batching + incremental updates + periodic hot-swaps); the floor
  is 10k events/sec;
* **recall drift** — Recall@10 of a model that saw the last half of the
  training transactions only as a *stream* (user vectors updated online,
  item/taxonomy factors frozen at the warm-start model) vs. a full
  retrain on the same transactions; at full scale the relative drift must
  stay within 5%;
* **hot-swap availability** — serving threads hammer a
  ``RecommenderService`` while the model is swapped continuously; every
  request must succeed, and a probe after each swap must match the
  swapped-in model exactly (no stale cache).

Unlike the figure benches this one is a plain script, because CI runs it
directly and archives its JSON payload::

    PYTHONPATH=src python benchmarks/bench_streaming.py --smoke --out BENCH_streaming.json

Full-scale (no ``--smoke``) enforces the drift gate; smoke mode
under-trains on purpose and only sanity-checks it (the recall of
under-trained models is noise, mirroring the ``STRICT`` convention in
``_harness``).  Tables land in ``benchmarks/results/streaming.*`` either
way.
"""

from __future__ import annotations

import argparse
import itertools
import json
import math
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _harness import format_table, report  # noqa: E402

from repro import (  # noqa: E402
    OnlineUpdater,
    PurchaseEvent,
    RecommenderService,
    StreamingPipeline,
    SyntheticConfig,
    TaxonomyFactorModel,
    TrainConfig,
    TransactionLog,
    evaluate_topk,
    events_from_transactions,
    generate_dataset,
    train_test_split,
    train_model,
)

#: Acceptance floor for sustained ingestion (events/second), both modes.
MIN_EVENTS_PER_SEC = 10_000
#: Acceptance ceiling for Recall@10 drift vs. a full retrain (full scale).
MAX_RECALL_DRIFT = 0.05

DATA_SEED = 1234
SPLIT_SEED = 99
TRAIN_SEED = 77


def _sizes(smoke: bool) -> Dict[str, int]:
    if smoke:
        return {
            "n_users": 1000, "epochs": 6, "factors": 8,
            "ingest_events": 8_000, "updater_steps": 48, "swap_rounds": 20,
        }
    return {
        "n_users": 4000, "epochs": 15, "factors": 16,
        "ingest_events": 60_000, "updater_steps": 48, "swap_rounds": 50,
    }


def _dataset(n_users: int):
    # mean_transactions=5 gives every user a history long enough that
    # "the second half arrives as a stream" is a meaningful scenario.
    config = SyntheticConfig(
        n_users=n_users, mean_transactions=5.0, seed=DATA_SEED
    )
    data = generate_dataset(config)
    split = train_test_split(data.log, mu=0.5, seed=SPLIT_SEED)
    return data, split


def _train_config(sizes: Dict[str, int]) -> TrainConfig:
    return TrainConfig(
        factors=sizes["factors"], epochs=sizes["epochs"],
        sibling_ratio=0.5, seed=TRAIN_SEED,
    )


def _warm_and_stream(
    train: TransactionLog, n_items: int, warm_fraction: float = 0.5
) -> Tuple[TransactionLog, List[PurchaseEvent]]:
    """Split the training log into a warm prefix and a streamed remainder.

    Each user keeps the first ``ceil(warm_fraction * len)`` transactions
    offline; the rest become purchase events in the canonical
    :func:`~repro.streaming.events.events_from_transactions` round-robin
    arrival order.
    """
    warm_lists: List[List[List[int]]] = []
    keeps: List[int] = []
    for user in range(train.n_users):
        txns = train.user_transactions(user)
        keep = max(1, math.ceil(warm_fraction * len(txns))) if txns else 0
        warm_lists.append([basket.tolist() for basket in txns[:keep]])
        keeps.append(keep)
    events = list(events_from_transactions(train, start_t=keeps))
    return TransactionLog(warm_lists, n_items=n_items), events


# ----------------------------------------------------------------------
# (a) Sustained ingestion
# ----------------------------------------------------------------------
def bench_ingestion(sizes: Dict[str, int]) -> Dict[str, float]:
    data, split = _dataset(sizes["n_users"])
    config = TrainConfig(
        factors=sizes["factors"], epochs=2, sibling_ratio=0.5, seed=TRAIN_SEED
    )
    model = train_model(TaxonomyFactorModel(data.taxonomy, config), split.train)
    service = RecommenderService(model, history_log=split.train)
    pipeline = StreamingPipeline(
        service,
        updater=OnlineUpdater(model, steps=4, seed=0),
        batch_size=512,
        swap_every=8,
    )
    base_events = [
        PurchaseEvent(u, tuple(int(i) for i in basket))
        for u, _t, basket in split.train.iter_baskets()
    ]
    target = sizes["ingest_events"]
    stream = itertools.islice(itertools.cycle(base_events), target)
    started = time.perf_counter()
    stats = pipeline.run(stream)
    wall = time.perf_counter() - started
    return {
        "events": stats.events,
        "purchases": stats.purchases,
        "batches": stats.batches,
        "swaps": pipeline.swaps,
        "wall_seconds": wall,
        "update_seconds": stats.seconds,
        "events_per_sec": stats.events / wall,
    }


# ----------------------------------------------------------------------
# (b) Recall drift vs. a full retrain
# ----------------------------------------------------------------------
def bench_recall_drift(sizes: Dict[str, int]) -> Dict[str, float]:
    data, split = _dataset(sizes["n_users"])
    config = _train_config(sizes)
    warm, events = _warm_and_stream(split.train, data.taxonomy.n_items)

    offline = train_model(TaxonomyFactorModel(data.taxonomy, config), warm)
    updater = OnlineUpdater(offline, steps=sizes["updater_steps"], seed=0)
    started = time.perf_counter()
    for start in range(0, len(events), 256):
        updater.apply_events(events[start : start + 256])
    stream_seconds = time.perf_counter() - started
    streamed = updater.snapshot()

    full = train_model(TaxonomyFactorModel(data.taxonomy, config), split.train)

    recall_streamed = evaluate_topk(streamed, split, k=10).recall
    recall_full = evaluate_topk(full, split, k=10).recall
    recall_warm = evaluate_topk(
        offline.attach_log(split.train), split, k=10
    ).recall
    drift = abs(recall_streamed - recall_full) / max(recall_full, 1e-12)
    return {
        "streamed_events": len(events),
        "recall10_warm_only": recall_warm,
        "recall10_streamed": recall_streamed,
        "recall10_full_retrain": recall_full,
        "relative_drift": drift,
        "stream_seconds": stream_seconds,
    }


# ----------------------------------------------------------------------
# (c) Zero-downtime hot swap
# ----------------------------------------------------------------------
def bench_hot_swap(sizes: Dict[str, int]) -> Dict[str, float]:
    data, split = _dataset(sizes["n_users"])
    config = TrainConfig(
        factors=sizes["factors"], epochs=3, sibling_ratio=0.5, seed=TRAIN_SEED
    )
    model = train_model(TaxonomyFactorModel(data.taxonomy, config), split.train)
    updater = OnlineUpdater(model, steps=8, seed=0)
    updater.apply_events(
        [PurchaseEvent(u, (u % model.n_items,)) for u in range(64)]
    )
    candidates = [model, updater.snapshot()]

    service = RecommenderService(model, history_log=split.train)
    errors: List[BaseException] = []
    served = [0]
    stop = threading.Event()

    def hammer() -> None:
        users = np.arange(64)
        while not stop.is_set():
            try:
                out = service.recommend_batch(users, k=10)
                if out.shape != (64, 10) or (out < 0).any():
                    raise AssertionError("short page served")
                served[0] += 1
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)
                return

    threads = [threading.Thread(target=hammer) for _ in range(2)]
    for thread in threads:
        thread.start()
    stale = 0
    probe_user = 0
    started = time.perf_counter()
    for i in range(sizes["swap_rounds"]):
        live = candidates[i % 2]
        service.swap_model(live)
        # Freshness probe: immediately after the swap, the served page for
        # a previously cached user must match the new model exactly.
        page = service.recommend(probe_user, k=10)
        if not np.array_equal(page, live.recommend(probe_user, k=10)):
            stale += 1
    swap_seconds = time.perf_counter() - started
    stop.set()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    stats = service.stats
    return {
        "swaps": sizes["swap_rounds"],
        "stale_probes": stale,
        "batches_served_during_swaps": served[0],
        "requests_served": stats.requests,
        "errors": len(errors),
        "swap_seconds": swap_seconds,
        "swaps_per_sec": sizes["swap_rounds"] / swap_seconds,
    }


# ----------------------------------------------------------------------
# Reporting / gates
# ----------------------------------------------------------------------
def run(smoke: bool) -> Dict[str, object]:
    sizes = _sizes(smoke)
    ingestion = bench_ingestion(sizes)
    drift = bench_recall_drift(sizes)
    swap = bench_hot_swap(sizes)

    table = format_table(
        "streaming: ingestion / drift / hot-swap",
        ["measure", "value", "gate"],
        [
            [
                "events/sec",
                ingestion["events_per_sec"],
                f">= {MIN_EVENTS_PER_SEC}",
            ],
            [
                "recall@10 streamed",
                drift["recall10_streamed"],
                "",
            ],
            [
                "recall@10 full retrain",
                drift["recall10_full_retrain"],
                "",
            ],
            [
                "relative drift",
                drift["relative_drift"],
                f"<= {MAX_RECALL_DRIFT}" if not smoke else "(smoke: recorded)",
            ],
            ["swaps under load", swap["swaps"], ""],
            ["stale probes", swap["stale_probes"], "== 0"],
            ["batches served during swaps", swap["batches_served_during_swaps"], "> 0"],
        ],
        note="smoke mode under-trains; the drift gate binds at full scale",
    )
    payload = {
        "mode": "smoke" if smoke else "full",
        "sizes": sizes,
        "ingestion": ingestion,
        "recall_drift": drift,
        "hot_swap": swap,
        "gates": {
            "min_events_per_sec": MIN_EVENTS_PER_SEC,
            "max_recall_drift": MAX_RECALL_DRIFT,
        },
    }
    report("streaming", table, payload)
    print(table)

    failures = []
    if ingestion["events_per_sec"] < MIN_EVENTS_PER_SEC:
        failures.append(
            f"ingestion {ingestion['events_per_sec']:.0f} events/sec "
            f"below the {MIN_EVENTS_PER_SEC} floor"
        )
    if not smoke and drift["relative_drift"] > MAX_RECALL_DRIFT:
        failures.append(
            f"recall drift {drift['relative_drift']:.3f} above the "
            f"{MAX_RECALL_DRIFT} ceiling"
        )
    if smoke and drift["recall10_streamed"] < 0.5 * drift["recall10_full_retrain"]:
        failures.append("smoke sanity: streamed recall collapsed vs retrain")
    if swap["stale_probes"]:
        failures.append(f"{swap['stale_probes']} stale post-swap probes")
    if swap["batches_served_during_swaps"] == 0:
        failures.append("no requests were served during the swap storm")
    payload["failures"] = failures
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes for CI; the drift gate is only recorded",
    )
    parser.add_argument(
        "--out", default="BENCH_streaming.json",
        help="where to write the JSON payload (default: ./BENCH_streaming.json)",
    )
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, default=float) + "\n")
    print(f"wrote {out}")
    if payload["failures"]:
        for failure in payload["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
