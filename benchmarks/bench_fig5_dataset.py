"""Figure 5 — dataset characteristics.

Paper (Sec. 7.1, Fig. 5): (a) histogram of distinct items per user in
training, dominated by small counts; (b) histogram of *new* items per user
in test, showing users buy several unseen items; (c) item popularity with a
heavy tail.
"""

from _harness import bench_dataset, bench_split, format_table, report, run_once

from repro.data.stats import (
    distinct_items_per_user,
    gini,
    histogram,
    new_items_per_user,
    summarize,
)


def test_fig5a_distinct_items_per_user(benchmark):
    split = bench_split()

    def experiment():
        counts = distinct_items_per_user(split.train)
        return histogram(counts, max_value=10)

    values, counts = run_once(benchmark, experiment)
    rows = [(int(v), int(c)) for v, c in zip(values, counts)]
    table = format_table(
        "Fig 5(a): distinct items per user (train)",
        ["distinct_items", "n_users"],
        rows,
        note="paper shape: mass concentrated at small counts, long tail",
    )
    report("fig5a", table, {"values": values, "counts": counts})
    # Shape assertion: most users buy few distinct items.
    assert counts[:4].sum() > 0.5 * counts.sum()


def test_fig5b_new_items_per_user(benchmark):
    split = bench_split()

    def experiment():
        fresh = new_items_per_user(split.train, split.test)
        return histogram(fresh, max_value=10)

    values, counts = run_once(benchmark, experiment)
    rows = [(int(v), int(c)) for v, c in zip(values, counts)]
    table = format_table(
        "Fig 5(b): new items per user (test)",
        ["new_items", "n_users"],
        rows,
        note="paper shape: users buy several items they never bought before",
    )
    report("fig5b", table, {"values": values, "counts": counts})
    # Users with test data mostly buy at least one new item.
    assert counts[1:].sum() > 0


def test_fig5c_item_popularity(benchmark):
    data = bench_dataset()

    def experiment():
        popularity = data.log.item_counts()
        return histogram(popularity, max_value=15), gini(popularity)

    (values, counts), gini_value = run_once(benchmark, experiment)
    rows = [(int(v), int(c)) for v, c in zip(values, counts)]
    summary = summarize(data.log)
    table = format_table(
        "Fig 5(c): item popularity histogram",
        ["times_purchased", "n_items"],
        rows,
        note=(
            f"gini={gini_value:.3f}; purchases/user="
            f"{summary.purchases_per_user:.2f} (paper: 2.3); heavy tail expected"
        ),
    )
    report(
        "fig5c",
        table,
        {
            "values": values,
            "counts": counts,
            "gini": gini_value,
            "summary": summary.as_dict(),
        },
    )
    assert gini_value > 0.25  # heavy tail
