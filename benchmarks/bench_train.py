"""Training front-door benchmark: the unified API must not cost throughput.

The ``repro.train`` consolidation wraps the threaded SGD engine (paper
Sec. 6.1) behind the shared :class:`~repro.train.base.Trainer` loop.  This
script gates the wrapper's overhead on the synthetic dataset:

* **threaded parity** — epoch throughput (examples/sec) of the new
  :class:`~repro.train.ThreadedTrainer` must be at least
  ``MIN_PARITY`` x the deprecated ``ThreadedSGDTrainer``'s.  Both drive
  the identical per-sample engine, so anything below parity (minus
  measurement noise) means the new loop added per-epoch cost;
* **serial context** — the vectorized ``SerialTrainer`` throughput is
  reported alongside (it should dwarf both per-sample paths);
* **equivalence spot-check** — one epoch at 1 worker must produce
  bit-identical user factors across the old and new entry points.

Like ``bench_streaming.py`` this is a plain script so CI can archive the
JSON payload::

    PYTHONPATH=src python benchmarks/bench_train.py --smoke --out BENCH_train.json

Tables land in ``benchmarks/results/train.*`` either way.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import warnings
from pathlib import Path
from typing import Dict, List

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _harness import format_table, report  # noqa: E402

from repro import (  # noqa: E402
    SerialTrainer,
    SyntheticConfig,
    TaxonomyFactorModel,
    ThreadedTrainer,
    TrainConfig,
    generate_dataset,
    train_test_split,
)
from repro.core.factors import FactorSet  # noqa: E402
from repro.parallel.trainer import ThreadedSGDTrainer  # noqa: E402

#: New ThreadedTrainer throughput must reach this fraction of the old
#: ThreadedSGDTrainer's.  They execute the same engine, so the floor only
#: absorbs timer noise; a real wrapper regression lands far below it.
MIN_PARITY = 0.85

DATA_SEED = 1234
SPLIT_SEED = 99
TRAIN_SEED = 77


def _sizes(smoke: bool) -> Dict[str, int]:
    if smoke:
        return {"n_users": 800, "epochs": 2, "factors": 8, "workers": 2}
    return {"n_users": 4000, "epochs": 4, "factors": 16, "workers": 4}


def _config(sizes: Dict[str, int]) -> TrainConfig:
    # The threaded regime of the paper's scaling experiment: TF(4,0),
    # no sibling mixing.
    return TrainConfig(
        factors=sizes["factors"],
        epochs=sizes["epochs"],
        sibling_ratio=0.0,
        seed=TRAIN_SEED,
    )


def _throughput(epoch_fn, epochs: int) -> float:
    """Best examples/sec over *epochs* runs of ``epoch_fn() -> (n, s)``."""
    best = 0.0
    for _ in range(epochs):
        examples, seconds = epoch_fn()
        if seconds > 0:
            best = max(best, examples / seconds)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI")
    parser.add_argument("--out", default=None,
                        help="also write the JSON payload here")
    args = parser.parse_args(argv)
    sizes = _sizes(args.smoke)

    data = generate_dataset(
        SyntheticConfig(n_users=sizes["n_users"], seed=DATA_SEED)
    )
    split = train_test_split(data.log, mu=0.5, seed=SPLIT_SEED)
    train = split.train
    config = _config(sizes)
    workers = sizes["workers"]

    # -- old front door: deprecated ThreadedSGDTrainer -----------------
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        old_fs = FactorSet(
            train.n_users, data.taxonomy, config.factors,
            config.taxonomy_levels, seed=config.seed,
        )
        old_trainer = ThreadedSGDTrainer(
            old_fs, train, config, n_threads=workers
        )
    old_trainer.train_epoch()  # warm-up (allocations, caches)

    def old_epoch():
        stats = old_trainer.train_epoch()
        return stats.n_examples, stats.seconds

    old_tput = _throughput(old_epoch, sizes["epochs"])

    # -- new front door: ThreadedTrainer -------------------------------
    new_model = TaxonomyFactorModel(data.taxonomy, config)
    new_trainer = ThreadedTrainer(new_model, n_workers=workers)
    new_trainer.train(train, epochs=1)  # warm-up, also runs _setup
    # Driving _run_epoch directly (to time bare epochs, like the old
    # trainer's train_epoch) bypasses the loop's history append, so the
    # epoch index — and with it the per-epoch seed — advances manually.
    epoch_counter = [1]

    def new_epoch():
        stats = new_trainer._run_epoch(epoch_counter[0])
        epoch_counter[0] += 1
        return stats.n_examples, stats.seconds

    new_tput = _throughput(new_epoch, sizes["epochs"])

    # -- serial context -------------------------------------------------
    serial_model = TaxonomyFactorModel(data.taxonomy, config)
    serial_trainer = SerialTrainer(serial_model)
    started = time.perf_counter()
    serial_result = serial_trainer.train(train, epochs=sizes["epochs"])
    serial_seconds = time.perf_counter() - started
    serial_examples = sum(e.n_examples for e in serial_result.history)
    serial_tput = serial_examples / serial_seconds if serial_seconds else 0.0

    parity = new_tput / old_tput if old_tput else float("inf")

    # -- equivalence spot-check (1 worker, 1 epoch) ---------------------
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        eq_fs = FactorSet(
            train.n_users, data.taxonomy, config.factors,
            config.taxonomy_levels, seed=config.seed,
        )
        ThreadedSGDTrainer(eq_fs, train, config, n_threads=1).train_epoch()
    eq_model = TaxonomyFactorModel(data.taxonomy, config)
    ThreadedTrainer(eq_model, n_workers=1).train(train, epochs=1)
    identical = bool(np.array_equal(eq_fs.user, eq_model.factor_set.user))

    rows: List[List] = [
        ["ThreadedSGDTrainer (old)", workers, old_tput],
        ["ThreadedTrainer (new)", workers, new_tput],
        ["SerialTrainer (batch)", 1, serial_tput],
    ]
    table = format_table(
        "train front-door throughput (examples/sec, best epoch)",
        ["trainer", "workers", "examples/sec"],
        rows,
        note=(
            f"parity new/old = {parity:.2f} (floor {MIN_PARITY}); "
            f"1-worker factors identical: {identical}"
        ),
    )
    print(table)

    payload = {
        "smoke": args.smoke,
        "sizes": sizes,
        "old_examples_per_sec": old_tput,
        "new_examples_per_sec": new_tput,
        "serial_examples_per_sec": serial_tput,
        "parity": parity,
        "min_parity": MIN_PARITY,
        "one_worker_identical": identical,
    }
    report("train", table, payload)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.out}")

    failures = []
    if parity < MIN_PARITY:
        failures.append(
            f"ThreadedTrainer throughput {new_tput:.0f}/sec fell below "
            f"{MIN_PARITY}x the old ThreadedSGDTrainer ({old_tput:.0f}/sec)"
        )
    if not identical:
        failures.append(
            "1-worker ThreadedTrainer diverged from ThreadedSGDTrainer"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
