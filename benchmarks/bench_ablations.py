"""Ablations of this reproduction's design choices (extensions beyond the
paper's figures; see DESIGN.md Sec. 5's extension rows).

* **bias terms** — the paper elides popularity biases "for simplicity of
  exposition"; we keep them.  How much do they matter, for MF and for TF?
* **negative pool** — the paper samples negatives from the whole item
  universe.  On a small universe this systematically buries cold items
  (they are *only* ever sampled as negatives); restricting negatives to
  purchased items restores the paper's "new items rank by their category"
  behaviour.  This quantifies the EXPERIMENTS.md note on Fig. 7(c).
* **sibling ratio** — Sec. 4.2 mixes sibling examples with random ones but
  does not say in what proportion; sweep it.
* **decay scale α** — Eq. 3's exponential decay weight.
"""

from _harness import (
    DEFAULT_FACTORS,
    STRICT,
    bench_split,
    format_table,
    report,
    run_once,
    trained_model,
)

from repro.eval.protocol import evaluate_cold_start, evaluate_model


def test_ablation_bias_terms(benchmark):
    split = bench_split()

    def experiment():
        out = {}
        for levels in (1, 4):
            for use_bias in (True, False):
                model = trained_model(levels, 0, use_bias=use_bias)
                out[(levels, use_bias)] = evaluate_model(model, split).auc
        return out

    aucs = run_once(benchmark, experiment)
    rows = [
        ("MF(0)", aucs[(1, False)], aucs[(1, True)]),
        ("TF(4,0)", aucs[(4, False)], aucs[(4, True)]),
    ]
    table = format_table(
        "Ablation: hierarchical popularity bias terms (AUC)",
        ["model", "no bias", "bias"],
        rows,
        note="bias carries the popularity signal BPR otherwise learns slowly",
    )
    report(
        "ablation_bias",
        table,
        {f"{levels}_{use_bias}": auc for (levels, use_bias), auc in aucs.items()},
    )
    if STRICT:
        assert aucs[(1, True)] > aucs[(1, False)] - 0.02
        # TF's taxonomy already encodes category popularity, so its bias
        # dependence must be weaker than MF's.
        mf_gain = aucs[(1, True)] - aucs[(1, False)]
        tf_gain = aucs[(4, True)] - aucs[(4, False)]
        assert tf_gain < mf_gain + 0.02


def test_ablation_negative_pool_cold_start(benchmark):
    split = bench_split()

    def experiment():
        out = {}
        for levels in (1, 4):
            for pool in ("all", "purchased"):
                model = trained_model(levels, 0, negative_pool=pool)
                out[(levels, pool)] = (
                    evaluate_model(model, split).auc,
                    evaluate_cold_start(model, split).score,
                )
        return out

    results = run_once(benchmark, experiment)
    rows = [
        (
            "MF(0)" if levels == 1 else "TF(4,0)",
            pool,
            auc,
            cold,
        )
        for (levels, pool), (auc, cold) in sorted(results.items())
    ]
    table = format_table(
        "Ablation: negative-sampling pool (AUC / cold-start score)",
        ["model", "pool", "AUC", "cold-start"],
        rows,
        note=(
            "pool='all' buries never-purchased items on small universes; "
            "pool='purchased' leaves them at their category prior"
        ),
    )
    report(
        "ablation_negative_pool",
        table,
        {
            f"{levels}_{pool}": {"auc": auc, "cold": cold}
            for (levels, pool), (auc, cold) in results.items()
        },
    )
    if STRICT:
        # The purchased-only pool must rescue MF's cold-start behaviour.
        assert results[(1, "purchased")][1] > results[(1, "all")][1]
        # TF beats MF on cold start under either pool.
        for pool in ("all", "purchased"):
            assert results[(4, pool)][1] > results[(1, pool)][1]


def test_ablation_sibling_ratio(benchmark):
    from _harness import EARLY_EPOCHS

    split = bench_split()
    ratios = (0.0, 0.25, 0.5, 1.0)

    def experiment():
        return {
            ratio: evaluate_model(
                trained_model(4, 0, sibling=ratio, epochs=EARLY_EPOCHS), split
            ).auc
            for ratio in ratios
        }

    aucs = run_once(benchmark, experiment)
    rows = [(ratio, aucs[ratio]) for ratio in ratios]
    table = format_table(
        f"Ablation: sibling-training mixing ratio (TF(4,0) AUC, "
        f"{EARLY_EPOCHS} epochs)",
        ["sibling_ratio", "AUC"],
        rows,
        note="Sec. 4.2 mixes sibling and random sampling; the paper does "
        "not publish the ratio",
    )
    report("ablation_sibling_ratio", table, {str(r): a for r, a in aucs.items()})
    if STRICT:
        assert max(aucs.values()) >= aucs[0.0]


def test_ablation_sibling_min_level(benchmark):
    """Item-level sibling negatives (the paper's Fig. 3 includes them) vs
    category-level only.  On a small item universe, an item's siblings are
    frequently the user's *future* purchases, so item-level sibling
    examples backfire — the reason this library defaults to
    ``sibling_min_level = 1``."""
    from _harness import EARLY_EPOCHS

    import dataclasses

    from repro import TaxonomyFactorModel, train_model
    from _harness import bench_dataset, _train_config

    split = bench_split()
    data = bench_dataset()

    def experiment():
        out = {}
        for min_level in (0, 1):
            config = dataclasses.replace(
                _train_config(DEFAULT_FACTORS, 4, 0, 0.5, epochs=EARLY_EPOCHS),
                sibling_min_level=min_level,
            )
            model = train_model(
                TaxonomyFactorModel(data.taxonomy, config), split.train
            )
            out[min_level] = evaluate_model(model, split).auc
        return out

    aucs = run_once(benchmark, experiment)
    rows = [
        ("items and categories (paper Fig. 3)", aucs[0]),
        ("categories only (library default)", aucs[1]),
    ]
    table = format_table(
        "Ablation: lowest sibling-example level (TF(4,0) AUC)",
        ["sibling examples from", "AUC"],
        rows,
        note="item-level sibling negatives collide with future purchases "
        "on small leaf categories",
    )
    report("ablation_sibling_min_level", table, {str(k): v for k, v in aucs.items()})


def test_ablation_decay_alpha(benchmark):
    split = bench_split()
    alphas = (0.25, 1.0, 2.0)

    def experiment():
        return {
            alpha: evaluate_model(
                trained_model(4, 2, alpha=alpha), split
            ).auc
            for alpha in alphas
        }

    aucs = run_once(benchmark, experiment)
    rows = [(alpha, aucs[alpha]) for alpha in alphas]
    table = format_table(
        "Ablation: Eq. 3 decay scale alpha (TF(4,2) AUC)",
        ["alpha", "AUC"],
        rows,
        note="alpha scales the short-term term against the long-term term",
    )
    report("ablation_decay_alpha", table, {str(a): v for a, v in aucs.items()})
    baseline = evaluate_model(trained_model(4, 0), split).auc
    if STRICT:
        # With a sensible alpha the Markov term must not hurt.
        assert max(aucs.values()) > baseline - 0.01
