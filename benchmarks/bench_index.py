"""Pruned-retrieval benchmark: exactness at 100k items, then throughput.

Two acceptance claims of ``repro.serving.index`` are measured on a
synthetic 100k-item catalog whose factors have the hierarchical coherence
the TF model learns (ancestor offsets carry most of the signal, Eq. 1):

* **exactness** — :class:`SubtreeIndex` top-k must be **bit-identical**
  to the brute-force ``top_k_rows`` ranking, on the raw factor matrices
  *and* through a :class:`RecommenderService` pair
  (``retrieval="exact"`` vs ``"pruned"``), including forced score ties
  (whole subtrees of identical factors, duplicates across subtrees),
  fully-banned rows (all ``-inf``), rows with fewer than ``k`` finite
  candidates, and ``k`` larger than the catalog.  This gate binds in
  **every** mode — smoke (CI) included;
* **throughput** — the pruned service must serve ``recommend_batch`` at
  **>= 2x** the brute-force service on the same request stream.  The
  gate binds at full scale; smoke mode records the number (CI boxes make
  no performance promises).

Like the other subsystem benches this is a plain script so CI can run it
directly and archive its JSON payload::

    PYTHONPATH=src python benchmarks/bench_index.py --smoke --out BENCH_index.json

``--digest FILE`` additionally writes a SHA-256 over the ranking arrays
(no timings, no environment) — the CI determinism job runs the bench
twice and fails on any byte-level difference between the two digests.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _harness import format_table, report  # noqa: E402

from repro.core.factors import FactorSet  # noqa: E402
from repro.core.tf_model import TaxonomyFactorModel  # noqa: E402
from repro.core.topk import top_k_rows  # noqa: E402
from repro.serving.index import SubtreeIndex  # noqa: E402
from repro.serving.service import RecommenderService  # noqa: E402
from repro.taxonomy.tree import Taxonomy  # noqa: E402
from repro.utils.config import TrainConfig  # noqa: E402

#: Acceptance floor for pruned/brute-force throughput (full scale).
MIN_SPEEDUP = 2.0
#: Catalog shape: 50 top categories x 40 subcategories x 50 leaves.
BRANCHING = (50, 40, 50)
N_ITEMS = 100_000
FACTORS = 32
N_USERS = 2048

SEED = 4242


def _sizes(smoke: bool) -> Dict[str, int]:
    if smoke:
        return {"exact_rows": 256, "throughput_batch": 256, "rounds": 3, "k": 10}
    return {"exact_rows": 512, "throughput_batch": 256, "rounds": 16, "k": 10}


def _catalog() -> Taxonomy:
    """A balanced 3-level taxonomy with exactly 100k leaves."""
    a, b, c = BRANCHING
    parent: List[int] = [-1]
    parent += [0] * a
    parent += np.repeat(np.arange(1, 1 + a), b).tolist()
    parent += np.repeat(np.arange(1 + a, 1 + a + a * b), c).tolist()
    taxonomy = Taxonomy(parent)
    assert taxonomy.n_items == N_ITEMS
    return taxonomy


def _factor_set(taxonomy: Taxonomy, rng: np.random.Generator) -> FactorSet:
    """Hierarchically coherent factors: ancestors dominate, leaves refine.

    This is the structure Eq. 1 training produces — items under one
    subtree share their ancestor offsets — and exactly what makes the
    per-subtree Cauchy–Schwarz bounds sharp.  Two distortions are baked
    in to stress the exactness gate: one whole subtree of *identical*
    leaf offsets (every item in it ties on every query) and one leaf
    chain duplicated into a different top-level category (cross-subtree
    score ties).
    """
    scale = np.where(taxonomy.level >= taxonomy.max_depth, 0.05, 0.3)
    scale = np.append(scale, 0.0)  # pad row
    w = rng.normal(0.0, 1.0, size=(taxonomy.n_nodes + 1, FACTORS))
    w *= scale[:, None]
    bias = rng.normal(0.0, 1.0, size=taxonomy.n_nodes + 1) * scale * 0.3

    # Within-subtree exact ties: every leaf under the first subcategory
    # shares one offset vector and bias, so all 50 items tie on every
    # query and the tie-break order alone decides the ranking there.
    a, b, _c = BRANCHING
    first_sub = taxonomy.nodes_of_items(taxonomy.subtree_items(1 + a))
    w[first_sub] = w[first_sub[0]]
    bias[first_sub] = bias[first_sub[0]]

    # Cross-subtree exact ties: mirror top category 1's entire offset
    # block onto top category 2, node for node.  The balanced layout
    # makes corresponding nodes a constant id apart, and elementwise
    # equal chains sum to bitwise-equal effective factors — thousands of
    # items tied across *different* subtrees (so merged from different
    # scan blocks).
    sub_a = np.arange(1 + a, 1 + a + b)
    leaf_a = taxonomy.nodes_of_items(taxonomy.subtree_items(1))
    w[2] = w[1]
    bias[2] = bias[1]
    w[sub_a + b] = w[sub_a]
    bias[sub_a + b] = bias[sub_a]
    w[leaf_a + leaf_a.size] = w[leaf_a]
    bias[leaf_a + leaf_a.size] = bias[leaf_a]

    user = rng.normal(0.0, 0.3, size=(N_USERS, FACTORS))
    return FactorSet.from_arrays(
        taxonomy, user=user, w=w, bias=bias,
        levels=taxonomy.max_depth + 1, init_scale=0.1,
    )


def _banned_rows(
    n_rows: int, rng: np.random.Generator
) -> List[np.ndarray]:
    """Per-row exclusions stressing the pad paths.

    Row 0 bans the whole catalog (an all--inf row), row 1 leaves only 3
    finite candidates (fewer than ``k``), the rest ban a random
    purchase-history-sized handful.
    """
    banned: List[np.ndarray] = [np.arange(N_ITEMS, dtype=np.int64)]
    if n_rows > 1:
        keep = np.array([7, 70_007, 99_999])
        banned.append(np.setdiff1d(np.arange(N_ITEMS, dtype=np.int64), keep))
    for _ in range(max(0, n_rows - 2)):
        banned.append(
            rng.choice(N_ITEMS, size=int(rng.integers(0, 120)), replace=False)
        )
    return banned[:n_rows]


# ----------------------------------------------------------------------
# (a) Bit-identical rankings, raw index and service pair
# ----------------------------------------------------------------------
def bench_exactness(
    sizes: Dict[str, int],
    taxonomy: Taxonomy,
    factor_set: FactorSet,
    rng: np.random.Generator,
) -> Dict[str, object]:
    effective = factor_set.effective_items()
    bias = factor_set.bias_of_items()
    index = SubtreeIndex(effective, bias, taxonomy)
    k = sizes["k"]
    n_rows = sizes["exact_rows"]
    queries = rng.normal(0.0, 0.3, size=(n_rows, FACTORS))
    banned = _banned_rows(n_rows, rng)

    dense = queries @ effective.T + bias[None, :]
    for row, row_banned in enumerate(banned):
        if row_banned.size:
            dense[row, row_banned] = -np.inf
    brute = top_k_rows(dense, k)
    page = index.top_k(queries, k, banned=banned)

    # k far beyond the catalog width (padded everywhere) on a small slab.
    wide_brute = top_k_rows(dense[:8], N_ITEMS + 5)
    wide_page = index.top_k(queries[:8], N_ITEMS + 5, banned=banned[:8])

    # The same contract through the serving front door.
    model = TaxonomyFactorModel(taxonomy, TrainConfig(factors=FACTORS))
    model._factors = factor_set
    exact = RecommenderService(model, cache_size=0)
    pruned = RecommenderService(model, cache_size=0, retrieval="pruned")
    users = np.arange(min(N_USERS, n_rows), dtype=np.int64)
    served_exact = exact.recommend_batch(users, k=k)
    served_pruned = pruned.recommend_batch(users, k=k)

    return {
        "rows_checked": n_rows,
        "k": k,
        "index_level": index.level,
        "n_groups": index.n_groups,
        "raw_mismatches": int((page.items != brute).any(axis=1).sum()),
        "wide_k_mismatches": int((wide_page.items != wide_brute).any(axis=1).sum()),
        "service_mismatches": int(
            (served_pruned != served_exact).any(axis=1).sum()
        ),
        "all_banned_row_is_padded": bool((page.items[0] == -1).all()),
        "short_row_finite_slots": int((page.items[1] >= 0).sum()),
        "fraction_scored": page.nodes_scored / float(dense.size),
        "_arrays": (page.items, brute, wide_page.items, served_pruned),
    }


# ----------------------------------------------------------------------
# (b) Pruned vs brute-force serving throughput
# ----------------------------------------------------------------------
def bench_throughput(
    sizes: Dict[str, int], taxonomy: Taxonomy, factor_set: FactorSet
) -> Dict[str, float]:
    model = TaxonomyFactorModel(taxonomy, TrainConfig(factors=FACTORS))
    model._factors = factor_set
    batch, rounds, k = sizes["throughput_batch"], sizes["rounds"], sizes["k"]
    batches = [
        np.arange(start, start + batch, dtype=np.int64) % N_USERS
        for start in range(0, batch * rounds, batch)
    ]
    served = sum(b.size for b in batches)

    def drain(service: RecommenderService) -> float:
        started = time.perf_counter()
        for users in batches:
            service.recommend_batch(users, k=k)
        return time.perf_counter() - started

    exact = RecommenderService(model, cache_size=0)
    brute_seconds = drain(exact)
    pruned_service = RecommenderService(model, cache_size=0, retrieval="pruned")
    pruned_seconds = drain(pruned_service)
    return {
        "requests": served,
        "k": k,
        "brute_seconds": brute_seconds,
        "brute_users_per_sec": served / brute_seconds,
        "pruned_seconds": pruned_seconds,
        "pruned_users_per_sec": served / pruned_seconds,
        "speedup": brute_seconds / pruned_seconds,
        "pruned_fraction_scored": (
            pruned_service.stats.nodes_scored
            / float(exact.stats.nodes_scored)
        ),
    }


# ----------------------------------------------------------------------
# Reporting / gates
# ----------------------------------------------------------------------
def _digest(arrays) -> str:
    """SHA-256 over the ranking arrays only — stable across runs."""
    payload = hashlib.sha256()
    for array in arrays:
        array = np.ascontiguousarray(array)
        payload.update(str(array.shape).encode())
        payload.update(str(array.dtype).encode())
        payload.update(array.tobytes())
    return payload.hexdigest()


def run(smoke: bool) -> Dict[str, object]:
    sizes = _sizes(smoke)
    rng = np.random.default_rng(SEED)
    taxonomy = _catalog()
    factor_set = _factor_set(taxonomy, rng)
    exactness = bench_exactness(sizes, taxonomy, factor_set, rng)
    digest = _digest(exactness.pop("_arrays"))
    throughput = bench_throughput(sizes, taxonomy, factor_set)

    speedup_gate = f">= {MIN_SPEEDUP}" if not smoke else "(smoke: recorded)"
    table = format_table(
        f"index: taxonomy-pruned exact retrieval over {N_ITEMS} items",
        ["measure", "value", "gate"],
        [
            ["index groups (level)",
             f"{exactness['n_groups']} ({exactness['index_level']})", ""],
            ["raw top-k mismatches", exactness["raw_mismatches"], "== 0"],
            ["k > catalog mismatches", exactness["wide_k_mismatches"], "== 0"],
            ["service top-k mismatches", exactness["service_mismatches"], "== 0"],
            ["fraction of catalog scored", exactness["fraction_scored"], ""],
            ["brute-force users/sec", throughput["brute_users_per_sec"], ""],
            ["pruned users/sec", throughput["pruned_users_per_sec"], ""],
            ["speedup", throughput["speedup"], speedup_gate],
        ],
        note="exactness gates bind in every mode; the speedup gate at full scale",
    )
    payload: Dict[str, object] = {
        "mode": "smoke" if smoke else "full",
        "sizes": sizes,
        "catalog": {"n_items": N_ITEMS, "factors": FACTORS, "seed": SEED},
        "exactness": exactness,
        "throughput": throughput,
        "digest": digest,
        "gates": {"min_speedup": MIN_SPEEDUP},
    }
    report("index", table, payload)
    print(table)

    failures = []
    if exactness["raw_mismatches"]:
        failures.append(
            f"{exactness['raw_mismatches']} pruned rows diverge from the "
            f"brute-force ranking"
        )
    if exactness["wide_k_mismatches"]:
        failures.append("k > catalog rows diverge from brute force")
    if exactness["service_mismatches"]:
        failures.append(
            f"{exactness['service_mismatches']} pruned service rows diverge "
            f"from the exact service"
        )
    if not exactness["all_banned_row_is_padded"]:
        failures.append("fully-banned row leaked non-pad items")
    if exactness["short_row_finite_slots"] != 3:
        failures.append(
            f"row with 3 finite candidates returned "
            f"{exactness['short_row_finite_slots']} items"
        )
    if not smoke and throughput["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"pruned speedup {throughput['speedup']:.2f}x below the "
            f"{MIN_SPEEDUP}x floor"
        )
    payload["failures"] = failures
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI sizes; the throughput gate is only recorded",
    )
    parser.add_argument(
        "--out", default="BENCH_index.json",
        help="where to write the JSON payload (default: ./BENCH_index.json)",
    )
    parser.add_argument(
        "--digest", default=None, metavar="FILE",
        help="also write the SHA-256 ranking digest here (for the CI "
             "determinism job: two runs must produce identical bytes)",
    )
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, default=float) + "\n")
    print(f"wrote {out}")
    if args.digest:
        Path(args.digest).write_text(str(payload["digest"]) + "\n")
        print(f"wrote {args.digest}")
    if payload["failures"]:
        for failure in payload["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
