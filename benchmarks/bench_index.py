"""Retrieval benchmark: exact at 100k items, approximate past 1M.

Three acceptance claims of ``repro.serving.index`` are measured on a
synthetic catalog whose factors have the hierarchical coherence the TF
model learns (ancestor offsets carry most of the signal, Eq. 1) — a
100k-item catalog in ``--smoke`` mode (CI) and a **1M-item** catalog in
full mode:

* **exactness** — :class:`SubtreeIndex` top-k must be **bit-identical**
  to the brute-force ``top_k_rows`` ranking, on the raw factor matrices
  *and* through a :class:`RecommenderService` pair
  (``retrieval="exact"`` vs ``"pruned"``), including forced score ties
  (whole subtrees of identical factors, duplicates across subtrees),
  fully-banned rows (all ``-inf``), rows with fewer than ``k`` finite
  candidates, and ``k`` larger than the catalog.  This gate binds in
  **every** mode — smoke (CI) included;
* **approximate quality** — the sub-linear tiers
  (``retrieval="budget"`` / ``"ivf"``) must return rankings
  bit-identical to exact at their knob extremes (``budget=None`` /
  ``nprobe=None`` — binds in every mode), and at the shipped gate knobs
  (:data:`GATE_FRACTION` of the catalog / of the cells) must reach
  **>= 95% recall@10** (binds in every mode) at **>= 5x** the
  brute-force serving throughput (binds at full scale; CI boxes make no
  performance promises).  The whole budget/nprobe sweep is archived as a
  recall-vs-throughput curve in the JSON payload (and separately via
  ``--curve-out``);
* **throughput** — the *exact* pruned service must serve
  ``recommend_batch`` at **>= 2x** the brute-force service on the same
  request stream (full scale only).

Like the other subsystem benches this is a plain script so CI can run it
directly and archive its JSON payload::

    PYTHONPATH=src python benchmarks/bench_index.py --smoke --out BENCH_index.json

``--digest FILE`` additionally writes a SHA-256 over the ranking arrays
— exact, budget, and ivf, raw-index and served — with no timings and no
environment.  The CI determinism job runs the bench twice and fails on
any byte-level difference between the two digests, which is what makes
"approximate but deterministic" an enforced contract rather than a
docstring claim.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _harness import format_table, report  # noqa: E402

from repro.core.factors import FactorSet  # noqa: E402
from repro.core.tf_model import TaxonomyFactorModel  # noqa: E402
from repro.core.topk import top_k_rows  # noqa: E402
from repro.eval.recall import RecallCurve, sweep_recall  # noqa: E402
from repro.serving.index import SubtreeIndex  # noqa: E402
from repro.serving.service import RecommenderService  # noqa: E402
from repro.taxonomy.tree import Taxonomy  # noqa: E402
from repro.utils.config import TrainConfig  # noqa: E402

#: Acceptance floor for pruned/brute-force throughput (full scale).
MIN_SPEEDUP = 2.0
#: Acceptance floor for budget|ivf/brute-force throughput (full scale).
MIN_APPROX_SPEEDUP = 5.0
#: Acceptance floor for recall@k at the gate knobs (every mode).
MIN_RECALL = 0.95
#: Gate operating point: scan this fraction of the catalog (budget) /
#: of the cells (nprobe).  Also the first entry of the sweep grids.
GATE_FRACTION = 0.01
#: Budget sweep grid, as fractions of the catalog.
BUDGET_FRACTIONS = (0.01, 0.02, 0.05)
#: nprobe sweep grid, as fractions of the cell count.
NPROBE_FRACTIONS = (0.01, 0.02, 0.05)
#: Cell depth for the approximate index: level 2 = subcategory cells
#: (2k cells of 50 items at smoke scale, 10k cells of 100 at 1M).  The
#: finer cells make the Cauchy–Schwarz cell bounds sharp enough that a
#: 1% scan already recovers the exact top-10 on coherent factors.
APPROX_LEVEL = 2
#: Smoke catalog: 50 top categories x 40 subcategories x 50 leaves.
SMOKE_BRANCHING = (50, 40, 50)
#: Full catalog: 100 x 100 x 100 = the paper's 1M-item regime.
FULL_BRANCHING = (100, 100, 100)
FACTORS = 32
N_USERS = 2048

SEED = 4242


def _sizes(smoke: bool) -> Dict[str, int]:
    if smoke:
        return {
            "exact_rows": 256, "throughput_batch": 256, "rounds": 3,
            "k": 10, "recall_rows": 128, "identity_rows": 32,
            "approx_rounds": 3,
        }
    # Full mode serves a 1M-item catalog where the brute-force reference
    # ranks ~8 rows/sec on one core — row counts are sized so the brute
    # drains stay in the tens of seconds, not tens of minutes.
    return {
        "exact_rows": 256, "throughput_batch": 128, "rounds": 2,
        "k": 10, "recall_rows": 128, "identity_rows": 32,
        "approx_rounds": 2,
    }


def _catalog(branching: Tuple[int, int, int]) -> Taxonomy:
    """A balanced 3-level taxonomy with ``a*b*c`` leaves."""
    a, b, c = branching
    parent: List[int] = [-1]
    parent += [0] * a
    parent += np.repeat(np.arange(1, 1 + a), b).tolist()
    parent += np.repeat(np.arange(1 + a, 1 + a + a * b), c).tolist()
    taxonomy = Taxonomy(parent)
    assert taxonomy.n_items == a * b * c
    return taxonomy


def _factor_set(
    taxonomy: Taxonomy,
    branching: Tuple[int, int, int],
    rng: np.random.Generator,
) -> FactorSet:
    """Hierarchically coherent factors: ancestors dominate, leaves refine.

    This is the structure Eq. 1 training produces — items under one
    subtree share their ancestor offsets — and exactly what makes the
    per-subtree Cauchy–Schwarz bounds sharp.  Two distortions are baked
    in to stress the exactness gate: one whole subtree of *identical*
    leaf offsets (every item in it ties on every query) and one leaf
    chain duplicated into a different top-level category (cross-subtree
    score ties).
    """
    scale = np.where(taxonomy.level >= taxonomy.max_depth, 0.05, 0.3)
    scale = np.append(scale, 0.0)  # pad row
    w = rng.normal(0.0, 1.0, size=(taxonomy.n_nodes + 1, FACTORS))
    w *= scale[:, None]
    bias = rng.normal(0.0, 1.0, size=taxonomy.n_nodes + 1) * scale * 0.3

    # Within-subtree exact ties: every leaf under the first subcategory
    # shares one offset vector and bias, so all its items tie on every
    # query and the tie-break order alone decides the ranking there.
    a, b, _c = branching
    first_sub = taxonomy.nodes_of_items(taxonomy.subtree_items(1 + a))
    w[first_sub] = w[first_sub[0]]
    bias[first_sub] = bias[first_sub[0]]

    # Cross-subtree exact ties: mirror top category 1's entire offset
    # block onto top category 2, node for node.  The balanced layout
    # makes corresponding nodes a constant id apart, and elementwise
    # equal chains sum to bitwise-equal effective factors — thousands of
    # items tied across *different* subtrees (so merged from different
    # scan blocks).
    sub_a = np.arange(1 + a, 1 + a + b)
    leaf_a = taxonomy.nodes_of_items(taxonomy.subtree_items(1))
    w[2] = w[1]
    bias[2] = bias[1]
    w[sub_a + b] = w[sub_a]
    bias[sub_a + b] = bias[sub_a]
    w[leaf_a + leaf_a.size] = w[leaf_a]
    bias[leaf_a + leaf_a.size] = bias[leaf_a]

    user = rng.normal(0.0, 0.3, size=(N_USERS, FACTORS))
    return FactorSet.from_arrays(
        taxonomy, user=user, w=w, bias=bias,
        levels=taxonomy.max_depth + 1, init_scale=0.1,
    )


def _banned_rows(
    n_rows: int, n_items: int, rng: np.random.Generator
) -> List[np.ndarray]:
    """Per-row exclusions stressing the pad paths.

    Row 0 bans the whole catalog (an all--inf row), row 1 leaves only 3
    finite candidates (fewer than ``k``), the rest ban a random
    purchase-history-sized handful.
    """
    banned: List[np.ndarray] = [np.arange(n_items, dtype=np.int64)]
    if n_rows > 1:
        keep = np.array([7, n_items // 2 + 7, n_items - 1])
        banned.append(np.setdiff1d(np.arange(n_items, dtype=np.int64), keep))
    for _ in range(max(0, n_rows - 2)):
        banned.append(
            rng.choice(n_items, size=int(rng.integers(0, 120)), replace=False)
        )
    return banned[:n_rows]


def _model(taxonomy: Taxonomy, factor_set: FactorSet) -> TaxonomyFactorModel:
    model = TaxonomyFactorModel(taxonomy, TrainConfig(factors=FACTORS))
    model._factors = factor_set
    return model


# ----------------------------------------------------------------------
# (a) Bit-identical rankings, raw index and service pair
# ----------------------------------------------------------------------
def bench_exactness(
    sizes: Dict[str, int],
    taxonomy: Taxonomy,
    factor_set: FactorSet,
    rng: np.random.Generator,
) -> Dict[str, object]:
    n_items = taxonomy.n_items
    effective = factor_set.effective_items()
    bias = factor_set.bias_of_items()
    index = SubtreeIndex(effective, bias, taxonomy)
    k = sizes["k"]
    n_rows = sizes["exact_rows"]
    queries = rng.normal(0.0, 0.3, size=(n_rows, FACTORS))
    banned = _banned_rows(n_rows, n_items, rng)

    dense = queries @ effective.T + bias[None, :]
    for row, row_banned in enumerate(banned):
        if row_banned.size:
            dense[row, row_banned] = -np.inf
    brute = top_k_rows(dense, k)
    page = index.top_k(queries, k, banned=banned)

    # k far beyond the catalog width (padded everywhere) on a small slab.
    wide_brute = top_k_rows(dense[:8], n_items + 5)
    wide_page = index.top_k(queries[:8], n_items + 5, banned=banned[:8])
    del dense

    # The same contract through the serving front door.
    model = _model(taxonomy, factor_set)
    exact = RecommenderService(model, cache_size=0)
    pruned = RecommenderService(model, cache_size=0, retrieval="pruned")
    users = np.arange(min(N_USERS, n_rows), dtype=np.int64)
    served_exact = exact.recommend_batch(users, k=k)
    served_pruned = pruned.recommend_batch(users, k=k)

    return {
        "rows_checked": n_rows,
        "k": k,
        "index_level": index.level,
        "n_groups": index.n_groups,
        "raw_mismatches": int((page.items != brute).any(axis=1).sum()),
        "wide_k_mismatches": int((wide_page.items != wide_brute).any(axis=1).sum()),
        "service_mismatches": int(
            (served_pruned != served_exact).any(axis=1).sum()
        ),
        "all_banned_row_is_padded": bool((page.items[0] == -1).all()),
        "short_row_finite_slots": int((page.items[1] >= 0).sum()),
        "fraction_scored": page.nodes_scored / float(n_rows * n_items),
        "_arrays": (page.items, brute, wide_page.items, served_pruned),
    }


# ----------------------------------------------------------------------
# (b) Pruned vs brute-force serving throughput
# ----------------------------------------------------------------------
def _request_stream(sizes: Dict[str, int]) -> List[np.ndarray]:
    batch, rounds = sizes["throughput_batch"], sizes["rounds"]
    return [
        np.arange(start, start + batch, dtype=np.int64) % N_USERS
        for start in range(0, batch * rounds, batch)
    ]


def _drain(
    service: RecommenderService, batches: List[np.ndarray], k: int
) -> float:
    started = time.perf_counter()
    for users in batches:
        service.recommend_batch(users, k=k)
    return time.perf_counter() - started


def bench_throughput(
    sizes: Dict[str, int], taxonomy: Taxonomy, factor_set: FactorSet
) -> Dict[str, float]:
    model = _model(taxonomy, factor_set)
    k = sizes["k"]
    batches = _request_stream(sizes)
    served = sum(b.size for b in batches)

    exact = RecommenderService(model, cache_size=0)
    brute_seconds = _drain(exact, batches, k)
    pruned_service = RecommenderService(model, cache_size=0, retrieval="pruned")
    pruned_seconds = _drain(pruned_service, batches, k)
    return {
        "requests": served,
        "k": k,
        "brute_seconds": brute_seconds,
        "brute_users_per_sec": served / brute_seconds,
        "pruned_seconds": pruned_seconds,
        "pruned_users_per_sec": served / pruned_seconds,
        "speedup": brute_seconds / pruned_seconds,
        "pruned_fraction_scored": (
            pruned_service.stats.nodes_scored
            / float(exact.stats.nodes_scored)
        ),
    }


# ----------------------------------------------------------------------
# (c) Approximate tiers: knob-extreme identity, recall curve, speedup
# ----------------------------------------------------------------------
def bench_approx(
    sizes: Dict[str, int],
    taxonomy: Taxonomy,
    factor_set: FactorSet,
    rng: np.random.Generator,
    brute_users_per_sec: float,
) -> Dict[str, object]:
    """Measure the budget/ivf tiers against the exact reference.

    Returns identity-mismatch counts (binding gates), the full
    recall-vs-throughput sweep as a :class:`RecallCurve`, and the served
    throughput of both modes at the gate knobs relative to the
    brute-force service measured by :func:`bench_throughput`.
    """
    n_items = taxonomy.n_items
    effective = factor_set.effective_items()
    bias = factor_set.bias_of_items()
    index = SubtreeIndex(
        effective, bias, taxonomy, level=APPROX_LEVEL, approx=True
    )
    k = sizes["k"]
    gate_budget = max(1, round(GATE_FRACTION * n_items))
    gate_nprobe = max(1, round(GATE_FRACTION * index.n_cells))

    # Knob-extreme identity: budget=None / nprobe=None must reproduce the
    # exact ranking bit for bit.  Rankings (items), not raw scores: the
    # exhaustive approximate scan visits items through per-cell gather
    # GEMMs whose BLAS tail kernels can differ from the exact path's
    # fixed-width blocks by 1 ULP — the same tolerance the exact-vs-brute
    # gates above already encode by comparing rankings.
    n_identity = sizes["identity_rows"]
    id_queries = rng.normal(0.0, 0.3, size=(n_identity, FACTORS))
    id_banned = _banned_rows(n_identity, n_items, rng)
    exact_page = index.top_k(id_queries, k, banned=id_banned)
    full_budget = index.top_k_budget(id_queries, k, banned=id_banned)
    full_probe = index.top_k_ivf(id_queries, k, banned=id_banned)

    def _mismatches(page) -> int:
        return int((page.items != exact_page.items).any(axis=1).sum())

    # Recall-vs-throughput sweep; the gate knobs are the grids' first
    # entries, so their recalls come straight off the curve.
    n_rows = sizes["recall_rows"]
    queries = rng.normal(0.0, 0.3, size=(n_rows, FACTORS))
    banned = _banned_rows(n_rows, n_items, rng)
    budgets = [max(1, round(f * n_items)) for f in BUDGET_FRACTIONS]
    nprobes = [max(1, round(f * index.n_cells)) for f in NPROBE_FRACTIONS]
    assert budgets[0] == gate_budget and nprobes[0] == gate_nprobe
    curve = sweep_recall(
        index, queries, k=k, budgets=budgets, nprobes=nprobes, banned=banned
    )
    recall_of = {(p.mode, p.knob): p.recall for p in curve.points}
    budget_recall = recall_of[("budget", gate_budget)]
    ivf_recall = recall_of[("ivf", gate_nprobe)]

    # Gate-knob ranking pages for the determinism digest.
    budget_page = index.top_k_budget(queries, k, banned=banned, budget=gate_budget)
    ivf_page = index.top_k_ivf(queries, k, banned=banned, nprobe=gate_nprobe)

    # Served throughput at the gate knobs, against the brute-force
    # users/sec measured on the same machine moments earlier.
    model = _model(taxonomy, factor_set)
    batches = _request_stream(
        {**sizes, "rounds": sizes["approx_rounds"]}
    )
    served = sum(b.size for b in batches)
    budget_service = RecommenderService(
        model, cache_size=0, retrieval="budget", budget=gate_budget,
        index_level=APPROX_LEVEL,
    )
    budget_seconds = _drain(budget_service, batches, k)
    ivf_service = RecommenderService(
        model, cache_size=0, retrieval="ivf", nprobe=gate_nprobe,
        index_level=APPROX_LEVEL,
    )
    ivf_seconds = _drain(ivf_service, batches, k)
    served_budget = budget_service.recommend_batch(batches[0], k=k)
    served_ivf = ivf_service.recommend_batch(batches[0], k=k)

    return {
        "k": k,
        "n_cells": index.n_cells,
        "level": index.level,
        "gate_budget": gate_budget,
        "gate_nprobe": gate_nprobe,
        "identity_rows": n_identity,
        "budget_identity_mismatches": _mismatches(full_budget),
        "ivf_identity_mismatches": _mismatches(full_probe),
        "budget_recall": budget_recall,
        "ivf_recall": ivf_recall,
        "requests": served,
        "budget_users_per_sec": served / budget_seconds,
        "ivf_users_per_sec": served / ivf_seconds,
        "budget_speedup": (served / budget_seconds) / brute_users_per_sec,
        "ivf_speedup": (served / ivf_seconds) / brute_users_per_sec,
        "_curve": curve,
        "_arrays": (
            budget_page.items, budget_page.scores,
            ivf_page.items, ivf_page.scores,
            served_budget, served_ivf,
        ),
    }


# ----------------------------------------------------------------------
# Reporting / gates
# ----------------------------------------------------------------------
def _digest(arrays) -> str:
    """SHA-256 over the ranking arrays only — stable across runs."""
    payload = hashlib.sha256()
    for array in arrays:
        array = np.ascontiguousarray(array)
        payload.update(str(array.shape).encode())
        payload.update(str(array.dtype).encode())
        payload.update(array.tobytes())
    return payload.hexdigest()


def run(smoke: bool) -> Dict[str, object]:
    sizes = _sizes(smoke)
    branching = SMOKE_BRANCHING if smoke else FULL_BRANCHING
    rng = np.random.default_rng(SEED)
    taxonomy = _catalog(branching)
    n_items = taxonomy.n_items
    factor_set = _factor_set(taxonomy, branching, rng)
    exactness = bench_exactness(sizes, taxonomy, factor_set, rng)
    throughput = bench_throughput(sizes, taxonomy, factor_set)
    approx = bench_approx(
        sizes, taxonomy, factor_set, rng, throughput["brute_users_per_sec"]
    )
    curve: RecallCurve = approx.pop("_curve")
    digest = _digest(tuple(exactness.pop("_arrays")) + tuple(approx.pop("_arrays")))

    speedup_gate = f">= {MIN_SPEEDUP}" if not smoke else "(smoke: recorded)"
    approx_gate = f">= {MIN_APPROX_SPEEDUP}" if not smoke else "(smoke: recorded)"
    table = format_table(
        f"index: exact + approximate retrieval over {n_items} items",
        ["measure", "value", "gate"],
        [
            ["index groups (level)",
             f"{exactness['n_groups']} ({exactness['index_level']})", ""],
            ["raw top-k mismatches", exactness["raw_mismatches"], "== 0"],
            ["k > catalog mismatches", exactness["wide_k_mismatches"], "== 0"],
            ["service top-k mismatches", exactness["service_mismatches"], "== 0"],
            ["budget=None identity mismatches",
             approx["budget_identity_mismatches"], "== 0"],
            ["nprobe=None identity mismatches",
             approx["ivf_identity_mismatches"], "== 0"],
            ["fraction of catalog scored", exactness["fraction_scored"], ""],
            [f"budget recall@{sizes['k']} (budget={approx['gate_budget']})",
             approx["budget_recall"], f">= {MIN_RECALL}"],
            [f"ivf recall@{sizes['k']} (nprobe={approx['gate_nprobe']})",
             approx["ivf_recall"], f">= {MIN_RECALL}"],
            ["brute-force users/sec", throughput["brute_users_per_sec"], ""],
            ["pruned users/sec", throughput["pruned_users_per_sec"], ""],
            ["pruned speedup", throughput["speedup"], speedup_gate],
            ["budget users/sec", approx["budget_users_per_sec"], ""],
            ["budget speedup", approx["budget_speedup"], approx_gate],
            ["ivf users/sec", approx["ivf_users_per_sec"], ""],
            ["ivf speedup", approx["ivf_speedup"], approx_gate],
        ],
        note="exactness + identity + recall gates bind in every mode; "
             "the speedup gates at full scale",
    )
    payload: Dict[str, object] = {
        "mode": "smoke" if smoke else "full",
        "sizes": sizes,
        "catalog": {
            "n_items": n_items, "branching": list(branching),
            "factors": FACTORS, "seed": SEED,
        },
        "exactness": exactness,
        "throughput": throughput,
        "approx": approx,
        "recall_curve": curve.as_dict(),
        "digest": digest,
        "gates": {
            "min_speedup": MIN_SPEEDUP,
            "min_approx_speedup": MIN_APPROX_SPEEDUP,
            "min_recall": MIN_RECALL,
            "gate_fraction": GATE_FRACTION,
        },
    }
    report("index", table, payload)
    print(table)

    failures = []
    if exactness["raw_mismatches"]:
        failures.append(
            f"{exactness['raw_mismatches']} pruned rows diverge from the "
            f"brute-force ranking"
        )
    if exactness["wide_k_mismatches"]:
        failures.append("k > catalog rows diverge from brute force")
    if exactness["service_mismatches"]:
        failures.append(
            f"{exactness['service_mismatches']} pruned service rows diverge "
            f"from the exact service"
        )
    if not exactness["all_banned_row_is_padded"]:
        failures.append("fully-banned row leaked non-pad items")
    if exactness["short_row_finite_slots"] != 3:
        failures.append(
            f"row with 3 finite candidates returned "
            f"{exactness['short_row_finite_slots']} items"
        )
    if approx["budget_identity_mismatches"]:
        failures.append(
            f"{approx['budget_identity_mismatches']} budget=None rows "
            f"diverge from the exact ranking"
        )
    if approx["ivf_identity_mismatches"]:
        failures.append(
            f"{approx['ivf_identity_mismatches']} nprobe=None rows "
            f"diverge from the exact ranking"
        )
    for mode, recall in (
        ("budget", approx["budget_recall"]), ("ivf", approx["ivf_recall"])
    ):
        if recall < MIN_RECALL:
            failures.append(
                f"{mode} recall@{sizes['k']} {recall:.4f} below the "
                f"{MIN_RECALL} floor at the gate knob"
            )
    if not smoke:
        if throughput["speedup"] < MIN_SPEEDUP:
            failures.append(
                f"pruned speedup {throughput['speedup']:.2f}x below the "
                f"{MIN_SPEEDUP}x floor"
            )
        for mode, speedup in (
            ("budget", approx["budget_speedup"]), ("ivf", approx["ivf_speedup"])
        ):
            if speedup < MIN_APPROX_SPEEDUP:
                failures.append(
                    f"{mode} speedup {speedup:.2f}x below the "
                    f"{MIN_APPROX_SPEEDUP}x floor"
                )
    payload["failures"] = failures
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI sizes (100k catalog); the throughput gates are only recorded",
    )
    parser.add_argument(
        "--out", default="BENCH_index.json",
        help="where to write the JSON payload (default: ./BENCH_index.json)",
    )
    parser.add_argument(
        "--curve-out", default=None, metavar="FILE",
        help="also write the recall-vs-throughput curve alone here "
             "(the CI artifact consumed by capacity planning)",
    )
    parser.add_argument(
        "--digest", default=None, metavar="FILE",
        help="also write the SHA-256 ranking digest here (for the CI "
             "determinism job: two runs must produce identical bytes "
             "across exact, budget, and ivf rankings)",
    )
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, default=float) + "\n")
    print(f"wrote {out}")
    if args.curve_out:
        Path(args.curve_out).write_text(
            json.dumps(payload["recall_curve"], indent=2, default=float) + "\n"
        )
        print(f"wrote {args.curve_out}")
    if args.digest:
        Path(args.digest).write_text(str(payload["digest"]) + "\n")
        print(f"wrote {args.digest}")
    if payload["failures"]:
        for failure in payload["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
