"""Core-operation throughput (proper multi-round pytest benchmarks).

Unlike the figure benches (one-shot accuracy sweeps), these measure the
library's hot paths repeatedly: SGD epochs, exact vs. cascaded scoring,
context construction, and fold-in.  Regressions here are performance bugs
even when every figure still reproduces.
"""

import numpy as np
import pytest
from _harness import QUICK, bench_dataset, bench_split

from repro.core.cascade import uniform_cascade
from repro.core.factors import FactorSet
from repro.core.folding import fold_in_user
from repro.core.sgd import SGDTrainer
from repro.core.tf_model import TaxonomyFactorModel
from repro.train import train_model
from repro.utils.config import TrainConfig

ROUNDS = 3 if QUICK else 5


@pytest.fixture(scope="module")
def data():
    return bench_dataset()


@pytest.fixture(scope="module")
def split():
    return bench_split()


@pytest.fixture(scope="module")
def tf_model(data, split):
    config = TrainConfig(factors=16, epochs=4, taxonomy_levels=4, seed=0)
    return train_model(TaxonomyFactorModel(data.taxonomy, config), split.train)


def _trainer(data, split, levels, markov, sibling=0.0):
    config = TrainConfig(
        factors=16,
        epochs=1,
        taxonomy_levels=levels,
        markov_order=markov,
        sibling_ratio=sibling,
        seed=0,
    )
    fs = FactorSet(
        split.train.n_users,
        data.taxonomy,
        16,
        levels,
        with_next=markov > 0,
        seed=0,
    )
    return SGDTrainer(fs, split.train, config)


class TestTrainingThroughput:
    def test_epoch_mf(self, benchmark, data, split):
        trainer = _trainer(data, split, levels=1, markov=0)
        stats = benchmark.pedantic(
            trainer._run_epoch, args=(0,), rounds=ROUNDS, iterations=1
        )
        assert stats.n_examples == split.train.n_purchases

    def test_epoch_tf(self, benchmark, data, split):
        trainer = _trainer(data, split, levels=4, markov=0)
        stats = benchmark.pedantic(
            trainer._run_epoch, args=(0,), rounds=ROUNDS, iterations=1
        )
        assert stats.n_examples == split.train.n_purchases

    def test_epoch_tf_sibling(self, benchmark, data, split):
        trainer = _trainer(data, split, levels=4, markov=0, sibling=0.5)
        stats = benchmark.pedantic(
            trainer._run_epoch, args=(0,), rounds=ROUNDS, iterations=1
        )
        assert stats.n_sibling_examples > 0

    def test_epoch_tf_markov(self, benchmark, data, split):
        trainer = _trainer(data, split, levels=4, markov=1)
        stats = benchmark.pedantic(
            trainer._run_epoch, args=(0,), rounds=ROUNDS, iterations=1
        )
        assert stats.n_examples == split.train.n_purchases


class TestInferenceThroughput:
    def test_exact_score_matrix_100_users(self, benchmark, tf_model):
        users = np.arange(100)
        scores = benchmark.pedantic(
            tf_model.score_matrix, args=(users,), rounds=ROUNDS, iterations=1
        )
        assert scores.shape == (100, tf_model.n_items)

    def test_cascade_rank_one_user(self, benchmark, tf_model):
        cascade = uniform_cascade(tf_model, 0.3)
        result = benchmark.pedantic(
            cascade.rank, args=(0,), rounds=ROUNDS, iterations=3
        )
        assert result.nodes_scored < tf_model.n_items

    def test_recommend_top10(self, benchmark, tf_model):
        top = benchmark.pedantic(
            tf_model.recommend, args=(0,), kwargs={"k": 10},
            rounds=ROUNDS, iterations=3,
        )
        assert top.size == 10

    def test_fold_in_new_user(self, benchmark, tf_model, data):
        history = [data.log.basket(0, 0)]
        vector = benchmark.pedantic(
            fold_in_user,
            args=(tf_model, history),
            kwargs={"steps": 100, "seed": 0},
            rounds=ROUNDS,
            iterations=1,
        )
        assert vector.shape == (16,)
