"""Figure 7 — taxonomy effect studies.

Paper (Sec. 7.4.2/7.4.3): (a) AUC rises with taxonomy depth U; (b) the
taxonomy's benefit is largest on sparse data; (c) TF ranks cold-start items
far better than MF; (d) sibling training adds ~3% AUC; (e) factors cluster
around their taxonomy ancestors; (f) higher Markov order improves AUC.
"""

import numpy as np
from _harness import (
    DEFAULT_FACTORS,
    FACTOR_SIZES,
    STRICT,
    bench_split,
    format_table,
    report,
    run_once,
    trained_model,
)

from repro.eval.protocol import evaluate_cold_start, evaluate_model
from repro.viz.projection import taxonomy_clustering_report


def test_fig7a_taxonomy_depth(benchmark):
    """Isolates the taxonomyUpdateLevels effect: sibling training is off
    for every depth so the only difference between the models is U."""
    split = bench_split()

    def experiment():
        out = {}
        for levels in (1, 2, 3, 4):
            model = trained_model(levels=levels, markov=0, sibling=0.0)
            out[levels] = evaluate_model(model, split).auc
        return out

    aucs = run_once(benchmark, experiment)
    label = {1: "MF(0)", 2: "TF(2,0)", 3: "TF(3,0)", 4: "TF(4,0)"}
    rows = [(label[u], aucs[u]) for u in (1, 2, 3, 4)]
    table = format_table(
        "Fig 7(a): effect of taxonomy level on AUC",
        ["model", "AUC"],
        rows,
        note="paper shape: AUC increases as more levels are incorporated",
    )
    report("fig7a", table, {"auc_by_levels": aucs})
    if STRICT:
        assert aucs[4] > aucs[1]
        assert aucs[3] >= aucs[2] - 0.02  # monotone within noise


def test_fig7b_sparsity(benchmark):
    def experiment():
        out = {}
        for mu in (0.25, 0.5, 0.75):
            split = bench_split(mu)
            mf = evaluate_model(trained_model(1, 0, mu=mu), split).auc
            tf = evaluate_model(trained_model(4, 0, mu=mu), split).auc
            out[mu] = (mf, tf)
        return out

    results = run_once(benchmark, experiment)
    rows = [
        (f"{mu} {'(SPARSE)' if mu == 0.25 else '(DENSE)' if mu == 0.75 else ''}",
         mf, tf, tf - mf)
        for mu, (mf, tf) in sorted(results.items())
    ]
    table = format_table(
        "Fig 7(b): study of sparsity (split fraction mu)",
        ["mu", "MF(0)", "TF(4,0)", "gain"],
        rows,
        note="paper shape: TF wins everywhere; the gain is largest when sparse",
    )
    report(
        "fig7b",
        table,
        {str(mu): {"mf": mf, "tf": tf} for mu, (mf, tf) in results.items()},
    )
    gains = {mu: tf - mf for mu, (mf, tf) in results.items()}
    if STRICT:
        assert all(g > 0 for g in gains.values())
        assert gains[0.25] > gains[0.75]


def test_fig7c_cold_start(benchmark):
    split = bench_split()

    def experiment():
        mf_scores, tf_scores = {}, {}
        for k in FACTOR_SIZES:
            mf_scores[k] = evaluate_cold_start(
                trained_model(1, 0, factors=k), split
            ).score
            tf_scores[k] = evaluate_cold_start(
                trained_model(4, 0, factors=k), split
            ).score
        return mf_scores, tf_scores

    mf, tf = run_once(benchmark, experiment)
    rows = [(k, mf[k], tf[k]) for k in FACTOR_SIZES]
    table = format_table(
        "Fig 7(c): cold start — normalized rank score of unseen items",
        ["factors", "MF(0)", "TF(4,0)"],
        rows,
        note=(
            "score = 1 - (rank-1)/(n-1), higher is better; "
            "paper shape: TF above MF for almost all factor sizes"
        ),
    )
    report("fig7c", table, {"mf0": mf, "tf40": tf})
    if STRICT:
        wins = sum(1 for k in FACTOR_SIZES if tf[k] > mf[k])
        assert wins >= len(FACTOR_SIZES) - 1  # "almost all factor sizes"


def test_fig7d_sibling_training(benchmark):
    """Sibling training is the paper's convergence accelerator (Sec. 1:
    naive SGD "requires a large number of iterations").  It is therefore
    evaluated at the paper's data-sparse regime — a limited epoch budget —
    where it delivers the Fig. 7(d) gain; at full convergence on a small
    item universe the extra node-level negatives cost a little accuracy
    (also reported, in the interest of honesty)."""
    from _harness import EARLY_EPOCHS, EPOCHS

    split = bench_split()

    def experiment():
        with_sib, without = {}, {}
        for k in FACTOR_SIZES:
            with_sib[k] = evaluate_model(
                trained_model(4, 0, factors=k, sibling=0.5, epochs=EARLY_EPOCHS),
                split,
            ).auc
            without[k] = evaluate_model(
                trained_model(4, 0, factors=k, sibling=0.0, epochs=EARLY_EPOCHS),
                split,
            ).auc
        converged = {
            "sibling": evaluate_model(trained_model(4, 0, sibling=0.5), split).auc,
            "no_sibling": evaluate_model(
                trained_model(4, 0, sibling=0.0), split
            ).auc,
        }
        return with_sib, without, converged

    with_sib, without, converged = run_once(benchmark, experiment)
    rows = [
        (k, without[k], with_sib[k], with_sib[k] - without[k])
        for k in FACTOR_SIZES
    ]
    table = format_table(
        f"Fig 7(d): sibling-based training at {EARLY_EPOCHS} epochs "
        f"(the paper's limited-iteration regime)",
        ["factors", "no sibling", "sibling", "gain"],
        rows,
        note=(
            "paper shape: sibling training improves AUC (paper: ~3%).  At "
            f"full convergence ({EPOCHS} epochs, K={20}) the picture flips: "
            f"no-sibling={converged['no_sibling']:.4f} vs "
            f"sibling={converged['sibling']:.4f} — see EXPERIMENTS.md"
        ),
    )
    report(
        "fig7d",
        table,
        {"sibling": with_sib, "no_sibling": without, "converged": converged},
    )
    if STRICT:
        mean_gain = np.mean([with_sib[k] - without[k] for k in FACTOR_SIZES])
        assert mean_gain > 0.005  # accelerates under-trained models


def test_fig7e_factor_clustering(benchmark):
    model = trained_model(4, 0)

    def experiment():
        # All levels, items included: the offset-magnitude claim is about
        # moving down the whole tree.
        return taxonomy_clustering_report(model.factor_set)

    rep = run_once(benchmark, experiment)
    rows = [
        ("parent-child distance", rep.parent_child_distance),
        ("random-pair distance", rep.random_pair_distance),
        ("clustering ratio", rep.clustering_ratio),
    ] + [
        (f"mean |w| at level {level}", norm)
        for level, norm in sorted(rep.offset_norm_by_level.items())
    ]
    table = format_table(
        "Fig 7(e): factor-space clustering around taxonomy ancestors",
        ["quantity", "value"],
        rows,
        note=(
            "paper shape: nodes sit near their ancestors (ratio << 1) and "
            "offset magnitudes shrink with depth"
        ),
    )
    report(
        "fig7e",
        table,
        {
            "parent_child": rep.parent_child_distance,
            "random_pair": rep.random_pair_distance,
            "ratio": rep.clustering_ratio,
            "offset_norms": rep.offset_norm_by_level,
        },
    )
    if STRICT:
        assert rep.clustering_ratio < 0.9
        # Offsets shrink from the upper categories to the item level (in
        # our reproduction the interior levels are roughly flat; the big
        # drop is category -> item, which is what justifies cascaded
        # pruning at the leaf level).
        levels = sorted(rep.offset_norm_by_level)
        assert (
            rep.offset_norm_by_level[levels[0]]
            > rep.offset_norm_by_level[levels[-1]]
        )


def test_fig7f_markov_order(benchmark):
    split = bench_split()

    def experiment():
        return {
            order: evaluate_model(trained_model(4, order), split).auc
            for order in (0, 1, 2, 3)
        }

    aucs = run_once(benchmark, experiment)
    rows = [(f"TF(4,{b})", aucs[b]) for b in (0, 1, 2, 3)]
    table = format_table(
        "Fig 7(f): effect of Markov-chain order on AUC",
        ["model", "AUC"],
        rows,
        note="paper shape: AUC improves as the order increases (Fig. 7f plots 1..3)",
    )
    report("fig7f", table, {"auc_by_order": aucs})
    if STRICT:
        assert aucs[3] > aucs[0]
        assert aucs[2] >= aucs[1] - 0.02
