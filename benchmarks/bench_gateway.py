"""Gateway benchmark: coalesced throughput, p99 SLO, swap-under-load.

Three acceptance claims of ``repro.gateway`` are measured over real
sockets with the closed-loop :class:`~repro.gateway.LoadGenerator`
(every simulated client waits for its response before sending the next
request, so offered load backs off the way real clients do):

* **coalescing throughput** — sustained QPS of a concurrent client
  fleet vs one sequential single-user HTTP client against the same
  gateway; at full scale the coalesced fleet must reach **>= 3x** the
  sequential number and **>= 2000 QPS** outright, with **p99 <= 50 ms**
  socket-to-socket (the p99 gate binds in smoke mode too — the latency
  contract prices the coalescing delay, not just the scan);
* **admission under a flash crowd** — a deliberately under-provisioned
  gateway (``max_inflight=4``) is hit with a ``flash``-shaped fleet;
  shed requests (429 + Retry-After) are recorded, and every admitted
  request must still succeed;
* **hot swap under load** — client coroutines hammer the gateway while
  :meth:`~repro.gateway.Gateway.swap_model` publishes alternating model
  snapshots; every ``200`` response's rows must match the reference
  service for the generation it claims (**0 stale**) and no request may
  fail or be dropped (**0 dropped**).

Like the other subsystem benches this is a plain script so CI can run
it directly and archive its JSON payload::

    PYTHONPATH=src python benchmarks/bench_gateway.py --smoke --out BENCH_gateway.json

Full-scale (no ``--smoke``) enforces the QPS and 3x gates; smoke mode
records throughput but gates only p99 and the swap-coherence claims
(CI boxes do not promise idle cores).  Tables land in
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _harness import format_table, report  # noqa: E402

from repro import (  # noqa: E402
    OnlineUpdater,
    PurchaseEvent,
    RecommenderService,
    SyntheticConfig,
    TaxonomyFactorModel,
    TrainConfig,
    generate_dataset,
    train_test_split,
)
from repro.gateway import Gateway, GatewayConfig, LoadGenerator  # noqa: E402
from repro.gateway.wire import encode_request, read_response  # noqa: E402
from repro.train import train_model  # noqa: E402
from repro.utils.rng import derive_seed, ensure_rng  # noqa: E402

#: Acceptance floor for coalesced throughput (full scale).
MIN_QPS = 2000.0
#: Acceptance ceiling for client-observed p99 latency (all modes).
MAX_P99_MS = 50.0
#: Acceptance floor for coalesced vs sequential throughput (full scale).
MIN_COALESCE_SPEEDUP = 3.0

DATA_SEED = 1234
SPLIT_SEED = 99
TRAIN_SEED = 77
LOAD_SEED = 4242
SWAP_SEED = 5151


def _sizes(smoke: bool) -> Dict[str, float]:
    if smoke:
        return {
            "n_users": 800, "epochs": 3, "factors": 8,
            "duration_s": 1.0, "concurrency": 16,
            "flash_duration_s": 0.8, "flash_concurrency": 16,
            "swap_rounds": 4, "swap_clients": 4, "probe_users": 48,
        }
    return {
        "n_users": 4000, "epochs": 10, "factors": 16,
        "duration_s": 4.0, "concurrency": 32,
        "flash_duration_s": 2.0, "flash_concurrency": 32,
        "swap_rounds": 10, "swap_clients": 8, "probe_users": 64,
    }


def _trained(sizes: Dict[str, float]):
    config = SyntheticConfig(
        n_users=int(sizes["n_users"]), mean_transactions=5.0, seed=DATA_SEED
    )
    data = generate_dataset(config)
    split = train_test_split(data.log, mu=0.5, seed=SPLIT_SEED)
    model = train_model(
        TaxonomyFactorModel(
            data.taxonomy,
            TrainConfig(
                factors=int(sizes["factors"]), epochs=int(sizes["epochs"]),
                sibling_ratio=0.5, seed=TRAIN_SEED,
            ),
        ),
        split.train,
    )
    return data, split, model


class _GatewayHost:
    """Run a :class:`Gateway` on a dedicated background event loop.

    The benchmark's own asyncio programs (the load generator, the swap
    storm clients) run in the main thread, so the gateway needs its own
    loop — exactly the topology of a real deployment, where the server
    and its clients never share a scheduler.
    """

    def __init__(self, backend, config: GatewayConfig):
        self.gateway = Gateway(backend, config)
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._done: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "_GatewayHost":
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("gateway failed to start within 30s")
        return self

    def _serve(self) -> None:
        async def run() -> None:
            self.loop = asyncio.get_running_loop()
            self._done = asyncio.Event()
            async with self.gateway:
                self._ready.set()
                await self._done.wait()

        asyncio.run(run())

    def swap(self, model) -> int:
        """Publish *model* through the gateway's drain from any thread."""
        future = asyncio.run_coroutine_threadsafe(
            self.gateway.swap_model(model), self.loop
        )
        return future.result(timeout=30.0)

    def __exit__(self, *exc) -> None:
        self.loop.call_soon_threadsafe(self._done.set)
        self._thread.join(timeout=30.0)


def _drive(
    port: int,
    n_users: int,
    duration_s: float,
    concurrency: int,
    seed: int,
    shape: str = "constant",
):
    generator = LoadGenerator(
        "127.0.0.1",
        port,
        n_users=n_users,
        duration_s=duration_s,
        concurrency=concurrency,
        shape=shape,
        seed=seed,
    )
    return asyncio.run(generator.run())


# ----------------------------------------------------------------------
# (a) Coalesced fleet vs sequential single-user HTTP client
# ----------------------------------------------------------------------
def bench_throughput(sizes: Dict[str, float], split, model) -> Dict[str, float]:
    # cache_size=0 so repeated zipfian users measure the serving path,
    # not the query cache.
    service = RecommenderService(model, history_log=split.train, cache_size=0)
    with _GatewayHost(service, GatewayConfig()) as hosted:
        port = hosted.gateway.port
        sequential = _drive(
            port, model.n_users, float(sizes["duration_s"]), 1,
            derive_seed(LOAD_SEED, 1),
        )
        coalesced = _drive(
            port, model.n_users, float(sizes["duration_s"]),
            int(sizes["concurrency"]), derive_seed(LOAD_SEED, 2),
        )
    return {
        "sequential_qps": sequential.qps,
        "sequential_p99_ms": sequential.p99_ms,
        "sequential_errors": sequential.errors,
        "coalesced_concurrency": int(sizes["concurrency"]),
        "coalesced_qps": coalesced.qps,
        "coalesced_p50_ms": coalesced.p50_ms,
        "coalesced_p99_ms": coalesced.p99_ms,
        "coalesced_errors": coalesced.errors,
        "coalesced_requests": coalesced.requests,
        "speedup": coalesced.qps / sequential.qps if sequential.qps else 0.0,
    }


# ----------------------------------------------------------------------
# (b) Admission control under a flash crowd
# ----------------------------------------------------------------------
def bench_admission(sizes: Dict[str, float], split, model) -> Dict[str, float]:
    service = RecommenderService(model, history_log=split.train, cache_size=0)
    config = GatewayConfig(max_inflight=4, max_queued=8)
    with _GatewayHost(service, config) as hosted:
        flash = _drive(
            hosted.gateway.port, model.n_users,
            float(sizes["flash_duration_s"]),
            int(sizes["flash_concurrency"]),
            derive_seed(LOAD_SEED, 3), shape="flash",
        )
    return {
        "max_inflight": config.max_inflight,
        "concurrency": int(sizes["flash_concurrency"]),
        "requests": flash.requests,
        "ok": flash.ok,
        "shed": flash.shed,
        "errors": flash.errors,
        "ok_qps": flash.qps,
        "p99_ms": flash.p99_ms,
    }


# ----------------------------------------------------------------------
# (c) Hot swap under load: 0 stale, 0 dropped
# ----------------------------------------------------------------------
def bench_swap_under_load(
    sizes: Dict[str, float], split, model
) -> Dict[str, object]:
    updater = OnlineUpdater(model, steps=4, seed=0)
    updater.apply_events(
        [PurchaseEvent(u, (u % model.n_items,)) for u in range(64)]
    )
    snapshot = updater.snapshot()
    candidates = [model, snapshot]
    users = np.arange(int(sizes["probe_users"]), dtype=np.int64)
    references = [
        RecommenderService(model, history_log=split.train),
        RecommenderService(snapshot, history_log=snapshot._train_log),
    ]
    # generation g serves candidates[g % 2]; rows are deterministic, so
    # a response is stale iff it pairs rows with the wrong generation.
    expected = [ref.recommend_batch(users, k=10) for ref in references]

    digest = hashlib.sha256()
    for array in expected:
        digest.update(str(array.shape).encode())
        digest.update(np.ascontiguousarray(array).tobytes())

    service = RecommenderService(model, history_log=split.train)
    outcomes: List[tuple] = []  # (user, status, generation, items)
    transport_errors = [0]

    with _GatewayHost(service, GatewayConfig()) as hosted:
        port = hosted.gateway.port

        async def storm() -> float:
            stop = asyncio.Event()

            async def client(index: int) -> None:
                rng = ensure_rng(derive_seed(SWAP_SEED, index))
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                try:
                    while not stop.is_set():
                        user = int(users[int(rng.integers(0, users.size))])
                        body = json.dumps({"user": user, "k": 10}).encode()
                        try:
                            writer.write(
                                encode_request("POST", "/v1/recommend", body)
                            )
                            await writer.drain()
                            response = await read_response(reader)
                        except (OSError, asyncio.IncompleteReadError):
                            # a dropped connection is a dropped request —
                            # the gate counts it; reconnect and continue
                            transport_errors[0] += 1
                            writer.close()
                            reader, writer = await asyncio.open_connection(
                                "127.0.0.1", port
                            )
                            continue
                        if response.status == 200:
                            payload = response.json()
                            outcomes.append((
                                user, 200, int(payload["generation"]),
                                list(payload["items"]),
                            ))
                        else:
                            outcomes.append(
                                (user, response.status, -1, None)
                            )
                finally:
                    writer.close()

            async def swap_storm() -> None:
                loop = asyncio.get_running_loop()
                for round_ in range(int(sizes["swap_rounds"])):
                    await asyncio.sleep(0.02)
                    await loop.run_in_executor(
                        None, hosted.swap, candidates[(round_ + 1) % 2]
                    )
                stop.set()

            started = time.perf_counter()
            await asyncio.gather(
                swap_storm(),
                *(client(i) for i in range(int(sizes["swap_clients"]))),
            )
            return time.perf_counter() - started

        swap_seconds = asyncio.run(storm())
        final_generation = int(service.generation)

    served = sum(1 for _, status, _, _ in outcomes if status == 200)
    stale = sum(
        1
        for user, status, generation, items in outcomes
        if status == 200 and items != expected[generation % 2][user].tolist()
    )
    dropped = transport_errors[0] + sum(
        1 for _, status, _, _ in outcomes if status != 200
    )
    return {
        "swaps": int(sizes["swap_rounds"]),
        "clients": int(sizes["swap_clients"]),
        "served": served,
        "stale_responses": stale,
        "dropped_requests": dropped,
        "final_generation": final_generation,
        "swap_seconds": swap_seconds,
        "served_per_sec": served / swap_seconds if swap_seconds else 0.0,
        # SHA-256 over the two reference ranking arrays — no timings, no
        # ports — so two same-seed runs must produce identical bytes.
        "digest": digest.hexdigest(),
    }


# ----------------------------------------------------------------------
# Reporting / gates
# ----------------------------------------------------------------------
def run(smoke: bool) -> Dict[str, object]:
    sizes = _sizes(smoke)
    _data, split, model = _trained(sizes)
    throughput = bench_throughput(sizes, split, model)
    admission = bench_admission(sizes, split, model)
    swap = bench_swap_under_load(sizes, split, model)

    qps_gate = f">= {MIN_QPS:.0f}" if not smoke else "(smoke: recorded)"
    speedup_gate = (
        f">= {MIN_COALESCE_SPEEDUP}x" if not smoke else "(smoke: recorded)"
    )
    table = format_table(
        "gateway: coalesced HTTP edge vs sequential client",
        ["measure", "value", "gate"],
        [
            ["sequential QPS (1 client)", throughput["sequential_qps"], ""],
            [
                f"coalesced QPS ({throughput['coalesced_concurrency']} clients)",
                throughput["coalesced_qps"],
                qps_gate,
            ],
            ["coalescing speedup", throughput["speedup"], speedup_gate],
            ["coalesced p99 (ms)", throughput["coalesced_p99_ms"],
             f"<= {MAX_P99_MS:.0f}"],
            ["client transport errors", throughput["sequential_errors"]
             + throughput["coalesced_errors"], "== 0"],
            ["flash-crowd shed (429)", admission["shed"], "(recorded)"],
            ["flash-crowd errors", admission["errors"], "== 0"],
            ["swaps under load", swap["swaps"], ""],
            ["stale responses", swap["stale_responses"], "== 0"],
            ["dropped requests", swap["dropped_requests"], "== 0"],
            ["responses served during swaps", swap["served"], "> 0"],
        ],
        note="QPS and speedup gates bind at full scale; p99 and "
             "swap-coherence gates bind in every mode",
    )
    payload = {
        "mode": "smoke" if smoke else "full",
        "sizes": sizes,
        "throughput": throughput,
        "admission": admission,
        "swap_under_load": swap,
        "gates": {
            "min_qps": MIN_QPS,
            "max_p99_ms": MAX_P99_MS,
            "min_coalesce_speedup": MIN_COALESCE_SPEEDUP,
        },
    }
    report("gateway", table, payload)
    print(table)

    failures = []
    if not smoke and throughput["coalesced_qps"] < MIN_QPS:
        failures.append(
            f"coalesced throughput {throughput['coalesced_qps']:.0f} QPS "
            f"below the {MIN_QPS:.0f} floor"
        )
    if not smoke and throughput["speedup"] < MIN_COALESCE_SPEEDUP:
        failures.append(
            f"coalescing speedup {throughput['speedup']:.2f}x below the "
            f"{MIN_COALESCE_SPEEDUP}x floor"
        )
    if throughput["coalesced_p99_ms"] > MAX_P99_MS:
        failures.append(
            f"coalesced p99 {throughput['coalesced_p99_ms']:.1f} ms over "
            f"the {MAX_P99_MS:.0f} ms ceiling"
        )
    if throughput["sequential_errors"] or throughput["coalesced_errors"]:
        failures.append(
            f"{throughput['sequential_errors'] + throughput['coalesced_errors']} "
            f"client transport errors during the throughput runs"
        )
    if admission["errors"]:
        failures.append(
            f"{admission['errors']} transport errors under the flash crowd"
        )
    if swap["stale_responses"]:
        failures.append(
            f"{swap['stale_responses']} responses paired rows with a "
            f"retired generation"
        )
    if swap["dropped_requests"]:
        failures.append(
            f"{swap['dropped_requests']} requests dropped across "
            f"{swap['swaps']} swaps"
        )
    if swap["served"] == 0:
        failures.append("no responses were served during the swap storm")
    if swap["final_generation"] != swap["swaps"]:
        failures.append(
            f"final generation {swap['final_generation']} != "
            f"{swap['swaps']} published swaps"
        )
    payload["failures"] = failures
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes for CI; QPS and speedup gates are only recorded",
    )
    parser.add_argument(
        "--out", default="BENCH_gateway.json",
        help="where to write the JSON payload (default: ./BENCH_gateway.json)",
    )
    parser.add_argument(
        "--digest", default=None, metavar="FILE",
        help="also write the SHA-256 reference-ranking digest here (for "
             "the CI determinism job: two runs must produce identical "
             "bytes)",
    )
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, default=float) + "\n")
    print(f"wrote {out}")
    if args.digest:
        Path(args.digest).write_text(
            str(payload["swap_under_load"]["digest"]) + "\n"
        )
        print(f"wrote {args.digest}")
    if payload["failures"]:
        for failure in payload["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
