"""Figure 8(a,b) — multi-core training scalability.

Paper (Sec. 7.5): per-epoch time drops near-linearly with threads and then
flattens; TF(4,0)'s maximum speedup (~8) exceeds MF(0)'s (~6); without
caching the speedup *drops* past 40 threads, with threshold caching
(th=0.1) it stays flat.

Per DESIGN.md's substitution table, the wall-clock curves come from the
discrete-event scaling model (Python's GIL cannot express C++ thread
scaling), while the *functional* lock/cache protocol is exercised for real
by the threaded trainer, whose measured contention statistics are reported
alongside.
"""

import numpy as np
from _harness import QUICK, bench_dataset, bench_split, format_table, report, run_once

from repro.core.factors import FactorSet
from repro.parallel.simulator import (
    epoch_time_curve,
    mf_profile,
    simulate_epoch,
    speedup_curve,
    tf_profile,
)
from repro.parallel.trainer import ThreadedSGDEngine
from repro.utils.config import TrainConfig

THREADS = [1, 2, 4, 8, 12, 16, 24, 32, 40, 48]
SIM_SAMPLES = 1500 if QUICK else 4000


def test_fig8a_epoch_time_vs_threads(benchmark):
    def experiment():
        mf = epoch_time_curve(mf_profile(), THREADS, n_samples=SIM_SAMPLES)
        tf = epoch_time_curve(tf_profile(), THREADS, n_samples=SIM_SAMPLES)
        tf_cached = epoch_time_curve(
            tf_profile(cached=True), THREADS, n_samples=SIM_SAMPLES
        )
        return mf, tf, tf_cached

    mf, tf, tf_cached = run_once(benchmark, experiment)
    scale = 130.0 / mf[1]  # present in paper-like seconds (MF(0) @1 ≈ 130s)
    rows = [
        (t, mf[t] * scale, tf[t] * scale, tf_cached[t] * scale)
        for t in THREADS
    ]
    table = format_table(
        "Fig 8(a): per-epoch time vs threads (simulated, paper-scaled seconds)",
        ["threads", "MF(0)", "TF(4,0) no-cache", "TF(4,0) cache th=0.1"],
        rows,
        note="paper shape: TF overhead large at 1 thread, gap shrinks with threads",
    )
    report(
        "fig8a",
        table,
        {"threads": THREADS, "mf": mf, "tf": tf, "tf_cached": tf_cached},
    )
    gap_1 = tf[1] - mf[1]
    gap_12 = tf[12] - mf[12]
    assert gap_12 < gap_1 / 2.0


def test_fig8b_speedup_vs_threads(benchmark):
    def experiment():
        mf = speedup_curve(mf_profile(), THREADS, n_samples=SIM_SAMPLES)
        tf = speedup_curve(tf_profile(), THREADS, n_samples=SIM_SAMPLES)
        tf_cached = speedup_curve(
            tf_profile(cached=True), THREADS, n_samples=SIM_SAMPLES
        )
        return mf, tf, tf_cached

    mf, tf, tf_cached = run_once(benchmark, experiment)
    rows = [(t, mf[t], tf[t], tf_cached[t]) for t in THREADS]
    table = format_table(
        "Fig 8(b): speedup vs threads (simulated)",
        ["threads", "MF(0)", "TF(4,0) no-cache", "TF(4,0) cache th=0.1"],
        rows,
        note=(
            "paper shape: TF max ~8 > MF max ~6; no-cache drops after 40 "
            "threads, cache stays flat"
        ),
    )
    report(
        "fig8b",
        table,
        {"threads": THREADS, "mf": mf, "tf": tf, "tf_cached": tf_cached},
    )
    assert max(tf.values()) > max(mf.values())
    assert tf[48] < tf[40]
    assert tf_cached[48] >= tf_cached[40] * 0.97


def test_fig8_functional_lock_protocol(benchmark):
    """The real threaded trainer: measured contention and the caching
    effect (functional counterpart of the simulated curves)."""
    data = bench_dataset()
    split = bench_split()
    config = TrainConfig(factors=8, epochs=1, taxonomy_levels=4, seed=0)
    # Keep the per-sample Python loop affordable.
    max_users = 400 if QUICK else 1200
    log = split.train.subset_users(range(min(split.train.n_users, max_users)))

    def experiment():
        out = {}
        for cached in (False, True):
            fs = FactorSet(
                log.n_users, data.taxonomy, 8, 4, with_next=False, seed=0
            )
            trainer = ThreadedSGDEngine(
                fs, log, config, n_threads=4, use_cache=cached,
                cache_threshold=0.1,
            )
            out[cached] = trainer.train_epoch()
        return out

    stats = run_once(benchmark, experiment)
    rows = [
        (
            "cache th=0.1" if cached else "no cache",
            s.loss,
            s.lock_acquisitions,
            s.lock_contention_rate,
            s.reconciliations,
        )
        for cached, s in stats.items()
    ]
    table = format_table(
        "Fig 8 functional check: threaded trainer, 4 threads, 1 epoch",
        ["mode", "loss", "lock_acquisitions", "contention", "reconciliations"],
        rows,
        note="caching must cut lock traffic on the hot internal rows",
    )
    report(
        "fig8_functional",
        table,
        {
            ("cached" if cached else "plain"): {
                "loss": s.loss,
                "lock_acquisitions": s.lock_acquisitions,
                "contention_rate": s.lock_contention_rate,
                "reconciliations": s.reconciliations,
                "hot_row_updates": s.hot_row_updates,
            }
            for cached, s in stats.items()
        },
    )
    assert stats[True].lock_acquisitions < stats[False].lock_acquisitions
