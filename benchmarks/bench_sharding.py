"""Sharded-fleet benchmark: throughput scaling, identity, swap-under-load.

Three acceptance claims of ``repro.serving.sharding`` are measured on the
shared synthetic dataset shape:

* **throughput** — users/sec of a 4-shard :class:`ShardRouter` fleet vs
  the single-process :class:`RecommenderService` on the same request
  stream; at full scale the fleet must reach **>= 3x** the single-process
  number (the gate assumes >= 4 physical cores — the whole point of the
  fleet is to use them; the measured core count is recorded either way);
* **bit-identical output** — the user-partitioned fleet must return
  exactly the single-process rows over the whole user base, and the
  item-partitioned fleet's merged pages must match as well;
* **hot-swap under load** — serving threads hammer the fleet while a
  :class:`~repro.streaming.swap.HotSwapper` publishes model snapshots
  repeatedly; every request must succeed and a post-publish probe must
  match the swapped-in model exactly on every shard (0 stale, 0 failed).

Like the other subsystem benches this is a plain script so CI can run it
directly and archive its JSON payload::

    PYTHONPATH=src python benchmarks/bench_sharding.py --smoke --out BENCH_sharding.json

Full-scale (no ``--smoke``) enforces the 3x throughput gate; smoke mode
records throughput but gates only the correctness claims (CI boxes do
not promise 4 idle cores).  Tables land in ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _harness import format_table, report  # noqa: E402

from repro import (  # noqa: E402
    HotSwapper,
    OnlineUpdater,
    PurchaseEvent,
    RecommenderService,
    ShardRouter,
    SyntheticConfig,
    TaxonomyFactorModel,
    TrainConfig,
    generate_dataset,
    train_test_split,
)
from repro.train import train_model  # noqa: E402

#: Acceptance floor for fleet/single-process throughput (full scale).
MIN_SPEEDUP = 3.0
#: Shards in the benchmark fleet.
N_SHARDS = 4

DATA_SEED = 1234
SPLIT_SEED = 99
TRAIN_SEED = 77


def _sizes(smoke: bool) -> Dict[str, int]:
    if smoke:
        return {
            "n_users": 800, "epochs": 3, "factors": 8,
            "request_batch": 256, "rounds": 8, "swap_rounds": 6,
        }
    return {
        "n_users": 4000, "epochs": 10, "factors": 16,
        "request_batch": 512, "rounds": 40, "swap_rounds": 25,
    }


def _trained(sizes: Dict[str, int]):
    config = SyntheticConfig(
        n_users=sizes["n_users"], mean_transactions=5.0, seed=DATA_SEED
    )
    data = generate_dataset(config)
    split = train_test_split(data.log, mu=0.5, seed=SPLIT_SEED)
    model = train_model(
        TaxonomyFactorModel(
            data.taxonomy,
            TrainConfig(
                factors=sizes["factors"], epochs=sizes["epochs"],
                sibling_ratio=0.5, seed=TRAIN_SEED,
            ),
        ),
        split.train,
    )
    return data, split, model


def _request_stream(n_users: int, batch: int, rounds: int) -> List[np.ndarray]:
    """The standard workload: every user once per round, fixed batches."""
    users = np.arange(n_users, dtype=np.int64)
    batches = []
    for round_ in range(rounds):
        shifted = np.roll(users, round_ * 17)
        batches.extend(
            shifted[start : start + batch]
            for start in range(0, n_users, batch)
        )
    return batches


def _drain(front, batches: List[np.ndarray], k: int = 10) -> float:
    started = time.perf_counter()
    for users in batches:
        front.recommend_batch(users, k=k)
    return time.perf_counter() - started


# ----------------------------------------------------------------------
# (a) Fleet vs single-process throughput
# ----------------------------------------------------------------------
def bench_throughput(sizes: Dict[str, int], split, model) -> Dict[str, float]:
    batches = _request_stream(
        model.n_users, sizes["request_batch"], sizes["rounds"]
    )
    served = sum(b.size for b in batches)

    single = RecommenderService(model, history_log=split.train, cache_size=0)
    single_seconds = _drain(single, batches)

    with ShardRouter(
        model, n_shards=N_SHARDS, history_log=split.train, cache_size=0
    ) as fleet:
        fleet_seconds = _drain(fleet, batches)

    return {
        "cpu_count": os.cpu_count() or 1,
        "n_shards": N_SHARDS,
        "requests": served,
        "single_seconds": single_seconds,
        "single_users_per_sec": served / single_seconds,
        "fleet_seconds": fleet_seconds,
        "fleet_users_per_sec": served / fleet_seconds,
        "speedup": single_seconds / fleet_seconds,
    }


# ----------------------------------------------------------------------
# (b) Bit-identical output, both partitions
# ----------------------------------------------------------------------
def bench_identity(split, model) -> Dict[str, float]:
    users = np.arange(model.n_users, dtype=np.int64)
    service = RecommenderService(model, history_log=split.train)
    expected = service.recommend_batch(users, k=10)

    with ShardRouter(
        model, n_shards=N_SHARDS, history_log=split.train
    ) as fleet:
        by_users = fleet.recommend_batch(users, k=10)
    with ShardRouter(
        model, n_shards=N_SHARDS, history_log=split.train, partition="items"
    ) as fleet:
        by_items = fleet.recommend_batch(users, k=10)

    digest = hashlib.sha256()
    for array in (expected, by_users, by_items):
        digest.update(str(array.shape).encode())
        digest.update(np.ascontiguousarray(array).tobytes())

    return {
        "users_checked": int(users.size),
        "user_partition_mismatches": int(
            (by_users != expected).any(axis=1).sum()
        ),
        "item_partition_mismatches": int(
            (by_items != expected).any(axis=1).sum()
        ),
        # SHA-256 over the three ranking arrays — no timings, no pids —
        # so two same-seed runs must produce identical bytes (the CI
        # determinism job compares --digest files across runs).
        "digest": digest.hexdigest(),
    }


# ----------------------------------------------------------------------
# (c) Fleet-wide hot swap under serving load
# ----------------------------------------------------------------------
def bench_hot_swap(sizes: Dict[str, int], split, model) -> Dict[str, float]:
    updater = OnlineUpdater(model, steps=4, seed=0)
    updater.apply_events(
        [PurchaseEvent(u, (u % model.n_items,)) for u in range(64)]
    )
    snapshot = updater.snapshot()
    candidates = [model, snapshot]
    probes = [
        RecommenderService(model, history_log=split.train),
        RecommenderService(snapshot, history_log=snapshot._train_log),
    ]

    errors: List[BaseException] = []
    served = [0]
    stop = threading.Event()
    with ShardRouter(
        model, n_shards=N_SHARDS, history_log=split.train
    ) as fleet:
        swapper = HotSwapper(fleet)

        def hammer() -> None:
            users = np.arange(64)
            while not stop.is_set():
                try:
                    out = fleet.recommend_batch(users, k=10)
                    if out.shape != (64, 10) or (out < 0).any():
                        raise AssertionError("short page served")
                    served[0] += 1
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        for thread in threads:
            thread.start()
        stale = 0
        started = time.perf_counter()
        for round_ in range(sizes["swap_rounds"]):
            live = candidates[round_ % 2]
            swapper.publish(live)
            page = fleet.recommend(0, k=10)
            if not np.array_equal(page, probes[round_ % 2].recommend(0, k=10)):
                stale += 1
        swap_seconds = time.perf_counter() - started
        stop.set()
        for thread in threads:
            thread.join()
    if errors:
        raise errors[0]
    return {
        "swaps": sizes["swap_rounds"],
        "stale_probes": stale,
        "failed_requests": len(errors),
        "batches_served_during_swaps": served[0],
        "swap_seconds": swap_seconds,
        "swaps_per_sec": sizes["swap_rounds"] / swap_seconds,
    }


# ----------------------------------------------------------------------
# Reporting / gates
# ----------------------------------------------------------------------
def run(smoke: bool) -> Dict[str, object]:
    sizes = _sizes(smoke)
    _data, split, model = _trained(sizes)
    throughput = bench_throughput(sizes, split, model)
    identity = bench_identity(split, model)
    swap = bench_hot_swap(sizes, split, model)

    speedup_gate = (
        f">= {MIN_SPEEDUP}" if not smoke else "(smoke: recorded)"
    )
    table = format_table(
        f"sharding: {N_SHARDS}-shard fleet vs single process",
        ["measure", "value", "gate"],
        [
            ["cores available", throughput["cpu_count"], ""],
            ["single-process users/sec", throughput["single_users_per_sec"], ""],
            ["fleet users/sec", throughput["fleet_users_per_sec"], ""],
            ["speedup", throughput["speedup"], speedup_gate],
            [
                "user-partition mismatches",
                identity["user_partition_mismatches"],
                "== 0",
            ],
            [
                "item-partition mismatches",
                identity["item_partition_mismatches"],
                "== 0",
            ],
            ["swaps under load", swap["swaps"], ""],
            ["stale probes", swap["stale_probes"], "== 0"],
            ["failed requests", swap["failed_requests"], "== 0"],
            [
                "batches served during swaps",
                swap["batches_served_during_swaps"],
                "> 0",
            ],
        ],
        note="the speedup gate binds at full scale (>= 4 cores assumed)",
    )
    payload = {
        "mode": "smoke" if smoke else "full",
        "sizes": sizes,
        "throughput": throughput,
        "identity": identity,
        "hot_swap": swap,
        "gates": {"min_speedup": MIN_SPEEDUP, "n_shards": N_SHARDS},
    }
    report("sharding", table, payload)
    print(table)

    failures = []
    if not smoke and throughput["speedup"] < MIN_SPEEDUP:
        failures.append(
            f"fleet speedup {throughput['speedup']:.2f}x below the "
            f"{MIN_SPEEDUP}x floor "
            f"({throughput['cpu_count']} cores available)"
        )
    if identity["user_partition_mismatches"]:
        failures.append(
            f"{identity['user_partition_mismatches']} user-partition rows "
            f"diverge from the single-process service"
        )
    if identity["item_partition_mismatches"]:
        failures.append(
            f"{identity['item_partition_mismatches']} item-partition rows "
            f"diverge from the single-process service"
        )
    if swap["stale_probes"]:
        failures.append(f"{swap['stale_probes']} stale post-publish probes")
    if swap["failed_requests"]:
        failures.append(f"{swap['failed_requests']} requests failed mid-swap")
    if swap["batches_served_during_swaps"] == 0:
        failures.append("no requests were served during the swap storm")
    payload["failures"] = failures
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small sizes for CI; the speedup gate is only recorded",
    )
    parser.add_argument(
        "--out", default="BENCH_sharding.json",
        help="where to write the JSON payload (default: ./BENCH_sharding.json)",
    )
    parser.add_argument(
        "--digest", default=None, metavar="FILE",
        help="also write the SHA-256 ranking digest here (for the CI "
             "determinism job: two runs must produce identical bytes)",
    )
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, default=float) + "\n")
    print(f"wrote {out}")
    if args.digest:
        Path(args.digest).write_text(
            str(payload["identity"]["digest"]) + "\n"
        )
        print(f"wrote {args.digest}")
    if payload["failures"]:
        for failure in payload["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
