"""Setup shim for environments without the `wheel` package.

All project metadata lives in pyproject.toml; this file only enables the
legacy `pip install -e . --no-use-pep517` / `setup.py develop` code path.
"""

from setuptools import setup

setup()
