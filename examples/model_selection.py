"""Hyper-parameter search the way the paper does it (Secs. 2.2, 7.1).

"The regularization term λ is usually chosen via cross-validation.  An
exhaustive search is performed over the choices of λ and the best model is
picked accordingly."  Validation uses each user's last T = 1 *training*
transactions, so the test period stays untouched.

Run:
    python examples/model_selection.py
"""

from repro import (
    SyntheticConfig,
    TrainConfig,
    evaluate_model,
    generate_dataset,
    train_test_split,
)
from repro.eval.model_selection import grid_search


def main() -> None:
    data = generate_dataset(SyntheticConfig(n_users=1500, seed=13))
    split = train_test_split(data.log, mu=0.5, seed=1)

    base = TrainConfig(factors=16, epochs=8, sibling_ratio=0.5, seed=0)
    result = grid_search(
        data.taxonomy,
        split.train,  # the search never touches split.test
        grid={
            "reg": [0.001, 0.01, 0.1],
            "learning_rate": [0.02, 0.05],
        },
        base_config=base,
        metric="auc",
        verbose=True,
    )

    print("\nvalidation leaderboard:")
    for candidate in result.ranking("auc"):
        print(
            f"  {candidate.params}  ->  AUC={candidate.score('auc'):.4f} "
            f"({candidate.fit_seconds:.1f}s)"
        )
    print(f"\nbest: {result.best.params}")

    # The returned model is refit on the full training data; now — and only
    # now — evaluate on the held-out test period.
    test_result = evaluate_model(result.model, split)
    print(
        f"test AUC of the selected model: {test_result.auc:.4f} "
        f"(meanRank {test_result.mean_rank:.1f})"
    )


if __name__ == "__main__":
    main()
