"""Streaming: train offline, stream live events, hot-swap, keep serving.

The paper trains over a frozen log, but production never stops: new
purchases, new users, and new catalog items arrive continuously.  This
walkthrough runs the full online loop —

1. **train** a TF model offline on the first half of each user's history;
2. **serve** it through a ``RecommenderService``;
3. **stream** the second half as live purchase events through a
   ``StreamingPipeline`` (micro-batches → incremental user-vector updates
   against frozen item factors → periodic checkpoints + hot swaps);
4. **interleave** a brand-new user and a brand-new catalog item into the
   stream, and watch both become servable without any retrain;
5. **verify** the served model followed the stream (the hot-swap replaced
   the model mid-traffic, cache invalidated, zero downtime).

Run:
    python examples/online_updates.py
"""

import math
import tempfile
from pathlib import Path

from repro import (
    CheckpointStore,
    ItemArrival,
    OnlineUpdater,
    PurchaseEvent,
    RecommenderService,
    StreamingPipeline,
    SyntheticConfig,
    TaxonomyFactorModel,
    TrainConfig,
    TransactionLog,
    events_from_transactions,
    generate_dataset,
    train_test_split,
    train_model,
)


def main() -> None:
    data = generate_dataset(
        SyntheticConfig(n_users=1500, mean_transactions=5.0, seed=5)
    )
    split = train_test_split(data.log, mu=0.5, seed=0)

    # --- 1. Offline training on the "past" half of every history --------
    warm_lists, keeps = [], []
    for user in range(split.train.n_users):
        txns = split.train.user_transactions(user)
        keep = max(1, math.ceil(0.5 * len(txns))) if txns else 0
        warm_lists.append([basket.tolist() for basket in txns[:keep]])
        keeps.append(keep)
    warm = TransactionLog(warm_lists, n_items=data.taxonomy.n_items)
    stream_events = list(events_from_transactions(split.train, start_t=keeps))
    model = TaxonomyFactorModel(
        data.taxonomy,
        TrainConfig(factors=16, epochs=8, sibling_ratio=0.5, seed=0),
    )
    train_model(model, warm)
    print(f"offline model: {model} trained on {warm.n_purchases} purchases")

    # --- 2. Live serving front door --------------------------------------
    service = RecommenderService(model)
    before = service.recommend(0, k=5)
    print(f"user 0 before streaming: {[int(i) for i in before]}")

    # --- 3+4. Stream the "future", with a new user and a new item --------
    new_user = model.n_users + 10
    leaf_category = int(data.taxonomy.parent[data.taxonomy.items[0]])
    stream_events[5:5] = [  # splice live surprises into the stream
        ItemArrival(leaf_category, name="just-released"),
        PurchaseEvent(new_user, (1, 2)),
    ]

    checkpoints = Path(tempfile.mkdtemp(prefix="repro-ckpts-"))
    pipeline = StreamingPipeline(
        service,
        updater=OnlineUpdater(model, steps=16, seed=0),
        batch_size=256,
        swap_every=4,
        store=CheckpointStore(checkpoints, keep=3),
    )
    stats = pipeline.run(stream_events)
    print(
        f"streamed {stats.events} events at "
        f"{stats.events_per_second:,.0f} events/sec "
        f"({stats.batches} micro-batches, {pipeline.swaps} hot swaps)"
    )
    print(
        f"folded in {stats.new_users} new users, onboarded "
        f"{stats.new_items} items; checkpoints: "
        f"{[p.name for p in sorted(checkpoints.iterdir())]}"
    )

    # --- 5. The served model moved with the stream ------------------------
    after = service.recommend(0, k=5)
    print(f"user 0 after streaming:  {[int(i) for i in after]}")
    print(f"service swaps={service.stats.swaps} generation={service.generation}")

    served_new_user = service.recommend(new_user, k=5)
    print(
        f"brand-new user {new_user} (2 streamed purchases) is a known "
        f"user now: {[int(i) for i in served_new_user]}"
    )
    new_item = service.model.n_items - 1
    rank = int(
        (service.model.score_items(0) > service.model.score_items(0)[new_item]).sum()
    ) + 1
    print(
        f"onboarded item {new_item} (under "
        f"{data.taxonomy.name_of(leaf_category)}) is servable at rank "
        f"{rank}/{service.model.n_items} for user 0 — no retrain needed"
    )


if __name__ == "__main__":
    main()
