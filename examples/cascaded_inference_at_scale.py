"""Cascaded inference: serving recommendations without scoring every item.

Sec. 5.1 of the paper: with 1.5M products, computing a user's affinity to
*every* item is prohibitively expensive.  The cascade ranks the taxonomy
top-down, descending only into the best categories, and provides a smooth
accuracy/latency dial (Fig. 8c,d) plus semantically structured output.

This example:
1. trains TF(4,0) on a larger taxonomy,
2. sweeps the keep-fraction and prints the accuracy/work trade-off,
3. serves a batch through RecommenderService configured with the cascade
   (per-request work accounting included),
4. demonstrates the structured ("category first") ranking the cascade
   gives for free.

Run:
    python examples/cascaded_inference_at_scale.py
"""

import numpy as np

from repro import (
    CascadeConfig,
    CascadedRecommender,
    SyntheticConfig,
    TaxonomyFactorModel,
    TrainConfig,
    evaluate_cascade,
    generate_dataset,
    train_test_split,
    train_model,
)


def main() -> None:
    # A wider taxonomy: 16 top categories, ~4k items.
    data = generate_dataset(
        SyntheticConfig(
            branching=(16, 5, 4),
            items_per_leaf=12,
            n_users=3000,
            mean_transactions=3.5,
            seed=4,
        )
    )
    print(f"taxonomy: {data.taxonomy}")
    split = train_test_split(data.log, mu=0.5, seed=2)
    model = TaxonomyFactorModel(
        data.taxonomy,
        TrainConfig(factors=20, epochs=10, sibling_ratio=0.5, seed=0),
    )
    train_model(model, split.train)

    # 1. The accuracy/work dial (Fig. 8c): keep k% of every internal level.
    users = split.test_users()[:150]
    print("\nkeep%   accuracy-ratio   work-ratio")
    for pct in (10, 25, 50, 75, 100):
        fraction = pct / 100.0
        result = evaluate_cascade(
            model,
            split,
            CascadeConfig(keep_fractions=(fraction,) * 3),
            users=users,
        )
        print(
            f"{pct:4d}     {result.accuracy_ratio:12.3f}   "
            f"{result.work_ratio:9.3f}"
        )

    # 2. Serving through the cascade: RecommenderService executes known
    #    users through CascadedRecommender when configured, with work
    #    accounting (nodes scored) per request.
    from repro import RecommenderService

    service = RecommenderService(
        model, cascade=CascadeConfig(keep_fractions=(0.25, 0.25, 0.25))
    )
    service.recommend_batch(users[:100], k=10)
    stats = service.reset_stats()
    print(
        f"\nserved {stats.requests} users through the cascade at "
        f"{stats.requests_per_second:.0f} users/sec, "
        f"{stats.nodes_scored / stats.requests:.0f} nodes/user "
        f"(exact would be {model.n_items})"
    )

    # 3. Structured ranking for one user: categories first, then items —
    #    the "more semantically meaningful ranking" of Sec. 5.1.
    user = int(users[0])
    recommender = CascadedRecommender(
        model, CascadeConfig(keep_fractions=(0.25, 0.25, 0.25))
    )
    result = recommender.rank(user)
    taxonomy = data.taxonomy
    print(
        f"\nuser {user}: cascade scored {result.nodes_scored} nodes "
        f"instead of {recommender.naive_cost()} items "
        f"(frontiers: {result.frontier_sizes})"
    )
    print("top recommendations, grouped by category:")
    grouped = {}
    for item in result.top_k(12):
        node = taxonomy.node_of_item(int(item))
        category = int(taxonomy.parent[node])
        grouped.setdefault(category, []).append(int(item))
    for category, items in grouped.items():
        print(f"  {taxonomy.name_of(category)}: items {items}")


if __name__ == "__main__":
    main()
