"""Using public Amazon-style category data instead of the synthetic log.

The paper's dataset is proprietary.  Public Amazon product dumps have the
same two ingredients — per-item category paths and per-user timestamped
interactions — and this library loads them directly.  Since shipping real
dumps in a repository is impractical, this example writes a tiny
Amazon-format file pair, then runs the *identical* pipeline you would run
on the real files (e.g. `meta_Electronics.json` + `reviews_Electronics.json`
from the McAuley SNAP datasets).

Run:
    python examples/amazon_category_data.py [metadata.jsonl reviews.jsonl]
"""

import json
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    TaxonomyFactorModel,
    TrainConfig,
    evaluate_model,
    train_model,
    train_test_split,
)
from repro.data.amazon import load_amazon_dataset

CATEGORIES = {
    "cam": ["Electronics", "Cameras", "DSLR"],
    "sd": ["Electronics", "Cameras", "Memory Cards"],
    "lens": ["Electronics", "Cameras", "Lenses"],
    "tv": ["Electronics", "Televisions", "LED"],
    "sound": ["Electronics", "Televisions", "Soundbars"],
    "novel": ["Books", "Fiction", "Novels"],
    "cook": ["Books", "Nonfiction", "Cooking"],
}


def write_demo_files(directory: Path) -> tuple:
    """A miniature Amazon-format dataset: 40 items, 300 users."""
    rng = np.random.default_rng(0)
    meta_path = directory / "metadata.jsonl"
    reviews_path = directory / "reviews.jsonl"

    kinds = list(CATEGORIES)
    items = [(f"ASIN{i:04d}", kinds[i % len(kinds)]) for i in range(40)]
    with open(meta_path, "w", encoding="utf-8") as handle:
        for asin, kind in items:
            handle.write(
                json.dumps({"asin": asin, "categories": [CATEGORIES[kind]]})
                + "\n"
            )

    by_kind = {}
    for asin, kind in items:
        by_kind.setdefault(kind, []).append(asin)
    day = 86400
    with open(reviews_path, "w", encoding="utf-8") as handle:
        for u in range(300):
            # Each user shops 1-2 related "kinds"; camera people also buy
            # SD cards and lenses — the structure TF exploits.
            focus = str(rng.choice(["cam", "tv", "novel"]))
            related = {
                "cam": ["cam", "sd", "lens"],
                "tv": ["tv", "sound"],
                "novel": ["novel", "cook"],
            }[focus]
            when = int(rng.integers(0, 100)) * day
            for _ in range(int(rng.integers(2, 6))):
                kind = str(rng.choice(related))
                asin = str(rng.choice(by_kind[kind]))
                handle.write(
                    json.dumps(
                        {
                            "reviewerID": f"user{u}",
                            "asin": asin,
                            "unixReviewTime": when,
                        }
                    )
                    + "\n"
                )
                when += int(rng.integers(1, 20)) * day
    return meta_path, reviews_path


def main() -> None:
    if len(sys.argv) == 3:
        meta_path, reviews_path = Path(sys.argv[1]), Path(sys.argv[2])
        print(f"loading real files: {meta_path}, {reviews_path}")
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory()
        meta_path, reviews_path = write_demo_files(Path(cleanup.name))
        print("no files given — using a generated miniature Amazon dataset")

    taxonomy, log, item_ids, user_ids = load_amazon_dataset(
        meta_path, reviews_path
    )
    print(f"taxonomy: {taxonomy}")
    print(f"log:      {log}")

    split = train_test_split(log, mu=0.5, seed=0)
    levels = taxonomy.max_depth  # use the full category hierarchy
    model = TaxonomyFactorModel(
        taxonomy,
        TrainConfig(
            factors=16,
            epochs=10,
            taxonomy_levels=levels,
            sibling_ratio=0.5,
            seed=0,
        ),
    )
    train_model(model, split.train)
    result = evaluate_model(model, split)
    print(f"TF({levels},0): AUC={result.auc:.4f} meanRank={result.mean_rank:.1f}")

    # Show one user's recommendations with their catalog identifiers.
    reverse_item = {v: k for k, v in item_ids.items()}
    some_user = next(iter(user_ids.values()))
    top = model.recommend(some_user, k=5)
    print(f"recommendations for dense user {some_user}:")
    for item in top:
        node = taxonomy.node_of_item(int(item))
        path = " / ".join(
            taxonomy.name_of(v) for v in reversed(taxonomy.path_to_root(node)[1:-1])
        )
        print(f"  {reverse_item[int(item)]:10s} ({path})")
    if cleanup is not None:
        cleanup.cleanup()


if __name__ == "__main__":
    main()
