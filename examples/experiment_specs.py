"""Config-driven experiments: one spec file, any backend, full tables.

The declarative counterpart to ``quickstart.py``: instead of wiring
models and trainers in code, an :class:`~repro.utils.config.ExperimentSpec`
names the dataset, the model variant(s), the trainer backend, and the
evaluation protocol, and :class:`~repro.train.ExperimentRunner` executes
it end to end.  The same spec drives the CLI::

    python -m repro run   --config examples/specs/tf_vs_mf.json
    python -m repro sweep --config examples/specs/tf_vs_mf.json \
        --grid train.factors=10,20,50

This script shows the programmatic side:

1. run the shipped TF-vs-MF comparison spec (the paper's Table-2-style
   table: same data, same split, two models);
2. flip the identical experiment to the threaded backend with one
   override — no model code changes;
3. grid-sweep the taxonomy depth ``U`` (the Fig. 7a ablation) from the
   same base spec.

Run:
    python examples/experiment_specs.py
"""

from pathlib import Path

from repro import ExperimentRunner, apply_overrides, load_spec, sweep
from repro.train import sweep_table

SPEC_PATH = Path(__file__).parent / "specs" / "tf_vs_mf.json"

# Shrink the shipped spec so the walkthrough runs in seconds; drop the
# overrides to reproduce the full laptop-scale comparison.
QUICK = {
    "data.synthetic.n_users": 800,
    "train.epochs": 5,
    "train.factors": 16,
}


def main() -> None:
    base = apply_overrides(load_spec(SPEC_PATH), QUICK)

    # 1. TF vs MF on identical data and split, one table.
    report = ExperimentRunner(base).run()
    print(report.table())
    tf, mf = report.results
    print(
        f"\ntaxonomy lift: AUC {mf.metrics['auc']:.4f} -> "
        f"{tf.metrics['auc']:.4f}\n"
    )

    # 2. Same experiment, threaded backend (paper Sec. 6.1 regime:
    #    markov_order=0 and no sibling mixing).
    threaded = apply_overrides(base, {
        "name": "tf-vs-mf-threaded",
        "trainer.backend": "threaded",
        "trainer.n_workers": 4,
        "trainer.use_cache": True,
        "train.sibling_ratio": 0.0,
    })
    print(ExperimentRunner(threaded).run().table())
    print()

    # 3. Sweep taxonomy depth U (Fig. 7a): every cell is a full run.
    cells = sweep(base, {"train.taxonomy_levels": [1, 2, 4]})
    print(sweep_table(cells, k=base.eval.k))


if __name__ == "__main__":
    main()
