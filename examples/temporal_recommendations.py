"""Short-term dynamics: "bought a camera → recommend a flash card".

Sec. 1/3.2 of the paper: purchases are driven by long-term interests *and*
short-term context.  TF(U,B) with B > 0 adds a k-order Markov term — the
next-item factors of the last B transactions shift the ranking.

This example:
1. trains TF(4,0) (long-term only) and TF(4,2) (2nd-order Markov),
2. shows how TF(4,2)'s recommendations change with the recent basket while
   TF(4,0)'s do not,
3. verifies the planted transition structure is picked up: after buying in
   a category, the model promotes items from the categories the generator
   wired as "related".

Run:
    python examples/temporal_recommendations.py
"""

import numpy as np

from repro import (
    SyntheticConfig,
    TaxonomyFactorModel,
    TrainConfig,
    evaluate_model,
    generate_dataset,
    train_test_split,
    train_model,
)


def category_share(data, items, related):
    """Fraction of *items* that fall in the *related* category set."""
    if len(items) == 0:
        return 0.0
    hits = sum(1 for i in items if int(data.leaf_of_item[i]) in related)
    return hits / len(items)


def main() -> None:
    # Strong transition structure so the effect is visible.
    data = generate_dataset(
        SyntheticConfig(
            n_users=2500,
            mean_transactions=4.0,
            transition_strength=0.7,
            seed=21,
        )
    )
    split = train_test_split(data.log, mu=0.5, seed=5)

    base = TrainConfig(factors=20, epochs=10, sibling_ratio=0.5, seed=0)
    long_term = train_model(TaxonomyFactorModel(data.taxonomy, base), split.train)
    markov = train_model(
        TaxonomyFactorModel(data.taxonomy, base, markov_order=2), split.train
    )

    for name, model in [("TF(4,0)", long_term), ("TF(4,2)", markov)]:
        result = evaluate_model(model, split)
        print(f"{name:8s} AUC={result.auc:.4f} meanRank={result.mean_rank:.1f}")

    # Pick a category and its planted "related" categories.
    source = next(iter(data.transition_kernel))
    related = {int(x) for x in data.transition_kernel[source]}
    source_items = np.flatnonzero(data.leaf_of_item == source)
    print(
        f"\nafter a purchase in {data.taxonomy.name_of(source)}, the "
        f"generator wires transitions into "
        f"{[data.taxonomy.name_of(r) for r in sorted(related)]}"
    )

    # Recommendations for the same user with and without that context.
    user = 0
    history = [source_items[:2]]  # "just bought two items there"
    k = 20
    for name, model in [("TF(4,0)", long_term), ("TF(4,2)", markov)]:
        no_ctx = model.recommend(user, k=k, history=[], exclude_purchased=False)
        with_ctx = model.recommend(
            user, k=k, history=history, exclude_purchased=False
        )
        moved = np.setdiff1d(with_ctx, no_ctx).size
        share_before = category_share(data, no_ctx, related | {source})
        share_after = category_share(data, with_ctx, related | {source})
        print(
            f"{name:8s} top-{k} changed by {moved:2d} items with context; "
            f"share in source+related categories: "
            f"{share_before:.2f} -> {share_after:.2f}"
        )
    print(
        "\nexpected: TF(4,0) is context-blind (0 changes); TF(4,2) shifts "
        "its list toward the related categories."
    )


if __name__ == "__main__":
    main()
