"""Serving: fold in brand-new users and explain every recommendation.

Production recommenders face two cold starts.  The paper solves new
*items* with the taxonomy; this example shows the library's answer to new
*users* — served through the RecommenderService front door, which routes
each request by user type (known → factors, cold with history → fold-in,
cold without → popularity) — plus the explanation API (exact additive
decomposition of each score along the taxonomy) and onboarding a
just-released product.

Run:
    python examples/serving_new_users.py
"""

import numpy as np

from repro import (
    RecommenderService,
    SyntheticConfig,
    TaxonomyFactorModel,
    TrainConfig,
    explain_score,
    fold_in_user,
    generate_dataset,
    score_for_vector,
    train_test_split,
    train_model,
)


def main() -> None:
    data = generate_dataset(SyntheticConfig(n_users=2000, seed=5))
    split = train_test_split(data.log, mu=0.5, seed=0)
    model = TaxonomyFactorModel(
        data.taxonomy,
        TrainConfig(factors=20, epochs=10, sibling_ratio=0.5, markov_order=1, seed=0),
    )
    train_model(model, split.train)
    taxonomy = data.taxonomy

    # One service routes every request type; fold-in budget set here.
    service = RecommenderService(model, fold_in_steps=300, fold_in_seed=1)

    # --- A brand-new user walks in with two purchases -------------------
    leaf = int(data.leaf_of_item[42])
    same_leaf = np.flatnonzero(data.leaf_of_item == leaf)
    history = [same_leaf[:1], same_leaf[1:3]]
    print(
        f"new user bought {[int(i) for b in history for i in b]} — all in "
        f"category {taxonomy.name_of(leaf)}"
    )

    vector = fold_in_user(model, history, steps=300, seed=1)
    top = service.recommend(user=None, k=5, history=history)
    print("fold-in recommendations (served via RecommenderService):")
    for item in top:
        node = taxonomy.node_of_item(int(item))
        print(
            f"  item {int(item):5d} "
            f"({taxonomy.name_of(int(taxonomy.parent[node]))})"
        )
    share = np.mean(
        [int(data.leaf_of_item[i]) == leaf for i in top]
    )
    print(f"share of top-5 from the user's category: {share:.0%}")

    # --- A visitor with no history at all: popularity fallback -----------
    anonymous = service.recommend(user=None, k=3)
    print(f"anonymous visitor gets the popularity shelf: {list(anonymous)}")
    stats = service.stats
    print(
        f"service so far: {stats.fold_in_requests} fold-in + "
        f"{stats.fallback_requests} fallback requests"
    )

    # --- Why was the #1 item recommended? --------------------------------
    known_user = 7
    best = int(model.recommend(known_user, k=1)[0])
    explanation = explain_score(model, known_user, best)
    print(f"\nexplaining user {known_user}'s #1 recommendation:")
    print(explanation.describe(taxonomy))
    print(f"dominant reason: {explanation.top_reason()}")

    # --- A product released five minutes ago ----------------------------
    category = int(data.leaf_of_item[0])
    new_items = model.onboard_items([category], names=["just-released"])
    fresh = int(new_items[0])
    scores = score_for_vector(model, vector, history)
    rank = 1 + int((scores > scores[fresh]).sum())
    print(
        f"\nonboarded item {fresh} under {taxonomy.name_of(category)}; "
        f"for the folded-in user it already ranks {rank}/{model.n_items} "
        f"(no purchases of it exist yet)"
    )


if __name__ == "__main__":
    main()
