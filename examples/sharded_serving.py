"""Sharded serving walkthrough: one model, a fleet of worker processes.

Demonstrates the full ``repro.serving.sharding`` story on synthetic
data:

1. train a taxonomy factor model and serve it single-process;
2. stand up a :class:`~repro.serving.sharding.ShardRouter` fleet over the
   same model — factor matrices published once into shared memory — and
   verify the output is bit-identical;
3. stream purchase events through an :class:`~repro.streaming.updater.
   OnlineUpdater` and hot-swap the snapshot into *every* shard with one
   :class:`~repro.streaming.swap.HotSwapper` publish;
4. slice the catalog instead (``partition="items"``) and let the router
   k-way merge the per-shard top-k pages.

Run with::

    PYTHONPATH=src python examples/sharded_serving.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    HotSwapper,
    OnlineUpdater,
    PurchaseEvent,
    RecommenderService,
    ShardRouter,
    SyntheticConfig,
    TaxonomyFactorModel,
    TrainConfig,
    generate_dataset,
    train_test_split,
)
from repro.train import train_model


def main() -> None:
    print("== 1. train a model ==")
    data = generate_dataset(SyntheticConfig(n_users=1000, seed=7))
    split = train_test_split(data.log, mu=0.5, seed=0)
    model = train_model(
        TaxonomyFactorModel(
            data.taxonomy,
            TrainConfig(factors=16, epochs=5, sibling_ratio=0.5, seed=0),
        ),
        split.train,
    )
    service = RecommenderService(model, history_log=split.train)
    users = np.arange(model.n_users)
    expected = service.recommend_batch(users, k=10)
    print(f"single process: served {users.size} users")

    print("\n== 2. user-partitioned fleet (bit-identical) ==")
    with ShardRouter(model, n_shards=4, history_log=split.train) as fleet:
        got = fleet.recommend_batch(users, k=10)
        assert np.array_equal(got, expected)
        stats = fleet.stats()
        print(
            f"4 shards served {int(stats['requests'])} requests, "
            f"output identical to the single process: "
            f"{np.array_equal(got, expected)}"
        )

        print("\n== 3. fleet-wide hot swap ==")
        updater = OnlineUpdater(model, steps=4, seed=0)
        updater.apply_events(
            [PurchaseEvent(user=u, items=(u % model.n_items,))
             for u in range(128)]
        )
        swapper = HotSwapper(fleet)
        swapper.publish(updater.snapshot(), popularity=updater.popularity())
        fresh = fleet.recommend_batch(users[:5], k=5)
        print(
            f"generation {fleet.generation} live on every shard; "
            f"user 0 now sees {fresh[0].tolist()}"
        )

    print("\n== 4. item-partitioned fleet (page merge) ==")
    with ShardRouter(
        model, n_shards=4, history_log=split.train, partition="items"
    ) as fleet:
        got = fleet.recommend_batch(users[:200], k=10)
        assert np.array_equal(got, expected[:200])
        print(
            "each shard scored a quarter of the catalog; merged pages "
            "match the exact ranking"
        )

    print("\ndone.")


if __name__ == "__main__":
    main()
