"""Quickstart: train a taxonomy-aware recommender and make recommendations.

This walks the whole public API in ~80 lines:

1. generate a synthetic purchase log over a product taxonomy,
2. split it temporally per user (the paper's protocol),
3. train the TF model and the MF baseline through the unified
   ``repro.train`` front door (SerialTrainer + callbacks),
4. compare AUC / mean rank (plus top-k serving metrics),
5. package the model as a ModelBundle and serve a batch of users
   through RecommenderService — the recommended inference entry point.

Run:
    python examples/quickstart.py

See ``examples/experiment_specs.py`` for the declarative way to run the
same comparison from one JSON file (``python -m repro run``).
"""

import tempfile
from pathlib import Path

from repro import (
    EarlyStopping,
    LRSchedule,
    MFModel,
    ModelBundle,
    RecommenderService,
    SerialTrainer,
    SyntheticConfig,
    TaxonomyFactorModel,
    TrainConfig,
    evaluate_model,
    evaluate_topk,
    generate_dataset,
    train_test_split,
)
from repro.core.topk import top_k


def main() -> None:
    # 1. A laptop-scale dataset with the paper's statistical shape:
    #    sparse users, heavy-tailed item popularity, taxonomy-correlated
    #    co-purchases.
    data = generate_dataset(
        SyntheticConfig(n_users=2000, mean_transactions=3.0, seed=7)
    )
    print(f"dataset:  {data.log}")
    print(f"taxonomy: {data.taxonomy}")

    # 2. Per-user temporal split: ~50% of each user's transactions train
    #    the model; later transactions are held out for evaluation.
    split = train_test_split(data.log, mu=0.5, seed=0)
    print(
        f"split:    {split.train.n_purchases} train purchases / "
        f"{split.test.n_purchases} test purchases"
    )

    # 3. Train TF(4,0) — full taxonomy, no Markov term — and MF(0)
    #    through the unified Trainer API.  Callbacks work identically on
    #    the serial, threaded, and online backends: here a step schedule
    #    halves the learning rate every 5 epochs and early stopping
    #    halts once the training loss plateaus.
    config = TrainConfig(factors=20, epochs=10, sibling_ratio=0.5, seed=0)
    callbacks = [
        LRSchedule.step(drop=0.5, every=5),
        EarlyStopping(monitor="loss", patience=3),
    ]
    tf = TaxonomyFactorModel(data.taxonomy, config)
    result = SerialTrainer(tf, callbacks=callbacks).train(split.train)
    print(f"trained:  {result}")
    mf = MFModel(data.taxonomy, config)
    SerialTrainer(mf, callbacks=callbacks).train(split.train)

    # 4. Evaluate with the paper's protocol (predict the first test
    #    transaction of every user, AUC over all items).
    for name, model in [("MF(0)", mf), ("TF(4,0)", tf)]:
        result = evaluate_model(model, split)
        topk = evaluate_topk(model, split, k=10)
        print(
            f"{name:8s} AUC={result.auc:.4f}  "
            f"meanRank={result.mean_rank:.1f}  "
            f"hitRate@10={topk.hit_rate:.3f}  ({result.n_users} users)"
        )

    # 5. Serve: package the model as a one-directory bundle, reload it, and
    #    answer a batch of requests through the RecommenderService front
    #    door (one vectorized pass for all known users).
    with tempfile.TemporaryDirectory() as tmp:
        bundle_dir = Path(tmp) / "tf-bundle"
        ModelBundle(tf, extra={"mu": 0.5}).save(bundle_dir)
        served = ModelBundle.load(bundle_dir).model.attach_log(split.train)

    service = RecommenderService(served)
    users = [0, 1, 2]
    batch = service.recommend_batch(users, k=5)
    taxonomy = data.taxonomy
    for row, user in enumerate(users):
        print(f"\ntop-5 recommendations for user {user}:")
        for item in batch[row]:
            node = taxonomy.node_of_item(int(item))
            category = taxonomy.name_of(int(taxonomy.parent[node]))
            print(f"  item {int(item):5d}  (category {category})")
    stats = service.stats
    print(
        f"\nserved {stats.requests} users at "
        f"{stats.requests_per_second:.0f} users/sec "
        f"({stats.nodes_scored} nodes scored)"
    )
    user = 0

    # Bonus: recommend at the category level — structured ranking the flat
    # MF model cannot produce.
    scores = tf.category_scores(user, level=1)
    best = top_k(scores, 3)
    names = [taxonomy.name_of(int(n)) for n in taxonomy.nodes_at_level(1)[best]]
    print(f"top-3 categories for user {user}: {names}")


if __name__ == "__main__":
    main()
