"""Quickstart: train a taxonomy-aware recommender and make recommendations.

This walks the whole public API in ~60 lines:

1. generate a synthetic purchase log over a product taxonomy,
2. split it temporally per user (the paper's protocol),
3. train the TF model and the MF baseline,
4. compare AUC / mean rank,
5. produce top-k recommendations for one user.

Run:
    python examples/quickstart.py
"""

from repro import (
    MFModel,
    SyntheticConfig,
    TaxonomyFactorModel,
    TrainConfig,
    evaluate_model,
    generate_dataset,
    train_test_split,
)


def main() -> None:
    # 1. A laptop-scale dataset with the paper's statistical shape:
    #    sparse users, heavy-tailed item popularity, taxonomy-correlated
    #    co-purchases.
    data = generate_dataset(
        SyntheticConfig(n_users=2000, mean_transactions=3.0, seed=7)
    )
    print(f"dataset:  {data.log}")
    print(f"taxonomy: {data.taxonomy}")

    # 2. Per-user temporal split: ~50% of each user's transactions train
    #    the model; later transactions are held out for evaluation.
    split = train_test_split(data.log, mu=0.5, seed=0)
    print(
        f"split:    {split.train.n_purchases} train purchases / "
        f"{split.test.n_purchases} test purchases"
    )

    # 3. Train TF(4,0) — full taxonomy, no Markov term — and MF(0).
    config = TrainConfig(factors=20, epochs=10, sibling_ratio=0.5, seed=0)
    tf = TaxonomyFactorModel(data.taxonomy, config).fit(split.train)
    mf = MFModel(data.taxonomy, config).fit(split.train)

    # 4. Evaluate with the paper's protocol (predict the first test
    #    transaction of every user, AUC over all items).
    for name, model in [("MF(0)", mf), ("TF(4,0)", tf)]:
        result = evaluate_model(model, split)
        print(
            f"{name:8s} AUC={result.auc:.4f}  "
            f"meanRank={result.mean_rank:.1f}  ({result.n_users} users)"
        )

    # 5. Recommend: top-5 new items for user 0, with category names.
    user = 0
    top = tf.recommend(user, k=5)
    print(f"\ntop-5 recommendations for user {user}:")
    taxonomy = data.taxonomy
    for item in top:
        node = taxonomy.node_of_item(int(item))
        category = taxonomy.name_of(int(taxonomy.parent[node]))
        print(f"  item {int(item):5d}  (category {category})")

    # Bonus: recommend at the category level — structured ranking the flat
    # MF model cannot produce.
    scores = tf.category_scores(user, level=1)
    best = scores.argsort()[::-1][:3]
    names = [taxonomy.name_of(int(n)) for n in taxonomy.nodes_at_level(1)[best]]
    print(f"top-3 categories for user {user}: {names}")


if __name__ == "__main__":
    main()
