"""Cold start: recommending products that have never been purchased.

The paper's motivating scenario (Sec. 1, Fig. 7c): new items are released
continuously, and a flat latent factor model can only rank them randomly —
there is no data to learn their factors from.  The TF model gives a new
item its *category's* effective factor (plus an untrained offset), so the
learned category preferences transfer immediately.

This example:
1. trains TF and MF on the training period,
2. finds the items that only ever appear in the test period,
3. compares how both models rank those items when users actually bought
   them,
4. shows a concrete new item ranked for a user who shops its category.

Run:
    python examples/cold_start_new_products.py
"""

import numpy as np

from repro import (
    MFModel,
    SyntheticConfig,
    TaxonomyFactorModel,
    TrainConfig,
    evaluate_cold_start,
    generate_dataset,
    train_test_split,
    train_model,
)


def main() -> None:
    # A dataset with 8% late-released items.
    data = generate_dataset(
        SyntheticConfig(
            n_users=2500,
            mean_transactions=3.5,
            new_item_fraction=0.08,
            seed=11,
        )
    )
    split = train_test_split(data.log, mu=0.5, seed=3)
    new_items = split.new_items()
    print(
        f"{new_items.size} of {data.n_items} items never appear in "
        f"training but are bought in the test period"
    )

    config = TrainConfig(factors=20, epochs=10, sibling_ratio=0.5, seed=0)
    tf = train_model(TaxonomyFactorModel(data.taxonomy, config), split.train)
    mf = train_model(MFModel(data.taxonomy, config), split.train)

    # Fig. 7(c)'s measurement: the normalized rank (1 = ranked first,
    # 0.5 = random) of every test purchase of a never-trained item.
    for name, model in [("MF(0)", mf), ("TF(4,0)", tf)]:
        result = evaluate_cold_start(model, split)
        print(
            f"{name:8s} cold-start score={result.score:.4f} "
            f"(mean rank {result.rank:.0f} of {data.n_items}, "
            f"{result.n_events} purchase events)"
        )

    # Zoom in on one new item: find a user who shops in its category and
    # see where each model ranks it.
    taxonomy = data.taxonomy
    item = int(new_items[0])
    leaf = int(data.leaf_of_item[item])
    shoppers = [
        user
        for user in range(min(2000, data.n_users))
        if any(
            int(data.leaf_of_item[i]) == leaf
            for i in split.train.user_items(user)
        )
    ]
    if shoppers:
        user = shoppers[0]
        for name, model in [("MF(0)", mf), ("TF(4,0)", tf)]:
            scores = model.score_items(user)
            rank = 1 + int((scores > scores[item]).sum())
            print(
                f"new item {item} (category {taxonomy.name_of(leaf)}) for "
                f"user {user} who shops that category: "
                f"{name} ranks it {rank} / {data.n_items}"
            )


if __name__ == "__main__":
    main()
