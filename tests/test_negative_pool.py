"""Tests for the negative-sampling pool option (cold-start ablation)."""

import numpy as np
import pytest

from repro.core.factors import FactorSet
from repro.core.sampling import TripleStore
from repro.core.sgd import SGDTrainer
from repro.core.tf_model import TaxonomyFactorModel
from repro.data.transactions import TransactionLog
from repro.taxonomy.generator import complete_taxonomy
from repro.utils.config import TrainConfig


@pytest.fixture()
def taxonomy():
    return complete_taxonomy((2, 2), items_per_leaf=2)  # 8 items


@pytest.fixture()
def log():
    # Items 6 and 7 are never purchased.
    return TransactionLog(
        [[[0, 1], [4]], [[2], [5]], [[3], [0]]],
        n_items=8,
    )


class TestTripleStorePool:
    def test_pool_restricts_negatives(self, log, rng):
        pool = np.array([2, 3])
        store = TripleStore(log, negative_pool=pool)
        negatives = store.sample_negatives(np.arange(store.n_triples), rng)
        assert set(negatives.tolist()) <= {2, 3}

    def test_pool_respects_basket_exclusion(self, log, rng):
        pool = np.array([0, 1, 2])
        store = TripleStore(log, negative_pool=pool)
        for _ in range(10):
            negatives = store.sample_negatives(np.arange(store.n_triples), rng)
            for k in range(store.n_triples):
                row = store.transaction_rows[k]
                assert int(negatives[k]) not in store.baskets[row]

    def test_empty_pool_rejected(self, log):
        with pytest.raises(ValueError):
            TripleStore(log, negative_pool=np.array([], dtype=np.int64))

    def test_none_pool_uses_universe(self, log, rng):
        store = TripleStore(log)
        negatives = store.sample_negatives(
            np.arange(store.n_triples), np.random.default_rng(1)
        )
        assert negatives.max() < log.n_items


class TestConfigValidation:
    def test_rejects_unknown_pool(self):
        with pytest.raises(ValueError, match="negative_pool"):
            TrainConfig(negative_pool="observed")

    def test_accepts_both_values(self):
        assert TrainConfig(negative_pool="all").negative_pool == "all"
        assert TrainConfig(negative_pool="purchased").negative_pool == "purchased"


class TestTrainingEffect:
    def test_purchased_pool_never_touches_unseen_items(self, taxonomy, log):
        """With pool='purchased', never-bought items keep their exact
        initialization — the cold-start-friendly behaviour."""
        cfg = TrainConfig(
            factors=4, epochs=4, taxonomy_levels=1,
            negative_pool="purchased", seed=0,
        )
        init = FactorSet(
            log.n_users, taxonomy, 4, 1, with_next=False,
            init_scale=cfg.init_scale, seed=cfg.seed,
        )
        fs = FactorSet(
            log.n_users, taxonomy, 4, 1, with_next=False,
            init_scale=cfg.init_scale, seed=cfg.seed,
        )
        SGDTrainer(fs, log, cfg).train()
        unseen_nodes = taxonomy.nodes_of_items(np.array([6, 7]))
        np.testing.assert_array_equal(fs.w[unseen_nodes], init.w[unseen_nodes])
        assert np.all(fs.bias[unseen_nodes] == 0)

    def test_all_pool_pushes_unseen_items_down(self, taxonomy, log):
        """With the paper's pool='all', unseen items receive only negative
        gradients: their bias must go negative."""
        cfg = TrainConfig(
            factors=4, epochs=8, taxonomy_levels=1,
            negative_pool="all", seed=0,
        )
        fs = FactorSet(
            log.n_users, taxonomy, 4, 1, with_next=False, seed=0
        )
        SGDTrainer(fs, log, cfg).train()
        unseen_nodes = taxonomy.nodes_of_items(np.array([6, 7]))
        assert np.all(fs.bias[unseen_nodes] < 0)

    def test_model_trains_with_purchased_pool(self, taxonomy, log):
        model = TaxonomyFactorModel(
            taxonomy,
            TrainConfig(
                factors=4, epochs=3, taxonomy_levels=3,
                negative_pool="purchased", seed=0,
            ),
        ).fit(log)
        assert np.isfinite(model.score_items(0)).all()
