"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_in,
    check_non_negative,
    check_positive,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)


class TestCheckFraction:
    def test_inclusive_bounds(self):
        check_fraction("x", 0.0)
        check_fraction("x", 1.0)

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_fraction("x", 0.0, inclusive=False)
        with pytest.raises(ValueError):
            check_fraction("x", 1.0, inclusive=False)
        check_fraction("x", 0.5, inclusive=False)

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_out_of_range(self, value):
        with pytest.raises(ValueError):
            check_fraction("x", value)


class TestCheckIn:
    def test_accepts_member(self):
        check_in("x", "a", ("a", "b"))

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="must be one of"):
            check_in("x", "c", ("a", "b"))


class TestCheckType:
    def test_accepts_instance(self):
        check_type("x", 3, int)

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "3", int)
