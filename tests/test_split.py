"""Tests for the train/test split protocol (paper Sec. 7.1)."""

import numpy as np
import pytest

from repro.data.split import (
    TrainTestSplit,
    first_transactions,
    holdout_last,
    train_test_split,
)
from repro.data.transactions import TransactionLog


@pytest.fixture()
def log():
    return TransactionLog(
        [
            [[0], [1], [2], [3]],
            [[4], [4], [5]],
            [[0, 1]],
        ],
        n_items=6,
    )


class TestTrainTestSplit:
    def test_partitions_transactions_temporally(self, log):
        split = train_test_split(log, mu=0.5, sigma=0.0, remove_repeats=False, seed=0)
        for user in range(log.n_users):
            train = split.train.user_transactions(user)
            test = split.test.user_transactions(user)
            rebuilt = [b.tolist() for b in train] + [b.tolist() for b in test]
            original = [b.tolist() for b in log.user_transactions(user)]
            assert rebuilt == original

    def test_mu_one_puts_everything_in_train(self, log):
        split = train_test_split(log, mu=1.0, sigma=0.0, seed=0)
        assert split.test.n_transactions == 0
        assert split.train.n_transactions == log.n_transactions

    def test_mu_zero_keeps_at_least_one_train_transaction(self, log):
        split = train_test_split(log, mu=0.0, sigma=0.0, seed=0)
        for user in range(log.n_users):
            assert len(split.train.user_transactions(user)) == 1

    def test_deterministic(self, log):
        a = train_test_split(log, mu=0.5, seed=3)
        b = train_test_split(log, mu=0.5, seed=3)
        assert a.train == b.train and a.test == b.test

    def test_larger_mu_gives_more_training_data(self):
        rows = [[[i % 7] for i in range(10)] for _ in range(60)]
        log = TransactionLog(rows, n_items=7)
        sparse = train_test_split(log, mu=0.25, seed=0, remove_repeats=False)
        dense = train_test_split(log, mu=0.75, seed=0, remove_repeats=False)
        assert dense.train.n_transactions > sparse.train.n_transactions

    def test_repeat_purchases_removed_from_test(self, log):
        # User 1 buys item 4 twice; with the cut after t=0 the second
        # purchase of 4 is a repeat and must disappear from test.
        split = train_test_split(log, mu=0.34, sigma=0.0, seed=0)
        test_items = [
            int(i)
            for b in split.test.user_transactions(1)
            for i in b
        ]
        assert 4 not in test_items

    def test_repeats_within_test_also_removed(self):
        log = TransactionLog([[[0], [1], [1], [2]]], n_items=3)
        split = train_test_split(log, mu=0.25, sigma=0.0, seed=0)
        flat = [int(i) for b in split.test.user_transactions(0) for i in b]
        assert flat == [1, 2]

    def test_remove_repeats_false_keeps_them(self, log):
        split = train_test_split(
            log, mu=0.34, sigma=0.0, remove_repeats=False, seed=0
        )
        test_items = [
            int(i) for b in split.test.user_transactions(1) for i in b
        ]
        assert 4 in test_items

    def test_invalid_mu(self, log):
        with pytest.raises(ValueError):
            train_test_split(log, mu=1.5)

    def test_test_users(self, log):
        split = train_test_split(log, mu=0.5, sigma=0.0, seed=0)
        users = split.test_users()
        assert all(
            len(split.test.user_transactions(int(u))) > 0 for u in users
        )

    def test_new_items(self):
        log = TransactionLog([[[0], [1]], [[0], [2]]], n_items=4)
        split = train_test_split(log, mu=0.5, sigma=0.0, seed=0)
        new = set(split.new_items().tolist())
        train_items = set(split.train.purchased_items().tolist())
        assert not (new & train_items)
        for item in new:
            assert item in set(split.test.purchased_items().tolist())


class TestHoldoutLast:
    def test_holds_out_last_transaction(self, log):
        head, tail = holdout_last(log, 1)
        assert len(head.user_transactions(0)) == 3
        assert tail.basket(0, 0).tolist() == [3]

    def test_short_histories_not_emptied(self, log):
        head, tail = holdout_last(log, 1)
        # User 2 has a single transaction: keep it in head.
        assert len(head.user_transactions(2)) == 1
        assert len(tail.user_transactions(2)) == 0

    def test_count_zero_is_identity(self, log):
        head, tail = holdout_last(log, 0)
        assert head == log
        assert tail.n_transactions == 0


class TestFirstTransactions:
    def test_keeps_first(self, log):
        first = first_transactions(log, 2)
        assert len(first.user_transactions(0)) == 2
        assert first.basket(0, 0).tolist() == [0]

    def test_count_larger_than_history(self, log):
        first = first_transactions(log, 10)
        assert first == log
