"""Tests for the metrics half of ``repro.obs`` (registry + exporters)."""

from __future__ import annotations

import json
import math
import threading

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    read_snapshot,
    to_json_lines,
    to_prometheus_text,
    to_table,
    write_snapshot,
)


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestCounter:
    def test_monotonic(self):
        counter = Counter("repro_x_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_as_dict(self):
        counter = Counter("repro_x_total", labels={"shard": "2"})
        counter.inc(4)
        record = counter.as_dict()
        assert record["type"] == "counter"
        assert record["value"] == 4.0
        assert record["labels"] == {"shard": "2"}


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("repro_x")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0


class TestHistogram:
    def test_bucketing_and_overflow(self):
        hist = Histogram("repro_x_seconds", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.bucket_counts == (1, 1, 1, 1)
        assert hist.count == 4
        assert hist.sum == pytest.approx(105.0)

    def test_weighted_observation_is_one_call(self):
        hist = Histogram("repro_x_seconds", buckets=(1.0, 2.0))
        hist.observe(1.5, count=1000)
        assert hist.count == 1000
        assert hist.bucket_counts == (0, 1000, 0)
        assert hist.sum == pytest.approx(1500.0)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram("repro_x_seconds", buckets=(2.0, 1.0))

    def test_percentile_interpolates(self):
        hist = Histogram("repro_x_seconds", buckets=(1.0, 2.0, 4.0))
        hist.observe(0.5)      # bucket (0, 1]
        hist.observe(1.5, 2)   # bucket (1, 2]
        assert hist.percentile(50) == pytest.approx(1.25)
        assert math.isnan(
            Histogram("repro_y_seconds", buckets=(1.0,)).percentile(50)
        )

    def test_percentile_overflow_clamps_to_largest_bound(self):
        hist = Histogram("repro_x_seconds", buckets=(1.0, 2.0))
        hist.observe(50.0)
        assert hist.percentile(99) == 2.0

    def test_default_buckets_cover_serving_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_LATENCY_BUCKETS[-1] == pytest.approx(60.0)
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_same_series_is_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", labels={"shard": "0"})
        b = registry.counter("repro_x_total", labels={"shard": "0"})
        c = registry.counter("repro_x_total", labels={"shard": "1"})
        assert a is b and a is not c

    def test_label_order_does_not_split_series(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", labels={"a": "1", "b": "2"})
        b = registry.counter("repro_x_total", labels={"b": "2", "a": "1"})
        assert a is b

    def test_kind_collision_rejected_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labels={"shard": "0"})
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total", labels={"shard": "1"})

    def test_concurrent_mutation_exact_counts(self):
        """N threads hammering shared series lose no increments."""
        registry = MetricsRegistry()
        n_threads, n_iter = 8, 2000
        barrier = threading.Barrier(n_threads)

        def worker(tid: int) -> None:
            counter = registry.counter("repro_hits_total")
            own = registry.counter(
                "repro_per_thread_total", labels={"thread": str(tid)}
            )
            hist = registry.histogram(
                "repro_lat_seconds", buckets=(0.001, 0.01, 0.1)
            )
            barrier.wait()
            for i in range(n_iter):
                counter.inc()
                own.inc()
                hist.observe(0.005)

        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("repro_hits_total").value == (
            n_threads * n_iter
        )
        for tid in range(n_threads):
            assert registry.counter(
                "repro_per_thread_total", labels={"thread": str(tid)}
            ).value == n_iter
        hist = registry.histogram(
            "repro_lat_seconds", buckets=(0.001, 0.01, 0.1)
        )
        assert hist.count == n_threads * n_iter
        assert hist.bucket_counts[1] == n_threads * n_iter

    def test_snapshot_is_deterministic_under_seeded_load(self):
        """Two registries fed the same seeded workload snapshot equal."""

        def build(seed: int) -> dict:
            rng = np.random.default_rng(seed)
            registry = MetricsRegistry()
            for _ in range(500):
                shard = str(rng.integers(0, 4))
                registry.counter(
                    "repro_reqs_total", labels={"shard": shard}
                ).inc()
                registry.histogram(
                    "repro_lat_seconds", labels={"shard": shard}
                ).observe(float(rng.uniform(0.0001, 0.5)))
            registry.gauge("repro_loss").set(0.25)
            return registry.snapshot()

        first, second = build(7), build(7)
        assert first == second
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        names = [m["name"] for m in first["metrics"]]
        assert names == sorted(names)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
@pytest.fixture()
def snapshot():
    registry = MetricsRegistry()
    registry.counter(
        "repro_requests_total", help="Requests served.", labels={"shard": "0"}
    ).inc(3)
    registry.gauge("repro_loss").set(0.5)
    hist = registry.histogram(
        "repro_latency_seconds", buckets=(0.001, 0.01, 0.1)
    )
    hist.observe(0.005, count=10)
    hist.observe(0.5)
    return registry.snapshot()


class TestExporters:
    def test_prometheus_text(self, snapshot):
        text = to_prometheus_text(snapshot)
        assert '# TYPE repro_requests_total counter' in text
        assert 'repro_requests_total{shard="0"} 3.0' in text
        assert '# HELP repro_requests_total Requests served.' in text
        assert 'repro_latency_seconds_bucket{le="0.01"} 10' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 11' in text
        assert 'repro_latency_seconds_count 11' in text
        assert text.endswith("\n")

    def test_json_lines_one_object_per_series(self, snapshot):
        lines = to_json_lines(snapshot).strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert len(parsed) == 3
        assert {m["name"] for m in parsed} == {
            "repro_requests_total", "repro_loss", "repro_latency_seconds",
        }

    def test_table_shows_percentiles(self, snapshot):
        table = to_table(snapshot)
        assert "repro_latency_seconds" in table
        assert "count=11" in table
        assert "p99=" in table

    def test_table_shows_explicit_overflow_count(self, snapshot):
        # The fixture's 0.5s observation lands past the last 0.1s bound;
        # the table must surface it explicitly instead of letting it
        # silently saturate the percentiles.
        assert "+Inf=1" in to_table(snapshot)

    def test_table_omits_overflow_cell_when_all_in_range(self):
        registry = MetricsRegistry()
        registry.histogram(
            "repro_fast_seconds", buckets=(0.001, 0.01, 0.1)
        ).observe(0.005)
        assert "+Inf" not in to_table(registry.snapshot())

    def test_snapshot_roundtrip(self, snapshot, tmp_path):
        path = tmp_path / "metrics.json"
        write_snapshot(path, snapshot)
        assert read_snapshot(path) == snapshot

    def test_read_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"schema": "something/v9", "metrics": []}')
        with pytest.raises(ValueError, match="repro.obs/v1"):
            read_snapshot(path)

    def test_merge_resorts(self, snapshot):
        other = MetricsRegistry()
        other.counter("repro_aaa_total").inc()
        merged = merge_snapshots([snapshot, other.snapshot()])
        names = [m["name"] for m in merged["metrics"]]
        assert names == sorted(names)
        assert merged["schema"] == "repro.obs/v1"
