"""Property-based tests (hypothesis) for taxonomy invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.taxonomy.tree import ROOT, Taxonomy


@st.composite
def random_trees(draw, max_nodes: int = 40):
    """Random valid parent arrays: node v attaches to some earlier node."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    parent = [-1]
    for v in range(1, n):
        parent.append(draw(st.integers(min_value=0, max_value=v - 1)))
    return Taxonomy(parent)


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_levels_are_parent_plus_one(tax):
    for v in range(1, tax.n_nodes):
        assert tax.level[v] == tax.level[tax.parent[v]] + 1


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_items_partition_leaves(tax):
    for v in range(tax.n_nodes):
        is_item = tax.item_of_node(v) >= 0
        assert is_item == (tax.children(v).size == 0)


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_ancestor_matrix_matches_paths(tax):
    full = tax.ancestor_matrix()
    for v in range(tax.n_nodes):
        chain = [x for x in full[v] if x != tax.pad_id]
        assert chain == tax.path_to_root(v)
        assert chain[-1] == ROOT


@given(random_trees(), st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_truncated_matrix_is_prefix_of_full(tax, levels):
    full = tax.ancestor_matrix()
    trunc = tax.ancestor_matrix(levels)
    width = min(levels, full.shape[1])
    assert np.array_equal(trunc[:, :width], full[:, :width])


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_siblings_share_parent_and_exclude_self(tax):
    for v in range(1, tax.n_nodes):
        sibs = tax.siblings(v)
        assert v not in sibs
        for s in sibs:
            assert tax.parent[s] == tax.parent[v]


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_subtree_items_cover_universe(tax):
    root_items = tax.subtree_items(ROOT)
    assert root_items.tolist() == list(range(tax.n_items))


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_level_sizes_sum_to_node_count(tax):
    assert sum(tax.level_sizes()) == tax.n_nodes


@given(random_trees(), st.integers(min_value=0, max_value=5))
@settings(max_examples=60, deadline=None)
def test_item_category_is_ancestor_at_that_level(tax, level):
    items = np.arange(tax.n_items)
    cats = tax.item_category(items, level)
    for item, cat in zip(items, cats):
        node = tax.node_of_item(int(item))
        path = tax.path_to_root(node)
        if level >= tax.level[node]:
            assert cat == node
        else:
            assert int(cat) in path
            assert tax.level[int(cat)] == level
