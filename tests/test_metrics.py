"""Tests for the ranking metrics (paper Sec. 7.3)."""

import numpy as np
import pytest

from repro.eval.metrics import (
    auc,
    hit_at_k,
    mean_rank,
    nanmean,
    ndcg_at_k,
    precision_at_k,
    ranks_from_scores,
    recall_at_k,
    reciprocal_rank,
)


class TestRanksFromScores:
    def test_descending(self):
        ranks = ranks_from_scores(np.array([0.1, 0.9, 0.5]))
        assert ranks.tolist() == [3.0, 1.0, 2.0]

    def test_tie_averaging(self):
        ranks = ranks_from_scores(np.array([0.5, 0.5, 0.1]))
        assert ranks.tolist() == [1.5, 1.5, 3.0]


class TestAuc:
    def test_matches_paper_formula_bruteforce(self, rng):
        """AUC == 1/(|T||X\\T|) Σ δ(r(x) < r(y)) with half credit on ties."""
        for _ in range(20):
            scores = rng.integers(0, 8, size=12).astype(float)  # forces ties
            positives = rng.choice(12, size=3, replace=False)
            ranks = ranks_from_scores(scores)
            negatives = np.setdiff1d(np.arange(12), positives)
            brute = 0.0
            for x in positives:
                for y in negatives:
                    if ranks[x] < ranks[y]:
                        brute += 1.0
                    elif ranks[x] == ranks[y]:
                        brute += 0.5
            brute /= positives.size * negatives.size
            assert auc(scores, positives) == pytest.approx(brute)

    def test_perfect_ranking(self):
        assert auc(np.array([3.0, 2.0, 1.0, 0.0]), [0]) == 1.0

    def test_worst_ranking(self):
        assert auc(np.array([3.0, 2.0, 1.0, 0.0]), [3]) == 0.0

    def test_paper_example_rank_insensitivity(self):
        """Sec. 7.3: with 1M items, rank 10_000 → AUC ≈ 0.99 while rank
        100 → 0.9999 — AUC barely distinguishes them."""
        n = 1_000_000
        scores = -np.arange(n, dtype=float)
        auc_deep = auc(scores, [10_000 - 1])
        auc_shallow = auc(scores, [100 - 1])
        assert auc_deep == pytest.approx(0.99, abs=0.001)
        assert auc_shallow == pytest.approx(0.9999, abs=0.0001)

    def test_all_positive_is_nan(self):
        assert np.isnan(auc(np.array([1.0, 2.0]), [0, 1]))

    def test_no_positives_is_nan(self):
        assert np.isnan(auc(np.array([1.0, 2.0]), []))

    def test_out_of_range_positive_rejected(self):
        with pytest.raises(ValueError):
            auc(np.array([1.0, 2.0]), [5])


class TestMeanRank:
    def test_basic(self):
        scores = np.array([0.9, 0.5, 0.1, 0.7])
        assert mean_rank(scores, [0]) == 1.0
        assert mean_rank(scores, [2]) == 4.0
        assert mean_rank(scores, [0, 2]) == 2.5

    def test_ties_averaged(self):
        scores = np.array([1.0, 1.0, 0.0])
        assert mean_rank(scores, [0]) == 1.5

    def test_empty_is_nan(self):
        assert np.isnan(mean_rank(np.array([1.0]), []))


class TestTopKMetrics:
    SCORES = np.array([0.9, 0.8, 0.7, 0.1, 0.0])

    def test_hit(self):
        assert hit_at_k(self.SCORES, [1], k=2) == 1.0
        assert hit_at_k(self.SCORES, [3], k=2) == 0.0

    def test_precision(self):
        assert precision_at_k(self.SCORES, [0, 1], k=2) == 1.0
        assert precision_at_k(self.SCORES, [0, 3], k=2) == 0.5

    def test_recall(self):
        assert recall_at_k(self.SCORES, [0, 3], k=2) == 0.5
        assert recall_at_k(self.SCORES, [0], k=1) == 1.0

    def test_reciprocal_rank(self):
        assert reciprocal_rank(self.SCORES, [2]) == pytest.approx(1 / 3)
        assert reciprocal_rank(self.SCORES, [2, 0]) == 1.0

    def test_ndcg_perfect(self):
        assert ndcg_at_k(self.SCORES, [0, 1], k=2) == pytest.approx(1.0)

    def test_ndcg_partial(self):
        value = ndcg_at_k(self.SCORES, [0, 4], k=2)
        assert 0.0 < value < 1.0

    def test_empty_positives_nan(self):
        assert np.isnan(hit_at_k(self.SCORES, [], k=2))
        assert np.isnan(ndcg_at_k(self.SCORES, [], k=2))


class TestNanmean:
    def test_ignores_nans(self):
        assert nanmean([1.0, float("nan"), 3.0]) == 2.0

    def test_all_nan_is_nan_without_warning(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert np.isnan(nanmean([float("nan")]))

    def test_empty_is_nan(self):
        assert np.isnan(nanmean([]))
