"""Tests for the locking primitives."""

import threading
import time

import pytest

from repro.parallel.locks import RWLock, StripedLockManager


class TestRWLock:
    def test_multiple_readers(self):
        lock = RWLock()
        inside = []

        def reader():
            with lock.reading():
                inside.append(1)
                time.sleep(0.02)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        assert len(inside) == 4
        assert elapsed < 0.08  # readers overlapped

    def test_writer_excludes_readers(self):
        lock = RWLock()
        order = []

        def writer():
            with lock.writing():
                order.append("w-start")
                time.sleep(0.03)
                order.append("w-end")

        def reader():
            time.sleep(0.01)  # let the writer in first
            with lock.reading():
                order.append("r")

        tw = threading.Thread(target=writer)
        tr = threading.Thread(target=reader)
        tw.start()
        tr.start()
        tw.join()
        tr.join()
        assert order == ["w-start", "w-end", "r"]

    def test_writers_are_exclusive(self):
        lock = RWLock()
        counter = {"value": 0, "max_seen": 0}

        def writer():
            for _ in range(50):
                with lock.writing():
                    counter["value"] += 1
                    counter["max_seen"] = max(counter["max_seen"], counter["value"])
                    counter["value"] -= 1

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["max_seen"] == 1


class TestStripedLockManager:
    def test_stripe_mapping_is_stable(self):
        manager = StripedLockManager(8)
        assert manager.stripe_of(3) == manager.stripe_of(11)

    def test_counts_acquisitions(self):
        manager = StripedLockManager(8)
        with manager.locking([1, 2, 3]):
            pass
        assert manager.acquisitions == 3
        assert manager.contention_rate == 0.0

    def test_duplicate_rows_deduplicate(self):
        manager = StripedLockManager(8)
        with manager.locking([1, 9, 17]):  # same stripe when 8 stripes
            pass
        assert manager.acquisitions == 1

    def test_detects_contention(self):
        manager = StripedLockManager(4)
        barrier = threading.Barrier(2)

        def holder():
            with manager.locking([0]):
                barrier.wait()
                time.sleep(0.05)

        def contender():
            barrier.wait()
            time.sleep(0.01)
            with manager.locking([0]):
                pass

        t1 = threading.Thread(target=holder)
        t2 = threading.Thread(target=contender)
        t1.start()
        t2.start()
        t1.join()
        t2.join()
        assert manager.contended >= 1

    def test_no_deadlock_with_opposite_orders(self):
        manager = StripedLockManager(16)
        done = []

        def worker(rows):
            for _ in range(200):
                with manager.locking(rows):
                    pass
            done.append(1)

        t1 = threading.Thread(target=worker, args=([1, 2, 3],))
        t2 = threading.Thread(target=worker, args=([3, 2, 1],))
        t1.start()
        t2.start()
        t1.join(timeout=10)
        t2.join(timeout=10)
        assert len(done) == 2

    def test_reset_stats(self):
        manager = StripedLockManager(4)
        with manager.locking([0]):
            pass
        manager.reset_stats()
        assert manager.acquisitions == 0

    def test_rejects_zero_stripes(self):
        with pytest.raises(ValueError):
            StripedLockManager(0)
