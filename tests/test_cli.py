"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro import __version__
from repro.cli import main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A generated dataset plus a trained model bundle on disk."""
    directory = tmp_path_factory.mktemp("cli")
    assert (
        main(
            [
                "generate",
                "--out-dir",
                str(directory),
                "--users",
                "300",
                "--seed",
                "3",
            ]
        )
        == 0
    )
    model_path = directory / "tf-bundle"
    assert (
        main(
            [
                "train",
                "--data-dir",
                str(directory),
                "--model",
                str(model_path),
                "--factors",
                "8",
                "--epochs",
                "3",
            ]
        )
        == 0
    )
    return directory, model_path


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestGenerate:
    def test_writes_both_files(self, workspace):
        directory, _ = workspace
        assert (directory / "taxonomy.json").exists()
        assert (directory / "transactions.jsonl").exists()


class TestTrain:
    def test_writes_bundle_directory(self, workspace):
        _, model_path = workspace
        assert (model_path / "manifest.json").exists()
        assert (model_path / "factors.npz").exists()
        assert (model_path / "taxonomy.json").exists()
        manifest = json.loads((model_path / "manifest.json").read_text())
        assert manifest["format"] == "repro-model-bundle"
        assert manifest["config"]["taxonomy_levels"] == 4
        assert manifest["extra"]["mu"] == 0.5

    def test_mf_baseline_via_levels_one(self, workspace, capsys):
        directory, _ = workspace
        mf_path = directory / "mf-bundle"
        assert (
            main(
                [
                    "train",
                    "--data-dir",
                    str(directory),
                    "--model",
                    str(mf_path),
                    "--levels",
                    "1",
                    "--epochs",
                    "2",
                    "--factors",
                    "8",
                ]
            )
            == 0
        )
        manifest = json.loads((mf_path / "manifest.json").read_text())
        assert manifest["model_class"] == "MFModel"


class TestEvaluate:
    def test_prints_metrics(self, workspace, capsys):
        directory, model_path = workspace
        assert (
            main(
                ["evaluate", "--data-dir", str(directory), "--model", str(model_path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "AUC=" in out and "meanRank=" in out
        assert "precision@10=" in out and "hitRate@10=" in out


class TestRecommend:
    def test_prints_k_items(self, workspace, capsys):
        directory, model_path = workspace
        assert (
            main(
                [
                    "recommend",
                    "--data-dir",
                    str(directory),
                    "--model",
                    str(model_path),
                    "--user",
                    "0",
                    "-k",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 5
        assert all("category=" in line for line in out)

    def test_rejects_unknown_user(self, workspace):
        directory, model_path = workspace
        with pytest.raises(SystemExit):
            main(
                [
                    "recommend",
                    "--data-dir",
                    str(directory),
                    "--model",
                    str(model_path),
                    "--user",
                    "99999",
                ]
            )


class TestServeBatch:
    def test_writes_jsonl(self, workspace, capsys, tmp_path):
        directory, model_path = workspace
        out_path = tmp_path / "recs.jsonl"
        assert (
            main(
                [
                    "serve-batch",
                    "--data-dir",
                    str(directory),
                    "--model",
                    str(model_path),
                    "--users",
                    "0:20",
                    "-k",
                    "5",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        lines = out_path.read_text().strip().splitlines()
        assert len(lines) == 20
        first = json.loads(lines[0])
        assert first["user"] == 0
        assert len(first["items"]) == 5
        out = capsys.readouterr().out
        assert "served 20 users" in out

    def test_user_list_to_stdout(self, workspace, capsys):
        directory, model_path = workspace
        assert (
            main(
                [
                    "serve-batch",
                    "--data-dir",
                    str(directory),
                    "--model",
                    str(model_path),
                    "--users",
                    "3,1,4",
                    "-k",
                    "3",
                ]
            )
            == 0
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert [json.loads(line)["user"] for line in lines] == [3, 1, 4]

    def test_cascade_mode(self, workspace, capsys):
        directory, model_path = workspace
        assert (
            main(
                [
                    "serve-batch",
                    "--data-dir",
                    str(directory),
                    "--model",
                    str(model_path),
                    "--users",
                    "0:5",
                    "--cascade",
                    "0.5",
                ]
            )
            == 0
        )
        assert len(capsys.readouterr().out.strip().splitlines()) == 5

    def test_rejects_out_of_range_users(self, workspace):
        directory, model_path = workspace
        with pytest.raises(SystemExit, match="out of range"):
            main(
                [
                    "serve-batch",
                    "--data-dir",
                    str(directory),
                    "--model",
                    str(model_path),
                    "--users",
                    "99999",
                ]
            )

    def _serve(self, directory, model_path, out_path, *flags):
        assert (
            main(
                [
                    "serve-batch",
                    "--data-dir", str(directory),
                    "--model", str(model_path),
                    "--users", "0:30",
                    "-k", "5",
                    "--out", str(out_path),
                    *flags,
                ]
            )
            == 0
        )
        return out_path.read_text()

    def test_pruned_retrieval_identical_output(
        self, workspace, capsys, tmp_path
    ):
        directory, model_path = workspace
        exact = self._serve(directory, model_path, tmp_path / "e.jsonl")
        pruned = self._serve(
            directory, model_path, tmp_path / "p.jsonl",
            "--retrieval", "pruned",
        )
        capsys.readouterr()
        assert pruned == exact

    def test_bundle_retrieval_hint_is_default(
        self, workspace, capsys, tmp_path
    ):
        """A bundle saved with extra={"retrieval": "pruned"} serves pruned
        unless the flag overrides it."""
        from repro.serving.bundle import ModelBundle

        directory, model_path = workspace
        bundle = ModelBundle.load(model_path)
        bundle.extra["retrieval"] = "pruned"
        hinted_path = tmp_path / "hinted"
        bundle.save(hinted_path)
        hinted = self._serve(directory, hinted_path, tmp_path / "h.jsonl")
        exact = self._serve(directory, model_path, tmp_path / "e.jsonl")
        capsys.readouterr()
        assert hinted == exact  # identical rankings, different engine

    def test_retrieval_resolution_precedence(self):
        """Flag beats hint beats default — checked directly, because the
        end-to-end outputs above are bit-identical either way (the
        exactness guarantee) and cannot distinguish the engines."""
        import argparse

        from repro.cli import _serving_retrieval

        flag = lambda value: argparse.Namespace(retrieval=value)
        assert _serving_retrieval(flag(None), {}) == "exact"
        assert (
            _serving_retrieval(flag(None), {"retrieval": "pruned"})
            == "pruned"
        )
        assert (
            _serving_retrieval(flag("exact"), {"retrieval": "pruned"})
            == "exact"
        )

    def test_bad_bundle_retrieval_hint_rejected(
        self, workspace, capsys, tmp_path
    ):
        from repro.serving.bundle import ModelBundle

        directory, model_path = workspace
        bundle = ModelBundle.load(model_path)
        bundle.extra["retrieval"] = "warp-speed"
        bad_path = tmp_path / "bad"
        bundle.save(bad_path)
        with pytest.raises(SystemExit, match="retrieval"):
            self._serve(directory, bad_path, tmp_path / "b.jsonl")
        capsys.readouterr()

    def test_pruned_rejects_cascade(self, workspace, tmp_path):
        directory, model_path = workspace
        with pytest.raises(SystemExit, match="cascade"):
            self._serve(
                directory, model_path, tmp_path / "x.jsonl",
                "--retrieval", "pruned", "--cascade", "0.5",
            )

    @pytest.mark.parametrize(
        "flags",
        [
            ("--retrieval", "budget"),
            ("--retrieval", "budget", "--budget", "1000000"),
            ("--retrieval", "ivf"),
            ("--retrieval", "ivf", "--nprobe", "1000000"),
        ],
    )
    def test_exhaustive_approximate_modes_match_exact(
        self, workspace, capsys, tmp_path, flags
    ):
        """No knob (or a knob covering the catalog) means the approximate
        engines return the exact ranking — through the CLI too."""
        directory, model_path = workspace
        exact = self._serve(directory, model_path, tmp_path / "e.jsonl")
        approx = self._serve(
            directory, model_path, tmp_path / "a.jsonl", *flags
        )
        capsys.readouterr()
        assert approx == exact

    def test_budget_served_and_deterministic(
        self, workspace, capsys, tmp_path
    ):
        directory, model_path = workspace
        flags = ("--retrieval", "budget", "--budget", "7")
        first = self._serve(directory, model_path, tmp_path / "b1.jsonl", *flags)
        second = self._serve(directory, model_path, tmp_path / "b2.jsonl", *flags)
        capsys.readouterr()
        assert first == second
        assert len(first.strip().splitlines()) == 30

    def test_bundle_knob_hints_are_defaults(self, workspace, capsys, tmp_path):
        """extra={"retrieval": "budget", "budget": N} serves budgeted
        retrieval with the saved operating point, no flags needed."""
        from repro.serving.bundle import ModelBundle

        directory, model_path = workspace
        bundle = ModelBundle.load(model_path)
        bundle.extra.update({"retrieval": "budget", "budget": 7})
        hinted_path = tmp_path / "hinted"
        bundle.save(hinted_path)
        hinted = self._serve(directory, hinted_path, tmp_path / "h.jsonl")
        flagged = self._serve(
            directory, model_path, tmp_path / "f.jsonl",
            "--retrieval", "budget", "--budget", "7",
        )
        capsys.readouterr()
        assert hinted == flagged

    def test_bad_bundle_knob_hint_rejected(self, workspace, capsys, tmp_path):
        from repro.serving.bundle import ModelBundle

        directory, model_path = workspace
        bundle = ModelBundle.load(model_path)
        bundle.extra.update({"retrieval": "ivf", "nprobe": "many"})
        bad_path = tmp_path / "bad"
        bundle.save(bad_path)
        with pytest.raises(SystemExit, match="nprobe"):
            self._serve(directory, bad_path, tmp_path / "b.jsonl")
        capsys.readouterr()

    def test_knob_with_wrong_mode_rejected(self, workspace, tmp_path):
        directory, model_path = workspace
        with pytest.raises(SystemExit, match="budget"):
            self._serve(
                directory, model_path, tmp_path / "x.jsonl",
                "--retrieval", "ivf", "--budget", "100",
            )


class TestLegacyModelShim:
    def test_reads_npz_with_meta_sidecar(self, workspace, capsys):
        directory, model_path = workspace
        from repro.serving.bundle import ModelBundle

        bundle = ModelBundle.load(model_path)
        legacy_path = directory / "legacy.npz"
        bundle.model.factor_set.save(legacy_path)
        Path(str(legacy_path) + ".meta.json").write_text(
            json.dumps({"levels": 4, "markov": 0, "mu": 0.5, "seed": 0})
        )
        with pytest.warns(DeprecationWarning, match="deprecated"):
            assert (
                main(
                    [
                        "evaluate",
                        "--data-dir",
                        str(directory),
                        "--model",
                        str(legacy_path),
                    ]
                )
                == 0
            )
        assert "AUC=" in capsys.readouterr().out

    def test_baseline_bundle_rejected_cleanly(self, workspace, tmp_path):
        directory, _ = workspace
        from repro import PopularityModel, TransactionLog
        from repro.serving.bundle import ModelBundle

        log = TransactionLog.load(directory / "transactions.jsonl")
        ModelBundle(PopularityModel().fit(log)).save(tmp_path / "pop")
        with pytest.raises(SystemExit, match="PopularityModel"):
            main(
                [
                    "recommend",
                    "--data-dir",
                    str(directory),
                    "--model",
                    str(tmp_path / "pop"),
                    "--user",
                    "0",
                ]
            )

    def test_missing_model_path(self, workspace):
        directory, _ = workspace
        with pytest.raises(SystemExit, match="no model bundle"):
            main(
                [
                    "evaluate",
                    "--data-dir",
                    str(directory),
                    "--model",
                    str(directory / "nope"),
                ]
            )


class TestStream:
    def test_streams_and_checkpoints(self, workspace, capsys, tmp_path):
        directory, model_path = workspace
        ckpts = tmp_path / "ckpts"
        assert (
            main(
                [
                    "stream",
                    "--data-dir",
                    str(directory),
                    "--model",
                    str(model_path),
                    "--events",
                    "200",
                    "--batch-size",
                    "64",
                    "--swap-every",
                    "2",
                    "--checkpoints",
                    str(ckpts),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "events/sec" in out
        assert "published" in out
        assert "post-stream user 0" in out
        assert (ckpts / "LATEST").exists()
        assert (ckpts / "v0001" / "manifest.json").exists()

    def test_streams_without_checkpoints(self, workspace, capsys):
        directory, model_path = workspace
        assert (
            main(
                [
                    "stream",
                    "--data-dir",
                    str(directory),
                    "--model",
                    str(model_path),
                    "--events",
                    "50",
                ]
            )
            == 0
        )
        assert "checkpoints disabled" in capsys.readouterr().out


class TestStats:
    def test_prints_summary(self, workspace, capsys):
        directory, _ = workspace
        assert main(["stats", "--data-dir", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "purchases_per_user" in out
        assert "gini_popularity" in out


class TestGatewayCommands:
    def test_gateway_serves_for_duration_and_writes_metrics(
        self, workspace, capsys, tmp_path
    ):
        directory, model_path = workspace
        metrics = tmp_path / "gateway-metrics.json"
        assert (
            main(
                [
                    "gateway",
                    "--data-dir", str(directory),
                    "--model", str(model_path),
                    "--port", "0",
                    "--duration", "0.2",
                    "--metrics-out", str(metrics),
                ]
            )
            == 0
        )
        assert "gateway listening on" in capsys.readouterr().err
        assert metrics.exists()

    def test_loadgen_reports_against_a_live_gateway(self, capsys, tmp_path):
        import asyncio
        import threading

        import numpy as np

        from repro.gateway import Gateway, GatewayConfig

        class Backend:
            generation = 0
            n_users = 30

            def recommend_batch(self, users, k=10, histories=None):
                return np.asarray(
                    [[int(u)] * k for u in users], dtype=np.int64
                )

        ready = threading.Event()
        done = threading.Event()
        port_box = {}

        def serve():
            async def run():
                async with Gateway(Backend(), GatewayConfig()) as gateway:
                    port_box["port"] = gateway.port
                    ready.set()
                    while not done.is_set():
                        await asyncio.sleep(0.01)

            asyncio.run(run())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert ready.wait(timeout=5.0)
        out_path = tmp_path / "loadgen.json"
        try:
            status = main(
                [
                    "loadgen",
                    "--port", str(port_box["port"]),
                    "--duration", "0.3",
                    "--concurrency", "2",
                    "--out", str(out_path),
                ]
            )
        finally:
            done.set()
            thread.join(timeout=5.0)
        assert status == 0
        report = json.loads(out_path.read_text())
        assert report["ok"] > 0 and report["errors"] == 0
        assert report["generations"] == [0]
        assert "qps" in capsys.readouterr().err

    def test_loadgen_unreachable_gateway_fails_cleanly(self, capsys):
        # Without --users the healthz probe runs first and fails loudly.
        with pytest.raises(SystemExit, match="cannot reach gateway"):
            main(["loadgen", "--port", "1", "--duration", "0.1"])
        # With --users the fleet runs, every exchange errors, exit is 1.
        assert (
            main(
                ["loadgen", "--port", "1", "--duration", "0.1", "--users", "5"]
            )
            == 1
        )
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] == 0 and report["errors"] > 0


class TestErrors:
    def test_missing_data_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="missing"):
            main(["stats", "--data-dir", str(tmp_path)])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
