"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A generated dataset plus a trained model on disk."""
    directory = tmp_path_factory.mktemp("cli")
    assert (
        main(
            [
                "generate",
                "--out-dir",
                str(directory),
                "--users",
                "300",
                "--seed",
                "3",
            ]
        )
        == 0
    )
    model_path = directory / "tf.npz"
    assert (
        main(
            [
                "train",
                "--data-dir",
                str(directory),
                "--model",
                str(model_path),
                "--factors",
                "8",
                "--epochs",
                "3",
            ]
        )
        == 0
    )
    return directory, model_path


class TestGenerate:
    def test_writes_both_files(self, workspace):
        directory, _ = workspace
        assert (directory / "taxonomy.json").exists()
        assert (directory / "transactions.jsonl").exists()


class TestTrain:
    def test_writes_model_and_metadata(self, workspace):
        _, model_path = workspace
        assert model_path.exists()
        meta = json.loads(Path(str(model_path) + ".meta.json").read_text())
        assert meta["levels"] == 4

    def test_mf_baseline_via_levels_one(self, workspace, capsys):
        directory, _ = workspace
        mf_path = directory / "mf.npz"
        assert (
            main(
                [
                    "train",
                    "--data-dir",
                    str(directory),
                    "--model",
                    str(mf_path),
                    "--levels",
                    "1",
                    "--epochs",
                    "2",
                    "--factors",
                    "8",
                ]
            )
            == 0
        )
        assert mf_path.exists()


class TestEvaluate:
    def test_prints_metrics(self, workspace, capsys):
        directory, model_path = workspace
        assert (
            main(
                ["evaluate", "--data-dir", str(directory), "--model", str(model_path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "AUC=" in out and "meanRank=" in out


class TestRecommend:
    def test_prints_k_items(self, workspace, capsys):
        directory, model_path = workspace
        assert (
            main(
                [
                    "recommend",
                    "--data-dir",
                    str(directory),
                    "--model",
                    str(model_path),
                    "--user",
                    "0",
                    "-k",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 5
        assert all("category=" in line for line in out)

    def test_rejects_unknown_user(self, workspace):
        directory, model_path = workspace
        with pytest.raises(SystemExit):
            main(
                [
                    "recommend",
                    "--data-dir",
                    str(directory),
                    "--model",
                    str(model_path),
                    "--user",
                    "99999",
                ]
            )


class TestStats:
    def test_prints_summary(self, workspace, capsys):
        directory, _ = workspace
        assert main(["stats", "--data-dir", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "purchases_per_user" in out
        assert "gini_popularity" in out


class TestErrors:
    def test_missing_data_dir(self, tmp_path):
        with pytest.raises(SystemExit, match="missing"):
            main(["stats", "--data-dir", str(tmp_path)])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
