"""Tests for ``repro.taxonomy.learn`` — the learnable-taxonomy layer.

Covers the PR's acceptance properties:

* ``learn_taxonomy`` is byte-identical across runs (full and sampled
  paths) and preserves the dense-index invariant (factor row *i* becomes
  dense item *i*);
* ``place_item`` picks categories deterministically from vector,
  co-purchase, or popularity evidence;
* ``refine_placements`` finds planted drift and respects its knobs;
* ``replant_items`` preserves every item's effective factors and bias
  while bumping the revision, so recommendations are unchanged;
* ``bootstrap_taxonomy`` yields a tree a TF model can train and serve
  through all retrieval modes, at quality no worse than the flat MF
  baseline it was bootstrapped from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.factors import FactorSet
from repro.core.mf_model import MFModel
from repro.core.tf_model import TaxonomyFactorModel
from repro.data.split import train_test_split
from repro.data.synthetic import generate_dataset
from repro.eval.protocol import evaluate_topk
from repro.serving.service import RecommenderService
from repro.taxonomy import (
    Taxonomy,
    bootstrap_taxonomy,
    category_centroids,
    learn_taxonomy,
    place_item,
    refine_placements,
    replant_items,
)
from repro.train.serial import SerialTrainer
from repro.utils.config import SyntheticConfig, TrainConfig


def _clustered_factors(
    n_clusters: int = 4, per_cluster: int = 6, dim: int = 8, seed: int = 0
) -> np.ndarray:
    """Well-separated Gaussian blobs — unambiguous cluster structure."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, 4.0, size=(n_clusters, dim))
    rows = [
        centers[c] + rng.normal(0.0, 0.05, size=dim)
        for c in range(n_clusters)
        for _ in range(per_cluster)
    ]
    return np.asarray(rows)


def _two_level_taxonomy(n_cats: int = 4, per_cat: int = 6) -> Taxonomy:
    parent = [-1] + [0] * n_cats
    for cat in range(1, n_cats + 1):
        parent += [cat] * per_cat
    return Taxonomy(parent)


class TestLearnTaxonomyDeterminism:
    def test_byte_identical_across_runs(self):
        factors = _clustered_factors(seed=3)
        a = learn_taxonomy(factors, branching=4, max_depth=2, seed=0)
        b = learn_taxonomy(factors, branching=4, max_depth=2, seed=0)
        assert np.array_equal(a.parent, b.parent)
        assert a.digest == b.digest

    def test_sampled_path_byte_identical_across_runs(self):
        factors = _clustered_factors(n_clusters=6, per_cluster=8, seed=5)
        a = learn_taxonomy(factors, branching=4, max_depth=3, seed=9, sample=24)
        b = learn_taxonomy(factors, branching=4, max_depth=3, seed=9, sample=24)
        assert np.array_equal(a.parent, b.parent)
        assert a.digest == b.digest

    def test_seed_only_matters_on_sampled_path(self):
        factors = _clustered_factors(seed=3)
        a = learn_taxonomy(factors, branching=4, max_depth=2, seed=0)
        b = learn_taxonomy(factors, branching=4, max_depth=2, seed=123)
        # Full agglomeration never draws from the RNG.
        assert a.digest == b.digest

    def test_dense_index_invariant(self):
        """Factor row i must come back as dense item i, for any depth."""
        factors = _clustered_factors(n_clusters=5, per_cluster=5, seed=1)
        for depth in (1, 2, 3):
            learned = learn_taxonomy(factors, branching=3, max_depth=depth)
            assert learned.n_items == factors.shape[0]
            n_interior = learned.n_nodes - learned.n_items
            assert np.array_equal(
                learned.items,
                np.arange(n_interior, learned.n_nodes),
            )

    def test_recovers_planted_blobs(self):
        factors = _clustered_factors(n_clusters=4, per_cluster=6, seed=7)
        learned = learn_taxonomy(factors, branching=4, max_depth=2)
        cats = learned.parent[learned.items]
        # Items 0-5 are one blob, 6-11 the next, etc. — each blob must
        # land in a single category, and distinct blobs in distinct ones.
        groups = {tuple(np.flatnonzero(cats == c).tolist()) for c in np.unique(cats)}
        expected = {tuple(range(b * 6, (b + 1) * 6)) for b in range(4)}
        assert groups == expected

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            learn_taxonomy(np.zeros((0, 4)))
        with pytest.raises(ValueError):
            learn_taxonomy(np.zeros(8))
        with pytest.raises(ValueError):
            learn_taxonomy(np.zeros((4, 2)), branching=1)


class TestPlaceItem:
    def setup_method(self):
        self.taxonomy = _two_level_taxonomy()
        self.factors = _clustered_factors(seed=11)

    def test_vector_evidence_hits_matching_category(self):
        nodes, centroids, _ = category_centroids(self.taxonomy, self.factors)
        for cat_pos in range(len(nodes)):
            got = place_item(self.taxonomy, self.factors, centroids[cat_pos])
            assert got == int(nodes[cat_pos])

    def test_copurchase_evidence(self):
        # Co-purchases all in category 2 (items 6..11) → placed there.
        got = place_item(
            self.taxonomy, self.factors, copurchased=[6, 7, 8]
        )
        assert got == int(self.taxonomy.parent[self.taxonomy.items[6]])

    def test_no_evidence_falls_back_to_popularity(self):
        counts = np.zeros(self.taxonomy.n_items)
        counts[18:24] = 5.0  # all purchase mass in the last category
        got = place_item(
            self.taxonomy, self.factors, item_counts=counts
        )
        assert got == int(self.taxonomy.parent[self.taxonomy.items[18]])

    def test_tie_breaks_to_lowest_node_id(self):
        # Identical factors everywhere → every category ties; the
        # deterministic winner is the lowest category node id.
        flat = np.ones_like(self.factors)
        got = place_item(self.taxonomy, flat, np.ones(flat.shape[1]))
        nodes, _, _ = category_centroids(self.taxonomy, flat)
        assert got == int(nodes.min())

    def test_is_deterministic(self):
        results = {
            place_item(self.taxonomy, self.factors, copurchased=[0, 13])
            for _ in range(5)
        }
        assert len(results) == 1

    def test_rejects_out_of_range_copurchase(self):
        with pytest.raises(ValueError):
            place_item(self.taxonomy, self.factors, copurchased=[99])


class TestRefinePlacements:
    def test_finds_planted_drift(self):
        taxonomy = _two_level_taxonomy()
        factors = _clustered_factors(seed=2)
        # Item 3 lives in category 1 but its factors are a category-3 blob.
        factors[3] = factors[14]
        moves = refine_placements(taxonomy, factors, min_gain=0.05)
        cat3 = int(taxonomy.parent[taxonomy.items[14]])
        assert moves.get(3) == cat3
        # Well-placed items stay put.
        assert set(moves) == {3}

    def test_max_moves_caps_and_keeps_best(self):
        taxonomy = _two_level_taxonomy()
        factors = _clustered_factors(seed=2)
        factors[3] = factors[14]   # strong drift
        factors[7] = factors[20]   # another strong drift
        all_moves = refine_placements(taxonomy, factors, min_gain=0.05)
        assert set(all_moves) == {3, 7}
        capped = refine_placements(
            taxonomy, factors, min_gain=0.05, max_moves=1
        )
        assert len(capped) == 1
        assert set(capped) <= {3, 7}

    def test_never_empties_a_category(self):
        # Two singleton categories with identical factors: neither item
        # may move, because its source category would be left empty.
        taxonomy = Taxonomy([-1, 0, 0, 1, 2])
        factors = np.ones((2, 4))
        assert refine_placements(taxonomy, factors, min_gain=0.0) == {}

    def test_is_deterministic(self):
        taxonomy = _two_level_taxonomy()
        factors = _clustered_factors(seed=8)
        factors[1] = factors[19]
        runs = [
            refine_placements(taxonomy, factors, min_gain=0.01)
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]


class TestReplantItems:
    def _model(self, seed: int = 4) -> TaxonomyFactorModel:
        taxonomy = _two_level_taxonomy()
        rng = np.random.default_rng(seed)
        factors = 4
        factor_set = FactorSet.from_arrays(
            taxonomy,
            user=rng.normal(0, 0.5, size=(24, factors)),
            w=rng.normal(0, 0.5, size=(taxonomy.n_nodes + 1, factors)),
            bias=rng.normal(0, 0.2, size=taxonomy.n_nodes + 1),
            levels=2,
            init_scale=0.1,
        )
        model = TaxonomyFactorModel(taxonomy, TrainConfig(factors=factors))
        model._factors = factor_set
        return model

    def test_preserves_effective_factors_and_bias(self):
        model = self._model()
        factors = model.factor_set
        before_eff = factors.effective_items(
            np.arange(model.taxonomy.n_items)
        ).copy()
        moves = {0: int(model.taxonomy.parent[model.taxonomy.items[12]])}
        replanted, shifted = replant_items(model.taxonomy, factors, moves)
        after_eff = shifted.effective_items(np.arange(replanted.n_items))
        assert np.allclose(before_eff, after_eff)
        assert replanted.revision == model.taxonomy.revision + 1
        assert int(replanted.parent[replanted.items[0]]) == moves[0]

    def test_model_replant_leaves_recommendations_unchanged(self):
        model = self._model(seed=6)
        users = np.arange(24)
        before = RecommenderService(model, cache_size=0).recommend_batch(
            users, k=5
        )
        old_digest = model.taxonomy.digest
        model.replant_items(
            {2: int(model.taxonomy.parent[model.taxonomy.items[20]])}
        )
        assert model.taxonomy.digest != old_digest
        after = RecommenderService(model, cache_size=0).recommend_batch(
            users, k=5
        )
        assert np.array_equal(before, after)


class TestBootstrapEndToEnd:
    @pytest.fixture(scope="class")
    def dataset(self):
        config = SyntheticConfig(
            branching=(4, 3), items_per_leaf=5, n_users=300, seed=0
        )
        data = generate_dataset(config)
        split = train_test_split(data.log, mu=0.5, seed=0)
        return data, split

    def test_learned_tree_serves_no_worse_than_flat_mf(self, dataset):
        data, split = dataset
        mf = MFModel.from_n_items(
            data.log.n_items, factors=8, epochs=4, seed=0
        )
        SerialTrainer(mf).train(split.train)
        mf_recall = evaluate_topk(mf, split, k=10).recall

        learned = bootstrap_taxonomy(
            split.train, factors=8, epochs=4, branching=3, max_depth=3,
            seed=0,
        )
        assert learned.n_items == data.log.n_items
        tf = TaxonomyFactorModel(learned, factors=8, epochs=4, seed=0)
        SerialTrainer(tf).train(split.train)
        tf_recall = evaluate_topk(tf, split, k=10).recall

        assert tf_recall > 0
        assert tf_recall >= mf_recall

    def test_all_retrieval_modes_agree_on_learned_taxonomy(self, dataset):
        data, split = dataset
        learned = bootstrap_taxonomy(
            split.train, factors=8, epochs=3, branching=4, max_depth=2,
            seed=1,
        )
        model = TaxonomyFactorModel(learned, factors=8, epochs=3, seed=1)
        SerialTrainer(model).train(split.train)
        users = np.arange(min(model.n_users, 64))
        n_cats = np.unique(learned.parent[learned.items]).size
        knobs = {
            "exact": {},
            "pruned": {"retrieval": "pruned"},
            # Full budget / all cells probed: approximate tiers at full
            # coverage must reproduce the exact page on a learned tree.
            "budget": {"retrieval": "budget", "budget": learned.n_items},
            "ivf": {"retrieval": "ivf", "nprobe": n_cats},
        }
        pages = {
            mode: RecommenderService(
                model, cache_size=0, **kw
            ).recommend_batch(users, k=10)
            for mode, kw in knobs.items()
        }
        for mode in ("pruned", "budget", "ivf"):
            assert np.array_equal(pages[mode], pages["exact"]), mode
