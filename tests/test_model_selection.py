"""Tests for cross-validation and grid search (paper Sec. 2.2 / 7.1)."""

import numpy as np
import pytest

from repro.core.mf_model import MFModel
from repro.eval.model_selection import (
    CandidateResult,
    GridSearchResult,
    expand_grid,
    grid_search,
)
from repro.utils.config import TrainConfig


class TestExpandGrid:
    def test_cross_product(self):
        grid = expand_grid({"a": [1, 2], "b": ["x", "y"]})
        assert len(grid) == 4
        assert {"a": 1, "b": "y"} in grid

    def test_empty_grid(self):
        assert expand_grid({}) == [{}]

    def test_single_axis(self):
        assert expand_grid({"reg": [0.1]}) == [{"reg": 0.1}]


@pytest.fixture(scope="module")
def search_result(dataset, split):
    base = TrainConfig(factors=8, epochs=3, seed=0, sibling_ratio=0.5)
    return grid_search(
        dataset.taxonomy,
        split.train,
        grid={"reg": [0.01, 0.5], "learning_rate": [0.05]},
        base_config=base,
    )


class TestGridSearch:
    def test_evaluates_every_candidate(self, search_result):
        assert len(search_result.candidates) == 2
        for candidate in search_result.candidates:
            assert isinstance(candidate, CandidateResult)
            assert 0.0 <= candidate.validation.auc <= 1.0
            assert candidate.fit_seconds > 0

    def test_best_has_highest_auc(self, search_result):
        best_score = search_result.best.score("auc")
        assert best_score == max(
            c.score("auc") for c in search_result.candidates
        )

    def test_ranking_sorted(self, search_result):
        ranked = search_result.ranking("auc")
        scores = [c.score("auc") for c in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_refit_model_uses_best_config(self, search_result):
        assert search_result.model is not None
        assert search_result.model.config.reg == search_result.best.config.reg
        # The refit model is trained (can score).
        assert search_result.model.score_items(0).shape[0] > 0

    def test_excess_regularization_loses(self, search_result):
        """reg = 0.5 crushes the factors; reg = 0.01 must win."""
        assert search_result.best.params["reg"] == 0.01

    def test_mean_rank_metric_minimizes(self, dataset, split):
        base = TrainConfig(factors=8, epochs=2, seed=0)
        result = grid_search(
            dataset.taxonomy,
            split.train,
            grid={"reg": [0.01, 0.5]},
            base_config=base,
            metric="mean_rank",
            refit=False,
        )
        best_rank = result.best.score("mean_rank")
        assert best_rank == min(
            c.score("mean_rank") for c in result.candidates
        )

    def test_no_refit_skips_final_model(self, dataset, split):
        result = grid_search(
            dataset.taxonomy,
            split.train,
            grid={"reg": [0.01]},
            base_config=TrainConfig(factors=4, epochs=1, seed=0),
            refit=False,
        )
        assert result.model is None

    def test_custom_model_factory(self, dataset, split):
        result = grid_search(
            dataset.taxonomy,
            split.train,
            grid={"reg": [0.01]},
            base_config=TrainConfig(factors=4, epochs=1, seed=0),
            model_factory=MFModel,
            refit=True,
        )
        assert isinstance(result.model, MFModel)

    def test_invalid_metric(self, dataset, split):
        with pytest.raises(ValueError):
            grid_search(
                dataset.taxonomy, split.train, grid={}, metric="accuracy"
            )

    def test_validation_never_sees_holdout(self, dataset, split):
        """The candidate models are trained on head-only data: their user
        space must still cover all users, but the validation transactions
        must come from the tail."""
        result = grid_search(
            dataset.taxonomy,
            split.train,
            grid={"reg": [0.01]},
            base_config=TrainConfig(factors=4, epochs=1, seed=0),
            refit=False,
        )
        assert result.best.validation.n_users > 0
        assert result.best.validation.n_users < split.train.n_users
