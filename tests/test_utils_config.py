"""Tests for the configuration dataclasses."""

import pytest

from repro.utils.config import CascadeConfig, SyntheticConfig, TrainConfig


class TestTrainConfig:
    def test_defaults_are_valid(self):
        cfg = TrainConfig()
        assert cfg.factors > 0
        assert cfg.taxonomy_levels >= 1

    def test_rejects_zero_factors(self):
        with pytest.raises(ValueError):
            TrainConfig(factors=0)

    def test_rejects_negative_learning_rate(self):
        with pytest.raises(ValueError):
            TrainConfig(learning_rate=-0.1)

    def test_rejects_sibling_ratio_above_one(self):
        with pytest.raises(ValueError):
            TrainConfig(sibling_ratio=1.5)

    def test_rejects_negative_markov_order(self):
        with pytest.raises(ValueError):
            TrainConfig(markov_order=-1)

    def test_zero_epochs_allowed(self):
        assert TrainConfig(epochs=0).epochs == 0


class TestCascadeConfig:
    def test_defaults_keep_everything(self):
        assert all(f == 1.0 for f in CascadeConfig().keep_fractions)

    def test_rejects_empty_fractions(self):
        with pytest.raises(ValueError):
            CascadeConfig(keep_fractions=())

    def test_rejects_fraction_above_one(self):
        with pytest.raises(ValueError):
            CascadeConfig(keep_fractions=(0.5, 1.2))

    def test_rejects_zero_min_keep(self):
        with pytest.raises(ValueError):
            CascadeConfig(min_keep=0)


class TestSyntheticConfig:
    def test_item_counting(self):
        cfg = SyntheticConfig(branching=(2, 3), items_per_leaf=4)
        assert cfg.n_leaf_categories == 6
        assert cfg.n_items == 24

    def test_rejects_empty_branching(self):
        with pytest.raises(ValueError):
            SyntheticConfig(branching=())

    def test_rejects_zero_users(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_users=0)

    def test_rejects_new_item_fraction_above_one(self):
        with pytest.raises(ValueError):
            SyntheticConfig(new_item_fraction=1.5)
