"""Tests for the lock-based threaded SGD trainer."""

import numpy as np
import pytest

from repro.core.factors import FactorSet
from repro.core.sgd import SGDTrainer
from repro.data.transactions import TransactionLog
from repro.parallel.trainer import ThreadedSGDTrainer
from repro.taxonomy.generator import complete_taxonomy
from repro.utils.config import TrainConfig


@pytest.fixture(scope="module")
def taxonomy():
    return complete_taxonomy((3, 2), items_per_leaf=3)  # 18 items


@pytest.fixture(scope="module")
def log(taxonomy):
    rng = np.random.default_rng(3)
    rows = [
        [[int(rng.integers(0, 18))] for _ in range(3)] for _ in range(80)
    ]
    return TransactionLog(rows, n_items=taxonomy.n_items)


@pytest.fixture()
def config():
    return TrainConfig(factors=4, epochs=2, taxonomy_levels=3, seed=0)


class TestValidation:
    def test_rejects_markov(self, taxonomy, log):
        cfg = TrainConfig(markov_order=1, taxonomy_levels=3, seed=0)
        fs = FactorSet(log.n_users, taxonomy, 16, 3, seed=0)
        with pytest.raises(ValueError, match="markov_order"):
            ThreadedSGDTrainer(fs, log, cfg)

    def test_rejects_sibling(self, taxonomy, log):
        cfg = TrainConfig(sibling_ratio=0.5, taxonomy_levels=3, seed=0)
        fs = FactorSet(log.n_users, taxonomy, 16, 3, with_next=False, seed=0)
        with pytest.raises(ValueError, match="sibling"):
            ThreadedSGDTrainer(fs, log, cfg)

    def test_rejects_zero_threads(self, taxonomy, log, config):
        fs = FactorSet(log.n_users, taxonomy, 4, 3, with_next=False, seed=0)
        with pytest.raises(ValueError):
            ThreadedSGDTrainer(fs, log, config, n_threads=0)


class TestTraining:
    def test_loss_decreases_over_epochs(self, taxonomy, log, config):
        fs = FactorSet(log.n_users, taxonomy, 4, 3, with_next=False, seed=0)
        trainer = ThreadedSGDTrainer(fs, log, config, n_threads=3)
        history = trainer.train(4)
        assert history[-1].loss < history[0].loss

    def test_single_thread_close_to_serial_quality(self, taxonomy, log, config):
        """Same algorithm, different visit order: losses should land in the
        same neighborhood as the vectorized serial trainer."""
        fs_threaded = FactorSet(log.n_users, taxonomy, 4, 3, with_next=False, seed=0)
        threaded = ThreadedSGDTrainer(fs_threaded, log, config, n_threads=1)
        threaded_loss = threaded.train(3)[-1].loss

        fs_serial = FactorSet(log.n_users, taxonomy, 4, 3, with_next=False, seed=0)
        serial_loss = SGDTrainer(fs_serial, log, config).train(3)[-1].loss
        assert threaded_loss == pytest.approx(serial_loss, rel=0.35)

    def test_multithreaded_converges_with_cache(self, taxonomy, log, config):
        fs = FactorSet(log.n_users, taxonomy, 4, 3, with_next=False, seed=0)
        trainer = ThreadedSGDTrainer(
            fs, log, config, n_threads=4, use_cache=True, cache_threshold=0.05
        )
        history = trainer.train(4)
        assert history[-1].loss < history[0].loss
        assert history[0].reconciliations > 0

    def test_pad_rows_zero_after_epoch(self, taxonomy, log, config):
        fs = FactorSet(log.n_users, taxonomy, 4, 5, with_next=False, seed=0)
        ThreadedSGDTrainer(fs, log, config, n_threads=2).train_epoch()
        assert np.all(fs.w[-1] == 0)

    def test_stats_fields(self, taxonomy, log, config):
        fs = FactorSet(log.n_users, taxonomy, 4, 3, with_next=False, seed=0)
        stats = ThreadedSGDTrainer(fs, log, config, n_threads=2).train_epoch()
        assert stats.n_examples == log.n_purchases
        assert stats.lock_acquisitions > 0
        assert 0.0 <= stats.lock_contention_rate <= 1.0
        assert stats.hot_row_updates > 0
        assert "loss=" in str(stats)

    def test_hot_rows_are_internal_nodes(self, taxonomy, log, config):
        fs = FactorSet(log.n_users, taxonomy, 4, 3, with_next=False, seed=0)
        trainer = ThreadedSGDTrainer(fs, log, config, n_threads=1)
        assert trainer.hot[: taxonomy.n_nodes].sum() == (
            taxonomy.n_nodes - taxonomy.n_items
        )
        assert not trainer.hot[taxonomy.pad_id]

    def test_update_frequency_skew(self, taxonomy, log, config):
        """The paper's Sec. 6.1 observation: internal rows are updated far
        more often per row than item rows — the motivation for caching."""
        fs = FactorSet(log.n_users, taxonomy, 4, 3, with_next=False, seed=0)
        trainer = ThreadedSGDTrainer(fs, log, config, n_threads=1)
        stats = trainer.train_epoch()
        n_internal = taxonomy.n_nodes - taxonomy.n_items
        internal_rate = stats.hot_row_updates / n_internal
        # Each sample updates 2 item rows (chains have 1 item entry each).
        item_rate = (2 * stats.n_examples) / taxonomy.n_items
        assert internal_rate > 2 * item_rate

    def test_caching_reduces_lock_acquisitions(self, taxonomy, log, config):
        fs1 = FactorSet(log.n_users, taxonomy, 4, 3, with_next=False, seed=0)
        plain = ThreadedSGDTrainer(fs1, log, config, n_threads=2)
        plain_stats = plain.train_epoch()

        fs2 = FactorSet(log.n_users, taxonomy, 4, 3, with_next=False, seed=0)
        cached = ThreadedSGDTrainer(
            fs2, log, config, n_threads=2, use_cache=True, cache_threshold=0.5
        )
        cached_stats = cached.train_epoch()
        assert cached_stats.lock_acquisitions < plain_stats.lock_acquisitions

    def test_mf_configuration_supported(self, taxonomy, log):
        cfg = TrainConfig(factors=4, taxonomy_levels=1, seed=0)
        fs = FactorSet(log.n_users, taxonomy, 4, 1, with_next=False, seed=0)
        stats = ThreadedSGDTrainer(fs, log, cfg, n_threads=2).train_epoch()
        assert stats.n_examples == log.n_purchases
