"""Shared fixtures: one small synthetic dataset and pre-trained models.

Session-scoped so the expensive pieces (generation, training) happen once
per test run; tests must treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MFModel,
    SyntheticConfig,
    TaxonomyFactorModel,
    TrainConfig,
    generate_dataset,
    train_test_split,
)
from repro.taxonomy.generator import complete_taxonomy


@pytest.fixture(scope="session")
def small_config() -> SyntheticConfig:
    return SyntheticConfig(
        branching=(5, 3, 3),
        items_per_leaf=4,
        n_users=400,
        mean_transactions=3.0,
        seed=42,
    )


@pytest.fixture(scope="session")
def dataset(small_config):
    return generate_dataset(small_config)


@pytest.fixture(scope="session")
def split(dataset):
    return train_test_split(dataset.log, mu=0.5, seed=7)


@pytest.fixture(scope="session")
def train_config() -> TrainConfig:
    return TrainConfig(factors=8, epochs=5, learning_rate=0.05, reg=0.01, seed=11)


@pytest.fixture(scope="session")
def tf_model(dataset, split, train_config):
    model = TaxonomyFactorModel(
        dataset.taxonomy, train_config, taxonomy_levels=4, sibling_ratio=0.5
    )
    return model.fit(split.train)


@pytest.fixture(scope="session")
def tf_markov_model(dataset, split, train_config):
    model = TaxonomyFactorModel(
        dataset.taxonomy, train_config, taxonomy_levels=4, markov_order=1
    )
    return model.fit(split.train)


@pytest.fixture(scope="session")
def mf_model(dataset, split, train_config):
    return MFModel(dataset.taxonomy, train_config).fit(split.train)


@pytest.fixture()
def tiny_taxonomy():
    """Complete 2/2/2 taxonomy with 2 items per leaf (15 nodes, 8 items)."""
    return complete_taxonomy((2, 2), items_per_leaf=2)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
