"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(123).random(5)
        b = ensure_rng(123).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        a = ensure_rng(np.int64(5)).random(3)
        b = ensure_rng(5).random(3)
        assert np.array_equal(a, b)

    def test_invalid_seed_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_deterministic(self):
        a = [g.random() for g in spawn_rngs(9, 3)]
        b = [g.random() for g in spawn_rngs(9, 3)]
        assert a == b

    def test_streams_are_independent(self):
        gens = spawn_rngs(0, 2)
        assert gens[0].random(4).tolist() != gens[1].random(4).tolist()

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
