"""Tests for the evaluation protocol (Sec. 7)."""

import numpy as np
import pytest

from repro.eval.protocol import (
    evaluate_cascade,
    evaluate_category_level,
    evaluate_cold_start,
    evaluate_model,
    evaluate_parallel,
)
from repro.utils.config import CascadeConfig


class TestEvaluateModel:
    def test_results_in_range(self, tf_model, split):
        result = evaluate_model(tf_model, split)
        assert 0.0 <= result.auc <= 1.0
        assert 1.0 <= result.mean_rank <= split.train.n_items
        assert result.n_users == split.test_users().size

    def test_per_user_arrays_align(self, tf_model, split):
        result = evaluate_model(tf_model, split)
        users = split.test_users()
        assert result.per_user_auc.shape == (users.size,)
        assert result.per_user_rank.shape == (users.size,)

    def test_batch_size_does_not_change_result(self, tf_model, split):
        a = evaluate_model(tf_model, split, batch_size=17)
        b = evaluate_model(tf_model, split, batch_size=512)
        assert a.auc == pytest.approx(b.auc)
        assert a.mean_rank == pytest.approx(b.mean_rank)

    def test_user_subset(self, tf_model, split):
        users = split.test_users()[:10]
        result = evaluate_model(tf_model, split, users=users)
        assert result.n_users <= 10

    def test_exclude_train_changes_candidates(self, tf_model, split):
        incl = evaluate_model(tf_model, split, exclude_train=False)
        excl = evaluate_model(tf_model, split, exclude_train=True)
        assert incl.auc != pytest.approx(excl.auc)

    def test_invalid_first_t(self, tf_model, split):
        with pytest.raises(ValueError):
            evaluate_model(tf_model, split, first_t=0)


class TestCategoryLevel:
    def test_candidate_count_matches_level(self, tf_model, split, dataset):
        result = evaluate_category_level(tf_model, split, level=1)
        assert result.extras["n_candidates"] == dataset.taxonomy.nodes_at_level(1).size

    def test_category_rank_bounded_by_level_size(self, tf_model, split, dataset):
        result = evaluate_category_level(tf_model, split, level=1)
        assert 1.0 <= result.mean_rank <= dataset.taxonomy.nodes_at_level(1).size

    def test_category_auc_beats_product_auc(self, tf_model, split):
        """Fig. 6(c): ranking ~tens of categories is much easier than
        ranking hundreds of items."""
        product = evaluate_model(tf_model, split)
        category = evaluate_category_level(tf_model, split, level=1)
        assert category.auc > product.auc - 0.05

    def test_invalid_level(self, tf_model, split):
        with pytest.raises(ValueError):
            evaluate_category_level(tf_model, split, level=99)


class TestColdStart:
    def test_counts_new_item_events(self, tf_model, split):
        result = evaluate_cold_start(tf_model, split)
        assert result.n_new_items == split.new_items().size
        assert result.n_events > 0
        assert 0.0 <= result.score <= 1.0
        assert result.rank >= 1.0

    def test_tf_beats_random_on_new_items(self, tf_model, mf_model, split):
        """Fig. 7(c): TF ranks unseen items via their category; MF can only
        give them their random initialization."""
        tf_result = evaluate_cold_start(tf_model, split)
        mf_result = evaluate_cold_start(mf_model, split)
        assert tf_result.score > mf_result.score

    def test_no_new_items(self, tf_model, dataset):
        from repro.data.split import TrainTestSplit

        degenerate = TrainTestSplit(train=dataset.log, test=dataset.log)
        result = evaluate_cold_start(tf_model, degenerate)
        assert result.n_events == 0


class TestCascadeEvaluation:
    def test_full_cascade_matches_naive(self, tf_model, split):
        users = split.test_users()[:30]
        result = evaluate_cascade(
            tf_model, split, CascadeConfig(), users=users
        )
        assert result.auc == pytest.approx(result.naive_auc)
        assert result.accuracy_ratio == pytest.approx(1.0)
        assert result.work_ratio > 1.0  # scores internal nodes too

    def test_pruning_trades_accuracy_for_work(self, tf_model, split):
        users = split.test_users()[:30]
        pruned = evaluate_cascade(
            tf_model,
            split,
            CascadeConfig(keep_fractions=(0.3, 0.3, 0.3)),
            users=users,
        )
        assert pruned.work_ratio < 1.0
        assert pruned.accuracy_ratio <= 1.0 + 1e-9


class TestParallelEvaluation:
    def test_matches_serial(self, tf_model, split):
        serial = evaluate_model(tf_model, split)
        parallel = evaluate_parallel(tf_model, split, n_workers=3)
        assert parallel.auc == pytest.approx(serial.auc)
        assert parallel.mean_rank == pytest.approx(serial.mean_rank)
        assert parallel.n_users == serial.n_users

    def test_single_worker(self, tf_model, split):
        serial = evaluate_model(tf_model, split)
        one = evaluate_parallel(tf_model, split, n_workers=1)
        assert one.auc == pytest.approx(serial.auc)

    def test_invalid_workers(self, tf_model, split):
        with pytest.raises(ValueError):
            evaluate_parallel(tf_model, split, n_workers=0)
