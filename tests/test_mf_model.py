"""Tests for the MF / FPMC baselines and their TF equivalence."""

import numpy as np
import pytest

from repro.core.mf_model import MFModel, bpr_mf_model, flat_taxonomy, fpmc_model
from repro.core.tf_model import TaxonomyFactorModel
from repro.data.transactions import TransactionLog
from repro.taxonomy.generator import complete_taxonomy
from repro.utils.config import TrainConfig


@pytest.fixture()
def taxonomy():
    return complete_taxonomy((2, 2), items_per_leaf=2)


@pytest.fixture()
def log():
    return TransactionLog(
        [
            [[0, 1], [4]],
            [[2], [6]],
        ],
        n_items=8,
    )


class TestFlatTaxonomy:
    def test_shape(self):
        tax = flat_taxonomy(5)
        assert tax.n_items == 5
        assert tax.max_depth == 1
        assert tax.n_nodes == 6

    def test_rejects_zero_items(self):
        with pytest.raises(ValueError):
            flat_taxonomy(0)


class TestMFModel:
    def test_forces_single_level(self, taxonomy):
        model = MFModel(taxonomy, taxonomy_levels=4)  # override is ignored
        assert model.config.taxonomy_levels == 1

    def test_mf_equals_tf_with_levels_one(self, taxonomy, log):
        """The paper: TF(1, B) recovers MF(B) exactly."""
        cfg = TrainConfig(factors=4, epochs=3, seed=3)
        mf = MFModel(taxonomy, cfg).fit(log)
        tf1 = TaxonomyFactorModel(taxonomy, cfg, taxonomy_levels=1).fit(log)
        np.testing.assert_array_equal(
            mf.factor_set.w, tf1.factor_set.w
        )
        np.testing.assert_array_equal(
            mf.score_matrix(np.arange(2)), tf1.score_matrix(np.arange(2))
        )

    def test_mf_never_touches_internal_nodes(self, taxonomy, log):
        """With U = 1 only the item rows are ever updated: the taxonomy's
        interior factors must still equal their random initialization."""
        from repro.core.factors import FactorSet

        cfg = TrainConfig(factors=4, epochs=3, seed=3)
        init = FactorSet(
            log.n_users, taxonomy, 4, levels=1,
            with_next=False, init_scale=cfg.init_scale, seed=cfg.seed,
        )
        trained = MFModel(taxonomy, cfg).fit(log)
        internal = np.setdiff1d(np.arange(taxonomy.n_nodes), taxonomy.items)
        np.testing.assert_array_equal(
            trained.factor_set.w[internal], init.w[internal]
        )
        assert not np.allclose(
            trained.factor_set.w[taxonomy.items], init.w[taxonomy.items]
        )

    def test_repr(self, taxonomy):
        assert "MFModel(B=0" in repr(MFModel(taxonomy))


class TestFactories:
    def test_fpmc_has_markov_order_one(self, taxonomy):
        model = fpmc_model(taxonomy)
        assert model.config.markov_order == 1
        assert model.config.taxonomy_levels == 1

    def test_fpmc_override_respected(self, taxonomy):
        model = fpmc_model(taxonomy, markov_order=3)
        assert model.config.markov_order == 3

    def test_bpr_mf_is_order_zero(self, taxonomy):
        model = bpr_mf_model(taxonomy, markov_order=2)  # forced back to 0
        assert model.config.markov_order == 0

    def test_fpmc_trains_and_uses_history(self, taxonomy, log):
        model = fpmc_model(
            taxonomy, TrainConfig(factors=4, epochs=2, seed=0)
        ).fit(log)
        a = model.score_items(0, history=[np.array([0])])
        b = model.score_items(0, history=[np.array([6])])
        assert not np.allclose(a, b)
