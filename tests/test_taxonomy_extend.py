"""Tests for taxonomy growth and factor-set expansion (cold-start onboarding)."""

import numpy as np
import pytest

from repro.core.factors import FactorSet
from repro.core.tf_model import TaxonomyFactorModel
from repro.data.transactions import TransactionLog
from repro.taxonomy.extend import add_items
from repro.taxonomy.generator import complete_taxonomy
from repro.taxonomy.tree import TaxonomyError
from repro.utils.config import TrainConfig


@pytest.fixture()
def taxonomy():
    return complete_taxonomy((2, 2), items_per_leaf=2)  # nodes 0..14, 8 items


class TestAddItems:
    def test_preserves_existing_ids(self, taxonomy):
        leaf_category = int(taxonomy.parent[taxonomy.items[0]])
        grown, new_items = add_items(taxonomy, [leaf_category])
        assert grown.n_nodes == taxonomy.n_nodes + 1
        assert np.array_equal(
            grown.parent[: taxonomy.n_nodes], taxonomy.parent
        )
        assert np.array_equal(grown.items[: taxonomy.n_items], taxonomy.items)

    def test_new_items_get_next_indices(self, taxonomy):
        category = int(taxonomy.parent[taxonomy.items[0]])
        grown, new_items = add_items(taxonomy, [category, category])
        assert new_items.tolist() == [taxonomy.n_items, taxonomy.n_items + 1]
        assert grown.n_items == taxonomy.n_items + 2

    def test_new_item_chain_goes_through_parent(self, taxonomy):
        category = int(taxonomy.parent[taxonomy.items[5]])
        grown, new_items = add_items(taxonomy, [category])
        node = grown.node_of_item(int(new_items[0]))
        assert grown.parent[node] == category

    def test_names_applied(self, taxonomy):
        category = int(taxonomy.parent[taxonomy.items[0]])
        grown, new_items = add_items(taxonomy, [category], names=["fresh"])
        assert grown.name_of(grown.node_of_item(int(new_items[0]))) == "fresh"

    def test_rejects_leaf_parent(self, taxonomy):
        with pytest.raises(TaxonomyError, match="leaf"):
            add_items(taxonomy, [int(taxonomy.items[0])])

    def test_rejects_unknown_parent(self, taxonomy):
        with pytest.raises(TaxonomyError):
            add_items(taxonomy, [999])

    def test_rejects_empty(self, taxonomy):
        with pytest.raises(TaxonomyError):
            add_items(taxonomy, [])

    def test_rejects_wrong_name_count(self, taxonomy):
        category = int(taxonomy.parent[taxonomy.items[0]])
        with pytest.raises(TaxonomyError, match="names"):
            add_items(taxonomy, [category], names=["a", "b"])

    def test_rejects_attaching_under_freshly_added_item(self, taxonomy):
        """A just-added item is a leaf like any other: attaching under it
        would turn it into a category and shift every later item index."""
        category = int(taxonomy.parent[taxonomy.items[0]])
        grown, new_items = add_items(taxonomy, [category])
        new_node = grown.node_of_item(int(new_items[0]))
        assert grown.is_leaf(new_node)
        with pytest.raises(TaxonomyError, match="leaf"):
            add_items(grown, [new_node])

    def test_duplicate_parents_get_distinct_items(self, taxonomy):
        """The same parent repeated yields distinct sequential item ids,
        never a duplicate index."""
        category = int(taxonomy.parent[taxonomy.items[0]])
        grown, new_items = add_items(taxonomy, [category] * 3)
        assert new_items.tolist() == [
            taxonomy.n_items,
            taxonomy.n_items + 1,
            taxonomy.n_items + 2,
        ]
        assert len(set(new_items.tolist())) == 3
        nodes = [grown.node_of_item(int(i)) for i in new_items]
        assert len(set(nodes)) == 3
        assert all(int(grown.parent[n]) == category for n in nodes)

    def test_chained_growth_preserves_all_earlier_indices(self, taxonomy):
        """add_items composes: a second round must preserve both the
        original items and the first round's additions."""
        cat_a = int(taxonomy.parent[taxonomy.items[0]])
        cat_b = int(taxonomy.parent[taxonomy.items[-1]])
        once, first = add_items(taxonomy, [cat_a])
        twice, second = add_items(once, [cat_b, cat_a])
        assert np.array_equal(twice.items[: once.n_items], once.items)
        assert np.array_equal(twice.items[: taxonomy.n_items], taxonomy.items)
        assert second.tolist() == [once.n_items, once.n_items + 1]

    def test_interior_node_with_single_leaf_child_accepts_items(self, taxonomy):
        """A category that currently has exactly one item stays a valid
        parent (leaf-ness is about the node itself, not its fan-out)."""
        category = int(taxonomy.parent[taxonomy.items[0]])
        assert not taxonomy.is_leaf(category)
        grown, new_items = add_items(taxonomy, [category])
        assert grown.subtree_items(category).size == (
            taxonomy.subtree_items(category).size + 1
        )

    def test_default_names_only_when_named_taxonomy(self, taxonomy):
        """Named taxonomies get generated names for unnamed additions;
        unnamed taxonomies stay unnamed."""
        category = int(taxonomy.parent[taxonomy.items[0]])
        grown, new_items = add_items(taxonomy, [category])
        node = grown.node_of_item(int(new_items[0]))
        assert grown.name_of(node) == "new-item-0"

        from repro.taxonomy.tree import Taxonomy

        bare = Taxonomy(taxonomy.parent.copy())
        grown_bare, new_bare = add_items(bare, [category])
        node = grown_bare.node_of_item(int(new_bare[0]))
        assert grown_bare.name_of(node) == f"node:{node}"


class TestFactorSetExpand:
    def test_old_factors_preserved(self, taxonomy):
        fs = FactorSet(3, taxonomy, 4, levels=3, seed=0)
        category = int(taxonomy.parent[taxonomy.items[0]])
        grown, _ = add_items(taxonomy, [category])
        expanded = fs.expand(grown)
        np.testing.assert_array_equal(
            expanded.w[: taxonomy.n_nodes], fs.w[: taxonomy.n_nodes]
        )
        np.testing.assert_array_equal(expanded.user, fs.user)
        np.testing.assert_array_equal(
            expanded.bias[: taxonomy.n_nodes], fs.bias[: taxonomy.n_nodes]
        )

    def test_new_item_effective_factor_equals_category(self, taxonomy):
        """Zero offset for a new item → Eq. 1 gives exactly the ancestor sum.

        Exact equality with the category's own effective factor requires
        chains that reach the root (``levels`` >= the item's depth + 1);
        with truncated chains the two differ by the excluded top levels.
        """
        fs = FactorSet(3, taxonomy, 4, levels=4, seed=0)
        category = int(taxonomy.parent[taxonomy.items[0]])
        grown, new_items = add_items(taxonomy, [category])
        expanded = fs.expand(grown)
        new_eff = expanded.effective_items(new_items)[0]
        category_eff = expanded.effective_nodes(np.array([category]))[0]
        np.testing.assert_allclose(new_eff, category_eff)

    def test_jittered_expansion(self, taxonomy):
        fs = FactorSet(3, taxonomy, 4, levels=3, with_next=False, seed=0)
        category = int(taxonomy.parent[taxonomy.items[0]])
        grown, new_items = add_items(taxonomy, [category])
        expanded = fs.expand(grown, new_offset_scale=0.1, seed=1)
        node = grown.node_of_item(int(new_items[0]))
        assert np.any(expanded.w[node] != 0)

    def test_rejects_unrelated_taxonomy(self, taxonomy):
        fs = FactorSet(3, taxonomy, 4, levels=3, seed=0)
        other = complete_taxonomy((3, 2), items_per_leaf=2)
        with pytest.raises(ValueError, match="renumbering"):
            fs.expand(other)

    def test_next_factors_carried(self, taxonomy):
        fs = FactorSet(3, taxonomy, 4, levels=3, with_next=True, seed=0)
        category = int(taxonomy.parent[taxonomy.items[0]])
        grown, _ = add_items(taxonomy, [category])
        expanded = fs.expand(grown)
        np.testing.assert_array_equal(
            expanded.w_next[: taxonomy.n_nodes], fs.w_next[: taxonomy.n_nodes]
        )


class TestModelOnboarding:
    @pytest.fixture()
    def fitted(self, taxonomy):
        log = TransactionLog(
            [[[0, 1], [4]], [[2], [6]], [[5], [7]]], n_items=8
        )
        model = TaxonomyFactorModel(
            taxonomy, TrainConfig(factors=4, epochs=4, taxonomy_levels=4, seed=0)
        )
        return model.fit(log)

    def test_onboard_returns_new_indices(self, fitted, taxonomy):
        category = int(taxonomy.parent[taxonomy.items[0]])
        new_items = fitted.onboard_items([category])
        assert new_items.tolist() == [8]
        assert fitted.n_items == 9

    def test_new_item_scored_like_its_category(self, fitted, taxonomy):
        category = int(taxonomy.parent[taxonomy.items[0]])
        new_items = fitted.onboard_items([category])
        scores = fitted.score_items(0)
        category_score = fitted.score_nodes(0, np.array([category]))[0]
        assert scores[new_items[0]] == pytest.approx(category_score)

    def test_new_item_is_recommendable(self, fitted, taxonomy):
        # A user whose purchases all sit under the target category should
        # see the onboarded item rank well.
        category = int(taxonomy.parent[taxonomy.items[0]])
        new_items = fitted.onboard_items([category])
        rank = (
            1
            + int(
                (fitted.score_items(0) > fitted.score_items(0)[new_items[0]]).sum()
            )
        )
        assert rank <= fitted.n_items  # sanity: finite, scored

    def test_scores_for_old_items_unchanged(self, fitted, taxonomy):
        before = fitted.score_items(1)
        category = int(taxonomy.parent[taxonomy.items[0]])
        fitted.onboard_items([category])
        after = fitted.score_items(1)[: before.size]
        np.testing.assert_allclose(after, before)
