"""Tests for the public TaxonomyFactorModel API."""

import numpy as np
import pytest

from repro.core.tf_model import NotFittedError, TaxonomyFactorModel
from repro.data.transactions import TransactionLog
from repro.taxonomy.generator import complete_taxonomy
from repro.utils.config import TrainConfig


@pytest.fixture()
def taxonomy():
    return complete_taxonomy((2, 2), items_per_leaf=2)


@pytest.fixture()
def log():
    return TransactionLog(
        [
            [[0, 1], [4]],
            [[2], [6], [7]],
            [[5]],
        ],
        n_items=8,
    )


@pytest.fixture()
def fitted(taxonomy, log):
    model = TaxonomyFactorModel(
        taxonomy, TrainConfig(factors=4, epochs=3, taxonomy_levels=3, seed=0)
    )
    return model.fit(log)


class TestConstruction:
    def test_overrides_apply(self, taxonomy):
        model = TaxonomyFactorModel(taxonomy, factors=7, markov_order=2)
        assert model.config.factors == 7
        assert model.config.markov_order == 2

    def test_repr_shows_parameters(self, taxonomy):
        model = TaxonomyFactorModel(taxonomy, taxonomy_levels=2, markov_order=1)
        assert "U=2" in repr(model) and "B=1" in repr(model)

    def test_unfitted_raises(self, taxonomy):
        model = TaxonomyFactorModel(taxonomy)
        with pytest.raises(NotFittedError):
            model.score_items(0)

    def test_fit_rejects_item_mismatch(self, taxonomy):
        model = TaxonomyFactorModel(taxonomy)
        with pytest.raises(ValueError, match="item universe"):
            model.fit(TransactionLog([[[0]]], n_items=3))


class TestScoring:
    def test_score_items_shape(self, fitted):
        scores = fitted.score_items(0)
        assert scores.shape == (8,)

    def test_score_matrix_matches_score_items(self, fitted):
        matrix = fitted.score_matrix(np.array([0, 1, 2]))
        for row, user in enumerate([0, 1, 2]):
            np.testing.assert_allclose(matrix[row], fitted.score_items(user))

    def test_history_defaults_to_train_log(self, taxonomy, log):
        model = TaxonomyFactorModel(
            taxonomy,
            TrainConfig(
                factors=4, epochs=2, taxonomy_levels=3, markov_order=1, seed=0
            ),
        ).fit(log)
        default = model.score_items(1)
        explicit = model.score_items(1, history=log.user_transactions(1))
        np.testing.assert_allclose(default, explicit)
        different = model.score_items(1, history=[np.array([0])])
        assert not np.allclose(default, different)

    def test_markov_zero_ignores_history(self, fitted):
        a = fitted.score_items(0, history=[np.array([3])])
        b = fitted.score_items(0, history=[np.array([7])])
        np.testing.assert_allclose(a, b)

    def test_query_matrix_matches_query_vector(self, taxonomy, log):
        model = TaxonomyFactorModel(
            taxonomy,
            TrainConfig(
                factors=4, epochs=2, taxonomy_levels=3, markov_order=2, seed=1
            ),
        ).fit(log)
        users = np.array([0, 1])
        matrix = model.query_matrix(users)
        for row, user in enumerate(users):
            np.testing.assert_allclose(matrix[row], model.query_vector(int(user)))

    def test_score_nodes_and_categories(self, fitted, taxonomy):
        level1 = taxonomy.nodes_at_level(1)
        by_nodes = fitted.score_nodes(0, level1)
        by_level = fitted.category_scores(0, level=1)
        np.testing.assert_allclose(by_nodes, by_level)
        assert by_level.shape == (level1.size,)


class TestRecommend:
    def test_top_k_sorted(self, fitted):
        scores = fitted.score_items(0)
        top = fitted.recommend(0, k=3, exclude_purchased=False)
        assert list(scores[top]) == sorted(scores[top], reverse=True)
        assert top.size == 3

    def test_excludes_train_purchases(self, fitted, log):
        top = fitted.recommend(0, k=8)
        bought = set(log.user_items(0).tolist())
        assert not (set(top.tolist()) & bought)

    def test_explicit_exclusion(self, fitted):
        top = fitted.recommend(0, k=8, exclude=np.array([0, 1, 2, 3]))
        assert not (set(top.tolist()) & {0, 1, 2, 3})

    def test_k_larger_than_universe(self, fitted):
        top = fitted.recommend(0, k=100, exclude_purchased=False)
        assert top.size == 8


class TestFactorsAccess:
    def test_effective_item_factors_shape(self, fitted):
        assert fitted.effective_item_factors().shape == (8, 4)

    def test_effective_node_factors(self, fitted, taxonomy):
        nodes = taxonomy.nodes_at_level(2)
        assert fitted.effective_node_factors(nodes).shape == (nodes.size, 4)

    def test_history_recorded(self, fitted):
        assert len(fitted.history_) == 3
        assert fitted.n_users == 3
        assert fitted.n_items == 8

    def test_callback_invoked(self, taxonomy, log):
        calls = []
        model = TaxonomyFactorModel(
            taxonomy, TrainConfig(factors=4, epochs=2, taxonomy_levels=3, seed=0)
        )
        model.fit(log, callback=lambda stats, trainer: calls.append(stats.epoch))
        assert calls == [0, 1]
