"""Tests for ``repro.obs.tracing`` and trace propagation across shards."""

from __future__ import annotations

import numpy as np
import pytest

from repro import RecommenderService, ShardRouter
from repro.obs import (
    SpanContext,
    TraceBuffer,
    Tracer,
    current_span,
    current_trace_id,
    read_trace_jsonl,
    stitch,
    write_trace_jsonl,
)


# ----------------------------------------------------------------------
# Spans and tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_ids_are_deterministic(self):
        tracer = Tracer(prefix="w3")
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert (a.trace_id, a.span_id) == ("w3-t1", "w3-s1")
        assert (b.trace_id, b.span_id) == ("w3-t2", "w3-s2")

    def test_nesting_builds_a_tree_implicitly(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            assert current_span() is root
            assert current_trace_id() == root.trace_id
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert current_span() is None
        assert current_trace_id() is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert child.trace_id == root.trace_id == grandchild.trace_id

    def test_exception_tags_error_and_still_records(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("explodes"):
                raise RuntimeError("boom")
        (span,) = tracer.buffer.drain()
        assert span.tags["error"] == "RuntimeError"
        assert span.duration_s is not None
        assert current_span() is None

    def test_duration_never_wall_clock(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            pass
        record = span.as_dict()
        assert record["duration_s"] >= 0.0
        assert "start" not in record  # monotonic stamps stay process-local

    def test_child_from_context_crosses_processes(self):
        router_tracer = Tracer()
        worker_tracer = Tracer(prefix="w0")
        root = router_tracer.span("recommend_batch")
        ctx = router_tracer.context_for(root)
        assert isinstance(ctx, SpanContext)
        assert ctx.queue_wait() >= 0.0
        with worker_tracer.child_from_context(ctx, "scan") as scan:
            pass
        assert scan.trace_id == root.trace_id
        assert scan.parent_id == root.span_id
        assert scan.span_id.startswith("w0-")

    def test_adopt_rehydrates_worker_records(self):
        worker = Tracer(prefix="w1")
        with worker.span("scan"):
            pass
        records = [span.as_dict() for span in worker.buffer.drain()]
        router = Tracer()
        adopted = router.adopt(records)
        assert [s.span_id for s in adopted] == ["w1-s1"]
        assert len(router.buffer) == 1


class TestTraceBuffer:
    def test_bounded_eviction(self):
        tracer = Tracer(buffer=TraceBuffer(maxlen=3))
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        names = [span.name for span in tracer.buffer.snapshot()]
        assert names == ["s2", "s3", "s4"]

    def test_drain_clears(self):
        buffer = TraceBuffer()
        tracer = Tracer(buffer=buffer)
        with tracer.span("x"):
            pass
        assert len(buffer.drain()) == 1
        assert len(buffer) == 0

    def test_rejects_zero_maxlen(self):
        with pytest.raises(ValueError, match=">= 1"):
            TraceBuffer(maxlen=0)


class TestStitch:
    def test_orphans_promoted_to_roots(self):
        records = [
            {"trace_id": "t-t1", "span_id": "w0-s2", "parent_id": "t-s9",
             "name": "scan", "tags": {}, "duration_s": 0.1},
        ]
        trees = stitch(records)
        assert len(trees) == 1
        assert trees[0]["root"]["span"]["name"] == "scan"

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        path = tmp_path / "traces.jsonl"
        assert write_trace_jsonl(path, tracer.buffer.drain()) == 2
        trees = stitch(read_trace_jsonl(path))
        assert len(trees) == 1
        root = trees[0]["root"]
        assert root["span"]["name"] == "root"
        assert [c["span"]["name"] for c in root["children"]] == ["child"]


# ----------------------------------------------------------------------
# End-to-end propagation: service and 2-shard fleet, both partitions
# ----------------------------------------------------------------------
class TestServiceTracing:
    def test_service_root_span(self, tf_model, split):
        tracer = Tracer()
        service = RecommenderService(
            tf_model, history_log=split.train, tracer=tracer
        )
        service.recommend_batch(np.arange(8), k=5)
        spans = tracer.buffer.drain()
        assert [s.name for s in spans] == ["recommend_batch"]
        assert spans[0].tags["requests"] == 8
        assert spans[0].parent_id is None

    def test_untraced_service_stays_silent(self, tf_model, split):
        service = RecommenderService(tf_model, history_log=split.train)
        service.recommend_batch(np.arange(4), k=5)
        assert service.tracer is None


class TestShardTracing:
    @pytest.mark.parametrize("partition", ["users", "items"])
    def test_two_shard_trace_stitches_into_one_tree(
        self, tf_model, split, partition
    ):
        tracer = Tracer()
        with ShardRouter(
            tf_model,
            n_shards=2,
            history_log=split.train,
            partition=partition,
            tracer=tracer,
        ) as router:
            result = router.recommend_batch(np.arange(16), k=5)
        assert result.shape == (16, 5)
        spans = [span.as_dict() for span in tracer.buffer.drain()]
        trees = stitch(spans)
        assert len(trees) == 1
        root = trees[0]["root"]
        assert root["span"]["name"] == "recommend_batch"
        assert root["span"]["tags"]["partition"] == partition
        children = [c["span"] for c in root["children"]]
        names = {c["name"] for c in children}
        assert "queue_wait" in names and "scan" in names
        shards = {
            c["tags"]["shard"] for c in children if c["name"] == "queue_wait"
        }
        assert shards == {0, 1}
        if partition == "items":
            assert "merge" in names
        for child in children:
            assert child["trace_id"] == root["span"]["trace_id"]
            assert float(child["duration_s"]) >= 0.0
        # Worker-minted IDs are namespaced per shard: no collisions.
        worker_ids = [
            c["span_id"] for c in children if c["name"] != "merge"
        ]
        assert len(set(worker_ids)) == len(worker_ids)
        assert all(wid.startswith("w") for wid in worker_ids)

    def test_router_span_seconds_histograms(self, tf_model, split):
        tracer = Tracer()
        with ShardRouter(
            tf_model, n_shards=2, history_log=split.train, tracer=tracer
        ) as router:
            router.recommend_batch(np.arange(10), k=5)
            snapshot = router.registry.snapshot()
        series = [
            m for m in snapshot["metrics"]
            if m["name"] == "repro_router_span_seconds"
        ]
        by_key = {
            (m["labels"]["span"], m["labels"]["shard"]): m for m in series
        }
        assert ("recommend_batch", "router") in by_key
        assert ("queue_wait", "0") in by_key
        assert ("scan", "1") in by_key
        assert all(m["count"] >= 1 for m in series)

    def test_untraced_router_records_no_span_metrics(self, tf_model, split):
        with ShardRouter(
            tf_model, n_shards=2, history_log=split.train
        ) as router:
            router.recommend_batch(np.arange(10), k=5)
            snapshot = router.registry.snapshot()
        assert snapshot["metrics"] == []

    def test_traced_output_identical_to_untraced(self, tf_model, split):
        users = np.arange(20)
        with ShardRouter(
            tf_model, n_shards=2, history_log=split.train, tracer=Tracer()
        ) as traced:
            traced_result = traced.recommend_batch(users, k=5)
        service = RecommenderService(tf_model, history_log=split.train)
        np.testing.assert_array_equal(
            traced_result, service.recommend_batch(users, k=5)
        )
