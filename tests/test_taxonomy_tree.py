"""Tests for repro.taxonomy.tree.Taxonomy."""

import numpy as np
import pytest

from repro.taxonomy.tree import ROOT, Taxonomy, TaxonomyError


@pytest.fixture()
def tree():
    # 0 root; 1,2 categories; 3,4 items under 1; 5,6 items under 2.
    return Taxonomy([-1, 0, 0, 1, 1, 2, 2])


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(TaxonomyError):
            Taxonomy([])

    def test_rejects_non_root_first_node(self):
        with pytest.raises(TaxonomyError):
            Taxonomy([0, -1])

    def test_rejects_two_roots(self):
        with pytest.raises(TaxonomyError, match="exactly one root"):
            Taxonomy([-1, -1, 0])

    def test_rejects_out_of_range_parent(self):
        with pytest.raises(TaxonomyError):
            Taxonomy([-1, 7])

    def test_rejects_cycle(self):
        with pytest.raises(TaxonomyError):
            Taxonomy([-1, 2, 1])

    def test_rejects_wrong_names_length(self):
        with pytest.raises(TaxonomyError, match="names"):
            Taxonomy([-1, 0], names=["only-root"])

    def test_single_node_tree(self):
        solo = Taxonomy([-1])
        assert solo.n_nodes == 1
        assert solo.n_items == 1  # the root is the only leaf


class TestShape:
    def test_counts(self, tree):
        assert tree.n_nodes == 7
        assert tree.n_items == 4
        assert tree.max_depth == 2
        assert tree.pad_id == 7

    def test_levels(self, tree):
        assert tree.level.tolist() == [0, 1, 1, 2, 2, 2, 2]

    def test_level_sizes(self, tree):
        assert tree.level_sizes() == [1, 2, 4]

    def test_items_are_leaves(self, tree):
        assert tree.items.tolist() == [3, 4, 5, 6]

    def test_parent_readonly(self, tree):
        with pytest.raises(ValueError):
            tree.parent[0] = 5


class TestItemTranslation:
    def test_roundtrip(self, tree):
        for item in range(tree.n_items):
            assert tree.item_of_node(tree.node_of_item(item)) == item

    def test_interior_maps_to_minus_one(self, tree):
        assert tree.item_of_node(1) == -1

    def test_vectorized_matches_scalar(self, tree):
        items = np.arange(tree.n_items)
        nodes = tree.nodes_of_items(items)
        assert [tree.node_of_item(i) for i in items] == nodes.tolist()
        assert tree.items_of_nodes(nodes).tolist() == items.tolist()

    def test_is_leaf(self, tree):
        assert tree.is_leaf(3)
        assert not tree.is_leaf(1)
        assert not tree.is_leaf(ROOT)


class TestNavigation:
    def test_children(self, tree):
        assert tree.children(0).tolist() == [1, 2]
        assert tree.children(1).tolist() == [3, 4]
        assert tree.children(3).size == 0

    def test_siblings(self, tree):
        assert tree.siblings(1).tolist() == [2]
        assert tree.siblings(3).tolist() == [4]
        assert tree.siblings(ROOT).size == 0

    def test_random_sibling_member(self, tree, rng):
        sib = tree.random_sibling(3, rng)
        assert sib == 4

    def test_random_sibling_of_root_is_minus_one(self, tree, rng):
        assert tree.random_sibling(ROOT, rng) == -1

    def test_path_to_root(self, tree):
        assert tree.path_to_root(5) == [5, 2, 0]
        assert tree.path_to_root(ROOT) == [0]

    def test_ancestor_at_height(self, tree):
        assert tree.ancestor_at_height(5, 0) == 5
        assert tree.ancestor_at_height(5, 1) == 2
        assert tree.ancestor_at_height(5, 2) == 0
        # Walking past the root sticks at the root.
        assert tree.ancestor_at_height(5, 99) == 0

    def test_nodes_at_level(self, tree):
        assert tree.nodes_at_level(1).tolist() == [1, 2]
        assert tree.nodes_at_level(2).tolist() == [3, 4, 5, 6]

    def test_subtree_items(self, tree):
        assert tree.subtree_items(1).tolist() == [0, 1]
        assert tree.subtree_items(ROOT).tolist() == [0, 1, 2, 3]
        assert tree.subtree_items(5).tolist() == [2]


class TestAncestorMatrix:
    def test_full_chains(self, tree):
        full = tree.ancestor_matrix()
        assert full.shape == (7, 3)
        assert full[5].tolist() == [5, 2, 0]
        assert full[1].tolist() == [1, 0, tree.pad_id]
        assert full[0].tolist() == [0, tree.pad_id, tree.pad_id]

    def test_truncated_chains(self, tree):
        two = tree.ancestor_matrix(2)
        assert two.shape == (7, 2)
        assert two[5].tolist() == [5, 2]

    def test_matches_path_to_root(self, tree):
        full = tree.ancestor_matrix()
        for node in range(tree.n_nodes):
            path = tree.path_to_root(node)
            row = [x for x in full[node] if x != tree.pad_id]
            assert row == path

    def test_item_matrix_rows(self, tree):
        items = tree.item_ancestor_matrix(2)
        assert items.shape == (4, 2)
        assert items[0].tolist() == [3, 1]

    def test_cached_and_readonly(self, tree):
        a = tree.ancestor_matrix(3)
        b = tree.ancestor_matrix(3)
        assert a is b
        with pytest.raises(ValueError):
            a[0, 0] = 1

    def test_levels_must_be_positive(self, tree):
        with pytest.raises(ValueError):
            tree.ancestor_matrix(0)


class TestItemCategory:
    def test_level_one(self, tree):
        cats = tree.item_category(np.array([0, 1, 2, 3]), level=1)
        assert cats.tolist() == [1, 1, 2, 2]

    def test_level_equals_item_depth(self, tree):
        cats = tree.item_category(np.array([0, 3]), level=2)
        assert cats.tolist() == [3, 6]

    def test_level_zero_is_root(self, tree):
        cats = tree.item_category(np.array([0, 3]), level=0)
        assert cats.tolist() == [0, 0]


class TestDunders:
    def test_len(self, tree):
        assert len(tree) == 7

    def test_repr_mentions_shape(self, tree):
        assert "n_items=4" in repr(tree)

    def test_equality_and_hash(self, tree):
        same = Taxonomy([-1, 0, 0, 1, 1, 2, 2])
        other = Taxonomy([-1, 0, 0, 1, 1, 1, 2])
        assert tree == same
        assert hash(tree) == hash(same)
        assert tree != other

    def test_names(self):
        named = Taxonomy([-1, 0], names=["root", "leaf"])
        assert named.name_of(1) == "leaf"
        unnamed = Taxonomy([-1, 0])
        assert unnamed.name_of(1) == "node:1"
