"""Tests for the multi-core scaling simulator (Figs. 8a/b shapes)."""

import numpy as np
import pytest

from repro.parallel.simulator import (
    ParallelProfile,
    epoch_time_curve,
    mf_profile,
    simulate_epoch,
    speedup_curve,
    tf_profile,
)


class TestProfiles:
    def test_tf_costs_more_per_sample(self):
        assert tf_profile().compute_cost > mf_profile().compute_cost

    def test_lock_inflation_only_without_cache(self):
        plain = tf_profile(cached=False)
        cached = tf_profile(cached=True)
        assert plain.effective_lock_cost(48) > plain.effective_lock_cost(10)
        assert cached.effective_lock_cost(48) == cached.effective_lock_cost(10)

    def test_upper_bound_monotone_until_saturation(self):
        profile = mf_profile()
        bounds = [profile.upper_bound_throughput(t) for t in (1, 2, 4, 8)]
        assert bounds == sorted(bounds)

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            ParallelProfile(name="x", compute_cost=0.0, lock_cost=0.1)


class TestSimulateEpoch:
    def test_single_thread_time_matches_serial_cost(self):
        profile = mf_profile()
        result = simulate_epoch(profile, 1, n_samples=500, jitter=0.0)
        expected = 500 * (profile.compute_cost + profile.lock_cost)
        assert result.epoch_time == pytest.approx(expected, rel=0.01)

    def test_more_threads_never_slower_in_linear_regime(self):
        profile = tf_profile()
        t1 = simulate_epoch(profile, 1, n_samples=1000).epoch_time
        t4 = simulate_epoch(profile, 4, n_samples=1000).epoch_time
        assert t4 < t1 / 3.0

    def test_throughput_respects_operational_bound(self):
        profile = tf_profile()
        for threads in (1, 4, 16, 48):
            result = simulate_epoch(profile, threads, n_samples=2000)
            bound = profile.upper_bound_throughput(threads)
            assert result.throughput <= bound * 1.02

    def test_utilizations_bounded(self):
        result = simulate_epoch(mf_profile(), 8, n_samples=1000)
        assert 0.0 < result.cpu_utilization <= 1.0
        assert 0.0 < result.lock_utilization <= 1.0

    def test_deterministic_given_seed(self):
        a = simulate_epoch(tf_profile(), 8, n_samples=500, seed=1).epoch_time
        b = simulate_epoch(tf_profile(), 8, n_samples=500, seed=1).epoch_time
        assert a == b


class TestPaperShapes:
    """The acceptance criteria of DESIGN.md for Fig. 8(a,b)."""

    THREADS = [1, 2, 4, 8, 12, 16, 24, 32, 40, 48]

    def test_tf_max_speedup_exceeds_mf(self):
        tf_curve = speedup_curve(tf_profile(), self.THREADS)
        mf_curve = speedup_curve(mf_profile(), self.THREADS)
        assert max(tf_curve.values()) > max(mf_curve.values())

    def test_mf_speedup_about_six(self):
        curve = speedup_curve(mf_profile(), self.THREADS)
        assert 5.0 <= max(curve.values()) <= 7.0

    def test_tf_speedup_about_eight(self):
        curve = speedup_curve(tf_profile(), self.THREADS)
        assert 7.0 <= max(curve.values()) <= 9.0

    def test_near_linear_up_to_four_threads(self):
        curve = speedup_curve(tf_profile(), [1, 2, 4])
        assert curve[2] > 1.7
        assert curve[4] > 3.4

    def test_uncached_drops_after_forty_threads(self):
        curve = speedup_curve(tf_profile(cached=False), [40, 48])
        assert curve[48] < curve[40] * 0.97

    def test_cached_flat_after_forty_threads(self):
        curve = speedup_curve(tf_profile(cached=True), [40, 48])
        assert curve[48] >= curve[40] * 0.97

    def test_tf_mf_time_gap_shrinks_with_threads(self):
        """Fig. 8(a): the TF-vs-MF wall-time gap narrows as threads grow."""
        tf_times = epoch_time_curve(tf_profile(), [1, 12])
        mf_times = epoch_time_curve(mf_profile(), [1, 12])
        gap_at_1 = tf_times[1] - mf_times[1]
        gap_at_12 = tf_times[12] - mf_times[12]
        assert gap_at_12 < gap_at_1 / 2.0
