"""Tests for repro.taxonomy.builder."""

import pytest

from repro.taxonomy.builder import from_edges, from_parent_array, from_paths
from repro.taxonomy.tree import TaxonomyError


class TestFromParentArray:
    def test_builds(self):
        tax = from_parent_array([-1, 0, 0])
        assert tax.n_nodes == 3
        assert tax.n_items == 2


class TestFromEdges:
    def test_simple_tree(self):
        tax = from_edges(
            [("root", "a"), ("root", "b"), ("a", "x"), ("a", "y"), ("b", "z")]
        )
        assert tax.n_nodes == 6
        assert tax.n_items == 3
        assert tax.name_of(0) == "root"
        assert tax.level_sizes() == [1, 2, 3]

    def test_bfs_numbering_is_input_order_independent(self):
        edges = [("r", "a"), ("r", "b"), ("a", "x")]
        tax1 = from_edges(edges)
        tax2 = from_edges(list(reversed(edges)))
        assert tax1 == tax2

    def test_explicit_root(self):
        tax = from_edges([("r", "a")], root="r")
        assert tax.name_of(0) == "r"

    def test_unknown_root_rejected(self):
        with pytest.raises(TaxonomyError):
            from_edges([("r", "a")], root="zz")

    def test_two_parents_rejected(self):
        with pytest.raises(TaxonomyError, match="two parents"):
            from_edges([("r", "a"), ("r", "b"), ("a", "x"), ("b", "x")])

    def test_empty_rejected(self):
        with pytest.raises(TaxonomyError):
            from_edges([])

    def test_cycle_has_no_root(self):
        with pytest.raises(TaxonomyError):
            from_edges([("a", "b"), ("b", "a")])


class TestFromPaths:
    def test_merges_shared_prefixes(self):
        tax = from_paths(
            [
                ["Electronics", "Cameras", "item-1"],
                ["Electronics", "Cameras", "item-2"],
                ["Electronics", "Phones", "item-3"],
            ]
        )
        # root + Electronics + {Cameras, Phones} + 3 items
        assert tax.n_nodes == 7
        assert tax.n_items == 3
        assert tax.name_of(0) == "<root>"

    def test_namespacing_distinguishes_same_names(self):
        tax = from_paths(
            [
                ["A", "Accessories", "item-1"],
                ["B", "Accessories", "item-2"],
            ]
        )
        # The two "Accessories" categories are distinct nodes.
        level2 = tax.nodes_at_level(2)
        assert level2.size == 2

    def test_duplicate_paths_collapse(self):
        tax = from_paths([["A", "x"], ["A", "x"]])
        assert tax.n_items == 1

    def test_empty_path_rejected(self):
        with pytest.raises(TaxonomyError):
            from_paths([[]])

    def test_no_paths_rejected(self):
        with pytest.raises(TaxonomyError):
            from_paths([])

    def test_custom_root_name(self):
        tax = from_paths([["a", "b"]], root_name="shop")
        assert tax.name_of(0) == "shop"
