"""Tests for the popularity and random baselines."""

import numpy as np
import pytest

from repro.core.popularity import PopularityModel, RandomModel
from repro.data.transactions import TransactionLog


@pytest.fixture()
def log():
    return TransactionLog(
        [
            [[0], [0], [1]],
            [[0], [2]],
        ],
        n_items=4,
    )


class TestPopularityModel:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            PopularityModel().score_items(0)

    def test_ranks_by_count(self, log):
        model = PopularityModel().fit(log)
        top = model.recommend(0, k=4)
        assert top[0] == 0  # 3 purchases
        assert set(top[1:3].tolist()) == {1, 2}

    def test_scores_user_independent(self, log):
        model = PopularityModel().fit(log)
        np.testing.assert_allclose(model.score_items(0), model.score_items(1))

    def test_score_matrix_rows_identical(self, log):
        model = PopularityModel().fit(log)
        matrix = model.score_matrix(np.arange(2))
        np.testing.assert_allclose(matrix[0], matrix[1])

    def test_subset_scores(self, log):
        model = PopularityModel().fit(log)
        subset = model.score_items(0, items=np.array([0, 3]))
        assert subset[0] > subset[1]

    def test_deterministic_tiebreak(self, log):
        a = PopularityModel().fit(log).recommend(0, k=4)
        b = PopularityModel().fit(log).recommend(0, k=4)
        assert np.array_equal(a, b)


class TestRandomModel:
    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            RandomModel().score_items(0)

    def test_scores_in_unit_interval(self, log):
        model = RandomModel(0).fit(log)
        scores = model.score_items(0)
        assert scores.shape == (4,)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_seeded_reproducibility(self, log):
        a = RandomModel(7).fit(log).recommend(0, k=4)
        b = RandomModel(7).fit(log).recommend(0, k=4)
        assert np.array_equal(a, b)

    def test_auc_near_half(self, log):
        """Random ranking must sit at AUC ≈ 0.5 (the floor)."""
        from repro.eval.metrics import auc

        model = RandomModel(1).fit(log)
        values = [
            auc(model.score_items(0), [0, 1]) for _ in range(300)
        ]
        assert abs(np.mean(values) - 0.5) < 0.06
