"""Tests for BPR sampling machinery."""

import numpy as np
import pytest

from repro.core.sampling import TripleStore
from repro.data.transactions import TransactionLog


@pytest.fixture()
def log():
    return TransactionLog(
        [
            [[0, 1], [2]],
            [[3], [0, 4]],
        ],
        n_items=6,
    )


@pytest.fixture()
def store(log):
    return TripleStore(log)


class TestTripleStore:
    def test_triples_cover_all_purchases(self, store, log):
        assert store.n_triples == log.n_purchases

    def test_triples_content(self, store):
        rows = {tuple(r) for r in store.triples.tolist()}
        assert (0, 0, 0) in rows and (1, 1, 4) in rows

    def test_row_of(self, store):
        assert store.row_of(0, 0) == 0
        assert store.row_of(0, 1) == 1
        assert store.row_of(1, 0) == 2
        assert store.row_of(1, 1) == 3

    def test_transaction_rows_align_with_triples(self, store):
        for k in range(store.n_triples):
            u, t, _ = store.triples[k]
            assert store.transaction_rows[k] == store.row_of(int(u), int(t))

    def test_baskets_are_sets(self, store):
        assert store.baskets[store.row_of(1, 1)] == {0, 4}

    def test_epoch_order_is_permutation(self, store, rng):
        order = store.epoch_order(rng)
        assert sorted(order.tolist()) == list(range(store.n_triples))

    def test_epoch_order_no_shuffle(self, store):
        order = store.epoch_order(shuffle=False)
        assert order.tolist() == list(range(store.n_triples))


class TestNegativeSampling:
    def test_negatives_avoid_basket(self, store, rng):
        indices = np.arange(store.n_triples)
        for _ in range(20):
            negatives = store.sample_negatives(indices, rng)
            for k, idx in enumerate(indices):
                row = store.transaction_rows[idx]
                assert int(negatives[k]) not in store.baskets[row]

    def test_negatives_in_item_range(self, store, rng):
        negatives = store.sample_negatives(np.arange(store.n_triples), rng)
        assert negatives.min() >= 0
        assert negatives.max() < store.log.n_items

    def test_scan_fallback_with_huge_basket(self, rng):
        # Basket covers all items except item 3 — rejection will almost
        # always fail, forcing the deterministic scan.
        log = TransactionLog([[[0, 1, 2, 4]]], n_items=5)
        store = TripleStore(log)
        negatives = store.sample_negatives(
            np.arange(store.n_triples), rng, attempts=1
        )
        assert np.all(negatives == 3)

    def test_deterministic_for_seed(self, store):
        a = store.sample_negatives(np.arange(store.n_triples), 5)
        b = store.sample_negatives(np.arange(store.n_triples), 5)
        assert np.array_equal(a, b)
