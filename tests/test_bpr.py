"""Tests for the BPR numerical primitives."""

import numpy as np
import pytest

from repro.core.bpr import bpr_coefficient, bpr_pair_loss, log_sigmoid, sigmoid


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_symmetry(self, rng):
        z = rng.normal(0, 5, size=100)
        np.testing.assert_allclose(sigmoid(z) + sigmoid(-z), np.ones(100))

    def test_extreme_values_do_not_overflow(self):
        out = sigmoid(np.array([-1e6, 1e6]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)

    def test_monotone(self, rng):
        z = np.sort(rng.normal(0, 3, size=50))
        assert np.all(np.diff(sigmoid(z)) >= 0)


class TestLogSigmoid:
    def test_matches_log_of_sigmoid(self, rng):
        z = rng.normal(0, 3, size=100)
        np.testing.assert_allclose(log_sigmoid(z), np.log(sigmoid(z)), atol=1e-12)

    def test_large_negative_is_linear(self):
        assert log_sigmoid(np.array([-50.0]))[0] == pytest.approx(-50.0, rel=1e-6)

    def test_never_positive(self, rng):
        z = rng.normal(0, 10, size=100)
        assert np.all(log_sigmoid(z) <= 0)


class TestBprCoefficient:
    def test_is_one_minus_sigmoid(self, rng):
        z = rng.normal(0, 2, size=20)
        np.testing.assert_allclose(bpr_coefficient(z), 1.0 - sigmoid(z))

    def test_well_ranked_pair_has_small_coefficient(self):
        assert bpr_coefficient(np.array([10.0]))[0] < 1e-4

    def test_badly_ranked_pair_has_large_coefficient(self):
        assert bpr_coefficient(np.array([-10.0]))[0] > 1.0 - 1e-4


class TestBprPairLoss:
    def test_zero_diff_is_log_two(self):
        assert bpr_pair_loss(np.zeros(5)) == pytest.approx(np.log(2.0))

    def test_empty_batch(self):
        assert bpr_pair_loss(np.array([])) == 0.0

    def test_loss_decreases_with_separation(self):
        assert bpr_pair_loss(np.array([3.0])) < bpr_pair_loss(np.array([0.5]))
