"""Tests for the temporal affinity model (Eq. 2/3)."""

import numpy as np
import pytest

from repro.core.affinity import (
    ContextTable,
    context_items_weights,
    decay_weights,
    score_items,
    user_query_vector,
)
from repro.core.factors import KIND_NEXT, FactorSet
from repro.data.transactions import TransactionLog
from repro.taxonomy.generator import complete_taxonomy


@pytest.fixture()
def taxonomy():
    return complete_taxonomy((2, 2), items_per_leaf=2)


@pytest.fixture()
def fs(taxonomy):
    return FactorSet(n_users=4, taxonomy=taxonomy, factors=3, levels=2, seed=1)


@pytest.fixture()
def log():
    return TransactionLog(
        [
            [[0, 1], [2], [3, 4]],
            [[5]],
        ],
        n_items=8,
    )


class TestDecayWeights:
    def test_formula(self):
        w = decay_weights(3, alpha=2.0)
        expected = 2.0 * np.exp(-np.arange(1, 4) / 3.0)
        np.testing.assert_allclose(w, expected)

    def test_zero_order_empty(self):
        assert decay_weights(0).size == 0

    def test_monotone_decreasing(self):
        w = decay_weights(5)
        assert np.all(np.diff(w) < 0)

    def test_negative_order_raises(self):
        with pytest.raises(ValueError):
            decay_weights(-1)


class TestContextItemsWeights:
    def test_single_previous_transaction(self):
        history = [np.array([3, 4])]
        items, weights = context_items_weights(history, order=1, alpha=1.0)
        assert sorted(items.tolist()) == [3, 4]
        expected = np.exp(-1.0) / 2.0
        np.testing.assert_allclose(weights, [expected, expected])

    def test_order_limits_lookback(self):
        history = [np.array([0]), np.array([1]), np.array([2])]
        items, _ = context_items_weights(history, order=2)
        assert set(items.tolist()) == {1, 2}

    def test_recent_transactions_weigh_more(self):
        history = [np.array([0]), np.array([1])]
        items, weights = context_items_weights(history, order=2)
        by_item = dict(zip(items.tolist(), weights.tolist()))
        assert by_item[1] > by_item[0]

    def test_empty_history(self):
        items, weights = context_items_weights([], order=2)
        assert items.size == 0 and weights.size == 0

    def test_max_items_truncates_to_most_recent(self):
        history = [np.array([0, 1, 2]), np.array([3, 4, 5])]
        items, weights = context_items_weights(history, order=2, max_items=3)
        assert items.size == 3
        assert set(items.tolist()) == {3, 4, 5}

    def test_basket_share_divides_weight(self):
        items, weights = context_items_weights([np.array([0, 1, 2, 3])], order=1)
        np.testing.assert_allclose(weights, np.full(4, np.exp(-1.0) / 4.0))


class TestContextTable:
    def test_rows_cover_all_transactions(self, log):
        table = ContextTable.build(log, order=1)
        assert table.n_rows == log.n_transactions

    def test_first_transaction_has_empty_context(self, log, fs):
        table = ContextTable.build(log, order=1)
        row = table.row(0, 0)
        assert np.all(table.weights[row] == 0)
        ctx = table.context_vectors(fs, np.array([row]))
        np.testing.assert_allclose(ctx, np.zeros((1, 3)))

    def test_context_matches_manual_computation(self, log, fs):
        table = ContextTable.build(log, order=2)
        row = table.row(0, 2)  # context: transactions [2] and [0, 1]
        ctx = table.context_vectors(fs, np.array([row]))[0]
        alphas = decay_weights(2)
        expected = alphas[0] * fs.effective_items(np.array([2]), KIND_NEXT)[0]
        expected = expected + (alphas[1] / 2.0) * (
            fs.effective_items(np.array([0]), KIND_NEXT)[0]
            + fs.effective_items(np.array([1]), KIND_NEXT)[0]
        )
        np.testing.assert_allclose(ctx, expected)

    def test_row_index_arithmetic(self, log):
        table = ContextTable.build(log, order=1)
        rows = table.rows(np.array([0, 0, 1]), np.array([0, 2, 0]))
        assert rows.tolist() == [0, 2, 3]

    def test_requires_positive_order(self, log):
        with pytest.raises(ValueError):
            ContextTable.build(log, order=0)


class TestScoring:
    def test_query_without_history_is_user_factor(self, fs):
        query = user_query_vector(fs, user=2, history=None, order=1)
        np.testing.assert_allclose(query, fs.user[2])

    def test_query_with_history_adds_context(self, fs):
        history = [np.array([0])]
        query = user_query_vector(fs, 0, history, order=1)
        expected = fs.user[0] + np.exp(-1.0) * fs.effective_items(
            np.array([0]), KIND_NEXT
        )[0]
        np.testing.assert_allclose(query, expected)

    def test_score_items_eq3(self, fs):
        history = [np.array([1])]
        scores = score_items(fs, 0, history, order=1)
        query = user_query_vector(fs, 0, history, order=1)
        expected = fs.effective_items() @ query + fs.bias_of_items()
        np.testing.assert_allclose(scores, expected)

    def test_score_items_subset(self, fs):
        subset = np.array([2, 5])
        all_scores = score_items(fs, 1)
        sub_scores = score_items(fs, 1, items=subset)
        np.testing.assert_allclose(all_scores[subset], sub_scores)

    def test_order_zero_ignores_history(self, fs):
        with_history = score_items(fs, 0, [np.array([0])], order=0)
        without = score_items(fs, 0, None, order=0)
        np.testing.assert_allclose(with_history, without)
