"""Tests for the vectorized BPR/SGD trainer, including gradient checks.

The finite-difference tests verify that ``_apply_batch`` performs exact
gradient ascent (at learning-rate scale) on the per-sample objective

    f(Θ) = ln σ(s(i) − s(j)) − (λ/2)·Σ_touched ‖θ‖²

where the regularization sum runs over the *touched* parameters with
multiset semantics (a row appearing in both chains is decayed twice),
matching the paper's per-sample weight-decay SGD.
"""

import numpy as np
import pytest

from repro.core.affinity import ContextTable
from repro.core.bpr import log_sigmoid
from repro.core.factors import FactorSet
from repro.core.sgd import SGDTrainer
from repro.data.transactions import TransactionLog
from repro.taxonomy.generator import complete_taxonomy
from repro.utils.config import TrainConfig


@pytest.fixture()
def taxonomy():
    return complete_taxonomy((2, 2), items_per_leaf=2)  # depth 3, 8 items


@pytest.fixture()
def log():
    return TransactionLog(
        [
            [[0, 1], [4, 5]],
            [[2], [6]],
        ],
        n_items=8,
    )


def batch_objective(fs, cfg, ctx_table, users, ctx_rows, pos_chains, neg_chains):
    """The objective whose gradient the batch update must ascend."""
    vu = fs.user[users]
    prev_chains = None
    if ctx_rows is not None:
        prev_items = ctx_table.items[ctx_rows]
        prev_weights = ctx_table.weights[ctx_rows]
        prev_chains = fs.item_chains[prev_items]
        eff_prev = fs.w_next[prev_chains].sum(axis=2)
        query = vu + np.einsum("ml,mlk->mk", prev_weights, eff_prev)
    else:
        query = vu
    eff_pos = fs.w[pos_chains].sum(axis=1)
    eff_neg = fs.w[neg_chains].sum(axis=1)
    diff = ((eff_pos - eff_neg) * query).sum(axis=1)
    if cfg.use_bias:
        diff = diff + fs.bias[pos_chains].sum(axis=1) - fs.bias[neg_chains].sum(axis=1)
    value = float(log_sigmoid(diff).sum())
    reg = cfg.reg
    penalty = (vu**2).sum() + (fs.w[pos_chains] ** 2).sum()
    penalty += (fs.w[neg_chains] ** 2).sum()
    if cfg.use_bias:
        penalty += (fs.bias[pos_chains] ** 2).sum()
        penalty += (fs.bias[neg_chains] ** 2).sum()
    if prev_chains is not None:
        mask = (prev_weights != 0.0)[:, :, None, None]
        penalty += ((fs.w_next[prev_chains] ** 2) * mask).sum()
    return value - 0.5 * reg * float(penalty)


def numeric_gradient(make_objective, array, index, eps=1e-6):
    """Central finite difference of the objective w.r.t. one coordinate."""
    original = array[index]
    array[index] = original + eps
    up = make_objective()
    array[index] = original - eps
    down = make_objective()
    array[index] = original
    return (up - down) / (2.0 * eps)


class TestGradientCorrectness:
    @pytest.mark.parametrize("use_bias", [True, False])
    @pytest.mark.parametrize("markov_order", [0, 1])
    def test_batch_update_is_gradient_ascent(
        self, taxonomy, log, use_bias, markov_order
    ):
        cfg = TrainConfig(
            factors=3,
            epochs=1,
            learning_rate=0.05,
            reg=0.02,
            taxonomy_levels=3,
            markov_order=markov_order,
            use_bias=use_bias,
            seed=5,
        )
        fs = FactorSet(
            n_users=log.n_users,
            taxonomy=taxonomy,
            factors=3,
            levels=3,
            with_next=markov_order > 0,
            seed=5,
        )
        trainer = SGDTrainer(fs, log, cfg)
        # Sample (u=0, t=1): positive item 4, negative item 2 (disjoint
        # chains at levels <= 3 in a complete 2x2 tree).
        users = np.array([0])
        pos_chains = fs.item_chains[np.array([4])]
        neg_chains = fs.item_chains[np.array([2])]
        ctx_rows = None
        if markov_order > 0:
            ctx_rows = np.array([trainer.store.row_of(0, 1)])
        before = fs.copy()

        def objective():
            return batch_objective(
                before, cfg, trainer.context, users, ctx_rows, pos_chains, neg_chains
            )

        trainer._apply_batch(users, ctx_rows, pos_chains, neg_chains)

        # User factors.
        for col in range(3):
            numeric = numeric_gradient(objective, before.user, (0, col))
            analytic = (fs.user[0, col] - before.user[0, col]) / cfg.learning_rate
            assert analytic == pytest.approx(numeric, abs=1e-5)

        # Long-term chain rows (both chains).
        for row in set(pos_chains.ravel()) | set(neg_chains.ravel()):
            for col in range(3):
                numeric = numeric_gradient(objective, before.w, (row, col))
                analytic = (fs.w[row, col] - before.w[row, col]) / cfg.learning_rate
                assert analytic == pytest.approx(numeric, abs=1e-5)

        # Bias entries.
        if use_bias:
            for row in set(pos_chains.ravel()) | set(neg_chains.ravel()):
                numeric = numeric_gradient(objective, before.bias, row)
                analytic = (fs.bias[row] - before.bias[row]) / cfg.learning_rate
                assert analytic == pytest.approx(numeric, abs=1e-5)

        # Next-item chain rows of the context items.
        if markov_order > 0:
            prev_items = trainer.context.items[ctx_rows]
            rows = set(fs.item_chains[prev_items].ravel())
            for row in rows:
                for col in range(3):
                    numeric = numeric_gradient(objective, before.w_next, (row, col))
                    analytic = (
                        fs.w_next[row, col] - before.w_next[row, col]
                    ) / cfg.learning_rate
                    assert analytic == pytest.approx(numeric, abs=1e-5)

    def test_gradient_with_shared_ancestors(self, taxonomy, log):
        """Items 0 and 1 are siblings: their shared ancestor rows must get
        the multiset gradient (data terms cancel, decay applies twice)."""
        cfg = TrainConfig(
            factors=3, learning_rate=0.05, reg=0.03, taxonomy_levels=3, seed=2
        )
        fs = FactorSet(log.n_users, taxonomy, 3, 3, with_next=False, seed=2)
        trainer = SGDTrainer(fs, log, cfg)
        users = np.array([0])
        pos_chains = fs.item_chains[np.array([0])]
        neg_chains = fs.item_chains[np.array([1])]
        before = fs.copy()

        def objective():
            return batch_objective(
                before, cfg, None, users, None, pos_chains, neg_chains
            )

        trainer._apply_batch(users, None, pos_chains, neg_chains)
        shared = set(pos_chains.ravel()) & set(neg_chains.ravel())
        assert shared  # siblings share everything above the item level
        for row in set(pos_chains.ravel()) | set(neg_chains.ravel()):
            for col in range(3):
                numeric = numeric_gradient(objective, before.w, (row, col))
                analytic = (fs.w[row, col] - before.w[row, col]) / cfg.learning_rate
                assert analytic == pytest.approx(numeric, abs=1e-5)


class TestTrainerBehavior:
    def test_loss_decreases(self, taxonomy):
        rng = np.random.default_rng(0)
        rows = [
            [[int(rng.integers(0, 4))], [int(rng.integers(0, 4))]]
            for _ in range(100)
        ]
        log = TransactionLog(rows, n_items=taxonomy.n_items)
        cfg = TrainConfig(factors=4, epochs=8, taxonomy_levels=3, seed=0)
        fs = FactorSet(log.n_users, taxonomy, 4, 3, with_next=False, seed=0)
        history = SGDTrainer(fs, log, cfg).train()
        assert history[-1].loss < history[0].loss

    def test_deterministic_given_seed(self, taxonomy, log):
        cfg = TrainConfig(factors=4, epochs=3, taxonomy_levels=3, seed=9)
        runs = []
        for _ in range(2):
            fs = FactorSet(log.n_users, taxonomy, 4, 3, with_next=False, seed=9)
            SGDTrainer(fs, log, cfg).train()
            runs.append(fs.w.copy())
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_epoch_stats_fields(self, taxonomy, log):
        cfg = TrainConfig(factors=4, epochs=2, taxonomy_levels=3, seed=0)
        fs = FactorSet(log.n_users, taxonomy, 4, 3, with_next=False, seed=0)
        history = SGDTrainer(fs, log, cfg).train()
        assert len(history) == 2
        assert history[0].epoch == 0 and history[1].epoch == 1
        assert history[0].n_examples == log.n_purchases
        assert history[0].seconds >= 0
        assert "loss=" in str(history[0])

    def test_sibling_examples_counted(self, taxonomy, log):
        cfg = TrainConfig(
            factors=4, epochs=1, taxonomy_levels=3, sibling_ratio=1.0, seed=0
        )
        fs = FactorSet(log.n_users, taxonomy, 4, 3, with_next=False, seed=0)
        history = SGDTrainer(fs, log, cfg).train()
        assert history[0].n_sibling_examples > 0

    def test_no_sibling_examples_when_ratio_zero(self, taxonomy, log):
        cfg = TrainConfig(factors=4, epochs=1, taxonomy_levels=3, seed=0)
        fs = FactorSet(log.n_users, taxonomy, 4, 3, with_next=False, seed=0)
        history = SGDTrainer(fs, log, cfg).train()
        assert history[0].n_sibling_examples == 0

    def test_pad_rows_stay_zero_after_training(self, taxonomy, log):
        cfg = TrainConfig(
            factors=4, epochs=2, taxonomy_levels=5, sibling_ratio=0.8, seed=0
        )
        fs = FactorSet(log.n_users, taxonomy, 4, 5, with_next=False, seed=0)
        SGDTrainer(fs, log, cfg).train()
        assert np.all(fs.w[-1] == 0)
        assert fs.bias[-1] == 0

    def test_markov_requires_next_factors(self, taxonomy, log):
        cfg = TrainConfig(factors=4, markov_order=1, taxonomy_levels=3, seed=0)
        fs = FactorSet(log.n_users, taxonomy, 4, 3, with_next=False, seed=0)
        with pytest.raises(ValueError, match="next-item"):
            SGDTrainer(fs, log, cfg)

    def test_item_universe_mismatch_rejected(self, taxonomy):
        log = TransactionLog([[[0]]], n_items=3)
        cfg = TrainConfig(factors=4, taxonomy_levels=3, seed=0)
        fs = FactorSet(1, taxonomy, 4, 3, with_next=False, seed=0)
        with pytest.raises(ValueError, match="items"):
            SGDTrainer(fs, log, cfg)

    def test_too_many_users_rejected(self, taxonomy, log):
        cfg = TrainConfig(factors=4, taxonomy_levels=3, seed=0)
        fs = FactorSet(1, taxonomy, 4, 3, with_next=False, seed=0)
        with pytest.raises(ValueError, match="users"):
            SGDTrainer(fs, log, cfg)
