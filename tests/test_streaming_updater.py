"""OnlineUpdater: frozen item factors, user-vector moves, growth paths."""

import numpy as np
import pytest

from repro.streaming.events import ItemArrival, MicroBatch, PurchaseEvent
from repro.streaming.updater import OnlineUpdater
from repro.core.tf_model import TaxonomyFactorModel


@pytest.fixture()
def updater(tf_model):
    return OnlineUpdater(tf_model, steps=8, seed=0)


class TestConstruction:
    def test_rejects_unfitted_model(self, dataset):
        with pytest.raises(RuntimeError):
            OnlineUpdater(TaxonomyFactorModel(dataset.taxonomy))

    def test_base_model_never_mutated(self, tf_model):
        fs = tf_model.factor_set
        before_user = fs.user.copy()
        before_w = fs.w.copy()
        updater = OnlineUpdater(tf_model, steps=8, seed=0)
        updater.apply_events([PurchaseEvent(0, (1, 2)), PurchaseEvent(1, (3,))])
        np.testing.assert_array_equal(fs.user, before_user)
        np.testing.assert_array_equal(fs.w, before_w)

    def test_defaults_come_from_config(self, tf_model):
        updater = OnlineUpdater(tf_model)
        assert updater.learning_rate == tf_model.config.learning_rate
        assert updater.reg == tf_model.config.reg

    def test_validates_budgets(self, tf_model):
        with pytest.raises(ValueError):
            OnlineUpdater(tf_model, steps=0)
        with pytest.raises(ValueError):
            OnlineUpdater(tf_model, fold_in_steps=0)


class TestKnownUserUpdates:
    def test_item_factors_stay_frozen(self, updater):
        fs = updater.model.factor_set
        w_before = fs.w.copy()
        bias_before = fs.bias.copy()
        updater.apply_events([PurchaseEvent(u, (u % 5,)) for u in range(20)])
        np.testing.assert_array_equal(fs.w, w_before)
        np.testing.assert_array_equal(fs.bias, bias_before)

    def test_user_vector_moves_toward_purchases(self, updater, tf_model):
        user, item = 0, 17
        score_before = float(updater.model.score_items(user)[item])
        updater.apply_events([PurchaseEvent(user, (item,))] * 10)
        # Score the purchased item with the *updated* user vector but the
        # same frozen item factors: repeated purchases must raise it.
        score_after = float(updater.model.score_items(user)[item])
        assert score_after > score_before

    def test_only_touched_users_change(self, updater):
        fs = updater.model.factor_set
        before = fs.user.copy()
        updater.apply_events([PurchaseEvent(3, (1,))])
        changed = np.flatnonzero(np.any(fs.user != before, axis=1))
        assert changed.tolist() == [3]

    def test_stats_accounting(self, updater):
        stats = updater.apply_events(
            [PurchaseEvent(0, (1, 2)), PurchaseEvent(1, (3,))]
        )
        assert stats.events == 2
        assert stats.purchases == 3
        assert stats.batches == 1
        assert stats.pair_steps == 3 * updater.steps
        assert stats.seconds > 0

    def test_rejects_out_of_range_items(self, updater):
        with pytest.raises(ValueError, match="onboard"):
            updater.apply_events([PurchaseEvent(0, (updater.n_items,))])

    def test_negative_sampling_rejects_basket_items(
        self, tiny_taxonomy, monkeypatch
    ):
        """Offline parity (``j ∉ B_t``): a streamed basket's own items must
        be resampled away, never used as the pair's negative."""
        from repro.data.transactions import TransactionLog
        from repro.utils.config import TrainConfig
        import repro.streaming.updater as updater_mod

        log = TransactionLog([[[0], [4]], [[2], [6]]], n_items=8)
        model = TaxonomyFactorModel(
            tiny_taxonomy, TrainConfig(factors=4, epochs=2, seed=0)
        ).fit(log)
        updater = OnlineUpdater(model, steps=1, seed=0)

        class ScriptedRng:
            """First draw collides with the basket; resamples offer item 7."""

            def __init__(self):
                self.draws = 0

            def integers(self, low, high, size=None):
                self.draws += 1
                value = 0 if self.draws == 1 else 7
                return np.full(size, value, dtype=np.int64)

        updater.rng = ScriptedRng()
        seen_deltas = []
        real_step = updater_mod.bpr_user_step

        def spy(vu, delta, c, lr, reg):
            seen_deltas.append(delta.copy())
            return real_step(vu, delta, c, lr, reg)

        monkeypatch.setattr(updater_mod, "bpr_user_step", spy)
        basket = (0, 1, 2, 3, 4, 5, 6)  # everything except item 7
        updater.apply_events([PurchaseEvent(0, basket)])
        assert updater.rng.draws >= 2  # the scripted collision was resampled
        eff = updater.model.factor_set.effective_items()
        (delta,) = seen_deltas
        np.testing.assert_allclose(delta, eff[list(basket)] - eff[7])

    def test_markov_model_uses_streamed_context(self, tf_markov_model):
        updater = OnlineUpdater(tf_markov_model, steps=4, seed=0)
        updater.apply_events([PurchaseEvent(0, (5,)), PurchaseEvent(0, (6,))])
        assert [b.tolist() for b in updater.history_of(0)[-2:]] == [[5], [6]]


class TestNewUsers:
    def test_new_user_grown_and_folded_in(self, updater):
        fresh = updater.n_users + 2
        updater.apply_events([PurchaseEvent(fresh, (4, 5))])
        assert updater.n_users == fresh + 1
        assert updater.stats.new_users == 1
        assert [b.tolist() for b in updater.history_of(fresh)] == [[4, 5]]

    def test_gap_user_folded_on_first_appearance(self, updater):
        far = updater.n_users + 5
        updater.apply_events([PurchaseEvent(far, (1,))])
        gap = far - 2  # grown as a side effect, but never seen
        updater.apply_events([PurchaseEvent(gap, (2,))])
        assert updater.stats.new_users == 2

    def test_gap_users_have_zero_vectors_not_random(self, updater):
        """Gap rows are served as 'known' users once a snapshot is swapped
        in, so they must score by bias (zero vector), not random noise."""
        base = updater.n_users
        far = base + 5
        updater.apply_events([PurchaseEvent(far, (1,))])
        gaps = updater.model.factor_set.user[base:far]
        np.testing.assert_array_equal(gaps, np.zeros_like(gaps))
        # The user that actually appeared was folded in, not zeroed.
        assert np.any(updater.model.factor_set.user[far] != 0)

    def test_folded_user_becomes_incremental(self, updater):
        fresh = updater.n_users
        updater.apply_events([PurchaseEvent(fresh, (4,))])
        folded = updater.model.factor_set.user[fresh].copy()
        updater.apply_events([PurchaseEvent(fresh, (4,))] * 5)
        moved = updater.model.factor_set.user[fresh]
        assert updater.stats.new_users == 1  # fold-in ran exactly once
        assert not np.array_equal(folded, moved)

    def test_new_user_prefers_their_category(self, tf_model, dataset):
        updater = OnlineUpdater(tf_model, steps=8, fold_in_steps=200, seed=0)
        leaf_items = dataset.taxonomy.subtree_items(
            int(dataset.taxonomy.parent[dataset.taxonomy.items[0]])
        )
        fresh = updater.n_users
        updater.apply_events(
            [PurchaseEvent(fresh, tuple(int(i) for i in leaf_items[:2]))]
        )
        model = updater.snapshot()
        scores = model.score_items(fresh)
        # A user whose whole history sits in one leaf category should score
        # the unpurchased sibling items above the catalog average.
        siblings = leaf_items[2:]
        assert scores[siblings].mean() > scores.mean()


class TestItemOnboarding:
    def test_arrival_grows_catalog_with_warm_start(self, tiny_taxonomy):
        from repro.data.transactions import TransactionLog
        from repro.utils.config import TrainConfig

        # Chains reach the root at levels=4 on the 2/2 taxonomy, so the
        # warm start is *exactly* the parent's ancestor-chain sum.
        log = TransactionLog([[[0, 1], [4]], [[2], [6]], [[5], [7]]], n_items=8)
        model = TaxonomyFactorModel(
            tiny_taxonomy,
            TrainConfig(factors=4, epochs=3, taxonomy_levels=4, seed=0),
        ).fit(log)
        updater = OnlineUpdater(model, steps=4, seed=0)
        parent = int(tiny_taxonomy.parent[tiny_taxonomy.items[0]])
        n_before = updater.n_items
        updater.apply(MicroBatch(arrivals=[ItemArrival(parent, "fresh")]))
        assert updater.n_items == n_before + 1
        assert updater.stats.new_items == 1
        scores = updater.model.score_items(0)
        parent_score = updater.model.score_nodes(0, np.array([parent]))[0]
        assert scores[n_before] == pytest.approx(parent_score)

    def test_streamed_purchase_of_onboarded_item(self, updater):
        taxonomy = updater.model.taxonomy
        parent = int(taxonomy.parent[taxonomy.items[0]])
        batch = MicroBatch(arrivals=[ItemArrival(parent)])
        updater.apply(batch)
        new_item = updater.n_items - 1
        before = float(updater.model.score_items(2)[new_item])
        updater.apply_events([PurchaseEvent(2, (new_item,))] * 5)
        assert float(updater.model.score_items(2)[new_item]) > before


class TestSnapshot:
    def test_snapshot_is_independent(self, updater):
        snap = updater.snapshot()
        frozen = snap.recommend(0, k=5)
        updater.apply_events([PurchaseEvent(0, (9,))] * 10)
        assert np.array_equal(snap.recommend(0, k=5), frozen)

    def test_snapshot_carries_streamed_history(self, updater):
        updater.apply_events([PurchaseEvent(0, (33,))])
        snap = updater.snapshot()
        log = snap._train_log
        assert 33 in log.user_items(0)
        # Streamed purchases are excluded from the snapshot's rankings.
        assert 33 not in snap.recommend(0, k=snap.n_items)

    def test_history_log_covers_grown_users(self, updater):
        fresh = updater.n_users + 1
        updater.apply_events([PurchaseEvent(fresh, (2,))])
        log = updater.history_log()
        assert log.n_users == fresh + 1
        assert log.user_items(fresh).tolist() == [2]
        assert log.user_items(fresh - 1).size == 0

    def test_history_log_fast_path_matches_validated(self, updater):
        from repro.data.transactions import TransactionLog

        updater.apply_events([PurchaseEvent(0, (5, 3))])
        fast = updater.history_log()
        validated = TransactionLog(fast.to_lists(), n_items=fast.n_items)
        assert fast == validated

    def test_incremental_popularity_matches_refit(self, updater):
        from repro.core.popularity import PopularityModel

        updater.apply_events(
            [PurchaseEvent(u % 5, (7, u % 3)) for u in range(20)]
        )
        incremental = updater.popularity()
        refit = PopularityModel().fit(updater.history_log())
        np.testing.assert_allclose(
            incremental.score_items(0), refit.score_items(0)
        )

    def test_popularity_counts_cover_onboarded_items(self, updater):
        taxonomy = updater.model.taxonomy
        parent = int(taxonomy.parent[taxonomy.items[0]])
        updater.apply(MicroBatch(arrivals=[ItemArrival(parent)]))
        new_item = updater.n_items - 1
        updater.apply_events([PurchaseEvent(0, (new_item,))] * 3)
        scores = updater.popularity().score_items(0)
        assert scores.shape == (updater.n_items,)
        assert scores[new_item] >= 3


class TestCategoryFreePlacement:
    def test_strict_mode_rejects_category_free_arrival(self, updater):
        from repro.streaming.events import MissingCategoryError

        n_before = updater.n_items
        with pytest.raises(MissingCategoryError, match="place_item"):
            updater.apply(MicroBatch(arrivals=[ItemArrival()]))
        # Rejected before any mutation: the catalog did not grow.
        assert updater.n_items == n_before

    def test_strict_rejection_precedes_partial_onboarding(self, updater):
        from repro.streaming.events import MissingCategoryError

        taxonomy = updater.model.taxonomy
        parent = int(taxonomy.parent[taxonomy.items[0]])
        n_before = updater.n_items
        batch = MicroBatch(arrivals=[ItemArrival(parent), ItemArrival()])
        with pytest.raises(MissingCategoryError):
            updater.apply(batch)
        # All-or-nothing: the categorised sibling was not onboarded either.
        assert updater.n_items == n_before

    def test_auto_place_onboards_category_free_arrival(self, tf_model):
        updater = OnlineUpdater(tf_model, steps=8, seed=0, auto_place=True)
        n_before = updater.n_items
        updater.apply(MicroBatch(arrivals=[ItemArrival(name="orphan")]))
        assert updater.n_items == n_before + 1
        assert updater.stats.placed_items == 1
        assert updater.stats.new_items == 1
        # The placed item landed under a real leaf category.
        taxonomy = updater.model.taxonomy
        parent = int(taxonomy.parent[taxonomy.items[n_before]])
        assert parent in taxonomy.parent[taxonomy.items[:n_before]]

    def test_auto_place_is_deterministic(self, tf_model):
        def placed_parent():
            upd = OnlineUpdater(tf_model, steps=8, seed=0, auto_place=True)
            upd.apply(MicroBatch(arrivals=[ItemArrival()]))
            taxonomy = upd.model.taxonomy
            return int(taxonomy.parent[taxonomy.items[-1]])

        assert len({placed_parent() for _ in range(3)}) == 1

    def test_explicit_parents_bypass_placement(self, tf_model):
        updater = OnlineUpdater(tf_model, steps=8, seed=0, auto_place=True)
        taxonomy = updater.model.taxonomy
        parent = int(taxonomy.parent[taxonomy.items[0]])
        updater.apply(MicroBatch(arrivals=[ItemArrival(parent)]))
        assert updater.stats.placed_items == 0
        assert updater.stats.new_items == 1


class TestRefinement:
    def test_refine_counts_and_bumps_revision(self, updater):
        before_rev = updater.model.taxonomy.revision
        moves = updater.refine(min_gain=0.0, max_moves=3)
        assert updater.stats.replants == len(moves)
        if moves:
            assert updater.model.taxonomy.revision == before_rev + 1

    def test_refine_preserves_rankings(self, updater):
        users = np.arange(updater.n_users)
        before = updater.snapshot().recommend_batch(users, k=5)
        moves = updater.refine(min_gain=0.0, max_moves=2)
        after = updater.snapshot().recommend_batch(users, k=5)
        assert np.array_equal(before, after)
        if moves:
            assert updater.model.taxonomy.revision == 1

    def test_snapshot_carries_refined_tree(self, updater):
        moves = updater.refine(min_gain=0.0, max_moves=1)
        if not moves:
            pytest.skip("model has no drifted items at this seed")
        snap = updater.snapshot()
        assert snap.taxonomy.digest == updater.model.taxonomy.digest
        assert snap.taxonomy.revision == 1
