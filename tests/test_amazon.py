"""Tests for the Amazon-format loaders."""

import json

import pytest

from repro.data.amazon import (
    DAY,
    load_amazon_dataset,
    parse_interaction_records,
)
from repro.taxonomy.io import parse_category_records

METADATA = [
    {"asin": "A", "categories": [["Electronics", "Cameras"]]},
    {"asin": "B", "categories": [["Electronics", "Cameras"]]},
    {"asin": "C", "categories": [["Electronics", "Phones"]]},
]

REVIEWS = [
    {"reviewerID": "u1", "asin": "A", "unixReviewTime": 1000},
    {"reviewerID": "u1", "asin": "B", "unixReviewTime": 1000 + 100},
    {"reviewerID": "u1", "asin": "C", "unixReviewTime": 1000 + 3 * DAY},
    {"reviewerID": "u2", "asin": "C", "unixReviewTime": 500},
    {"reviewerID": "u3", "asin": "ZZZ", "unixReviewTime": 100},
]


@pytest.fixture()
def catalog():
    return parse_category_records(METADATA)


class TestParseInteractions:
    def test_same_day_interactions_form_one_basket(self, catalog):
        taxonomy, item_ids = catalog
        log, user_ids = parse_interaction_records(
            REVIEWS, item_ids, n_items=taxonomy.n_items
        )
        u1 = user_ids["u1"]
        baskets = log.user_transactions(u1)
        assert len(baskets) == 2
        assert baskets[0].size == 2  # A and B bought together

    def test_baskets_ordered_by_time(self, catalog):
        taxonomy, item_ids = catalog
        log, user_ids = parse_interaction_records(
            REVIEWS, item_ids, n_items=taxonomy.n_items
        )
        u1 = user_ids["u1"]
        first = set(log.basket(u1, 0).tolist())
        second = set(log.basket(u1, 1).tolist())
        assert item_ids["C"] in second and item_ids["C"] not in first

    def test_unknown_items_skipped(self, catalog):
        taxonomy, item_ids = catalog
        log, user_ids = parse_interaction_records(
            REVIEWS, item_ids, n_items=taxonomy.n_items
        )
        assert "u3" not in user_ids

    def test_json_line_input(self, catalog):
        taxonomy, item_ids = catalog
        lines = [json.dumps(r) for r in REVIEWS]
        log, user_ids = parse_interaction_records(
            lines, item_ids, n_items=taxonomy.n_items
        )
        assert set(user_ids) == {"u1", "u2"}

    def test_custom_basket_window(self, catalog):
        taxonomy, item_ids = catalog
        log, user_ids = parse_interaction_records(
            REVIEWS, item_ids, n_items=taxonomy.n_items, basket_window=10
        )
        # With a 10-second window, A and B (100s apart) split.
        assert len(log.user_transactions(user_ids["u1"])) == 3

    def test_records_missing_fields_skipped(self, catalog):
        taxonomy, item_ids = catalog
        log, user_ids = parse_interaction_records(
            [{"reviewerID": "u9"}], item_ids, n_items=taxonomy.n_items
        )
        assert log.n_users == 0


class TestLoadDatasetFiles:
    def test_end_to_end(self, tmp_path):
        meta_path = tmp_path / "meta.jsonl"
        meta_path.write_text("\n".join(json.dumps(r) for r in METADATA))
        reviews_path = tmp_path / "reviews.jsonl"
        reviews_path.write_text("\n".join(json.dumps(r) for r in REVIEWS))
        taxonomy, log, item_ids, user_ids = load_amazon_dataset(
            meta_path, reviews_path
        )
        assert taxonomy.n_items == 3
        assert log.n_users == 2
        assert log.n_items == taxonomy.n_items
