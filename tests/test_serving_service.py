"""RecommenderService routing, caching, stats, and batch semantics."""

import numpy as np
import pytest

from repro.core.cascade import CascadedRecommender
from repro.core.folding import recommend_for_history
from repro.core.popularity import PopularityModel
from repro.core.tf_model import TaxonomyFactorModel
from repro.serving.coldstart import FoldInRecommender
from repro.serving.protocol import Recommender
from repro.serving.service import (
    QueryVectorCache,
    RecommenderService,
    ServingError,
)
from repro.utils.config import CascadeConfig


@pytest.fixture()
def service(tf_model):
    return RecommenderService(tf_model)


class TestRouting:
    def test_known_user_matches_model(self, service, tf_model):
        for user in range(8):
            assert np.array_equal(
                service.recommend(user, k=6), tf_model.recommend(user, k=6)
            )
        assert service.stats.known_user_requests == 8

    def test_cold_with_history_uses_fold_in(self, service, tf_model, dataset):
        history = [dataset.log.basket(2, 0)]
        got = service.recommend(None, k=5, history=history)
        expected = recommend_for_history(tf_model, history, k=5, steps=200, seed=0)
        assert np.array_equal(got, expected)
        assert service.stats.fold_in_requests == 1

    def test_out_of_range_user_is_cold(self, service, dataset):
        history = [dataset.log.basket(0, 0)]
        service.recommend(10**6, k=5, history=history)
        assert service.stats.fold_in_requests == 1

    def test_cold_without_history_falls_back_to_popularity(
        self, service, tf_model
    ):
        popularity = PopularityModel().fit(tf_model._train_log)
        got = service.recommend(None, k=5)
        assert np.array_equal(got, popularity.recommend(0, k=5))
        assert service.stats.fallback_requests == 1

    def test_no_fallback_configured_raises(self, tf_model):
        bare = RecommenderService(tf_model, popularity=None)
        bare.popularity = None  # simulate a service with no fallback at all
        with pytest.raises(ServingError, match="fallback"):
            bare.recommend(None, k=5)

    def test_explicit_history_for_known_user(self, tf_markov_model, dataset):
        service = RecommenderService(tf_markov_model)
        history = [dataset.log.basket(4, 0)]
        got = service.recommend(1, k=5, history=history)
        expected = tf_markov_model.recommend(1, k=5, history=history)
        assert np.array_equal(got, expected)

    def test_history_log_does_not_mutate_shared_model(
        self, tf_markov_model, dataset, split
    ):
        """Constructing a second service with another log must not change
        the first service's (or the caller's) rankings."""
        svc_a = RecommenderService(tf_markov_model)
        before = [svc_a.recommend(u, k=5) for u in range(5)]
        other_log = dataset.log  # full log, different from split.train
        RecommenderService(tf_markov_model, history_log=other_log)
        assert tf_markov_model._train_log is split.train
        svc_a.query_cache.clear()
        after = [svc_a.recommend(u, k=5) for u in range(5)]
        for x, y in zip(before, after):
            assert np.array_equal(x, y)

    def test_history_log_restores_markov_context(
        self, tf_markov_model, split, tmp_path
    ):
        """A bundle-loaded Markov model served with history_log= must rank
        exactly like the trained model (context not silently dropped)."""
        from repro.serving.bundle import ModelBundle

        ModelBundle(tf_markov_model).save(tmp_path / "b")
        loaded = ModelBundle.load(tmp_path / "b").model
        service = RecommenderService(loaded, history_log=split.train)
        for user in range(5):
            assert np.array_equal(
                service.recommend(user, k=5),
                tf_markov_model.recommend(user, k=5),
            )


class TestBatch:
    def test_known_rows_match_model_batch(self, service, tf_model):
        users = np.arange(25)
        assert np.array_equal(
            service.recommend_batch(users, k=7),
            tf_model.recommend_batch(users, k=7),
        )

    def test_mixed_batch_routes_every_row(self, service, tf_model, dataset):
        history = [dataset.log.basket(1, 0)]
        users = [0, None, 5, None]
        histories = [None, history, None, None]
        out = service.recommend_batch(users, k=5, histories=histories)
        assert out.shape == (4, 5)
        assert np.array_equal(out[0][out[0] >= 0], tf_model.recommend(0, k=5))
        expected_cold = recommend_for_history(
            tf_model, history, k=5, steps=200, seed=0
        )
        assert np.array_equal(out[1][out[1] >= 0], expected_cold)
        popularity = PopularityModel().fit(tf_model._train_log)
        assert np.array_equal(out[3][out[3] >= 0], popularity.recommend(0, k=5))
        stats = service.stats
        assert stats.requests == 4
        assert stats.known_user_requests == 2
        assert stats.fold_in_requests == 1
        assert stats.fallback_requests == 1

    def test_histories_length_mismatch(self, service):
        with pytest.raises(ValueError, match="histories"):
            service.recommend_batch([0, 1], k=3, histories=[None])

    def test_batch_then_single_shares_cache(self, service):
        service.recommend_batch(np.arange(10), k=5)
        assert service.stats.cache_misses == 10
        service.recommend(3, k=5)
        assert service.stats.cache_hits == 1


class TestCache:
    def test_lru_eviction_is_bounded(self, tf_model):
        service = RecommenderService(tf_model, cache_size=2)
        for user in range(5):
            service.recommend(user, k=3)
        assert len(service.query_cache) == 2

    def test_repeat_requests_hit(self, service):
        service.recommend(0, k=3)
        service.recommend(0, k=3)
        stats = service.stats
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1

    def test_cache_disabled(self, tf_model):
        service = RecommenderService(tf_model, cache_size=0)
        service.recommend(0, k=3)
        service.recommend(0, k=3)
        assert service.stats.cache_hits == 0
        assert len(service.query_cache) == 0

    def test_explicit_history_bypasses_cache(self, service, dataset):
        history = [dataset.log.basket(0, 0)]
        service.recommend(0, k=3, history=history)
        assert len(service.query_cache) == 0

    def test_unit_cache_behaviour(self):
        cache = QueryVectorCache(1)
        cache.put(1, np.zeros(2))
        cache.put(2, np.ones(2))
        assert cache.get(1) is None
        assert cache.get(2) is not None

    def test_cache_is_thread_safe_under_eviction_pressure(self):
        """get() racing put() eviction on a tiny cache must never raise
        (the unlocked OrderedDict would KeyError in move_to_end)."""
        import threading

        cache = QueryVectorCache(2)
        errors = []

        def churn(offset):
            try:
                for i in range(3000):
                    user = (i + offset) % 5
                    cache.put(user, np.zeros(2))
                    cache.get(user)
                    if i % 100 == 0:
                        cache.invalidate()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(k,)) for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestCascadeMode:
    def test_cascade_counts_fewer_nodes(self, tf_model):
        exact = RecommenderService(tf_model)
        cascaded = RecommenderService(
            tf_model, cascade=CascadeConfig(keep_fractions=(0.3, 0.3, 0.3))
        )
        exact.recommend(0, k=5)
        cascaded.recommend(0, k=5)
        assert 0 < cascaded.stats.nodes_scored < exact.stats.nodes_scored
        assert isinstance(cascaded.cascade, CascadedRecommender)

    def test_cascade_excludes_purchases(self, tf_model):
        service = RecommenderService(
            tf_model, cascade=CascadeConfig(keep_fractions=(1.0, 1.0, 1.0))
        )
        top = service.recommend(0, k=5)
        bought = tf_model._train_log.user_items(0)
        assert not np.isin(top, bought).any()

    def test_cascade_batch(self, tf_model):
        service = RecommenderService(
            tf_model, cascade=CascadeConfig(keep_fractions=(0.5, 0.5, 0.5))
        )
        out = service.recommend_batch(np.arange(6), k=4)
        assert out.shape == (6, 4)
        assert service.stats.known_user_requests == 6


class TestStatsAndRefresh:
    def test_latency_percentiles(self, service):
        for user in range(10):
            service.recommend(user, k=3)
        stats = service.stats
        assert stats.p50 > 0
        assert stats.p95 >= stats.p50
        assert stats.requests_per_second > 0
        payload = stats.as_dict()
        assert payload["requests"] == 10
        assert payload["latency_p95"] >= payload["latency_p50"]

    def test_latency_window_is_bounded(self):
        from repro.serving.service import LATENCY_WINDOW, ServingStats

        stats = ServingStats()
        for _ in range(LATENCY_WINDOW + 5):
            stats.record_latency(1.0)
        stats.record_latency(2.0)
        assert len(stats.latencies) == LATENCY_WINDOW
        assert stats.latencies[-1] == 2.0
        assert stats.requests == LATENCY_WINDOW + 6

    def test_oversized_batch_records_one_amortized_entry(self):
        """A batch call is O(1): one amortized window entry and one
        weighted histogram observation, never count materialized floats."""
        from repro.serving.service import LATENCY_WINDOW, ServingStats

        stats = ServingStats()
        stats.record_latency(30.0, count=3 * LATENCY_WINDOW)
        assert len(stats.latencies) == 1
        assert stats.requests == 3 * LATENCY_WINDOW
        assert stats.seconds == 30.0
        # Amortized per-request latency, not the batch total.
        assert stats.latencies[0] == 30.0 / (3 * LATENCY_WINDOW)
        # The histogram weights the batch by its full request count.
        assert stats.latency_histogram.count == 3 * LATENCY_WINDOW

    def test_window_keeps_most_recent_entries(self):
        from repro.serving.service import LATENCY_WINDOW, ServingStats

        stats = ServingStats()
        for call in range(LATENCY_WINDOW + 3):
            stats.record_latency(float(call))
        stats.record_latency(7.0, count=4)
        assert len(stats.latencies) == LATENCY_WINDOW
        # The batch contributed one amortized entry at the newest slot...
        assert stats.latencies[-1] == 7.0 / 4
        # ...and the oldest singles fell off the front of the window.
        assert stats.latencies[0] == 4.0
        assert stats.requests == LATENCY_WINDOW + 3 + 4

    def test_batches_weight_percentiles_by_request_count(self):
        """Histogram percentiles count a batch once per request, so a big
        fast batch dominates a handful of slow singles."""
        from repro.serving.service import ServingStats

        stats = ServingStats()
        stats.record_latency(0.002 * 900, count=900)  # 900 req @ 2ms
        for _ in range(100):
            stats.record_latency(0.2)  # 100 slow singles @ 200ms
        assert stats.p50 < 0.01
        assert stats.p99 > 0.05
        assert stats.requests == 1000

    def test_empty_stats_are_nan(self, service):
        assert np.isnan(service.stats.p50)
        assert np.isnan(service.stats.requests_per_second)

    def test_reset_stats(self, service):
        service.recommend(0, k=3)
        retired = service.reset_stats()
        assert retired.requests == 1
        assert service.stats.requests == 0

    def test_refresh_after_partial_fit(self, dataset, split):
        model = TaxonomyFactorModel(
            dataset.taxonomy, factors=8, epochs=2, seed=0
        ).fit(split.train)
        service = RecommenderService(model)
        before = service.recommend(0, k=5)
        model.partial_fit(epochs=2)
        service.refresh()
        assert len(service.query_cache) == 0
        after = service.recommend(0, k=5)
        assert np.array_equal(after, model.recommend(0, k=5))
        assert before.shape == after.shape

    def test_unfitted_model_rejected(self, dataset):
        with pytest.raises(RuntimeError):
            RecommenderService(TaxonomyFactorModel(dataset.taxonomy))


class TestHotSwap:
    """Model swapping and cache coherence (the streaming serving contract)."""

    @pytest.fixture()
    def retrained(self, dataset, split):
        """A second model with visibly different factors."""
        model = TaxonomyFactorModel(
            dataset.taxonomy, factors=8, epochs=4, seed=99
        )
        return model.fit(split.train)

    def test_swap_serves_the_new_model(self, tf_model, retrained):
        service = RecommenderService(tf_model)
        service.swap_model(retrained)
        for user in range(5):
            assert np.array_equal(
                service.recommend(user, k=6), retrained.recommend(user, k=6)
            )
        assert service.model is retrained
        assert service.stats.swaps == 1

    def test_swap_never_serves_stale_cached_vectors(self, tf_model, retrained):
        """The regression: a vector cached pre-swap must not survive it."""
        service = RecommenderService(tf_model)
        before = service.recommend(0, k=6)  # populates the cache
        assert len(service.query_cache) == 1
        service.swap_model(retrained)
        assert len(service.query_cache) == 0
        hits_before = service.stats.cache_hits
        after = service.recommend(0, k=6)
        assert service.stats.cache_hits == hits_before  # recomputed, not hit
        assert np.array_equal(after, retrained.recommend(0, k=6))
        assert before.shape == after.shape

    def test_in_flight_request_cannot_poison_the_cache(self, tf_model, retrained):
        """A put stamped with a pre-swap generation must be dropped."""
        service = RecommenderService(tf_model)
        stale_generation = service.generation
        stale_vector = tf_model.query_vector(0)
        service.swap_model(retrained)
        # The in-flight request finishes and tries to cache its vector.
        service.query_cache.put(0, stale_vector, stale_generation)
        assert len(service.query_cache) == 0
        # The next request therefore recomputes against the new model.
        assert np.array_equal(
            service.recommend(0, k=6), retrained.recommend(0, k=6)
        )

    def test_in_flight_request_cannot_read_new_generation(self, tf_model, retrained):
        service = RecommenderService(tf_model)
        stale_generation = service.generation
        service.swap_model(retrained)
        service.recommend(0, k=6)  # caches a new-generation vector
        assert service.query_cache.get(0, stale_generation) is None
        assert service.query_cache.get(0, service.generation) is not None

    def test_invalidate_cache_bumps_generation(self, tf_model):
        service = RecommenderService(tf_model)
        service.recommend(0, k=4)
        generation = service.invalidate_cache()
        assert generation == service.generation == 1
        assert len(service.query_cache) == 0
        hits = service.stats.cache_hits
        service.recommend(0, k=4)
        assert service.stats.cache_hits == hits

    def test_swap_after_mutation_regression(self, dataset, split):
        """Swapping in a mutated copy must serve the mutation, cache included."""
        model = TaxonomyFactorModel(
            dataset.taxonomy, factors=8, epochs=2, seed=0
        ).fit(split.train)
        service = RecommenderService(model)
        service.recommend(0, k=5)
        import copy as _copy

        mutated = _copy.copy(model)
        mutated._factors = model.factor_set.copy()
        mutated.factor_set.user[0] = -mutated.factor_set.user[0]
        service.swap_model(mutated)
        assert np.array_equal(
            service.recommend(0, k=5), mutated.recommend(0, k=5)
        )

    def test_swap_rebuilds_cascade_for_new_model(self, tf_model, retrained):
        service = RecommenderService(
            tf_model, cascade=CascadeConfig(keep_fractions=(0.5, 0.5, 0.5))
        )
        old_cascade = service.cascade
        service.swap_model(retrained)
        assert isinstance(service.cascade, CascadedRecommender)
        assert service.cascade is not old_cascade
        assert service.cascade.model is retrained
        assert service.cascade.config == old_cascade.config

    def test_swap_rebuilds_fold_in_and_fallback(self, tf_model, retrained, split):
        service = RecommenderService(tf_model, fold_in_steps=50, fold_in_seed=9)
        service.swap_model(retrained, history_log=split.train)
        assert service.fold_in.model is not tf_model
        assert service.fold_in.steps == 50
        assert service.popularity is not None
        assert service.history_log is split.train

    def test_refresh_uses_the_swap_path(self, dataset, split):
        model = TaxonomyFactorModel(
            dataset.taxonomy, factors=8, epochs=2, seed=0
        ).fit(split.train)
        service = RecommenderService(model)
        generation = service.generation
        model.partial_fit(epochs=1)
        service.refresh()
        assert service.generation == generation + 1
        assert np.array_equal(
            service.recommend(0, k=5), model.recommend(0, k=5)
        )


class TestFoldInRecommender:
    def test_satisfies_protocol(self, tf_model):
        assert isinstance(FoldInRecommender(tf_model), Recommender)

    def test_recommend_matches_folding_helper(self, tf_model, dataset):
        history = [dataset.log.basket(6, 0)]
        adapter = FoldInRecommender(tf_model, steps=150, seed=3)
        expected = recommend_for_history(
            tf_model, history, k=5, steps=150, seed=3
        )
        assert np.array_equal(adapter.recommend(k=5, history=history), expected)

    def test_batch_matches_per_history(self, tf_model, dataset):
        histories = [[dataset.log.basket(u, 0)] for u in range(4)]
        adapter = FoldInRecommender(tf_model, steps=100, seed=1)
        batch = adapter.recommend_batch(np.arange(4), k=5, histories=histories)
        for row, history in enumerate(histories):
            per = adapter.recommend(k=5, history=history)
            assert np.array_equal(batch[row][batch[row] >= 0], per)

    def test_empty_history_scores_all_items(self, tf_model):
        adapter = FoldInRecommender(tf_model)
        scores = adapter.score_items(history=None)
        assert scores.shape == (tf_model.n_items,)

    def test_score_matrix_shape_and_mismatch(self, tf_model, dataset):
        adapter = FoldInRecommender(tf_model)
        histories = [[dataset.log.basket(0, 0)], [dataset.log.basket(1, 0)]]
        matrix = adapter.score_matrix(np.arange(2), histories)
        assert matrix.shape == (2, tf_model.n_items)
        with pytest.raises(ValueError, match="histories"):
            adapter.score_matrix(np.arange(2), [histories[0]])
