"""Deterministic tie-breaking across every top-k path, and PAD hygiene.

The determinism contract: every selector ranks candidates by
(score desc, item asc) — including ties that straddle the k-th score —
so a single process, an item-partitioned fleet, and the pruned retrieval
index can never disagree on tied scores.  PAD (-1) slots must never be
counted as items or re-ranked above real candidates anywhere.  The
approximate tiers (``retrieval="budget"`` / ``"ivf"``) extend the same
contract: cell selection uses catalog-global statistics, so the fleet
returns the single-process ranking byte for byte at any shard count,
and a fleet-wide hot swap never serves a page mixing generations.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.factors import FactorSet
from repro.core.tf_model import TaxonomyFactorModel
from repro.core.topk import (
    PAD_ITEM,
    merge_top_k_pages,
    merge_top_k_rows,
    top_k_rows,
)
from repro.data.split import TrainTestSplit
from repro.data.transactions import TransactionLog
from repro.eval.protocol import evaluate_topk
from repro.serving.service import RecommenderService
from repro.serving.sharding import ShardRouter
from repro.taxonomy.tree import Taxonomy
from repro.utils.config import TrainConfig


def _reference_topk(scores: np.ndarray, k: int) -> np.ndarray:
    """Ground truth: full stable argsort of -scores == (desc, item asc)."""
    width = min(k, scores.shape[1])
    order = np.argsort(-scores, axis=1, kind="stable")[:, :width]
    order = order.astype(np.int64)
    rows = np.arange(scores.shape[0])[:, None]
    order[~np.isfinite(scores[rows, order])] = PAD_ITEM
    return order


class TestTopKRowsTieBreak:
    def test_constant_scores_select_smallest_indices(self):
        scores = np.full((3, 9), 2.5)
        assert top_k_rows(scores, 4).tolist() == [[0, 1, 2, 3]] * 3

    def test_boundary_tie_selection_is_deterministic(self):
        # Two items strictly above, the k-th score shared by items 1, 4, 6:
        # the partition could legally grab any of them — the contract says
        # the smallest index (1) wins.
        scores = np.array([[9.0, 5.0, 1.0, 8.0, 5.0, 0.0, 5.0]])
        assert top_k_rows(scores, 3).tolist() == [[0, 3, 1]]
        assert top_k_rows(scores, 4).tolist() == [[0, 3, 1, 4]]

    def test_matches_stable_full_sort_fuzz(self):
        rng = np.random.default_rng(7)
        for _ in range(300):
            n = int(rng.integers(1, 6))
            m = int(rng.integers(1, 15))
            k = int(rng.integers(1, 18))
            scores = rng.integers(0, 4, size=(n, m)).astype(float)
            scores[rng.random((n, m)) < 0.25] = -np.inf
            if rng.random() < 0.3:
                scores[rng.random((n, m)) < 0.1] = np.nan
            assert np.array_equal(
                top_k_rows(scores, k), _reference_topk(scores, k)
            )

    def test_agrees_with_merge_over_arbitrary_splits(self):
        rng = np.random.default_rng(13)
        for _ in range(100):
            m = int(rng.integers(2, 20))
            k = int(rng.integers(1, m + 3))
            scores = rng.integers(0, 3, size=(3, m)).astype(float)
            whole = top_k_rows(scores, k)
            cut = int(rng.integers(1, m))
            pages, page_scores = [], []
            for lo, hi in ((0, cut), (cut, m)):
                local = top_k_rows(scores[:, lo:hi], k)
                got = np.take_along_axis(
                    scores[:, lo:hi], np.clip(local, 0, None), axis=1
                )
                got[local < 0] = -np.inf
                pages.append(np.where(local >= 0, local + lo, PAD_ITEM))
                page_scores.append(got)
            assert np.array_equal(
                merge_top_k_rows(pages, page_scores, k), whole
            )


class TestMergePadHygiene:
    def test_pad_slots_never_survive_even_with_finite_scores(self):
        # A buggy shard could stamp a finite score into a pad slot; the
        # merge must still treat PAD as excluded, not rank it.
        items = [np.array([[PAD_ITEM, 3]]), np.array([[5, PAD_ITEM]])]
        scores = [np.array([[99.0, 1.0]]), np.array([[2.0, 98.0]])]
        merged, merged_scores = merge_top_k_pages(items, scores, k=4)
        assert merged.tolist() == [[5, 3, PAD_ITEM, PAD_ITEM]]
        assert merged_scores[0, 2:].tolist() == [-np.inf, -np.inf]

    def test_all_pad_input_stays_all_pad(self):
        items = [np.full((2, 3), PAD_ITEM)]
        scores = [np.zeros((2, 3))]
        merged = merge_top_k_rows(items, scores, k=2)
        assert (merged == PAD_ITEM).all()

    def test_merge_scores_match_items(self):
        items = [np.array([[4, 2]]), np.array([[7, 1]])]
        scores = [np.array([[9.0, 5.0]]), np.array([[7.0, -np.inf]])]
        merged, merged_scores = merge_top_k_pages(items, scores, k=3)
        assert merged.tolist() == [[4, 7, 2]]
        assert merged_scores.tolist() == [[9.0, 7.0, 5.0]]


# ----------------------------------------------------------------------
# evaluate_topk PAD audit
# ----------------------------------------------------------------------
class _PageRecommender:
    """A Recommender stub returning a fixed page (pads included)."""

    def __init__(self, page: np.ndarray):
        self.page = np.asarray(page, dtype=np.int64)

    def recommend_batch(self, users, k=10, histories=None):
        return np.repeat(self.page, len(users), axis=0)


def _split_with_positives(n_items: int, positives) -> TrainTestSplit:
    train = TransactionLog.from_baskets(
        [[np.arange(2, dtype=np.int64)]], n_items=n_items
    )
    test = TransactionLog.from_baskets(
        [[np.asarray(sorted(positives), dtype=np.int64)]], n_items=n_items
    )
    return TrainTestSplit(train=train, test=test)


class TestEvaluateTopKPadHygiene:
    def test_all_pad_rows_score_zero_hits(self):
        split = _split_with_positives(6, [1, 2])
        stub = _PageRecommender(np.full((1, 4), PAD_ITEM))
        result = evaluate_topk(stub, split, k=4)
        assert result.n_users == 1
        assert result.precision == 0.0
        assert result.recall == 0.0
        assert result.hit_rate == 0.0

    def test_pad_never_counts_as_hit_even_among_real_items(self):
        # Positives {1, 2}; the page ranks item 1 then pads: exactly one
        # hit, and the pads contribute nothing.
        split = _split_with_positives(6, [1, 2])
        stub = _PageRecommender(
            np.array([[1, PAD_ITEM, PAD_ITEM, PAD_ITEM]])
        )
        result = evaluate_topk(stub, split, k=4)
        assert result.precision == pytest.approx(1 / 4)
        assert result.recall == pytest.approx(1 / 2)
        assert result.hit_rate == 1.0

    def test_k_larger_than_catalog(self):
        split = _split_with_positives(4, [2, 3])
        model = _PageRecommender(np.array([[2, 3, PAD_ITEM, PAD_ITEM]]))
        result = evaluate_topk(model, split, k=50)
        assert result.n_users == 1
        assert result.recall == 1.0
        # Precision is hits over the requested depth; pads never count.
        assert result.precision == pytest.approx(2 / 50)


# ----------------------------------------------------------------------
# Regression: constant-score catalog across shard counts and partitions
# ----------------------------------------------------------------------
def _constant_score_model(n_users: int = 24) -> TaxonomyFactorModel:
    """Every item scores exactly 0 for every user — pure tie-break."""
    parent = [-1] + [0] * 4
    for cat in range(1, 5):
        parent += [cat] * 6
    taxonomy = Taxonomy(parent)
    factors = 4
    factor_set = FactorSet.from_arrays(
        taxonomy,
        user=np.zeros((n_users, factors)),
        w=np.zeros((taxonomy.n_nodes + 1, factors)),
        bias=np.zeros(taxonomy.n_nodes + 1),
        levels=2,
        init_scale=0.1,
    )
    model = TaxonomyFactorModel(taxonomy, TrainConfig(factors=factors))
    model._factors = factor_set
    return model


class TestTiedScoresShardInvariance:
    def test_single_process_reference_is_smallest_items(self):
        model = _constant_score_model()
        service = RecommenderService(model, cache_size=0)
        expected = service.recommend_batch(np.arange(24), k=5)
        assert expected.tolist() == [[0, 1, 2, 3, 4]] * 24

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("partition", ["users", "items"])
    def test_fleet_matches_single_process_on_all_ties(
        self, n_shards, partition
    ):
        """The PR-4 latent bug: argpartition order leaked into tied
        rankings, so an item-partitioned fleet (merge: score desc, item
        asc) could disagree with the single process.  With the
        deterministic tie-break, every fleet shape returns the identical
        page — `serve-sharded --verify` can never fail on ties."""
        model = _constant_score_model()
        service = RecommenderService(model, cache_size=0)
        users = np.arange(model.n_users)
        expected = service.recommend_batch(users, k=5)
        with ShardRouter(
            model, n_shards=n_shards, partition=partition, cache_size=0
        ) as fleet:
            got = fleet.recommend_batch(users, k=5)
        assert np.array_equal(got, expected)


# ----------------------------------------------------------------------
# Approximate tiers: shard invariance and swap coherence
# ----------------------------------------------------------------------
def _random_factor_model(seed: int, n_users: int = 24) -> TaxonomyFactorModel:
    """The 24-item taxonomy of ``_constant_score_model``, random factors."""
    parent = [-1] + [0] * 4
    for cat in range(1, 5):
        parent += [cat] * 6
    taxonomy = Taxonomy(parent)
    factors = 4
    rng = np.random.default_rng(seed)
    factor_set = FactorSet.from_arrays(
        taxonomy,
        user=rng.normal(0, 0.5, size=(n_users, factors)),
        w=rng.normal(0, 0.5, size=(taxonomy.n_nodes + 1, factors)),
        bias=rng.normal(0, 0.2, size=taxonomy.n_nodes + 1),
        levels=2,
        init_scale=0.1,
    )
    model = TaxonomyFactorModel(taxonomy, TrainConfig(factors=factors))
    model._factors = factor_set
    return model


_APPROX_KNOBS = {
    # Partial knobs: 13 of 24 items / 2 of 4 cells, so the scan really
    # is approximate and the fleet must agree on which cells it skipped.
    "budget": {"retrieval": "budget", "budget": 13},
    "ivf": {"retrieval": "ivf", "nprobe": 2},
}


class TestApproximateShardInvariance:
    @pytest.mark.parametrize("mode", ["budget", "ivf"])
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("partition", ["users", "items"])
    def test_fleet_matches_single_process(self, mode, n_shards, partition):
        """Cell selection is computed from catalog-global statistics, so
        an item-partitioned fleet serves each slice's share of the same
        global budget — any shard count returns the single-process page
        byte for byte."""
        model = _random_factor_model(seed=42)
        knobs = _APPROX_KNOBS[mode]
        users = np.arange(model.n_users)
        expected = RecommenderService(
            model, cache_size=0, **knobs
        ).recommend_batch(users, k=5)
        with ShardRouter(
            model, n_shards=n_shards, partition=partition, cache_size=0,
            **knobs,
        ) as fleet:
            got = fleet.recommend_batch(users, k=5)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("mode", ["budget", "ivf"])
    def test_fleet_matches_single_process_on_all_ties(self, mode):
        """Every item ties at score 0, so the ranking is decided purely
        by which cells the knob selects plus the (score desc, item asc)
        tie-break — the sharpest probe for selection divergence between
        a slice index and the single-process index."""
        model = _constant_score_model()
        knobs = _APPROX_KNOBS[mode]
        users = np.arange(model.n_users)
        expected = RecommenderService(
            model, cache_size=0, **knobs
        ).recommend_batch(users, k=5)
        with ShardRouter(
            model, n_shards=4, partition="items", cache_size=0, **knobs
        ) as fleet:
            got = fleet.recommend_batch(users, k=5)
        assert np.array_equal(got, expected)


class TestApproximateSwapUnderLoad:
    @pytest.mark.parametrize("mode", ["budget", "ivf"])
    def test_hot_swap_never_serves_mixed_generations(self, mode):
        """A fleet-wide swap mid-stream rebuilds the approximate index on
        every shard atomically: each served page must equal either the
        old model's ranking or the new model's — entire, never a row set
        merged across generations (which would pass no single-model
        reference)."""
        knobs = _APPROX_KNOBS[mode]
        model_a = _random_factor_model(seed=7)
        model_b = _random_factor_model(seed=8)
        users = np.arange(model_a.n_users)
        ref_a = RecommenderService(
            model_a, cache_size=0, **knobs
        ).recommend_batch(users, k=5)
        ref_b = RecommenderService(
            model_b, cache_size=0, **knobs
        ).recommend_batch(users, k=5)
        assert not np.array_equal(ref_a, ref_b)  # swap must be observable

        pages, errors = [], []
        stop = threading.Event()

        with ShardRouter(
            model_a, n_shards=2, partition="items", cache_size=0, **knobs
        ) as fleet:

            def hammer():
                try:
                    while not stop.is_set():
                        pages.append(fleet.recommend_batch(users, k=5))
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            thread = threading.Thread(target=hammer)
            thread.start()
            try:
                time.sleep(0.05)
                fleet.swap_model(model_b)
                time.sleep(0.05)
            finally:
                stop.set()
                thread.join(timeout=30)
            # After the swap returns, traffic is generation B everywhere.
            post_swap = fleet.recommend_batch(users, k=5)

        assert not errors, errors
        assert not thread.is_alive()
        assert np.array_equal(post_swap, ref_b)
        assert pages, "the load thread never completed a batch"
        saw = {"a": 0, "b": 0}
        for page in pages:
            if np.array_equal(page, ref_a):
                saw["a"] += 1
            elif np.array_equal(page, ref_b):
                saw["b"] += 1
            else:
                raise AssertionError(
                    "a served page matches neither generation — "
                    "mixed-generation ranking"
                )
        assert saw["a"] + saw["b"] == len(pages)


# ----------------------------------------------------------------------
# Learned / refined taxonomies: the same invariances must survive a tree
# that was produced or mutated by repro.taxonomy.learn
# ----------------------------------------------------------------------
def _refined_model(seed: int = 42) -> TaxonomyFactorModel:
    """A ``_random_factor_model`` after a real replant cycle.

    Plants drift on two items (their factors match another category's
    blob), lets ``refine_placements`` discover it, and replants — the
    model a streaming refinement pass would publish.
    """
    from repro.taxonomy.learn import refine_placements

    model = _random_factor_model(seed=seed)
    moves = refine_placements(
        model.taxonomy, model.effective_item_factors(), min_gain=0.0,
        max_moves=2,
    )
    assert moves, "seed must produce at least one refinement move"
    model.replant_items(moves)
    assert model.taxonomy.revision == 1
    return model


class TestRefinedTaxonomyShardInvariance:
    def test_replant_changes_structure_not_rankings(self):
        base = _random_factor_model(seed=42)
        refined = _refined_model(seed=42)
        assert base.taxonomy.digest != refined.taxonomy.digest
        users = np.arange(base.n_users)
        before = RecommenderService(base, cache_size=0).recommend_batch(
            users, k=5
        )
        after = RecommenderService(refined, cache_size=0).recommend_batch(
            users, k=5
        )
        assert np.array_equal(before, after)

    @pytest.mark.parametrize("mode", ["budget", "ivf"])
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    @pytest.mark.parametrize("partition", ["users", "items"])
    def test_fleet_matches_single_process(self, mode, n_shards, partition):
        """After a replant the SubtreeIndex cells follow the *new* tree;
        every fleet shape must still reproduce the single-process page,
        or a refinement pass would silently change served rankings on
        some shard counts only."""
        model = _refined_model(seed=42)
        knobs = _APPROX_KNOBS[mode]
        users = np.arange(model.n_users)
        expected = RecommenderService(
            model, cache_size=0, **knobs
        ).recommend_batch(users, k=5)
        with ShardRouter(
            model, n_shards=n_shards, partition=partition, cache_size=0,
            **knobs,
        ) as fleet:
            got = fleet.recommend_batch(users, k=5)
        assert np.array_equal(got, expected)


class TestRefinedSwapUnderLoad:
    @pytest.mark.parametrize("mode", ["budget", "ivf"])
    @pytest.mark.parametrize("partition", ["users", "items"])
    def test_swap_to_refined_tree_is_atomic(self, mode, partition):
        """Publishing a refined taxonomy through the fleet must be one
        generation: factors, tree, and the rebuilt approximate index
        move together, and the router's advertised taxonomy version only
        changes after every shard acked the new tree."""
        knobs = _APPROX_KNOBS[mode]
        model_a = _random_factor_model(seed=7)
        model_b = _refined_model(seed=8)
        users = np.arange(model_a.n_users)
        ref_a = RecommenderService(
            model_a, cache_size=0, **knobs
        ).recommend_batch(users, k=5)
        ref_b = RecommenderService(
            model_b, cache_size=0, **knobs
        ).recommend_batch(users, k=5)
        assert not np.array_equal(ref_a, ref_b)

        pages, errors = [], []
        stop = threading.Event()
        with ShardRouter(
            model_a, n_shards=2, partition=partition, cache_size=0, **knobs
        ) as fleet:
            assert fleet.taxonomy_version == model_a.taxonomy.version

            def hammer():
                try:
                    while not stop.is_set():
                        pages.append(fleet.recommend_batch(users, k=5))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            thread = threading.Thread(target=hammer)
            thread.start()
            try:
                time.sleep(0.05)
                fleet.swap_model(model_b)
                time.sleep(0.05)
            finally:
                stop.set()
                thread.join(timeout=30)
            post_swap = fleet.recommend_batch(users, k=5)
            assert fleet.taxonomy_version == model_b.taxonomy.version
            stats = fleet.stats()
            assert stats["taxonomy_digest"] == model_b.taxonomy.version.short
            assert stats["taxonomy_revision"] == 1

        assert not errors, errors
        assert np.array_equal(post_swap, ref_b)
        assert pages, "the load thread never completed a batch"
        for page in pages:
            assert np.array_equal(page, ref_a) or np.array_equal(
                page, ref_b
            ), "a served page matches neither taxonomy generation"
