"""End-to-end integration tests: the paper's headline claims in miniature.

These use the shared session fixtures (400 users, ~180 items, 5 epochs) so
they run in seconds while still exercising the full train → evaluate path.
"""

import numpy as np
import pytest

from repro import (
    CascadeConfig,
    PopularityModel,
    RandomModel,
    TaxonomyFactorModel,
    evaluate_cascade,
    evaluate_category_level,
    evaluate_model,
)
from repro.utils.config import TrainConfig


@pytest.fixture(scope="module")
def popularity(split):
    return PopularityModel().fit(split.train)


@pytest.fixture(scope="module")
def random_model(split):
    return RandomModel(0).fit(split.train)


class TestHeadlineOrdering:
    """Fig. 6(a): random < MF(0) ≈ popularity < TF(4,0)."""

    def test_tf_beats_mf(self, tf_model, mf_model, split):
        tf_auc = evaluate_model(tf_model, split).auc
        mf_auc = evaluate_model(mf_model, split).auc
        assert tf_auc > mf_auc + 0.02

    def test_tf_beats_popularity(self, tf_model, popularity, split):
        tf_auc = evaluate_model(tf_model, split).auc
        pop_auc = evaluate_model(popularity, split).auc
        assert tf_auc > pop_auc

    def test_everything_beats_random(
        self, tf_model, mf_model, popularity, random_model, split
    ):
        rnd_auc = evaluate_model(random_model, split).auc
        assert abs(rnd_auc - 0.5) < 0.05
        for model in (tf_model, mf_model, popularity):
            assert evaluate_model(model, split).auc > rnd_auc + 0.05

    def test_tf_mean_rank_below_mf(self, tf_model, mf_model, split):
        """Fig. 6(b): TF's mean rank is far lower than MF's."""
        tf_rank = evaluate_model(tf_model, split).mean_rank
        mf_rank = evaluate_model(mf_model, split).mean_rank
        assert tf_rank < mf_rank


class TestTaxonomyDepth:
    """Fig. 7(a): AUC grows with taxonomyUpdateLevels."""

    def test_full_depth_beats_flat(self, dataset, split, train_config):
        aucs = {}
        for levels in (1, 4):
            model = TaxonomyFactorModel(
                dataset.taxonomy, train_config, taxonomy_levels=levels
            ).fit(split.train)
            aucs[levels] = evaluate_model(model, split).auc
        assert aucs[4] > aucs[1]


class TestMarkovTerm:
    """Fig. 6(e)/7(f): the short-term term adds accuracy."""

    def test_markov_term_helps_tf(self, tf_model, tf_markov_model, split):
        plain = evaluate_model(tf_model, split).auc
        markov = evaluate_model(tf_markov_model, split).auc
        assert markov > plain - 0.03  # at minimum it must not collapse

    def test_markov_model_uses_short_term_context(self, tf_markov_model, dataset):
        """Predictions must shift with the previous basket — the defining
        property of the Markov term."""
        kernel = dataset.transition_kernel
        source = next(iter(kernel))
        items_in_source = np.flatnonzero(dataset.leaf_of_item == source)
        a = tf_markov_model.score_items(0, history=[items_in_source[:1]])
        b = tf_markov_model.score_items(0, history=None)
        assert not np.allclose(a, b)


class TestSiblingTraining:
    """Fig. 7(d): sibling training does not hurt, usually helps."""

    def test_sibling_training_quality(self, dataset, split, train_config):
        without = TaxonomyFactorModel(
            dataset.taxonomy, train_config, sibling_ratio=0.0
        ).fit(split.train)
        with_sib = TaxonomyFactorModel(
            dataset.taxonomy, train_config, sibling_ratio=0.5
        ).fit(split.train)
        auc_without = evaluate_model(without, split).auc
        auc_with = evaluate_model(with_sib, split).auc
        assert auc_with > auc_without - 0.02


class TestStructuredRanking:
    """Fig. 6(c,d): category-level recommendation quality."""

    def test_category_rank_is_small(self, tf_model, split, dataset):
        result = evaluate_category_level(tf_model, split, level=1)
        n_categories = dataset.taxonomy.nodes_at_level(1).size
        assert result.mean_rank < 0.5 * n_categories


class TestCascadeTradeoff:
    """Fig. 8(c): high accuracy at a fraction of the work."""

    def test_half_kept_keeps_most_accuracy(self, tf_model, split):
        users = split.test_users()[:60]
        result = evaluate_cascade(
            tf_model,
            split,
            CascadeConfig(keep_fractions=(0.5, 0.5, 0.5)),
            users=users,
        )
        assert result.work_ratio < 0.8
        assert result.accuracy_ratio > 0.75


class TestModelPersistence:
    def test_factors_roundtrip_preserves_scores(self, tf_model, tmp_path):
        from repro.core.factors import FactorSet

        path = tmp_path / "model.npz"
        tf_model.factor_set.save(path)
        restored = FactorSet.load(path, tf_model.taxonomy)
        np.testing.assert_allclose(
            restored.effective_items(), tf_model.effective_item_factors()
        )
