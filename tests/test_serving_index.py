"""Taxonomy-pruned exact retrieval: grouping, exactness, wiring, hot swap."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    HotSwapper,
    OnlineUpdater,
    PurchaseEvent,
    RecommenderService,
    ShardRouter,
    SyntheticConfig,
    TaxonomyFactorModel,
    generate_dataset,
    train_test_split,
)
from repro.core.topk import top_k_rows
from repro.serving.index import SubtreeIndex
from repro.taxonomy.tree import Taxonomy
from repro.train import train_model
from repro.utils.config import CascadeConfig, TrainConfig


def _random_taxonomy(rng: np.random.Generator) -> Taxonomy:
    n_cats = int(rng.integers(2, 6))
    parent = [-1] + [0] * n_cats
    for cat in range(1, n_cats + 1):
        parent += [cat] * int(rng.integers(1, 8))
    return Taxonomy(parent)


@pytest.fixture(scope="module")
def trained():
    data = generate_dataset(SyntheticConfig(n_users=250, seed=3))
    split = train_test_split(data.log, mu=0.5, seed=4)
    model = train_model(
        TaxonomyFactorModel(
            data.taxonomy,
            TrainConfig(factors=8, epochs=2, seed=5, markov_order=1),
        ),
        split.train,
    )
    return data, split, model


# ----------------------------------------------------------------------
# Taxonomy grouping helper
# ----------------------------------------------------------------------
class TestItemGroupsAtLevel:
    def test_partitions_all_items_once(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            taxonomy = _random_taxonomy(rng)
            level = int(rng.integers(0, taxonomy.max_depth + 1))
            groups = taxonomy.item_groups_at_level(level)
            combined = np.concatenate([members for _n, members in groups])
            assert np.array_equal(
                np.sort(combined), np.arange(taxonomy.n_items)
            )

    def test_matches_subtree_items(self):
        taxonomy = Taxonomy([-1, 0, 0, 1, 1, 2, 2, 2])
        groups = dict(taxonomy.item_groups_at_level(1))
        assert set(groups) == {1, 2}
        for node, members in groups.items():
            assert np.array_equal(members, taxonomy.subtree_items(node))

    def test_subset_restriction(self):
        taxonomy = Taxonomy([-1, 0, 0, 1, 1, 2, 2, 2])
        subset = np.array([0, 3, 4])
        groups = taxonomy.item_groups_at_level(1, items=subset)
        combined = np.concatenate([members for _n, members in groups])
        assert np.array_equal(np.sort(combined), subset)
        assert taxonomy.item_groups_at_level(1, items=np.array([], dtype=np.int64)) == []

    def test_members_ascending_anchors_ascending(self):
        taxonomy = Taxonomy([-1, 0, 0, 1, 1, 2, 2, 2])
        groups = taxonomy.item_groups_at_level(1)
        anchors = [node for node, _m in groups]
        assert anchors == sorted(anchors)
        for _node, members in groups:
            assert (np.diff(members) > 0).all() or members.size <= 1


# ----------------------------------------------------------------------
# Raw index exactness
# ----------------------------------------------------------------------
class TestSubtreeIndexExactness:
    def test_matches_brute_force_fuzz(self):
        """Random catalogs with heavy ties, bans, and k > catalog: the
        pruned page must be bit-identical to the dense ranking."""
        rng = np.random.default_rng(11)
        for trial in range(60):
            taxonomy = _random_taxonomy(rng)
            n_items, factors = taxonomy.n_items, 4
            effective = rng.integers(-2, 3, size=(n_items, factors)).astype(
                float
            )
            bias = rng.integers(-1, 2, size=n_items).astype(float)
            index = SubtreeIndex(
                effective, bias, taxonomy, level=1, block_items=3
            )
            n_rows = int(rng.integers(1, 5))
            queries = rng.integers(-2, 3, size=(n_rows, factors)).astype(float)
            k = int(rng.integers(1, n_items + 3))
            banned = [
                rng.choice(
                    n_items,
                    size=int(rng.integers(0, n_items + 1)),
                    replace=False,
                )
                for _ in range(n_rows)
            ]
            dense = queries @ effective.T + bias
            for row, row_banned in enumerate(banned):
                if row_banned.size:
                    dense[row, row_banned] = -np.inf
            page = index.top_k(queries, k, banned=banned)
            assert np.array_equal(page.items, top_k_rows(dense, k)), trial

    def test_all_banned_row_is_all_pad(self):
        taxonomy = Taxonomy([-1, 0, 0, 1, 1, 2, 2])
        effective = np.eye(4)[:, :3]
        bias = np.zeros(4)
        index = SubtreeIndex(effective, bias, taxonomy, level=1)
        page = index.top_k(
            np.ones((1, 3)), k=3, banned=[np.arange(4)]
        )
        assert (page.items == -1).all()
        assert (page.scores == -np.inf).all()

    def test_subset_index_returns_global_ids(self):
        rng = np.random.default_rng(2)
        taxonomy = _random_taxonomy(rng)
        n_items = taxonomy.n_items
        effective = rng.normal(size=(n_items, 4))
        bias = rng.normal(size=n_items)
        lo, hi = 1, max(2, n_items - 1)
        subset = np.arange(lo, hi)
        index = SubtreeIndex(effective, bias, taxonomy, items=subset)
        queries = rng.normal(size=(3, 4))
        dense = queries @ effective[subset].T + bias[subset]
        expected = top_k_rows(dense, 4)
        expected = np.where(expected >= 0, expected + lo, -1)
        page = index.top_k(queries, 4)
        assert np.array_equal(page.items, expected)
        assert index.n_indexed == subset.size

    def test_nodes_scored_prunes_on_coherent_factors(self):
        """With subtree-coherent factors the scan must actually stop
        early — fewer dot products than the dense pass."""
        rng = np.random.default_rng(9)
        parent = [-1] + [0] * 20
        for cat in range(1, 21):
            parent += [cat] * 30
        taxonomy = Taxonomy(parent)
        # Ancestors dominate: one category is far better than the rest.
        w = rng.normal(0, 0.05, size=(taxonomy.n_nodes + 1, 8))
        w[1:21] *= 20.0
        chains = taxonomy.item_ancestor_matrix()
        effective = w[chains].sum(axis=1)
        bias = np.zeros(taxonomy.n_items)
        index = SubtreeIndex(
            effective, bias, taxonomy, level=1, block_items=30
        )
        queries = rng.normal(0, 0.5, size=(16, 8))
        page = index.top_k(queries, 5)
        dense = queries @ effective.T + bias
        assert np.array_equal(page.items, top_k_rows(dense, 5))
        assert page.nodes_scored < dense.size
        assert page.groups_scanned < index.n_groups * queries.shape[0]

    def test_validation(self):
        taxonomy = Taxonomy([-1, 0, 0, 1, 1, 2, 2])
        eff, bias = np.zeros((4, 2)), np.zeros(4)
        with pytest.raises(ValueError, match="2-d"):
            SubtreeIndex(np.zeros(4), bias, taxonomy)
        with pytest.raises(ValueError, match="bias"):
            SubtreeIndex(eff, np.zeros(3), taxonomy)
        with pytest.raises(ValueError, match="level"):
            SubtreeIndex(eff, bias, taxonomy, level=9)
        with pytest.raises(ValueError, match="out of range"):
            SubtreeIndex(eff, bias, taxonomy, items=np.array([7]))
        with pytest.raises(ValueError, match="2-d"):
            SubtreeIndex(eff, bias, taxonomy).top_k(np.zeros(2), 2)
        with pytest.raises(ValueError, match="banned"):
            SubtreeIndex(eff, bias, taxonomy).top_k(
                np.zeros((2, 2)), 2, banned=[None]
            )


# ----------------------------------------------------------------------
# Service wiring
# ----------------------------------------------------------------------
class TestServicePrunedRetrieval:
    def test_batch_bit_identical_to_exact(self, trained):
        _data, split, model = trained
        exact = RecommenderService(model, history_log=split.train)
        pruned = RecommenderService(
            model, history_log=split.train, retrieval="pruned"
        )
        users = np.arange(model.n_users)
        assert np.array_equal(
            pruned.recommend_batch(users, k=10),
            exact.recommend_batch(users, k=10),
        )
        assert pruned.model_state.index is not None
        assert pruned.model_state.retrieval == "pruned"
        assert exact.model_state.index is None

    def test_single_requests_match(self, trained):
        _data, split, model = trained
        exact = RecommenderService(model, history_log=split.train)
        pruned = RecommenderService(
            model, history_log=split.train, retrieval="pruned"
        )
        for user in (0, 3, 17, 101):
            assert np.array_equal(
                pruned.recommend(user, k=7), exact.recommend(user, k=7)
            )

    def test_cold_paths_unaffected(self, trained):
        _data, split, model = trained
        pruned = RecommenderService(
            model, history_log=split.train, retrieval="pruned"
        )
        exact = RecommenderService(model, history_log=split.train)
        history = [np.array([0, 2])]
        assert np.array_equal(
            pruned.recommend(None, k=5, history=history),
            exact.recommend(None, k=5, history=history),
        )
        assert np.array_equal(
            pruned.recommend(None, k=5), exact.recommend(None, k=5)
        )

    def test_rejects_cascade_combination(self, trained):
        _data, split, model = trained
        with pytest.raises(ValueError, match="cascade"):
            RecommenderService(
                model,
                history_log=split.train,
                cascade=CascadeConfig(keep_fractions=(0.5, 0.5, 0.5)),
                retrieval="pruned",
            )
        with pytest.raises(ValueError, match="retrieval"):
            RecommenderService(model, retrieval="fuzzy")

    def test_index_level_override(self, trained):
        _data, split, model = trained
        service = RecommenderService(
            model, history_log=split.train, retrieval="pruned", index_level=1
        )
        assert service.model_state.index.level == 1
        exact = RecommenderService(model, history_log=split.train)
        users = np.arange(64)
        assert np.array_equal(
            service.recommend_batch(users, k=10),
            exact.recommend_batch(users, k=10),
        )

    def test_pruned_counts_nodes_scored(self, trained):
        _data, split, model = trained
        pruned = RecommenderService(
            model, history_log=split.train, retrieval="pruned"
        )
        exact = RecommenderService(model, history_log=split.train)
        users = np.arange(model.n_users)
        pruned.recommend_batch(users, k=10)
        exact.recommend_batch(users, k=10)
        assert 0 < pruned.stats.nodes_scored <= exact.stats.nodes_scored


# ----------------------------------------------------------------------
# Hot swap: indexes rebuilt, exactness on the new generation
# ----------------------------------------------------------------------
class TestPrunedHotSwap:
    def test_stream_swap_pruned_matches_brute_force(self, trained):
        """The satellite scenario: stream events, publish via HotSwapper,
        and the pruned top-k must equal brute force on the *new*
        generation."""
        _data, split, model = trained
        pruned = RecommenderService(
            model, history_log=split.train, retrieval="pruned"
        )
        old_index = pruned.model_state.index
        updater = OnlineUpdater(model, steps=3, seed=0)
        updater.apply_events(
            [
                PurchaseEvent(u % model.n_users, ((3 * u + 1) % model.n_items,))
                for u in range(200)
            ]
        )
        snapshot = updater.snapshot()
        swapper = HotSwapper(pruned)
        swapper.publish(snapshot)

        state = pruned.model_state
        assert state.index is not None
        assert state.index is not old_index  # rebuilt, not reused
        exact = RecommenderService(snapshot, history_log=state.history_log)
        users = np.arange(model.n_users)
        assert np.array_equal(
            pruned.recommend_batch(users, k=10),
            exact.recommend_batch(users, k=10),
        )

    def test_refresh_rebuilds_index_after_partial_fit(self, trained):
        _data, split, model = trained
        pruned = RecommenderService(
            model, history_log=split.train, retrieval="pruned"
        )
        old_index = pruned.model_state.index
        pruned.refresh()
        assert pruned.model_state.index is not old_index


# ----------------------------------------------------------------------
# Fleet wiring
# ----------------------------------------------------------------------
class TestShardedPrunedRetrieval:
    @pytest.mark.parametrize("partition", ["users", "items"])
    def test_fleet_matches_exact_service(self, trained, partition):
        _data, split, model = trained
        exact = RecommenderService(model, history_log=split.train)
        users = np.arange(model.n_users)
        expected = exact.recommend_batch(users, k=10)
        with ShardRouter(
            model,
            n_shards=2,
            history_log=split.train,
            partition=partition,
            retrieval="pruned",
        ) as fleet:
            got = fleet.recommend_batch(users, k=10)
            assert fleet.retrieval == "pruned"
        assert np.array_equal(got, expected)

    def test_fleet_swap_rebuilds_shard_indexes(self, trained):
        _data, split, model = trained
        updater = OnlineUpdater(model, steps=2, seed=1)
        updater.apply_events(
            [PurchaseEvent(u, (u % model.n_items,)) for u in range(50)]
        )
        snapshot = updater.snapshot()
        users = np.arange(model.n_users)
        with ShardRouter(
            model,
            n_shards=2,
            history_log=split.train,
            partition="items",
            retrieval="pruned",
        ) as fleet:
            swapper = HotSwapper(fleet)
            swapper.publish(snapshot)
            got = fleet.recommend_batch(users, k=10)
        exact = RecommenderService(
            snapshot, history_log=snapshot._train_log
        )
        assert np.array_equal(got, exact.recommend_batch(users, k=10))

    def test_rejects_cascade_combination(self, trained):
        _data, split, model = trained
        with pytest.raises(ValueError, match="cascade|retrieval"):
            ShardRouter(
                model,
                n_shards=2,
                history_log=split.train,
                cascade=CascadeConfig(keep_fractions=(0.5, 0.5, 0.5)),
                retrieval="pruned",
            )
        with pytest.raises(ValueError, match="retrieval"):
            ShardRouter(model, n_shards=2, retrieval="fuzzy")
