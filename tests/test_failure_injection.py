"""Failure-injection tests: corrupted inputs, hostile edge cases.

A production library must fail loudly and precisely, not deep inside a
numpy broadcast.  These tests inject broken files, degenerate data shapes,
and misuse patterns, asserting for each that the error surfaces early with
a useful message.
"""

import json

import numpy as np
import pytest

from repro.core.cascade import CascadedRecommender
from repro.core.factors import FactorSet
from repro.core.tf_model import NotFittedError, TaxonomyFactorModel
from repro.data.transactions import TransactionLog
from repro.taxonomy.generator import complete_taxonomy
from repro.taxonomy.io import load_taxonomy
from repro.taxonomy.tree import Taxonomy, TaxonomyError
from repro.utils.config import CascadeConfig, TrainConfig


class TestCorruptedFiles:
    def test_truncated_taxonomy_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"format": "repro-taxonomy", "vers')
        with pytest.raises(json.JSONDecodeError):
            load_taxonomy(path)

    def test_taxonomy_file_with_cycle(self, tmp_path):
        path = tmp_path / "cycle.json"
        path.write_text(
            json.dumps(
                {
                    "format": "repro-taxonomy",
                    "version": 1,
                    "parent": [-1, 2, 1],
                }
            )
        )
        with pytest.raises(TaxonomyError):
            load_taxonomy(path)

    def test_log_with_out_of_range_items(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(
            json.dumps({"n_items": 3}) + "\n" + json.dumps([[0, 7]]) + "\n"
        )
        with pytest.raises(ValueError, match="out of range"):
            TransactionLog.load(path)

    def test_factorset_load_against_wrong_taxonomy(self, tmp_path):
        big = complete_taxonomy((3, 3), items_per_leaf=3)
        small = complete_taxonomy((2, 2), items_per_leaf=2)
        fs = FactorSet(3, big, 4, 2, seed=0)
        path = tmp_path / "factors.npz"
        fs.save(path)
        with pytest.raises(ValueError, match="wrong taxonomy"):
            FactorSet.load(path, small)


class TestDegenerateData:
    def test_single_user_single_item_universe(self):
        taxonomy = Taxonomy([-1, 0, 0])  # root + two items
        log = TransactionLog([[[0]]], n_items=2)
        model = TaxonomyFactorModel(
            taxonomy, TrainConfig(factors=2, epochs=2, taxonomy_levels=2, seed=0)
        ).fit(log)
        scores = model.score_items(0)
        assert scores.shape == (2,)
        assert np.all(np.isfinite(scores))

    def test_user_with_identical_repeated_baskets(self):
        taxonomy = complete_taxonomy((2,), items_per_leaf=2)
        log = TransactionLog([[[0, 1]] * 5], n_items=4)
        model = TaxonomyFactorModel(
            taxonomy,
            TrainConfig(
                factors=2, epochs=2, taxonomy_levels=2, markov_order=2, seed=0
            ),
        ).fit(log)
        assert np.isfinite(model.score_items(0)).all()

    def test_markov_order_longer_than_any_history(self):
        taxonomy = complete_taxonomy((2,), items_per_leaf=2)
        log = TransactionLog([[[0]], [[1]]], n_items=4)
        model = TaxonomyFactorModel(
            taxonomy,
            TrainConfig(
                factors=2, epochs=2, taxonomy_levels=2, markov_order=5, seed=0
            ),
        ).fit(log)
        assert np.isfinite(model.score_items(0)).all()

    def test_taxonomy_levels_far_beyond_depth(self):
        taxonomy = complete_taxonomy((2,), items_per_leaf=2)
        log = TransactionLog([[[0], [3]]], n_items=4)
        model = TaxonomyFactorModel(
            taxonomy,
            TrainConfig(factors=2, epochs=3, taxonomy_levels=9, seed=0),
        ).fit(log)
        # Pad rows must stay pinned even with mostly-padded chains.
        assert np.all(model.factor_set.w[-1] == 0)

    def test_empty_training_log(self):
        taxonomy = complete_taxonomy((2,), items_per_leaf=2)
        log = TransactionLog([], n_items=4)
        model = TaxonomyFactorModel(
            taxonomy, TrainConfig(factors=2, epochs=2, taxonomy_levels=2, seed=0)
        ).fit(log)
        # Nothing to learn, but the model must still score.
        assert model.score_items(0).shape == (4,)

    def test_zero_epochs_fit(self):
        taxonomy = complete_taxonomy((2,), items_per_leaf=2)
        log = TransactionLog([[[0]]], n_items=4)
        model = TaxonomyFactorModel(
            taxonomy, TrainConfig(factors=2, epochs=0, taxonomy_levels=2, seed=0)
        ).fit(log)
        assert model.history_ == []
        assert np.isfinite(model.score_items(0)).all()


class TestMisuse:
    def test_unfitted_model_methods_raise(self):
        taxonomy = complete_taxonomy((2,), items_per_leaf=2)
        model = TaxonomyFactorModel(taxonomy)
        for call in (
            lambda: model.score_items(0),
            lambda: model.recommend(0),
            lambda: model.category_scores(0, 1),
            lambda: model.effective_item_factors(),
            lambda: model.onboard_items([1]),
        ):
            with pytest.raises(NotFittedError):
                call()

    def test_cascade_of_unfitted_model(self):
        taxonomy = complete_taxonomy((2,), items_per_leaf=2)
        model = TaxonomyFactorModel(taxonomy)
        cascade = CascadedRecommender(model, CascadeConfig())
        with pytest.raises(NotFittedError):
            cascade.rank(0)

    def test_scoring_unknown_user_raises_index_error(self, tf_model):
        with pytest.raises(IndexError):
            tf_model.score_items(10**7)

    def test_config_is_validated_before_any_work(self):
        taxonomy = complete_taxonomy((2,), items_per_leaf=2)
        with pytest.raises(ValueError):
            TaxonomyFactorModel(taxonomy, factors=-1)

    def test_nan_free_after_aggressive_learning_rate(self):
        """Even a hot learning rate must not produce NaNs (the sigmoid
        saturates, it does not overflow)."""
        taxonomy = complete_taxonomy((2, 2), items_per_leaf=2)
        rng = np.random.default_rng(0)
        rows = [[[int(rng.integers(0, 8))] for _ in range(3)] for _ in range(30)]
        log = TransactionLog(rows, n_items=8)
        model = TaxonomyFactorModel(
            taxonomy,
            TrainConfig(
                factors=4, epochs=10, learning_rate=2.0, taxonomy_levels=3, seed=0
            ),
        ).fit(log)
        assert np.isfinite(model.factor_set.w).all()
        assert np.isfinite(model.score_items(0)).all()
