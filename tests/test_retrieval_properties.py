"""Property/fuzz suite for the approximate retrieval tiers.

The contract under test, from ``repro.serving.index``:

* **knob-extreme identity** — ``budget=None`` (or >= catalog) and
  ``nprobe=None`` (or >= cell count) reproduce the exact ranking;
* **monotonicity** — recall@k never decreases as the knob grows (the
  selected cell sets are nested);
* **safety** — no knob setting, catalog shape, or ban pattern can
  resurrect a banned item or a PAD slot, and ``k`` beyond the catalog
  pads rather than inventing candidates;
* **determinism** — same model + same knob => byte-identical rankings
  across repeated calls, including the fp16-page configuration;
* **refusal** — every invalid (retrieval, cascade, knob) combination is
  rejected up front with an error that names the approximate modes, on
  both :class:`RecommenderService` and :class:`ShardRouter`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.factors import FactorSet
from repro.core.tf_model import TaxonomyFactorModel
from repro.core.topk import PAD_ITEM
from repro.eval.recall import recall_vs_reference, sweep_recall
from repro.serving.index import SubtreeIndex
from repro.serving.service import RecommenderService
from repro.serving.sharding import ShardRouter
from repro.taxonomy.generator import complete_taxonomy
from repro.taxonomy.tree import Taxonomy
from repro.utils.config import CascadeConfig, TrainConfig

FACTORS = 8


def _catalog(seed: int = 0, branching=(4, 5), per_leaf: int = 6):
    """A small taxonomy plus random effective factors and biases."""
    taxonomy = complete_taxonomy(branching, per_leaf)
    rng = np.random.default_rng(seed)
    effective = rng.normal(size=(taxonomy.n_items, FACTORS))
    bias = rng.normal(size=taxonomy.n_items) * 0.1
    return taxonomy, effective, bias


def _tie_heavy_catalog(rng: np.random.Generator):
    """Quantized factors: scores collide constantly, within and across
    cells, so every ranking decision exercises the tie-break order."""
    branching = (int(rng.integers(2, 5)), int(rng.integers(2, 5)))
    per_leaf = int(rng.integers(1, 5))
    taxonomy = complete_taxonomy(branching, per_leaf)
    effective = rng.integers(-1, 2, size=(taxonomy.n_items, 3)).astype(float)
    bias = rng.integers(0, 2, size=taxonomy.n_items).astype(float) * 0.5
    return taxonomy, effective, bias


def _model(taxonomy: Taxonomy, seed: int = 0) -> TaxonomyFactorModel:
    rng = np.random.default_rng(seed)
    factor_set = FactorSet.from_arrays(
        taxonomy,
        user=rng.normal(0, 0.4, size=(16, FACTORS)),
        w=rng.normal(0, 0.4, size=(taxonomy.n_nodes + 1, FACTORS)),
        bias=rng.normal(0, 0.1, size=taxonomy.n_nodes + 1),
        levels=taxonomy.max_depth + 1,
        init_scale=0.1,
    )
    model = TaxonomyFactorModel(taxonomy, TrainConfig(factors=FACTORS))
    model._factors = factor_set
    return model


# ----------------------------------------------------------------------
# Knob-extreme identity: exhaustive knobs ARE the exact scan
# ----------------------------------------------------------------------
class TestKnobExtremeIdentity:
    @pytest.fixture()
    def index(self):
        taxonomy, effective, bias = _catalog()
        return SubtreeIndex(effective, bias, taxonomy, approx=True)

    @pytest.fixture()
    def queries(self):
        return np.random.default_rng(1).normal(size=(12, FACTORS))

    @pytest.mark.parametrize("knob", [None, 10_000])
    def test_budget_extreme_matches_exact(self, index, queries, knob):
        exact = index.top_k(queries, 7)
        page = index.top_k_budget(queries, 7, budget=knob)
        assert np.array_equal(page.items, exact.items)
        np.testing.assert_allclose(page.scores, exact.scores, rtol=1e-12)

    @pytest.mark.parametrize("knob", [None, 10_000])
    def test_nprobe_extreme_matches_exact(self, index, queries, knob):
        exact = index.top_k(queries, 7)
        page = index.top_k_ivf(queries, 7, nprobe=knob)
        assert np.array_equal(page.items, exact.items)
        np.testing.assert_allclose(page.scores, exact.scores, rtol=1e-12)

    def test_extremes_match_exact_with_bans(self, index, queries):
        n_items = index.n_indexed
        banned = [np.arange(n_items, dtype=np.int64)]  # row 0: everything
        banned += [
            np.random.default_rng(2 + row).choice(n_items, 20, replace=False)
            for row in range(queries.shape[0] - 1)
        ]
        exact = index.top_k(queries, 7, banned=banned)
        for page in (
            index.top_k_budget(queries, 7, banned=banned),
            index.top_k_ivf(queries, 7, banned=banned),
        ):
            assert np.array_equal(page.items, exact.items)
        assert (exact.items[0] == PAD_ITEM).all()

    @pytest.mark.parametrize(
        "retrieval,knob_kwargs",
        [
            ("budget", {}),
            ("budget", {"budget": 10_000}),
            ("ivf", {}),
            ("ivf", {"nprobe": 10_000}),
        ],
    )
    def test_service_extremes_match_exact_service(self, retrieval, knob_kwargs):
        taxonomy, _eff, _bias = _catalog()
        model = _model(taxonomy)
        users = np.arange(model.n_users)
        exact = RecommenderService(model, cache_size=0).recommend_batch(
            users, k=9
        )
        approx = RecommenderService(
            model, cache_size=0, retrieval=retrieval, **knob_kwargs
        ).recommend_batch(users, k=9)
        assert np.array_equal(approx, exact)


# ----------------------------------------------------------------------
# Monotonicity: recall@k never decreases as the knob grows
# ----------------------------------------------------------------------
class TestRecallMonotonicity:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_budget_and_nprobe_recall_are_monotone(self, seed):
        taxonomy, effective, bias = _catalog(seed=seed)
        index = SubtreeIndex(effective, bias, taxonomy, approx=True)
        queries = np.random.default_rng(seed + 100).normal(size=(24, FACTORS))
        n_items = taxonomy.n_items
        curve = sweep_recall(
            index,
            queries,
            k=10,
            budgets=(1, n_items // 8, n_items // 2, None),
            nprobes=tuple(range(1, index.n_cells + 1)),
        )
        for mode in ("budget", "ivf"):
            recalls = [p.recall for p in curve.points if p.mode == mode]
            assert recalls == sorted(recalls), (mode, recalls)
            assert recalls[-1] == 1.0

    def test_monotone_under_bans(self):
        taxonomy, effective, bias = _catalog(seed=5)
        index = SubtreeIndex(effective, bias, taxonomy, approx=True)
        rng = np.random.default_rng(6)
        queries = rng.normal(size=(16, FACTORS))
        banned = [
            rng.choice(taxonomy.n_items, 30, replace=False) for _ in queries
        ]
        exact = index.top_k(queries, 10, banned=banned)
        last = -1.0
        for budget in (1, 20, 60, taxonomy.n_items):
            page = index.top_k_budget(queries, 10, banned=banned, budget=budget)
            recall = recall_vs_reference(page.items, exact.items)
            assert recall >= last
            last = recall
        assert last == 1.0


# ----------------------------------------------------------------------
# Seeded fuzz: ties, bans, pads, k > catalog, byte determinism
# ----------------------------------------------------------------------
class TestApproximateFuzz:
    @pytest.mark.parametrize("trial", range(25))
    def test_no_resurrection_and_byte_determinism(self, trial):
        rng = np.random.default_rng(1000 + trial)
        taxonomy, effective, bias = _tie_heavy_catalog(rng)
        n_items = taxonomy.n_items
        index = SubtreeIndex(effective, bias, taxonomy, approx=True)
        n_rows = int(rng.integers(1, 7))
        queries = rng.integers(-1, 2, size=(n_rows, 3)).astype(float)
        k = int(rng.integers(1, n_items + 5))

        banned = []
        for row in range(n_rows):
            if row == 0 and rng.random() < 0.5:
                banned.append(np.arange(n_items, dtype=np.int64))  # full ban
            else:
                banned.append(
                    rng.choice(
                        n_items,
                        size=int(rng.integers(0, n_items + 1)),
                        replace=False,
                    )
                )

        if rng.random() < 0.5:
            knob = int(rng.integers(1, n_items + 2))
            scan = lambda: index.top_k_budget(  # noqa: E731
                queries, k, banned=banned, budget=knob
            )
        else:
            knob = int(rng.integers(1, index.n_cells + 2))
            scan = lambda: index.top_k_ivf(  # noqa: E731
                queries, k, banned=banned, nprobe=knob
            )
        page = scan()

        width = min(k, n_items)
        assert page.items.shape == (n_rows, width)
        for row in range(n_rows):
            real = page.items[row][page.items[row] >= 0]
            # Never a banned item, never an id outside the catalog.
            assert np.intersect1d(real, banned[row]).size == 0
            assert real.size == 0 or real.max() < n_items
            # Pads only ever trail real items, with -inf scores.
            pad_slots = page.items[row] == PAD_ITEM
            assert (page.items[row][: real.size] >= 0).all()
            assert np.isneginf(page.scores[row][pad_slots]).all()
            # Scores arrive best-first.
            finite = page.scores[row][~pad_slots]
            assert (np.diff(finite) <= 0).all()
            if banned[row].size >= n_items:
                assert pad_slots.all()

        # Byte determinism: an identical second scan is identical output.
        again = scan()
        assert np.array_equal(page.items, again.items)
        assert np.array_equal(page.scores, again.scores)

    @pytest.mark.parametrize("trial", range(8))
    def test_exhaustive_knob_equals_exact_on_tie_heavy_catalogs(self, trial):
        rng = np.random.default_rng(2000 + trial)
        taxonomy, effective, bias = _tie_heavy_catalog(rng)
        index = SubtreeIndex(effective, bias, taxonomy, approx=True)
        queries = rng.integers(-1, 2, size=(5, 3)).astype(float)
        k = int(rng.integers(1, taxonomy.n_items + 3))
        exact = index.top_k(queries, k)
        assert np.array_equal(
            index.top_k_budget(queries, k, budget=taxonomy.n_items).items,
            exact.items,
        )
        assert np.array_equal(
            index.top_k_ivf(queries, k, nprobe=index.n_cells).items,
            exact.items,
        )

    def test_k_zero_and_empty_batch_shapes(self):
        taxonomy, effective, bias = _catalog()
        index = SubtreeIndex(effective, bias, taxonomy, approx=True)
        queries = np.random.default_rng(0).normal(size=(4, FACTORS))
        assert index.top_k_budget(queries, 0, budget=5).items.shape == (4, 0)
        assert index.top_k_ivf(
            queries[:0], 3, nprobe=1
        ).items.shape == (0, 3)


# ----------------------------------------------------------------------
# fp16 factor pages: deterministic, validated
# ----------------------------------------------------------------------
class TestFactorPages:
    @pytest.mark.parametrize("page_dtype", ["float32", "float16"])
    def test_paged_scan_is_deterministic_and_safe(self, page_dtype):
        taxonomy, effective, bias = _catalog(seed=9)
        index = SubtreeIndex(
            effective, bias, taxonomy, approx=True, page_dtype=page_dtype
        )
        rng = np.random.default_rng(10)
        queries = rng.normal(size=(8, FACTORS))
        banned = [
            rng.choice(taxonomy.n_items, 15, replace=False) for _ in queries
        ]
        first = index.top_k_budget(queries, 6, banned=banned, budget=40)
        second = index.top_k_budget(queries, 6, banned=banned, budget=40)
        assert np.array_equal(first.items, second.items)
        assert np.array_equal(first.scores, second.scores)
        for row in range(8):
            real = first.items[row][first.items[row] >= 0]
            assert np.intersect1d(real, banned[row]).size == 0

    def test_page_dtype_requires_approx(self):
        taxonomy, effective, bias = _catalog()
        with pytest.raises(ValueError, match="approx"):
            SubtreeIndex(effective, bias, taxonomy, page_dtype="float16")

    def test_unknown_page_dtype_rejected(self):
        taxonomy, effective, bias = _catalog()
        with pytest.raises(ValueError, match="page_dtype"):
            SubtreeIndex(
                effective, bias, taxonomy, approx=True, page_dtype="int8"
            )

    def test_exact_index_refuses_approx_scans(self):
        taxonomy, effective, bias = _catalog()
        index = SubtreeIndex(effective, bias, taxonomy)
        queries = np.zeros((2, FACTORS))
        with pytest.raises(ValueError, match="approx=True"):
            index.top_k_budget(queries, 3)
        with pytest.raises(ValueError, match="approx=True"):
            index.top_k_ivf(queries, 3)


# ----------------------------------------------------------------------
# Invalid configurations refuse loudly, naming the modes involved
# ----------------------------------------------------------------------
def _service_factory(**kwargs):
    taxonomy, _eff, _bias = _catalog()
    return RecommenderService(_model(taxonomy), cache_size=0, **kwargs)


def _router_factory(**kwargs):
    taxonomy, _eff, _bias = _catalog()
    return ShardRouter(_model(taxonomy), n_shards=2, **kwargs)


@pytest.mark.parametrize("factory", [_service_factory, _router_factory])
class TestInvalidRetrievalConfigs:
    """One test per invalid combination, on both serving front doors.

    The guards run before any worker process spawns, so the router
    cases are as cheap as the service ones.
    """

    @pytest.mark.parametrize("retrieval", ["pruned", "budget", "ivf"])
    def test_cascade_conflict_names_all_pruning_modes(
        self, factory, retrieval
    ):
        with pytest.raises(ValueError) as excinfo:
            factory(retrieval=retrieval, cascade=CascadeConfig())
        message = str(excinfo.value)
        assert retrieval in message
        # The message must name the approximate modes, not just 'pruned'.
        assert "budget" in message and "ivf" in message

    def test_unknown_retrieval_mode(self, factory):
        with pytest.raises(ValueError, match="exact/pruned/budget/ivf"):
            factory(retrieval="fuzzy")

    @pytest.mark.parametrize("retrieval", ["exact", "pruned", "ivf"])
    def test_budget_knob_requires_budget_mode(self, factory, retrieval):
        with pytest.raises(ValueError, match="retrieval='budget'"):
            factory(retrieval=retrieval, budget=100)

    @pytest.mark.parametrize("retrieval", ["exact", "pruned", "budget"])
    def test_nprobe_knob_requires_ivf_mode(self, factory, retrieval):
        with pytest.raises(ValueError, match="retrieval='ivf'"):
            factory(retrieval=retrieval, nprobe=4)

    @pytest.mark.parametrize("retrieval", ["exact", "pruned"])
    def test_page_dtype_requires_approximate_mode(self, factory, retrieval):
        with pytest.raises(ValueError, match="budget/ivf"):
            factory(retrieval=retrieval, page_dtype="float16")

    def test_nonpositive_knobs_rejected(self, factory):
        with pytest.raises(ValueError, match="budget must be >= 1"):
            factory(retrieval="budget", budget=0)
        with pytest.raises(ValueError, match="nprobe must be >= 1"):
            factory(retrieval="ivf", nprobe=0)
