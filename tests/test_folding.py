"""Tests for new-user fold-in."""

import numpy as np
import pytest

from repro.core.folding import fold_in_user, recommend_for_history, score_for_vector


@pytest.fixture(scope="module")
def focus_history(dataset, split):
    """A history concentrated in one leaf category, plus that category."""
    leaf = int(dataset.leaf_of_item[0])
    items = np.flatnonzero(dataset.leaf_of_item == leaf)
    return [items[:2], items[2:4]], leaf, items


class TestFoldInUser:
    def test_returns_vector_of_right_shape(self, tf_model, focus_history):
        history, _, _ = focus_history
        vector = fold_in_user(tf_model, history, steps=100, seed=0)
        assert vector.shape == (tf_model.config.factors,)
        assert np.all(np.isfinite(vector))

    def test_empty_history_gives_zero_vector(self, tf_model):
        vector = fold_in_user(tf_model, [], steps=50)
        np.testing.assert_array_equal(vector, np.zeros(tf_model.config.factors))

    def test_deterministic_for_seed(self, tf_model, focus_history):
        history, _, _ = focus_history
        a = fold_in_user(tf_model, history, steps=60, seed=4)
        b = fold_in_user(tf_model, history, steps=60, seed=4)
        np.testing.assert_array_equal(a, b)

    def test_vector_prefers_purchased_items(self, tf_model, focus_history):
        history, _, items = focus_history
        vector = fold_in_user(tf_model, history, steps=300, seed=0)
        scores = score_for_vector(tf_model, vector)
        bought = np.unique(np.concatenate(history))
        bought_mean = scores[bought].mean()
        overall_mean = scores.mean()
        assert bought_mean > overall_mean

    def test_model_factors_untouched(self, tf_model, focus_history):
        history, _, _ = focus_history
        w_before = tf_model.factor_set.w.copy()
        user_before = tf_model.factor_set.user.copy()
        fold_in_user(tf_model, history, steps=100, seed=0)
        np.testing.assert_array_equal(tf_model.factor_set.w, w_before)
        np.testing.assert_array_equal(tf_model.factor_set.user, user_before)


class TestScoreForVector:
    def test_matches_known_user_query(self, tf_model):
        """Feeding a trained user's own vector reproduces their scores."""
        user = 0
        vector = tf_model.factor_set.user[user]
        expected = tf_model.score_items(user)
        np.testing.assert_allclose(
            score_for_vector(tf_model, vector), expected
        )

    def test_subset_scoring(self, tf_model):
        vector = tf_model.factor_set.user[1]
        subset = np.array([0, 5, 9])
        all_scores = score_for_vector(tf_model, vector)
        np.testing.assert_allclose(
            score_for_vector(tf_model, vector, items=subset),
            all_scores[subset],
        )

    def test_markov_history_shifts_scores(self, tf_markov_model, focus_history):
        history, _, _ = focus_history
        vector = np.zeros(tf_markov_model.config.factors)
        without = score_for_vector(tf_markov_model, vector, history=None)
        with_history = score_for_vector(tf_markov_model, vector, history=history)
        assert not np.allclose(without, with_history)


class TestRecommendForHistory:
    def test_excludes_history_items(self, tf_model, focus_history):
        history, _, _ = focus_history
        top = recommend_for_history(tf_model, history, k=10, steps=150, seed=0)
        bought = set(np.unique(np.concatenate(history)).tolist())
        assert not (set(top.tolist()) & bought)

    def test_recommends_from_related_categories(self, tf_model, dataset, focus_history):
        """A camera-only shopper should mostly get camera-adjacent items:
        the folded-in vector must land near the history's categories."""
        history, leaf, _ = focus_history
        taxonomy = dataset.taxonomy
        top = recommend_for_history(tf_model, history, k=10, steps=300, seed=0)
        top_level_of = lambda item: int(
            taxonomy.item_category(np.asarray([item]), 1)[0]
        )
        history_top = top_level_of(int(history[0][0]))
        hits = sum(1 for item in top if top_level_of(int(item)) == history_top)
        assert hits >= 3  # strong pull toward the user's taxonomy region
