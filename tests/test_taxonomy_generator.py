"""Tests for repro.taxonomy.generator."""

import pytest

from repro.taxonomy.generator import (
    PAPER_LIKE_BRANCHING,
    complete_taxonomy,
    paper_scale_taxonomy,
    random_taxonomy,
)


class TestCompleteTaxonomy:
    def test_exact_level_sizes(self):
        tax = complete_taxonomy((3, 2), items_per_leaf=4)
        assert tax.level_sizes() == [1, 3, 6, 24]
        assert tax.n_items == 24

    def test_all_items_at_same_depth(self):
        tax = complete_taxonomy((2, 2, 2), items_per_leaf=3)
        assert set(tax.level[tax.items].tolist()) == {4}

    def test_item_names_unique(self):
        tax = complete_taxonomy((2, 2), items_per_leaf=2)
        names = [tax.name_of(int(v)) for v in tax.items]
        assert len(set(names)) == len(names)

    def test_rejects_zero_branching(self):
        with pytest.raises(ValueError):
            complete_taxonomy((0,), items_per_leaf=2)


class TestRandomTaxonomy:
    def test_deterministic_for_seed(self):
        a = random_taxonomy((4, 3), 3, seed=5)
        b = random_taxonomy((4, 3), 3, seed=5)
        assert a == b

    def test_zero_jitter_matches_complete(self):
        a = random_taxonomy((3, 2), 4, jitter=0.0, seed=0)
        b = complete_taxonomy((3, 2), 4)
        assert a.level_sizes() == b.level_sizes()

    def test_jitter_changes_fanout(self):
        tax = random_taxonomy((10, 4), 4, jitter=0.4, seed=0)
        widths = {tax.children(int(v)).size for v in tax.nodes_at_level(1)}
        assert len(widths) > 1  # uneven category sizes

    def test_depth_is_uniform(self):
        tax = random_taxonomy((3, 3, 3), 2, jitter=0.3, seed=1)
        assert set(tax.level[tax.items].tolist()) == {4}

    def test_invalid_jitter(self):
        with pytest.raises(ValueError):
            random_taxonomy((2,), 2, jitter=1.0)


class TestPaperScaleTaxonomy:
    def test_top_level_has_23_categories(self):
        tax = paper_scale_taxonomy(scale=0.002, seed=0)
        # jitter=0.25 around 23
        assert 15 <= tax.nodes_at_level(1).size <= 31

    def test_depth_matches_paper(self):
        tax = paper_scale_taxonomy(scale=0.002, seed=0)
        assert tax.max_depth == 4  # root + 3 category levels + items

    def test_scale_controls_item_count(self):
        small = paper_scale_taxonomy(scale=0.002, seed=0)
        large = paper_scale_taxonomy(scale=0.01, seed=0)
        assert large.n_items > small.n_items

    def test_branching_constant_matches_ratios(self):
        top, mid, low = PAPER_LIKE_BRANCHING
        assert top == 23
        assert top * mid in range(230, 300)
