"""Property-based tests for the ranking metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.eval.metrics import auc, mean_rank, ranks_from_scores

# Scores are rounded to 6 decimals so affine transforms (3x + 7) cannot
# collapse distinct tiny values into float64 ties.
scores_strategy = arrays(
    np.float64,
    st.integers(min_value=3, max_value=30),
    elements=st.floats(-100, 100, allow_nan=False).map(lambda v: round(v, 6)),
)


@st.composite
def scores_and_positives(draw):
    scores = draw(scores_strategy)
    n = scores.size
    n_pos = draw(st.integers(min_value=1, max_value=n - 1))
    positives = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=n_pos,
            max_size=n_pos,
            unique=True,
        )
    )
    return scores, positives


@given(scores_and_positives())
@settings(max_examples=100, deadline=None)
def test_auc_bounded(case):
    scores, positives = case
    value = auc(scores, positives)
    assert 0.0 <= value <= 1.0


@given(scores_and_positives())
@settings(max_examples=100, deadline=None)
def test_auc_antisymmetric_under_negation(case):
    """Reversing the ranking maps AUC to 1 − AUC (ties keep half credit)."""
    scores, positives = case
    assert auc(scores, positives) + auc(-scores, positives) == 1.0


@given(scores_and_positives())
@settings(max_examples=100, deadline=None)
def test_auc_invariant_to_monotone_transform(case):
    scores, positives = case
    assert auc(scores, positives) == auc(3.0 * scores + 7.0, positives)


@given(scores_and_positives())
@settings(max_examples=100, deadline=None)
def test_mean_rank_bounds(case):
    scores, positives = case
    value = mean_rank(scores, positives)
    assert 1.0 <= value <= scores.size


@given(scores_strategy)
@settings(max_examples=100, deadline=None)
def test_ranks_are_permutation_like(scores):
    ranks = ranks_from_scores(scores)
    # Tie-averaged ranks always sum to n(n+1)/2.
    n = scores.size
    assert ranks.sum() == n * (n + 1) / 2
    assert ranks.min() >= 1.0
    assert ranks.max() <= n


@given(scores_and_positives())
@settings(max_examples=100, deadline=None)
def test_perfect_scores_give_auc_one(case):
    scores, positives = case
    boosted = scores.copy()
    boosted[positives] = boosted.max() + np.arange(1, len(positives) + 1)
    assert auc(boosted, positives) == 1.0
