"""Tests for repro.data.transactions.TransactionLog."""

import numpy as np
import pytest

from repro.data.transactions import TransactionLog


@pytest.fixture()
def log():
    return TransactionLog(
        [
            [[0, 1], [2]],
            [[3]],
            [],
            [[1, 1, 0], [4], [0]],
        ],
        n_items=6,
    )


class TestConstruction:
    def test_shape(self, log):
        assert log.n_users == 4
        assert log.n_items == 6
        assert log.n_transactions == 6

    def test_duplicates_within_basket_collapse(self, log):
        assert log.basket(3, 0).tolist() == [0, 1]

    def test_n_purchases_counts_events(self, log):
        assert log.n_purchases == 2 + 1 + 1 + 2 + 1 + 1

    def test_infers_n_items(self):
        inferred = TransactionLog([[[7]]])
        assert inferred.n_items == 8

    def test_rejects_out_of_range_item(self):
        with pytest.raises(ValueError):
            TransactionLog([[[5]]], n_items=3)

    def test_rejects_negative_item(self):
        with pytest.raises(ValueError):
            TransactionLog([[[-1]]])

    def test_rejects_empty_basket(self):
        with pytest.raises(ValueError):
            TransactionLog([[[]]])

    def test_baskets_are_readonly(self, log):
        with pytest.raises(ValueError):
            log.basket(0, 0)[0] = 9


class TestAccess:
    def test_user_items_sorted_distinct(self, log):
        assert log.user_items(3).tolist() == [0, 1, 4]

    def test_user_items_empty_user(self, log):
        assert log.user_items(2).size == 0

    def test_iter_baskets_order(self, log):
        seen = [(u, t) for u, t, _ in log.iter_baskets()]
        assert seen == [(0, 0), (0, 1), (1, 0), (3, 0), (3, 1), (3, 2)]

    def test_purchase_triples(self, log):
        triples = log.purchase_triples()
        assert triples.shape == (log.n_purchases, 3)
        assert triples[0].tolist() == [0, 0, 0]
        assert triples[1].tolist() == [0, 0, 1]

    def test_purchase_triples_empty_log(self):
        empty = TransactionLog([], n_items=3)
        assert empty.purchase_triples().shape == (0, 3)

    def test_item_counts(self, log):
        counts = log.item_counts()
        assert counts.tolist() == [3, 2, 1, 1, 1, 0]

    def test_purchased_items(self, log):
        assert log.purchased_items().tolist() == [0, 1, 2, 3, 4]


class TestTransformation:
    def test_subset_users(self, log):
        sub = log.subset_users([3, 0])
        assert sub.n_users == 2
        assert sub.basket(0, 0).tolist() == [0, 1]  # old user 3
        assert sub.n_items == log.n_items

    def test_map_items_drops_unmapped(self, log):
        mapping = np.array([0, -1, 1, 2, -1, -1])
        mapped = log.map_items(mapping, n_items=3)
        assert mapped.basket(0, 0).tolist() == [0]
        # User 3's second transaction [4] disappears entirely.
        assert len(mapped.user_transactions(3)) == 2

    def test_to_lists_roundtrip(self, log):
        rebuilt = TransactionLog(log.to_lists(), n_items=log.n_items)
        assert rebuilt == log


class TestSerialization:
    def test_save_load_roundtrip(self, log, tmp_path):
        path = tmp_path / "log.jsonl"
        log.save(path)
        loaded = TransactionLog.load(path)
        assert loaded == log
        assert loaded.n_items == log.n_items


class TestDunders:
    def test_len(self, log):
        assert len(log) == 4

    def test_repr(self, log):
        assert "n_users=4" in repr(log)

    def test_equality_detects_difference(self, log):
        other = TransactionLog([[[0]]], n_items=6)
        assert log != other
