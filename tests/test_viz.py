"""Tests for the visualization substrate (t-SNE, PCA, Fig. 7e diagnostics)."""

import numpy as np
import pytest

from repro.viz.projection import (
    pca,
    project_taxonomy_factors,
    taxonomy_clustering_report,
)
from repro.viz.tsne import kl_divergence, tsne


def two_blobs(rng, n_per=20, separation=20.0, dim=5):
    a = rng.normal(0, 1, size=(n_per, dim))
    b = rng.normal(0, 1, size=(n_per, dim)) + separation
    return np.vstack([a, b])


class TestPca:
    def test_output_shapes(self, rng):
        x = rng.normal(size=(30, 6))
        coords, ratio = pca(x, n_components=2)
        assert coords.shape == (30, 2)
        assert ratio.shape == (2,)

    def test_explained_variance_ratio_bounded(self, rng):
        _, ratio = pca(rng.normal(size=(40, 8)), n_components=3)
        assert np.all(ratio >= 0) and ratio.sum() <= 1.0 + 1e-9

    def test_first_component_captures_separation(self, rng):
        x = two_blobs(rng)
        coords, ratio = pca(x)
        # The blob identity must be separable along PC1.
        first = coords[:20, 0]
        second = coords[20:, 0]
        assert (first.max() < second.min()) or (second.max() < first.min())
        assert ratio[0] > 0.8

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            pca(np.arange(5.0))


class TestTsne:
    def test_output_shape(self, rng):
        x = rng.normal(size=(25, 4))
        y = tsne(x, n_iter=60, seed=0)
        assert y.shape == (25, 2)
        assert np.all(np.isfinite(y))

    def test_separates_blobs(self, rng):
        x = two_blobs(rng, n_per=15)
        y = tsne(x, n_iter=180, seed=0)
        within_a = np.linalg.norm(y[:15] - y[:15].mean(0), axis=1).mean()
        centers = np.linalg.norm(y[:15].mean(0) - y[15:].mean(0))
        assert centers > 2.0 * within_a

    def test_deterministic_for_seed(self, rng):
        x = rng.normal(size=(12, 3))
        a = tsne(x, n_iter=40, seed=5)
        b = tsne(x, n_iter=40, seed=5)
        np.testing.assert_allclose(a, b)

    def test_perplexity_clamped_for_tiny_inputs(self, rng):
        x = rng.normal(size=(6, 3))
        y = tsne(x, perplexity=50.0, n_iter=30, seed=0)
        assert np.all(np.isfinite(y))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            tsne(np.arange(5.0))

    def test_kl_divergence_nonnegative_and_improves(self, rng):
        x = two_blobs(rng, n_per=10)
        good = tsne(x, n_iter=150, seed=0)
        bad = rng.normal(size=good.shape)
        assert kl_divergence(x, good) >= 0
        assert kl_divergence(x, good) < kl_divergence(x, bad)


class TestTaxonomyClustering:
    def test_report_fields(self, tf_model):
        report = taxonomy_clustering_report(tf_model.factor_set)
        assert report.n_nodes > 0
        assert report.parent_child_distance > 0
        assert report.random_pair_distance > 0
        assert len(report.offset_norm_by_level) >= 3

    def test_factors_cluster_around_ancestors(self, tf_model):
        """Fig. 7(e): parent-child pairs are much closer in factor space
        than random pairs."""
        report = taxonomy_clustering_report(tf_model.factor_set)
        assert report.clustering_ratio < 0.8

    def test_offset_norms_decrease_with_depth(self, tf_model):
        """Sec. 5.1: offsets from parents shrink as we move down the tree
        (this is what justifies cascaded pruning)."""
        norms = taxonomy_clustering_report(tf_model.factor_set).offset_norm_by_level
        levels = sorted(norms)
        assert norms[levels[0]] > norms[levels[-1]]

    def test_projection_returns_levels(self, tf_model):
        coords, nodes, levels = project_taxonomy_factors(
            tf_model.factor_set, max_level=3, method="pca"
        )
        assert coords.shape == (nodes.size, 2)
        assert set(levels.tolist()) <= {1, 2, 3}

    def test_projection_tsne_path(self, tf_model):
        coords, nodes, _ = project_taxonomy_factors(
            tf_model.factor_set, max_level=2, method="tsne", n_iter=30
        )
        assert coords.shape == (nodes.size, 2)

    def test_projection_rejects_unknown_method(self, tf_model):
        with pytest.raises(ValueError):
            project_taxonomy_factors(tf_model.factor_set, method="umap")
