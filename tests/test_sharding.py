"""Tests for the multi-process serving fleet (``repro.serving.sharding``)."""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro import (
    CascadeConfig,
    CheckpointStore,
    HotSwapper,
    OnlineUpdater,
    PopularityModel,
    PurchaseEvent,
    RecommenderService,
    ShardingError,
    ShardRouter,
)
from repro.core.topk import merge_top_k_rows, top_k_rows
from repro.serving.sharding import SharedFactors, attach_factors, shard_of


@pytest.fixture(scope="module")
def router(tf_model, split):
    with ShardRouter(tf_model, n_shards=2, history_log=split.train) as fleet:
        yield fleet


@pytest.fixture(scope="module")
def service(tf_model, split):
    return RecommenderService(tf_model, history_log=split.train)


# ----------------------------------------------------------------------
# Shared-memory factor publication
# ----------------------------------------------------------------------
class TestSharedFactors:
    def test_roundtrip_is_exact_and_readonly(self, tf_model):
        source = tf_model.factor_set
        shared = SharedFactors(source, generation=3)
        try:
            assert shared.handle.generation == 3
            restored, segments = attach_factors(
                shared.handle, tf_model.taxonomy
            )
            try:
                np.testing.assert_array_equal(restored.user, source.user)
                np.testing.assert_array_equal(restored.w, source.w)
                np.testing.assert_array_equal(restored.bias, source.bias)
                assert not restored.user.flags.writeable
                assert restored.levels == source.levels
                # Effective factors computed from the views match exactly.
                np.testing.assert_array_equal(
                    restored.effective_items(), source.effective_items()
                )
            finally:
                del restored
                for segment in segments:
                    segment.close()
        finally:
            shared.release()

    def test_release_is_idempotent_and_unlinks(self, tf_model):
        shared = SharedFactors(tf_model.factor_set)
        names = [spec.name for spec in shared.handle.arrays.values()]
        shared.release()
        shared.release()
        if os.path.isdir("/dev/shm"):
            for name in names:
                assert not os.path.exists(f"/dev/shm/{name}")

    def test_attach_rejects_wrong_taxonomy(self, tf_model, tiny_taxonomy):
        shared = SharedFactors(tf_model.factor_set)
        try:
            with pytest.raises(ValueError, match="wrong taxonomy"):
                attach_factors(shared.handle, tiny_taxonomy)
        finally:
            shared.release()


class TestShardOf:
    def test_deterministic_and_in_range(self):
        users = np.arange(500)
        first = shard_of(users, 4)
        second = shard_of(users, 4)
        np.testing.assert_array_equal(first, second)
        assert first.min() >= 0 and first.max() < 4

    def test_balances_strided_ids(self):
        # user ids that are all even would pin `u % 2` to shard 0.
        counts = np.bincount(shard_of(np.arange(0, 4000, 2), 2), minlength=2)
        assert counts.min() > 800

    def test_single_shard(self):
        assert shard_of(np.arange(10), 1).max() == 0

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_of(np.arange(3), 0)


class TestMergeTopKRows:
    def test_merges_disjoint_pages(self):
        items = [np.array([[0, 2]]), np.array([[5, 3]])]
        scores = [np.array([[9.0, 1.0]]), np.array([[8.0, 4.0]])]
        np.testing.assert_array_equal(
            merge_top_k_rows(items, scores, k=3), [[0, 5, 3]]
        )

    def test_ties_break_by_item_index(self):
        items = [np.array([[7]]), np.array([[2]])]
        scores = [np.array([[1.0]]), np.array([[1.0]])]
        np.testing.assert_array_equal(
            merge_top_k_rows(items, scores, k=2), [[2, 7]]
        )

    def test_pads_propagate_and_sort_last(self):
        items = [np.array([[4, -1]]), np.array([[-1, -1]])]
        scores = [np.array([[2.0, 5.0]]), np.array([[9.0, 9.0]])]
        np.testing.assert_array_equal(
            merge_top_k_rows(items, scores, k=4), [[4, -1, -1, -1]]
        )

    def test_matches_unsharded_topk(self, rng):
        scores = rng.normal(size=(6, 40))
        expected = top_k_rows(scores, 7)
        split_points = [13, 29]
        blocks = np.split(scores, split_points, axis=1)
        offsets = [0] + split_points
        pages, page_scores = [], []
        for offset, block in zip(offsets, blocks):
            local = top_k_rows(block, 7)
            pages.append(np.where(local >= 0, local + offset, -1))
            page_scores.append(
                np.take_along_axis(block, np.clip(local, 0, None), axis=1)
            )
        np.testing.assert_array_equal(
            merge_top_k_rows(pages, page_scores, 7), expected
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            merge_top_k_rows([np.zeros((1, 2))], [np.zeros((1, 3))], k=2)
        with pytest.raises(ValueError):
            merge_top_k_rows([], [], k=2)

    def test_zero_k(self):
        out = merge_top_k_rows([np.zeros((2, 3))], [np.zeros((2, 3))], k=0)
        assert out.shape == (2, 0)


# ----------------------------------------------------------------------
# The fleet: user partition
# ----------------------------------------------------------------------
class TestShardRouterUsers:
    def test_bit_identical_to_single_process(self, router, service, tf_model):
        users = np.arange(min(150, tf_model.n_users))
        np.testing.assert_array_equal(
            router.recommend_batch(users, k=10),
            service.recommend_batch(users, k=10),
        )

    def test_cold_users_route_everywhere(self, router, service):
        users = [None, 10**9, None, None]
        histories = [
            [np.array([1, 2])], [np.array([3])], None,
            [np.array([5, 6]), np.array([7])],
        ]
        np.testing.assert_array_equal(
            router.recommend_batch(users, k=5, histories=histories),
            service.recommend_batch(users, k=5, histories=histories),
        )

    def test_single_request_convenience(self, router, service):
        np.testing.assert_array_equal(
            router.recommend(3, k=7), service.recommend(3, k=7)
        )

    def test_explicit_history_override(self, router, service):
        histories = [[np.array([0, 1])], None]
        np.testing.assert_array_equal(
            router.recommend_batch([2, 3], k=6, histories=histories),
            service.recommend_batch([2, 3], k=6, histories=histories),
        )

    def test_empty_batch(self, router):
        assert router.recommend_batch([], k=5).shape == (0, 5)

    def test_history_length_mismatch(self, router):
        with pytest.raises(ValueError, match="histories"):
            router.recommend_batch([1, 2], k=3, histories=[None])

    def test_stats_aggregate_across_shards(self, tf_model, split):
        with ShardRouter(
            tf_model, n_shards=2, history_log=split.train
        ) as fleet:
            fleet.recommend_batch(np.arange(40), k=5)
            stats = fleet.stats()
        assert stats["requests"] == 40
        assert len(stats["shards"]) == 2
        assert sum(s["requests"] for s in stats["shards"]) == 40
        assert stats["nodes_scored"] > 0

    def test_markov_model_identical(self, tf_markov_model, split):
        service = RecommenderService(tf_markov_model, history_log=split.train)
        with ShardRouter(
            tf_markov_model, n_shards=2, history_log=split.train
        ) as fleet:
            users = np.arange(60)
            np.testing.assert_array_equal(
                fleet.recommend_batch(users, k=8),
                service.recommend_batch(users, k=8),
            )

    def test_cascade_passthrough(self, tf_model, split):
        cascade = CascadeConfig(keep_fractions=(0.5, 0.5, 0.5))
        service = RecommenderService(
            tf_model, history_log=split.train, cascade=cascade
        )
        with ShardRouter(
            tf_model, n_shards=2, history_log=split.train, cascade=cascade
        ) as fleet:
            users = np.arange(30)
            np.testing.assert_array_equal(
                fleet.recommend_batch(users, k=5),
                service.recommend_batch(users, k=5),
            )


# ----------------------------------------------------------------------
# The fleet: item partition
# ----------------------------------------------------------------------
class TestShardRouterItems:
    def test_identical_to_single_process(self, tf_model, split, service):
        with ShardRouter(
            tf_model, n_shards=3, history_log=split.train, partition="items"
        ) as fleet:
            users = np.arange(80)
            np.testing.assert_array_equal(
                fleet.recommend_batch(users, k=10),
                service.recommend_batch(users, k=10),
            )

    def test_cold_rows_served_whole(self, tf_model, split, service):
        with ShardRouter(
            tf_model, n_shards=2, history_log=split.train, partition="items"
        ) as fleet:
            users = [0, None, 5, None]
            histories = [None, [np.array([2, 3])], None, None]
            np.testing.assert_array_equal(
                fleet.recommend_batch(users, k=6, histories=histories),
                service.recommend_batch(users, k=6, histories=histories),
            )

    def test_stats_count_user_rows_not_page_fanout(self, tf_model, split):
        # Each row fans out to every shard in item mode; `requests` must
        # still count end-user rows, not shard-local page work.
        with ShardRouter(
            tf_model, n_shards=3, history_log=split.train, partition="items"
        ) as fleet:
            fleet.recommend_batch(np.arange(50), k=5)
            stats = fleet.stats()
        assert stats["requests"] == 50
        # the raw per-shard payloads do describe the fan-out work
        assert sum(s["known_user_requests"] for s in stats["shards"]) == 150

    def test_cascade_combination_rejected(self, tf_model, split):
        with pytest.raises(ValueError, match="cascad"):
            ShardRouter(
                tf_model,
                n_shards=2,
                history_log=split.train,
                partition="items",
                cascade=CascadeConfig(keep_fractions=(0.5,)),
            )


# ----------------------------------------------------------------------
# Fleet-wide hot swap
# ----------------------------------------------------------------------
class TestFleetHotSwap:
    def _updated_snapshot(self, tf_model):
        updater = OnlineUpdater(tf_model, steps=2, seed=0)
        updater.apply_events(
            [PurchaseEvent(u, (u % tf_model.n_items,)) for u in range(24)]
        )
        return updater.snapshot()

    def test_swap_serves_new_model_everywhere(self, tf_model, split):
        snapshot = self._updated_snapshot(tf_model)
        reference = RecommenderService(
            snapshot, history_log=snapshot._train_log
        )
        with ShardRouter(
            tf_model, n_shards=2, history_log=split.train
        ) as fleet:
            generation = fleet.swap_model(snapshot)
            assert generation == 1
            assert fleet.generation == 1
            users = np.arange(50)
            np.testing.assert_array_equal(
                fleet.recommend_batch(users, k=8),
                reference.recommend_batch(users, k=8),
            )

    def test_swap_retires_old_generation_segments(self, tf_model, split):
        with ShardRouter(
            tf_model, n_shards=2, history_log=split.train
        ) as fleet:
            old_names = [
                spec.name for spec in fleet._shared.handle.arrays.values()
            ]
            fleet.swap_model(tf_model)
            if os.path.isdir("/dev/shm"):
                for name in old_names:
                    assert not os.path.exists(f"/dev/shm/{name}")

    def test_swap_under_concurrent_load(self, tf_model, split):
        snapshot = self._updated_snapshot(tf_model)
        candidates = [tf_model, snapshot]
        references = [
            RecommenderService(tf_model, history_log=split.train),
            RecommenderService(snapshot, history_log=snapshot._train_log),
        ]
        with ShardRouter(
            tf_model, n_shards=2, history_log=split.train
        ) as fleet:
            errors: list = []
            served = [0]
            stop = threading.Event()

            def hammer() -> None:
                users = np.arange(32)
                while not stop.is_set():
                    try:
                        out = fleet.recommend_batch(users, k=10)
                        if out.shape != (32, 10) or (out < 0).any():
                            raise AssertionError("short page served")
                        served[0] += 1
                    except BaseException as exc:  # pragma: no cover
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=hammer) for _ in range(2)]
            for thread in threads:
                thread.start()
            stale = 0
            for round_ in range(6):
                live = candidates[round_ % 2]
                fleet.swap_model(live)
                page = fleet.recommend(0, k=10)
                expected = references[round_ % 2].recommend(0, k=10)
                if not np.array_equal(page, expected):
                    stale += 1
            stop.set()
            for thread in threads:
                thread.join()
            assert not errors
            assert stale == 0
            assert served[0] > 0
            assert fleet.swaps == 6

    def test_swap_with_unchanged_history_skips_repickle(self, tf_model, split):
        # Same history object the fleet already serves: the payload must
        # ship no log, and the swapped fleet must serve identically.
        with ShardRouter(
            tf_model, n_shards=2, history_log=split.train
        ) as fleet:
            before = fleet.recommend_batch(np.arange(30), k=5)
            sent = []
            original_send = type(fleet._links[0]).send

            def spy(link, kind, payload):
                if kind == "swap":
                    sent.append(payload)
                return original_send(link, kind, payload)

            for link in fleet._links:
                link.send = spy.__get__(link)
            fleet.swap_model(tf_model, history_log=split.train)
            assert sent and all(p.reuse_history for p in sent)
            assert all(p.history_log is None for p in sent)
            np.testing.assert_array_equal(
                fleet.recommend_batch(np.arange(30), k=5), before
            )

    def test_partial_swap_failure_fails_stop(self, tf_model, split):
        fleet = ShardRouter(tf_model, n_shards=2, history_log=split.train)
        try:
            fleet._links[1].process.terminate()
            fleet._links[1].process.join(timeout=5)
            with pytest.raises(ShardingError, match="closed|down|died"):
                fleet.swap_model(tf_model)
            # fail-stop: the router refuses all further traffic
            with pytest.raises(ShardingError, match="closed"):
                fleet.recommend_batch([0], k=3)
        finally:
            fleet.close()

    def test_hot_swapper_publishes_to_fleet(self, tf_model, split, tmp_path):
        snapshot = self._updated_snapshot(tf_model)
        with ShardRouter(
            tf_model, n_shards=2, history_log=split.train
        ) as fleet:
            swapper = HotSwapper(fleet, store=CheckpointStore(tmp_path))
            version = swapper.publish(snapshot)
            assert version == 1
            assert swapper.swaps == 1
            assert fleet.generation == 1
            reference = RecommenderService(
                snapshot, history_log=snapshot._train_log
            )
            np.testing.assert_array_equal(
                fleet.recommend_batch(np.arange(20), k=5),
                reference.recommend_batch(np.arange(20), k=5),
            )


# ----------------------------------------------------------------------
# Lifecycle and failure modes
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_constructor_validation(self, tf_model, split):
        with pytest.raises(ValueError, match="n_shards"):
            ShardRouter(tf_model, n_shards=0, history_log=split.train)
        with pytest.raises(ValueError, match="partition"):
            ShardRouter(
                tf_model, n_shards=1, history_log=split.train,
                partition="nope",
            )

    def test_unfitted_model_rejected_before_spawn(self, dataset):
        from repro import TaxonomyFactorModel

        with pytest.raises(Exception):
            ShardRouter(TaxonomyFactorModel(dataset.taxonomy), n_shards=1)

    def test_closed_router_raises(self, tf_model, split):
        fleet = ShardRouter(tf_model, n_shards=1, history_log=split.train)
        fleet.close()
        fleet.close()  # idempotent
        with pytest.raises(ShardingError, match="closed"):
            fleet.recommend_batch([0], k=3)

    def test_close_releases_shared_memory(self, tf_model, split):
        fleet = ShardRouter(tf_model, n_shards=1, history_log=split.train)
        names = [spec.name for spec in fleet._shared.handle.arrays.values()]
        fleet.close()
        if os.path.isdir("/dev/shm"):
            for name in names:
                assert not os.path.exists(f"/dev/shm/{name}")

    def test_explicit_popularity_forwarded(self, tf_model, split):
        boosted = PopularityModel.from_counts(
            np.arange(tf_model.n_items)[::-1].copy()
        )
        service = RecommenderService(
            tf_model, history_log=split.train, popularity=boosted
        )
        with ShardRouter(
            tf_model, n_shards=2, history_log=split.train, popularity=boosted
        ) as fleet:
            np.testing.assert_array_equal(
                fleet.recommend_batch([None], k=5),
                service.recommend_batch([None], k=5),
            )


class TestServeShardedCLI:
    def test_round_trip_with_verify(self, tmp_path):
        from repro.cli import main

        data_dir = tmp_path / "data"
        assert main([
            "generate", "--out-dir", str(data_dir), "--users", "200",
            "--seed", "5",
        ]) == 0
        bundle = tmp_path / "bundle"
        assert main([
            "train", "--data-dir", str(data_dir), "--model", str(bundle),
            "--factors", "8", "--epochs", "2",
        ]) == 0
        out = tmp_path / "recs.jsonl"
        assert main([
            "serve-sharded", "--data-dir", str(data_dir), "--model",
            str(bundle), "--users", "0:40", "--shards", "2", "--verify",
            "--out", str(out),
        ]) == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 40
        import json

        first = json.loads(lines[0])
        assert first["user"] == 0 and len(first["items"]) == 10

        # Pruned retrieval through the same command: --verify enforces
        # equality against the single-process service, and the rankings
        # must match the exact fleet's byte for byte.
        pruned_out = tmp_path / "recs_pruned.jsonl"
        assert main([
            "serve-sharded", "--data-dir", str(data_dir), "--model",
            str(bundle), "--users", "0:40", "--shards", "2", "--verify",
            "--partition", "items", "--retrieval", "pruned",
            "--out", str(pruned_out),
        ]) == 0
        assert pruned_out.read_text() == out.read_text()
