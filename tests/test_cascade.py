"""Tests for cascaded inference (Sec. 5.1)."""

import numpy as np
import pytest

from repro.core.cascade import (
    CascadedRecommender,
    leaf_only_cascade,
    uniform_cascade,
)
from repro.core.tf_model import TaxonomyFactorModel
from repro.data.transactions import TransactionLog
from repro.taxonomy.generator import complete_taxonomy
from repro.utils.config import CascadeConfig, TrainConfig


@pytest.fixture(scope="module")
def model():
    taxonomy = complete_taxonomy((3, 3), items_per_leaf=3)  # 27 items
    rng = np.random.default_rng(0)
    rows = [
        [[int(rng.integers(0, 27))] for _ in range(2)] for _ in range(60)
    ]
    log = TransactionLog(rows, n_items=27)
    return TaxonomyFactorModel(
        taxonomy, TrainConfig(factors=4, epochs=4, taxonomy_levels=3, seed=0)
    ).fit(log)


class TestExactness:
    def test_full_fractions_equal_exact_ranking(self, model):
        cascade = CascadedRecommender(model, CascadeConfig())
        result = cascade.rank(0)
        assert result.items.size == model.n_items
        exact = model.score_items(0)
        np.testing.assert_allclose(
            result.full_scores(model.n_items), exact
        )

    def test_full_fractions_top_k_matches_recommend(self, model):
        cascade = CascadedRecommender(model, CascadeConfig())
        top = cascade.recommend(5, k=5)
        exact = model.recommend(5, k=5, exclude_purchased=False)
        assert top.tolist() == exact.tolist()


class TestPruning:
    def test_pruning_reduces_work(self, model):
        full = CascadedRecommender(model, CascadeConfig()).rank(0)
        pruned = uniform_cascade(model, 0.34).rank(0)
        assert pruned.nodes_scored < full.nodes_scored
        assert pruned.items.size < full.items.size

    def test_surviving_scores_match_exact(self, model):
        result = uniform_cascade(model, 0.34).rank(3)
        exact = model.score_items(3)
        np.testing.assert_allclose(result.scores, exact[result.items])

    def test_pruned_items_get_minus_inf(self, model):
        result = uniform_cascade(model, 0.34).rank(3)
        full = result.full_scores(model.n_items)
        pruned = np.setdiff1d(np.arange(model.n_items), result.items)
        assert np.all(np.isneginf(full[pruned]))

    def test_min_keep_respected(self, model):
        config = CascadeConfig(keep_fractions=(0.01, 0.01), min_keep=2)
        result = CascadedRecommender(model, config).rank(0)
        assert result.frontier_sizes[1] >= 2 * 3  # >= min_keep parents

    def test_work_measured_in_frontier_sizes(self, model):
        result = uniform_cascade(model, 0.5).rank(0)
        assert result.nodes_scored == sum(result.frontier_sizes)

    def test_leaf_only_cascade_keeps_upper_levels(self, model):
        result = leaf_only_cascade(model, 0.34).rank(0)
        # Level 1 (3 nodes) and level 2 (9 nodes) fully expanded.
        assert result.frontier_sizes[0] == 3
        assert result.frontier_sizes[1] == 9

    def test_fraction_one_by_leaf_only_is_exact(self, model):
        result = leaf_only_cascade(model, 1.0).rank(2)
        np.testing.assert_allclose(
            result.full_scores(model.n_items), model.score_items(2)
        )


class TestAccuracyTradeoff:
    def test_larger_k_never_decreases_survivors(self, model):
        sizes = [
            uniform_cascade(model, f).rank(0).items.size
            for f in (0.34, 0.67, 1.0)
        ]
        assert sizes == sorted(sizes)

    def test_top1_usually_survives_moderate_pruning(self, model):
        hits = 0
        users = range(20)
        for user in users:
            exact_top = model.recommend(user, k=1, exclude_purchased=False)[0]
            survivors = uniform_cascade(model, 0.67).rank(user).items
            hits += int(exact_top in survivors)
        assert hits >= 14  # most of the time

    def test_naive_cost(self, model):
        cascade = CascadedRecommender(model, CascadeConfig())
        assert cascade.naive_cost() == model.n_items

    def test_result_top_k(self, model):
        result = uniform_cascade(model, 1.0).rank(0)
        assert result.top_k(4).size == 4
        assert result.seconds >= 0
