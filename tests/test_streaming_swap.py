"""CheckpointStore versioning, HotSwapper publication, pipeline runs."""

import threading

import numpy as np
import pytest

from repro.serving.bundle import ModelBundle
from repro.serving.service import RecommenderService
from repro.streaming.events import PurchaseEvent, events_from_transactions
from repro.streaming.pipeline import StreamingPipeline
from repro.streaming.swap import CheckpointError, CheckpointStore, HotSwapper
from repro.streaming.updater import OnlineUpdater


class TestCheckpointStore:
    def test_versions_increment(self, tf_model, tmp_path):
        store = CheckpointStore(tmp_path / "ckpts")
        assert store.versions() == []
        assert store.latest_version() is None
        assert store.save(tf_model) == 1
        assert store.save(tf_model) == 2
        assert store.versions() == [1, 2]
        assert store.latest_version() == 2

    def test_load_roundtrip(self, tf_model, tmp_path):
        store = CheckpointStore(tmp_path / "ckpts")
        version = store.save(tf_model, extra={"note": "first"})
        bundle = store.load(version)
        assert bundle.extra["note"] == "first"
        assert bundle.extra["checkpoint_version"] == 1
        np.testing.assert_array_equal(
            bundle.model.factor_set.w, tf_model.factor_set.w
        )
        latest = store.load()
        assert latest.extra["checkpoint_version"] == 1

    def test_load_missing(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpts")
        with pytest.raises(CheckpointError, match="no checkpoints"):
            store.load()
        store.directory.mkdir()
        with pytest.raises(CheckpointError, match="no checkpoints"):
            store.load()

    def test_stale_latest_pointer_recovers(self, tf_model, tmp_path):
        store = CheckpointStore(tmp_path / "ckpts")
        store.save(tf_model)
        store.save(tf_model)
        # Simulate a crash between the bundle write and the pointer update.
        (store.directory / "LATEST").write_text("1\n")
        assert store.latest_version() == 2
        assert store.save(tf_model) == 3

    def test_corrupt_latest_pointer_recovers(self, tf_model, tmp_path):
        store = CheckpointStore(tmp_path / "ckpts")
        store.save(tf_model)
        (store.directory / "LATEST").write_text("garbage")
        assert store.latest_version() == 1

    def test_keep_prunes_old_versions(self, tf_model, tmp_path):
        store = CheckpointStore(tmp_path / "ckpts", keep=2)
        for _ in range(4):
            store.save(tf_model)
        assert store.versions() == [3, 4]
        assert not store.path_of(1).exists()

    def test_keep_validated(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointStore(tmp_path, keep=0)


class TestHotSwapper:
    def test_publish_swaps_service(self, tf_model, tmp_path):
        service = RecommenderService(tf_model)
        updater = OnlineUpdater(tf_model, steps=8, seed=0)
        updater.apply_events([PurchaseEvent(0, (7,))] * 10)
        snapshot = updater.snapshot()
        swapper = HotSwapper(service, store=CheckpointStore(tmp_path / "c"))
        version = swapper.publish(snapshot)
        assert version == 1
        assert swapper.swaps == 1
        assert swapper.versions == [1]
        assert service.model is not tf_model
        assert np.array_equal(
            service.recommend(0, k=5), snapshot.recommend(0, k=5)
        )

    def test_publish_without_store(self, tf_model):
        service = RecommenderService(tf_model)
        swapper = HotSwapper(service)
        assert swapper.publish(tf_model) is None
        assert swapper.swaps == 1

    def test_published_checkpoint_is_recoverable(self, tf_model, tmp_path):
        service = RecommenderService(tf_model)
        swapper = HotSwapper(service, store=CheckpointStore(tmp_path / "c"))
        swapper.publish(tf_model, extra={"streamed_events": 42})
        bundle = ModelBundle.load(tmp_path / "c" / "v0001")
        assert bundle.extra["streamed_events"] == 42


class TestStreamingPipeline:
    def test_run_publishes_periodically_and_at_end(self, tf_model, split):
        service = RecommenderService(tf_model, history_log=split.train)
        pipeline = StreamingPipeline(
            service, batch_size=50, swap_every=2,
            updater=OnlineUpdater(tf_model, steps=2, seed=0),
        )
        stats = pipeline.run(
            events_from_transactions(split.test), max_events=250
        )
        assert stats.events == 250
        assert stats.batches == 5
        # Two periodic publishes (after batches 2 and 4) plus the final one.
        assert pipeline.swaps == 3
        assert service.stats.swaps == 3

    def test_no_duplicate_publish_when_stream_ends_on_boundary(
        self, tf_model, split, tmp_path
    ):
        """A batch count that is a multiple of swap_every must not publish
        a duplicate checkpoint at the end of the stream."""
        store = CheckpointStore(tmp_path / "c")
        service = RecommenderService(tf_model, history_log=split.train)
        pipeline = StreamingPipeline(
            service, batch_size=50, swap_every=2, store=store,
            updater=OnlineUpdater(tf_model, steps=2, seed=0),
        )
        pipeline.run(events_from_transactions(split.test), max_events=200)
        # 4 batches: publishes at 2 and 4, no trailing duplicate.
        assert pipeline.swaps == 2
        assert store.versions() == [1, 2]

    def test_empty_stream_publishes_nothing(self, tf_model):
        service = RecommenderService(tf_model)
        pipeline = StreamingPipeline(
            service, updater=OnlineUpdater(tf_model, steps=2, seed=0)
        )
        stats = pipeline.run([])
        assert stats.events == 0
        assert pipeline.swaps == 0
        assert service.stats.swaps == 0

    def test_swap_every_zero_publishes_once(self, tf_model, split):
        service = RecommenderService(tf_model, history_log=split.train)
        pipeline = StreamingPipeline(
            service, batch_size=50, swap_every=0,
            updater=OnlineUpdater(tf_model, steps=2, seed=0),
        )
        pipeline.run(events_from_transactions(split.test), max_events=200)
        assert pipeline.swaps == 1

    def test_served_model_reflects_streamed_events(self, tf_model, split):
        service = RecommenderService(tf_model, history_log=split.train)
        pipeline = StreamingPipeline(
            service, batch_size=64, swap_every=1,
            updater=OnlineUpdater(tf_model, steps=4, seed=0),
        )
        pipeline.run(events_from_transactions(split.test), max_events=128)
        # The served history now covers streamed purchases: a user's
        # streamed items must be excluded from their recommendations.
        streamed = [
            e for e in events_from_transactions(split.test)
        ][:128]
        user = streamed[0].user
        top = service.recommend(user, k=service.model.n_items)
        assert not np.isin(top, service.history_log.user_items(user)).any()

    def test_validates_parameters(self, tf_model):
        service = RecommenderService(tf_model)
        with pytest.raises(ValueError, match="batch_size"):
            StreamingPipeline(service, batch_size=0)
        with pytest.raises(ValueError, match="swap_every"):
            StreamingPipeline(service, swap_every=-1)


class TestPeriodicRefinement:
    def test_refinement_publishes_tree_and_factors_together(
        self, tf_model, split
    ):
        """Every published generation must be self-consistent: the served
        state's taxonomy version always equals the updater model's at
        publish time, even while refinement rewrites the tree."""
        service = RecommenderService(tf_model, history_log=split.train)
        pipeline = StreamingPipeline(
            service, batch_size=50, swap_every=2, refine_every=2,
            refine_min_gain=0.0, refine_max_moves=2,
            updater=OnlineUpdater(tf_model, steps=2, seed=0),
        )
        pipeline.run(events_from_transactions(split.test), max_events=250)
        assert pipeline.swaps == 3
        served = service.taxonomy_version
        assert served == pipeline.updater.model.taxonomy.version
        if pipeline.refinements:
            assert served.revision >= 1
            assert served.digest != tf_model.taxonomy.digest
        # The base model handed in by the caller is never mutated.
        assert tf_model.taxonomy.revision == 0

    def test_refine_every_zero_never_refines(self, tf_model, split):
        service = RecommenderService(tf_model, history_log=split.train)
        pipeline = StreamingPipeline(
            service, batch_size=50, swap_every=2, refine_every=0,
            updater=OnlineUpdater(tf_model, steps=2, seed=0),
        )
        pipeline.run(events_from_transactions(split.test), max_events=200)
        assert pipeline.refinements == 0
        assert service.taxonomy_version.revision == 0

    def test_validates_refine_parameters(self, tf_model):
        service = RecommenderService(tf_model)
        with pytest.raises(ValueError, match="refine_every"):
            StreamingPipeline(service, refine_every=-1)


class TestZeroDowntimeServing:
    def test_requests_succeed_during_continuous_swaps(self, tf_model):
        """Serving threads hammer the service while the main thread swaps
        repeatedly: every request must succeed and return a full page."""
        service = RecommenderService(tf_model)
        updater = OnlineUpdater(tf_model, steps=2, seed=0)
        updater.apply_events([PurchaseEvent(0, (1,))])
        snapshots = [tf_model, updater.snapshot()]

        errors = []
        served = []
        stop = threading.Event()

        def hammer():
            users = np.arange(8)
            while not stop.is_set():
                try:
                    out = service.recommend_batch(users, k=5)
                    assert out.shape == (8, 5)
                    assert (out >= 0).all()
                    served.append(1)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for i in range(30):
            service.swap_model(snapshots[i % 2])
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(served) > 0
        assert service.stats.swaps == 30
