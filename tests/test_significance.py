"""Tests for the statistical significance helpers."""

import numpy as np
import pytest

from repro.eval.protocol import EvalResult, evaluate_model
from repro.eval.significance import (
    compare_models,
    paired_bootstrap,
    sign_test,
)


def make_result(aucs, ranks=None):
    aucs = np.asarray(aucs, dtype=np.float64)
    if ranks is None:
        ranks = 100.0 * (1.0 - aucs)
    return EvalResult(
        auc=float(np.nanmean(aucs)),
        mean_rank=float(np.nanmean(ranks)),
        n_users=int(np.sum(~np.isnan(aucs))),
        per_user_auc=aucs,
        per_user_rank=np.asarray(ranks, dtype=np.float64),
    )


class TestPairedBootstrap:
    def test_clear_winner_is_significant(self, rng):
        a = make_result(rng.uniform(0.8, 0.9, size=200))
        b = make_result(rng.uniform(0.6, 0.7, size=200))
        result = paired_bootstrap(a, b, seed=0)
        assert result.mean_difference > 0.1
        assert result.significant
        assert result.p_sign_flip < 0.01

    def test_identical_models_not_significant(self, rng):
        values = rng.uniform(0.5, 0.9, size=200)
        noise_a = values + rng.normal(0, 0.05, size=200)
        noise_b = values + rng.normal(0, 0.05, size=200)
        result = paired_bootstrap(make_result(noise_a), make_result(noise_b), seed=0)
        assert not result.significant

    def test_ci_contains_mean(self, rng):
        a = make_result(rng.uniform(0.7, 0.9, size=100))
        b = make_result(rng.uniform(0.6, 0.8, size=100))
        result = paired_bootstrap(a, b, seed=0)
        assert result.ci_low <= result.mean_difference <= result.ci_high

    def test_nan_users_dropped(self):
        a = make_result([0.9, np.nan, 0.8, 0.7])
        b = make_result([0.5, 0.6, np.nan, 0.6])
        result = paired_bootstrap(a, b, seed=0)
        assert result.n_users == 2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="user sets"):
            paired_bootstrap(make_result([0.5, 0.6]), make_result([0.5]))

    def test_missing_arrays_rejected(self):
        bare = EvalResult(auc=0.5, mean_rank=10.0, n_users=3)
        with pytest.raises(ValueError, match="per-user"):
            paired_bootstrap(bare, bare)


class TestSignTest:
    def test_counts_wins_losses_ties(self):
        a = make_result([0.9, 0.8, 0.5, 0.4])
        b = make_result([0.5, 0.5, 0.5, 0.5])
        result = sign_test(a, b)
        assert result.wins == 2
        assert result.losses == 1
        assert result.ties == 1

    def test_dominant_model_significant(self, rng):
        a = make_result(rng.uniform(0.8, 0.9, size=100))
        b = make_result(rng.uniform(0.5, 0.7, size=100))
        assert sign_test(a, b).significant

    def test_mean_rank_lower_is_win(self):
        a = make_result([0.5, 0.5], ranks=[5.0, 10.0])
        b = make_result([0.5, 0.5], ranks=[20.0, 30.0])
        result = sign_test(a, b, metric="mean_rank")
        assert result.wins == 2

    def test_all_ties_p_one(self):
        a = make_result([0.5, 0.5])
        result = sign_test(a, a)
        assert result.p_value == 1.0
        assert not result.significant


class TestEndToEnd:
    def test_tf_vs_mf_is_significant(self, tf_model, mf_model, split):
        """The headline comparison must survive the noise tests."""
        tf_result = evaluate_model(tf_model, split)
        mf_result = evaluate_model(mf_model, split)
        boot = paired_bootstrap(tf_result, mf_result, seed=0)
        assert boot.mean_difference > 0
        assert boot.significant
        sign = sign_test(tf_result, mf_result)
        assert sign.wins > sign.losses

    def test_compare_models_renders(self, tf_model, mf_model, split):
        tf_result = evaluate_model(tf_model, split)
        mf_result = evaluate_model(mf_model, split)
        line = compare_models(tf_result, mf_result)
        assert "Δauc=" in line and "sign-test" in line
