"""Tests for the small ranking utilities in repro.eval.ranking."""

import numpy as np
import pytest

from repro.eval.ranking import batched, rank_of, ranks_of, top_k


class TestTopK:
    SCORES = np.array([0.1, 0.9, 0.5, 0.7, 0.3])

    def test_descending_order(self):
        assert top_k(self.SCORES, 3).tolist() == [1, 3, 2]

    def test_k_zero(self):
        assert top_k(self.SCORES, 0).size == 0

    def test_k_beyond_size(self):
        assert top_k(self.SCORES, 99).size == 5

    def test_exclusion(self):
        top = top_k(self.SCORES, 2, exclude=np.array([1]))
        assert top.tolist() == [3, 2]

    def test_empty_exclusion(self):
        assert top_k(self.SCORES, 2, exclude=np.array([], dtype=np.int64)).tolist() == [1, 3]

    def test_input_not_mutated_by_exclusion(self):
        scores = self.SCORES.copy()
        top_k(scores, 2, exclude=np.array([1]))
        np.testing.assert_array_equal(scores, self.SCORES)


class TestRankOf:
    def test_best_is_one(self):
        assert rank_of(np.array([0.2, 0.9, 0.1]), 1) == 1.0

    def test_tie_averaged(self):
        assert rank_of(np.array([0.5, 0.5, 0.1]), 0) == 1.5

    def test_ranks_of_multiple(self):
        ranks = ranks_of(np.array([0.2, 0.9, 0.1]), [0, 2])
        assert ranks.tolist() == [2.0, 3.0]


class TestBatched:
    def test_splits_evenly(self):
        assert batched(list(range(6)), 2) == [[0, 1], [2, 3], [4, 5]]

    def test_last_chunk_short(self):
        assert batched(list(range(5)), 2) == [[0, 1], [2, 3], [4]]

    def test_batch_larger_than_input(self):
        assert batched([1, 2], 10) == [[1, 2]]

    def test_empty_input(self):
        assert batched([], 4) == []

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            batched([1], 0)

    def test_numpy_input_preserved(self):
        chunks = batched(np.arange(5), 3)
        assert isinstance(chunks[0], np.ndarray)
        assert chunks[0].tolist() == [0, 1, 2]


class TestLoggingHelpers:
    def test_get_logger_namespaced(self):
        from repro.utils.logging import get_logger

        assert get_logger("taxonomy").name == "repro.taxonomy"
        assert get_logger("repro.core").name == "repro.core"

    def test_enable_console_logging_idempotent(self):
        from repro.utils.logging import enable_console_logging

        logger = enable_console_logging()
        n_handlers = len(logger.handlers)
        enable_console_logging()
        assert len(logger.handlers) == n_handlers


class TestGridEdgeCases:
    def test_expand_grid_preserves_value_types(self):
        from repro.eval.model_selection import expand_grid

        grid = expand_grid({"factors": [8], "shuffle": [True, False]})
        assert {"factors": 8, "shuffle": True} in grid
        assert all(isinstance(g["shuffle"], bool) for g in grid)

    def test_sibling_min_level_validation(self):
        from repro.utils.config import TrainConfig

        with pytest.raises(ValueError):
            TrainConfig(sibling_min_level=-1)
        assert TrainConfig(sibling_min_level=0).sibling_min_level == 0
