"""Tests for ExperimentSpec serialization, the runner, and sweep/run CLI."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro import (
    ExperimentRunner,
    ExperimentSpec,
    apply_overrides,
    load_spec,
    save_spec,
    sweep,
)
from repro.cli import main
from repro.train.runner import sweep_table, warm_stream_split
from repro.utils.config import _toml_reader, spec_from_dict, spec_to_dict

needs_toml = pytest.mark.skipif(
    _toml_reader() is None,
    reason="needs tomllib (Python >= 3.11) or the tomli backport",
)

SPEC_DIR = Path(__file__).parent.parent / "examples" / "specs"

#: A spec small enough to train in well under a second.
SMOKE = {
    "name": "smoke",
    "model": "tf",
    "data": {"synthetic": {"n_users": 250, "seed": 7}},
    "train": {"factors": 6, "epochs": 2, "seed": 0},
    "eval": {"k": 5},
}


def smoke_spec(**extra):
    payload = json.loads(json.dumps(SMOKE))
    payload.update(extra)
    return spec_from_dict(payload)


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
class TestSpecSerialization:
    def test_json_round_trip(self, tmp_path):
        spec = smoke_spec(compare=["mf"], output=str(tmp_path / "bundle"))
        path = save_spec(spec, tmp_path / "spec.json")
        assert spec_to_dict(load_spec(path)) == spec_to_dict(spec)

    @needs_toml
    def test_toml_round_trip(self, tmp_path):
        spec = smoke_spec(compare=["mf", "bpr-mf"])
        path = save_spec(spec, tmp_path / "spec.toml")
        loaded = load_spec(path)
        # None fields are elided from TOML and refilled from defaults.
        assert spec_to_dict(loaded) == spec_to_dict(spec)

    def test_partial_dict_uses_defaults(self):
        spec = spec_from_dict({"train": {"factors": 4}})
        assert spec.train.factors == 4
        assert spec.train.epochs == 10  # TrainConfig default
        assert spec.trainer.backend == "serial"
        assert spec.data.source == "synthetic"

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="factorz"):
            spec_from_dict({"train": {"factorz": 4}})
        with pytest.raises(ValueError, match="data.synthetic"):
            spec_from_dict({"data": {"synthetic": {"bogus": 1}}})

    def test_invalid_model_kind_rejected(self):
        with pytest.raises(ValueError, match="model kind"):
            spec_from_dict({"model": "svd"})
        with pytest.raises(ValueError, match="model kind"):
            spec_from_dict({"compare": ["nope"]})

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            spec_from_dict({"trainer": {"backend": "gpu"}})

    def test_apply_overrides_coerces_and_validates(self):
        spec = smoke_spec()
        out = apply_overrides(
            spec,
            {
                "train.factors": "12",
                "train.use_bias": "false",
                "compare": '["mf"]',
                "trainer.backend": "threaded",
            },
        )
        assert out.train.factors == 12
        assert out.train.use_bias is False
        assert out.compare == ["mf"]
        assert out.trainer.backend == "threaded"
        # The base spec is untouched.
        assert spec.train.factors == 6
        with pytest.raises(ValueError, match="unknown spec path"):
            apply_overrides(spec, {"train.bogus": 1})
        with pytest.raises(ValueError, match="unknown spec path"):
            apply_overrides(spec, {"nope.deep.path": 1})

    def test_shipped_specs_load(self):
        tf_vs_mf = load_spec(SPEC_DIR / "tf_vs_mf.json")
        assert tf_vs_mf.variants() == ["tf", "mf"]

    @needs_toml
    def test_shipped_toml_spec_loads(self):
        threaded = load_spec(SPEC_DIR / "threaded_sweep.toml")
        assert threaded.trainer.backend == "threaded"
        assert threaded.train.sibling_ratio == 0.0

    def test_missing_spec_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_spec(tmp_path / "nope.json")


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
class TestExperimentRunner:
    def test_run_reports_metrics(self):
        report = ExperimentRunner(smoke_spec()).run()
        assert len(report.results) == 1
        metrics = report.primary.metrics
        assert 0.0 <= metrics["auc"] <= 1.0
        assert "hit_rate@5" in metrics
        assert report.primary.epochs_run == 2
        assert "smoke" in report.table()

    def test_compare_variants_share_data_and_split(self):
        report = ExperimentRunner(smoke_spec(compare=["mf"])).run()
        assert [r.variant for r in report.results] == ["tf", "mf"]
        table = report.table()
        assert "tf" in table and "mf" in table

    def test_tf_beats_mf_table2_style(self):
        """The paper's headline claim at laptop scale: the taxonomy model
        outranks flat MF on identical data, split, and budget."""
        spec = spec_from_dict({
            "name": "table2",
            "model": "tf",
            "compare": ["mf"],
            "data": {"synthetic": {"n_users": 800, "seed": 7}},
            "train": {"factors": 16, "epochs": 5,
                      "sibling_ratio": 0.5, "seed": 0},
        })
        report = ExperimentRunner(spec).run()
        tf, mf = report.results
        assert tf.metrics["auc"] > mf.metrics["auc"]

    def test_output_writes_bundles_per_variant(self, tmp_path):
        out = tmp_path / "bundles"
        spec = smoke_spec(compare=["mf"], output=str(out))
        report = ExperimentRunner(spec).run()
        for result in report.results:
            manifest = Path(result.bundle_path) / "manifest.json"
            assert manifest.exists()
            payload = json.loads(manifest.read_text())
            assert payload["extra"]["variant"] == result.variant
            assert payload["extra"]["experiment"] == "smoke"
        assert (out / "tf").is_dir() and (out / "mf").is_dir()

    def test_single_variant_output_is_direct(self, tmp_path):
        out = tmp_path / "bundle"
        ExperimentRunner(smoke_spec(output=str(out))).run()
        assert (out / "manifest.json").exists()

    def test_threaded_backend(self):
        spec = smoke_spec(trainer={"backend": "threaded", "n_workers": 2})
        report = ExperimentRunner(spec).run()
        assert report.primary.backend == "threaded"
        assert 0.0 <= report.primary.metrics["auc"] <= 1.0

    def test_backend_flip_drops_sibling_training(self):
        """Flipping a sibling-trained spec to the threaded backend must
        work without editing [train] (the README's advertised override)."""
        spec = apply_overrides(
            load_spec(SPEC_DIR / "tf_vs_mf.json"),
            {
                "data.synthetic.n_users": 250,
                "train.epochs": 2,
                "train.factors": 6,
                "trainer.backend": "threaded",
                "trainer.n_workers": 2,
            },
        )
        assert spec.train.sibling_ratio == 0.5  # spec untouched...
        report = ExperimentRunner(spec).run()
        assert report.primary.backend == "threaded"  # ...run reconciled

    def test_compare_checkpoints_per_variant(self, tmp_path):
        from repro.streaming.swap import CheckpointStore

        ckpts = tmp_path / "ckpts"
        spec = smoke_spec(
            compare=["mf"],
            trainer={"checkpoint_dir": str(ckpts), "checkpoint_every": 2},
        )
        ExperimentRunner(spec).run()
        # One store per variant: LATEST of each points at its own model.
        assert CheckpointStore(ckpts / "tf").versions() == [1]
        assert CheckpointStore(ckpts / "mf").versions() == [1]

    def test_online_backend_warm_then_stream(self):
        spec = smoke_spec(
            trainer={"backend": "online", "warm_fraction": 0.5,
                     "online_steps": 2, "online_batch_size": 64},
        )
        report = ExperimentRunner(spec).run()
        assert report.primary.backend == "online"
        assert report.primary.epochs_run == 1

    def test_files_source(self, tmp_path):
        assert main([
            "generate", "--out-dir", str(tmp_path), "--users", "200",
            "--seed", "3",
        ]) == 0
        spec = smoke_spec(
            data={"source": "files", "data_dir": str(tmp_path)}
        )
        report = ExperimentRunner(spec).run()
        assert report.primary.metrics["n_users"] > 0

    def test_spec_reproducibility(self):
        """Identical specs reproduce bit-identical factors end to end."""
        first = ExperimentRunner(smoke_spec()).run()
        second = ExperimentRunner(smoke_spec()).run()
        a = first.primary.trainer_result.model.factor_set
        b = second.primary.trainer_result.model.factor_set
        assert np.array_equal(a.user, b.user)
        assert np.array_equal(a.w, b.w)

    def test_warm_stream_split_partitions(self):
        from repro import SyntheticConfig, generate_dataset

        log = generate_dataset(SyntheticConfig(n_users=50, seed=0)).log
        warm, stream = warm_stream_split(log, 0.5)
        assert warm.n_purchases + stream.n_purchases == log.n_purchases
        # Every user with any history keeps at least one warm transaction.
        for user in range(log.n_users):
            if log.user_transactions(user):
                assert warm.user_transactions(user)


class TestSweep:
    def test_grid_expands_and_runs(self):
        cells = sweep(smoke_spec(), {"train.factors": [4, 6],
                                     "train.reg": [0.01, 0.1]})
        assert len(cells) == 4
        assert cells[0].overrides == {"train.factors": 4, "train.reg": 0.01}
        table = sweep_table(cells, k=5)
        assert "train.factors=4" in table
        assert all(
            0.0 <= cell.report.primary.metrics["auc"] <= 1.0 for cell in cells
        )

    def test_sweep_over_model_kind(self):
        cells = sweep(smoke_spec(), {"model": ["tf", "mf"]})
        assert [c.report.primary.variant for c in cells] == ["tf", "mf"]

    def test_sweep_output_bundles_do_not_collide(self, tmp_path):
        """Each cell saves into its own subdirectory of spec.output."""
        out = tmp_path / "bundles"
        cells = sweep(
            smoke_spec(output=str(out)), {"train.factors": [4, 6]}
        )
        paths = [Path(c.report.primary.bundle_path) for c in cells]
        assert paths[0] != paths[1]
        for path, factors in zip(paths, (4, 6)):
            manifest = json.loads((path / "manifest.json").read_text())
            assert manifest["config"]["factors"] == factors


# ----------------------------------------------------------------------
# CLI: run / sweep / --config (the acceptance path)
# ----------------------------------------------------------------------
class TestRunCommand:
    def test_shipped_tf_vs_mf_spec_end_to_end(self, capsys, tmp_path):
        """`python -m repro run` on the shipped spec reproduces the
        Table-2-style TF-vs-MF comparison (shrunk for test speed)."""
        out = tmp_path / "report.json"
        assert main([
            "run", "--config", str(SPEC_DIR / "tf_vs_mf.json"),
            "--set", "data.synthetic.n_users=400",
            "--set", "train.epochs=3",
            "--set", "train.factors=8",
            "--quiet", "--out", str(out),
        ]) == 0
        table = capsys.readouterr().out
        assert "table2-tf-vs-mf" in table
        assert "AUC" in table and "hitRate@10" in table
        lines = [l for l in table.splitlines() if l.startswith(("tf", "mf"))]
        assert len(lines) == 2
        payload = json.loads(out.read_text())
        variants = [r["variant"] for r in payload["results"]]
        assert variants == ["tf", "mf"]
        for result in payload["results"]:
            assert 0.0 <= result["metrics"]["auc"] <= 1.0

    def test_run_saves_bundles(self, capsys, tmp_path):
        spec_path = save_spec(
            smoke_spec(compare=["mf"]), tmp_path / "spec.json"
        )
        bundles = tmp_path / "bundles"
        assert main([
            "run", "--config", str(spec_path),
            "--bundle-out", str(bundles), "--quiet",
        ]) == 0
        assert (bundles / "tf" / "manifest.json").exists()
        assert (bundles / "mf" / "manifest.json").exists()
        assert "wrote bundle" in capsys.readouterr().out

    def test_run_rejects_bad_override(self, tmp_path):
        spec_path = save_spec(smoke_spec(), tmp_path / "spec.json")
        with pytest.raises(SystemExit, match="unknown spec path"):
            main(["run", "--config", str(spec_path),
                  "--set", "train.bogus=1"])

    def test_run_missing_config(self, tmp_path):
        with pytest.raises((SystemExit, FileNotFoundError)):
            main(["run", "--config", str(tmp_path / "nope.json")])


class TestSweepCommand:
    def test_sweep_prints_cells_and_writes_json(self, capsys, tmp_path):
        spec_path = save_spec(smoke_spec(), tmp_path / "spec.json")
        out = tmp_path / "sweep.json"
        assert main([
            "sweep", "--config", str(spec_path),
            "--grid", "train.factors=4,6", "--quiet", "--out", str(out),
        ]) == 0
        table = capsys.readouterr().out
        assert "train.factors=4" in table and "train.factors=6" in table
        payload = json.loads(out.read_text())
        assert len(payload) == 2
        assert payload[0]["overrides"] == {"train.factors": 4}

    def test_sweep_requires_grid(self, tmp_path):
        spec_path = save_spec(smoke_spec(), tmp_path / "spec.json")
        with pytest.raises(SystemExit, match="--grid"):
            main(["sweep", "--config", str(spec_path)])


class TestTrainConfigFlag:
    def test_train_with_config_and_flag_overrides(self, capsys, tmp_path):
        """--config supplies the spec; CLI flags override it (satellite)."""
        data_dir = tmp_path / "data"
        assert main([
            "generate", "--out-dir", str(data_dir), "--users", "200",
            "--seed", "3",
        ]) == 0
        spec_path = save_spec(
            smoke_spec(train={"factors": 6, "epochs": 2, "seed": 0}),
            tmp_path / "spec.json",
        )
        bundle = tmp_path / "bundle"
        assert main([
            "train", "--data-dir", str(data_dir), "--model", str(bundle),
            "--config", str(spec_path), "--factors", "4",
        ]) == 0
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["config"]["factors"] == 4  # flag wins
        assert manifest["config"]["epochs"] == 2  # spec retained
        assert "wrote bundle" in capsys.readouterr().out

    def test_train_backend_flag(self, capsys, tmp_path):
        data_dir = tmp_path / "data"
        assert main([
            "generate", "--out-dir", str(data_dir), "--users", "200",
            "--seed", "3",
        ]) == 0
        bundle = tmp_path / "bundle"
        assert main([
            "train", "--data-dir", str(data_dir), "--model", str(bundle),
            "--epochs", "2", "--factors", "4", "--sibling", "0",
            "--backend", "threaded", "--workers", "2",
        ]) == 0
        assert (bundle / "manifest.json").exists()

    def test_train_without_data_or_config_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="--data-dir"):
            main(["train", "--model", str(tmp_path / "bundle")])
