"""Property-based tests for cascaded inference and explanations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cascade import CascadedRecommender
from repro.core.explain import explain_score
from repro.core.tf_model import TaxonomyFactorModel
from repro.data.transactions import TransactionLog
from repro.taxonomy.generator import complete_taxonomy
from repro.utils.config import CascadeConfig, TrainConfig

TAXONOMY = complete_taxonomy((3, 3), items_per_leaf=3)  # 27 items


@pytest.fixture(scope="module")
def model():
    rng = np.random.default_rng(1)
    rows = [[[int(rng.integers(0, 27))] for _ in range(2)] for _ in range(50)]
    log = TransactionLog(rows, n_items=27)
    return TaxonomyFactorModel(
        TAXONOMY,
        TrainConfig(factors=4, epochs=3, taxonomy_levels=3, markov_order=1, seed=0),
    ).fit(log)


fractions = st.floats(min_value=0.05, max_value=1.0)


class TestCascadeProperties:
    @given(f1=fractions, f2=fractions, user=st.integers(0, 49))
    @settings(max_examples=40, deadline=None)
    def test_survivor_scores_always_match_exact(self, model, f1, f2, user):
        """Whatever is pruned, surviving items carry their exact scores."""
        cascade = CascadedRecommender(
            model, CascadeConfig(keep_fractions=(f1, f2))
        )
        result = cascade.rank(user)
        exact = model.score_items(user)
        np.testing.assert_allclose(result.scores, exact[result.items])

    @given(f1=fractions, f2=fractions, user=st.integers(0, 49))
    @settings(max_examples=40, deadline=None)
    def test_survivors_sorted_and_unique(self, model, f1, f2, user):
        result = CascadedRecommender(
            model, CascadeConfig(keep_fractions=(f1, f2))
        ).rank(user)
        assert len(set(result.items.tolist())) == result.items.size
        diffs = np.diff(result.scores)
        assert np.all(diffs <= 1e-12)

    @given(f=fractions, user=st.integers(0, 49))
    @settings(max_examples=40, deadline=None)
    def test_work_bounded_by_naive_plus_internal(self, model, f, user):
        cascade = CascadedRecommender(
            model, CascadeConfig(keep_fractions=(f, f))
        )
        result = cascade.rank(user)
        n_internal = TAXONOMY.n_nodes - TAXONOMY.n_items - 1  # minus root
        assert result.nodes_scored <= TAXONOMY.n_items + n_internal

    @given(user=st.integers(0, 49))
    @settings(max_examples=20, deadline=None)
    def test_full_cascade_covers_everything(self, model, user):
        result = CascadedRecommender(model, CascadeConfig()).rank(user)
        assert result.items.size == TAXONOMY.n_items


class TestExplanationProperties:
    @given(user=st.integers(0, 49), item=st.integers(0, 26))
    @settings(max_examples=50, deadline=None)
    def test_decomposition_always_exact(self, model, user, item):
        explanation = explain_score(model, user, item)
        expected = model.score_items(user)[item]
        assert explanation.score == pytest.approx(expected, abs=1e-9)

    @given(user=st.integers(0, 49), item=st.integers(0, 26))
    @settings(max_examples=50, deadline=None)
    def test_levels_cover_item_chain(self, model, user, item):
        explanation = explain_score(model, user, item)
        chain_nodes = [node for node, _ in explanation.long_term_by_level]
        expected_chain = TAXONOMY.path_to_root(TAXONOMY.node_of_item(item))[:3]
        assert chain_nodes == expected_chain
