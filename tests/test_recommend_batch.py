"""``recommend_batch`` must agree with stacked per-user ``recommend``."""

import numpy as np
import pytest

from repro.core.popularity import PopularityModel, RandomModel
from repro.core.topk import top_k_rows
from repro.serving.protocol import Recommender


def _rows_equal(batch_row, per_user):
    returned = batch_row[batch_row >= 0]
    return np.array_equal(returned, per_user) and np.all(
        batch_row[len(per_user):] == -1
    )


class TestTopKRows:
    def test_orders_descending(self):
        scores = np.array([[1.0, 3.0, 2.0], [0.5, 0.1, 0.9]])
        top = top_k_rows(scores, 2)
        assert top.tolist() == [[1, 2], [2, 0]]

    def test_pads_non_finite(self):
        scores = np.array([[1.0, -np.inf, -np.inf]])
        assert top_k_rows(scores, 3).tolist() == [[0, -1, -1]]

    def test_width_clamped_to_candidates(self):
        assert top_k_rows(np.ones((2, 3)), 10).shape == (2, 3)

    def test_zero_k(self):
        assert top_k_rows(np.ones((2, 3)), 0).shape == (2, 0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-d"):
            top_k_rows(np.ones(3), 2)


class TestFactorModelBatch:
    @pytest.mark.parametrize("fixture", ["tf_model", "tf_markov_model", "mf_model"])
    def test_matches_per_user(self, fixture, request):
        model = request.getfixturevalue(fixture)
        users = np.arange(40)
        batch = model.recommend_batch(users, k=8)
        assert batch.shape == (40, 8)
        for row, user in enumerate(users):
            assert _rows_equal(batch[row], model.recommend(int(user), k=8))

    def test_history_override(self, tf_markov_model, dataset):
        history = [dataset.log.basket(3, 0)]
        batch = tf_markov_model.recommend_batch(
            np.array([5]), k=6, histories=[history]
        )
        per_user = tf_markov_model.recommend(5, k=6, history=history)
        assert _rows_equal(batch[0], per_user)

    def test_per_row_exclude(self, tf_model):
        banned = tf_model.recommend(0, k=3)
        batch = tf_model.recommend_batch(
            np.array([0, 1]), k=5, exclude=[banned, None]
        )
        assert not np.isin(batch[0], banned).any()
        assert _rows_equal(batch[1], tf_model.recommend(1, k=5))

    def test_without_purchase_exclusion(self, tf_model):
        users = np.arange(10)
        batch = tf_model.recommend_batch(users, k=5, exclude_purchased=False)
        for row, user in enumerate(users):
            per_user = tf_model.recommend(int(user), k=5, exclude_purchased=False)
            assert _rows_equal(batch[row], per_user)

    def test_satisfies_protocol(self, tf_model, mf_model):
        assert isinstance(tf_model, Recommender)
        assert isinstance(mf_model, Recommender)


class TestBaselineBatch:
    def test_popularity_matches_per_user(self, split):
        model = PopularityModel().fit(split.train)
        users = np.arange(15)
        batch = model.recommend_batch(users, k=7)
        expected = model.recommend(0, k=7)
        assert batch.shape == (15, 7)
        for row in batch:
            assert np.array_equal(row, expected)
        assert isinstance(model, Recommender)

    def test_random_matches_per_user_stream(self, split):
        users = np.arange(12)
        loop_model = RandomModel(9).fit(split.train)
        expected = np.stack([loop_model.recommend(int(u), k=5) for u in users])
        batch_model = RandomModel(9).fit(split.train)
        batch = batch_model.recommend_batch(users, k=5)
        assert np.array_equal(batch, expected)
        assert isinstance(batch_model, Recommender)
