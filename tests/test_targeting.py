"""Tests for category targeting and diversified recommendation."""

import numpy as np
import pytest

from repro.core.targeting import (
    audience_for_category,
    category_affinities,
    category_share,
    diversified_recommend,
)


class TestCategoryAffinities:
    def test_one_score_per_user(self, tf_model):
        node = int(tf_model.taxonomy.nodes_at_level(1)[0])
        scores = category_affinities(tf_model, node)
        assert scores.shape == (tf_model.n_users,)

    def test_user_subset(self, tf_model):
        node = int(tf_model.taxonomy.nodes_at_level(1)[0])
        users = np.array([3, 7, 11])
        subset = category_affinities(tf_model, node, users)
        full = category_affinities(tf_model, node)
        np.testing.assert_allclose(subset, full[users])

    def test_matches_score_nodes(self, tf_model):
        node = int(tf_model.taxonomy.nodes_at_level(2)[0])
        scores = category_affinities(tf_model, node, np.array([5]))
        expected = tf_model.score_nodes(5, np.array([node]))[0]
        assert scores[0] == pytest.approx(expected)

    def test_invalid_node(self, tf_model):
        with pytest.raises(ValueError):
            category_affinities(tf_model, 10**6)


class TestAudience:
    def test_returns_k_users_sorted_by_affinity(self, tf_model):
        node = int(tf_model.taxonomy.nodes_at_level(1)[0])
        audience = audience_for_category(tf_model, node, k=20)
        assert audience.size == 20
        scores = category_affinities(tf_model, node, audience)
        assert list(scores) == sorted(scores, reverse=True)

    def test_audience_actually_shops_there(self, tf_model, dataset, split):
        """Top-affinity users should over-index on purchases inside the
        category's subtree compared to the population."""
        taxonomy = dataset.taxonomy
        node = int(taxonomy.nodes_at_level(1)[0])
        subtree = set(taxonomy.subtree_items(node).tolist())

        def buy_rate(users):
            hits = total = 0
            for user in users:
                items = split.train.user_items(int(user))
                total += items.size
                hits += sum(1 for i in items if int(i) in subtree)
            return hits / max(total, 1)

        audience = audience_for_category(tf_model, node, k=40)
        everyone = np.arange(tf_model.n_users)
        assert buy_rate(audience) > buy_rate(everyone)

    def test_exclude_buyers(self, tf_model, split):
        taxonomy = tf_model.taxonomy
        node = int(taxonomy.nodes_at_level(1)[0])
        subtree = set(taxonomy.subtree_items(node).tolist())
        audience = audience_for_category(
            tf_model, node, k=30, exclude_buyers=True
        )
        for user in audience:
            bought = set(split.train.user_items(int(user)).tolist())
            assert not (bought & subtree)

    def test_k_larger_than_population(self, tf_model):
        node = int(tf_model.taxonomy.nodes_at_level(1)[0])
        audience = audience_for_category(tf_model, node, k=10**6)
        assert audience.size == tf_model.n_users


class TestDiversifiedRecommend:
    def test_respects_category_cap(self, tf_model):
        taxonomy = tf_model.taxonomy
        top = diversified_recommend(tf_model, 0, k=10, max_per_category=1)
        categories = taxonomy.parent[taxonomy.nodes_of_items(top)]
        assert len(set(categories.tolist())) == top.size

    def test_unconstrained_matches_recommend(self, tf_model):
        relaxed = diversified_recommend(
            tf_model, 0, k=5, max_per_category=10**6, exclude_purchased=False
        )
        plain = tf_model.recommend(0, k=5, exclude_purchased=False)
        assert relaxed.tolist() == plain.tolist()

    def test_keeps_best_item_per_category(self, tf_model):
        """Diversification must keep the single best item of each used
        category (greedy by score)."""
        taxonomy = tf_model.taxonomy
        top = diversified_recommend(
            tf_model, 2, k=6, max_per_category=1, exclude_purchased=False
        )
        scores = tf_model.score_items(2)
        for item in top:
            category = int(taxonomy.parent[taxonomy.node_of_item(int(item))])
            siblings = taxonomy.subtree_items(category)
            assert scores[item] == pytest.approx(scores[siblings].max())

    def test_excludes_purchases(self, tf_model, split):
        top = diversified_recommend(tf_model, 1, k=8)
        bought = set(split.train.user_items(1).tolist())
        assert not (set(top.tolist()) & bought)

    def test_coarser_level_diversifies_more(self, tf_model):
        fine = diversified_recommend(
            tf_model, 0, k=8, max_per_category=1, exclude_purchased=False
        )
        coarse = diversified_recommend(
            tf_model, 0, k=8, max_per_category=1, category_level=1,
            exclude_purchased=False,
        )
        taxonomy = tf_model.taxonomy
        coarse_cats = taxonomy.item_category(coarse, 1)
        assert len(set(coarse_cats.tolist())) == coarse.size


class TestCategoryShare:
    def test_shares_sum_to_one(self, tf_model):
        items = tf_model.recommend(0, k=10, exclude_purchased=False)
        share = category_share(tf_model.taxonomy, items, level=1)
        assert sum(share.values()) == pytest.approx(1.0)

    def test_empty_items(self, tf_model):
        assert category_share(tf_model.taxonomy, [], level=1) == {}
