"""Tests for repro.taxonomy.io."""

import json

import pytest

from repro.taxonomy.generator import complete_taxonomy
from repro.taxonomy.io import (
    load_category_file,
    load_taxonomy,
    parse_category_records,
    save_taxonomy,
)
from repro.taxonomy.tree import TaxonomyError


class TestNativeFormat:
    def test_roundtrip(self, tmp_path):
        tax = complete_taxonomy((3, 2), items_per_leaf=2)
        path = tmp_path / "tax.json"
        save_taxonomy(tax, path)
        loaded = load_taxonomy(path)
        assert loaded == tax
        assert loaded.name_of(0) == tax.name_of(0)

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(TaxonomyError):
            load_taxonomy(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "tax.json"
        path.write_text(
            json.dumps({"format": "repro-taxonomy", "version": 99, "parent": [-1]})
        )
        with pytest.raises(TaxonomyError, match="version"):
            load_taxonomy(path)


class TestCategoryRecords:
    RECORDS = [
        {"asin": "A1", "categories": [["Electronics", "Cameras"]]},
        {"asin": "A2", "categories": [["Electronics", "Cameras"]]},
        {"asin": "A3", "categories": [["Electronics", "Phones"]]},
        {"asin": "A4", "categories": [["Books"]]},
    ]

    def test_parse_dicts(self):
        tax, item_ids = parse_category_records(self.RECORDS)
        assert tax.n_items == 4
        assert set(item_ids) == {"A1", "A2", "A3", "A4"}

    def test_items_under_right_categories(self):
        tax, item_ids = parse_category_records(self.RECORDS)
        a1 = tax.node_of_item(item_ids["A1"])
        a2 = tax.node_of_item(item_ids["A2"])
        assert tax.parent[a1] == tax.parent[a2]  # both under Cameras

    def test_parse_json_lines(self):
        lines = [json.dumps(r) for r in self.RECORDS]
        tax, item_ids = parse_category_records(lines)
        assert tax.n_items == 4

    def test_first_path_wins(self):
        records = [
            {
                "asin": "X",
                "categories": [["A", "B"], ["C", "D"]],
            },
            {"asin": "Y", "categories": [["A", "B"]]},
        ]
        tax, item_ids = parse_category_records(records)
        x = tax.node_of_item(item_ids["X"])
        y = tax.node_of_item(item_ids["Y"])
        assert tax.parent[x] == tax.parent[y]

    def test_flat_category_list_supported(self):
        records = [{"asin": "X", "categories": ["A", "B"]}]
        tax, item_ids = parse_category_records(records)
        assert tax.n_items == 1

    def test_duplicate_items_skipped(self):
        records = [
            {"asin": "X", "categories": [["A"]]},
            {"asin": "X", "categories": [["B"]]},
        ]
        tax, item_ids = parse_category_records(records)
        assert tax.n_items == 1

    def test_records_missing_fields_skipped(self):
        records = [
            {"asin": "X"},
            {"categories": [["A"]]},
            {"asin": "Y", "categories": [["A"]]},
        ]
        tax, item_ids = parse_category_records(records)
        assert set(item_ids) == {"Y"}

    def test_no_usable_records_raises(self):
        with pytest.raises(TaxonomyError):
            parse_category_records([{"asin": "X"}])

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "meta.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in self.RECORDS))
        tax, item_ids = load_category_file(path)
        assert tax.n_items == 4
