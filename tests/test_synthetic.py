"""Tests for the synthetic purchase-log generator."""

import numpy as np
import pytest

from repro.data.split import train_test_split
from repro.data.synthetic import LATE_PHASE_START, _WeightedSampler, generate_dataset
from repro.utils.config import SyntheticConfig


@pytest.fixture(scope="module")
def small():
    return generate_dataset(
        SyntheticConfig(
            branching=(4, 3, 3), items_per_leaf=4, n_users=300, seed=1
        )
    )


class TestWeightedSampler:
    def test_draws_from_population(self, rng):
        sampler = _WeightedSampler(np.array([5, 6, 7]), np.array([1.0, 1.0, 1.0]))
        draws = {sampler.draw(rng) for _ in range(50)}
        assert draws <= {5, 6, 7}

    def test_respects_weights(self, rng):
        sampler = _WeightedSampler(np.array([0, 1]), np.array([0.999, 0.001]))
        draws = [sampler.draw(rng) for _ in range(200)]
        assert draws.count(0) > 180

    def test_zero_weight_never_drawn(self, rng):
        sampler = _WeightedSampler(np.array([0, 1]), np.array([1.0, 0.0]))
        assert all(sampler.draw(rng) == 0 for _ in range(50))

    def test_distinct_draws(self, rng):
        sampler = _WeightedSampler(np.arange(10), np.ones(10))
        picked = sampler.draw_distinct(rng, 5)
        assert len(picked) == len(set(picked)) == 5

    def test_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            _WeightedSampler(np.array([0]), np.array([0.0]))


class TestGenerateDataset:
    def test_deterministic(self):
        cfg = SyntheticConfig(branching=(3, 2), items_per_leaf=3, n_users=50, seed=9)
        a = generate_dataset(cfg)
        b = generate_dataset(cfg)
        assert a.log == b.log
        assert a.taxonomy == b.taxonomy

    def test_every_user_has_a_transaction(self, small):
        for user in range(small.log.n_users):
            assert len(small.log.user_transactions(user)) >= 1

    def test_items_match_taxonomy(self, small):
        assert small.log.n_items == small.taxonomy.n_items

    def test_leaf_of_item_consistent(self, small):
        tax = small.taxonomy
        for item in range(0, tax.n_items, 17):
            assert small.leaf_of_item[item] == tax.parent[tax.node_of_item(item)]

    def test_popularity_is_heavy_tailed(self, small):
        from repro.data.stats import gini

        counts = np.sort(small.log.item_counts())[::-1]
        top_decile = counts[: max(1, counts.size // 10)].sum()
        # Top 10% of items should hold far more than a uniform 10% share.
        assert top_decile > 2.0 * 0.1 * counts.sum()
        assert gini(small.log.item_counts()) > 0.25

    def test_user_focus_recorded(self, small):
        assert len(small.user_focus) == small.log.n_users
        assert all(len(f) >= 1 for f in small.user_focus)

    def test_transition_kernel_points_at_leaf_categories(self, small):
        leafs = set(int(x) for x in np.unique(small.leaf_of_item))
        for source, related in small.transition_kernel.items():
            assert source in leafs
            assert all(int(r) in leafs for r in related)

    def test_purchases_concentrate_in_focus_categories(self, small):
        """Long-term interests: most purchases land in a user's focus leafs
        or their transition neighborhood."""
        hits = 0
        total = 0
        for user in range(0, small.log.n_users, 7):
            focus = set(small.user_focus[user])
            reachable = set(focus)
            for leaf in focus:
                reachable.update(int(x) for x in small.transition_kernel[leaf])
                for second in small.transition_kernel[leaf]:
                    reachable.update(
                        int(x) for x in small.transition_kernel[int(second)]
                    )
            for basket in small.log.user_transactions(user):
                for item in basket:
                    total += 1
                    if int(small.leaf_of_item[item]) in reachable:
                        hits += 1
        assert hits / total > 0.6

    def test_late_items_rare_in_training_split(self, small):
        split = train_test_split(small.log, mu=0.5, seed=0)
        train_counts = split.train.item_counts()
        late = small.late_items
        if late.size == 0:
            pytest.skip("no late items configured")
        late_rate = train_counts[late].mean()
        other = np.setdiff1d(np.arange(small.n_items), late)
        other_rate = train_counts[other].mean()
        assert late_rate < other_rate

    def test_default_config_used_when_none(self):
        data = generate_dataset(None)
        assert data.config == SyntheticConfig()

    def test_late_phase_constant_sane(self):
        assert 0.0 < LATE_PHASE_START < 1.0

    def test_zero_new_item_fraction(self):
        cfg = SyntheticConfig(
            branching=(3, 2), items_per_leaf=3, n_users=30,
            new_item_fraction=0.0, seed=2,
        )
        data = generate_dataset(cfg)
        assert data.late_items.size == 0

    def test_properties(self, small):
        assert small.n_users == small.log.n_users
        assert small.n_items == small.taxonomy.n_items
