"""Tests for dataset statistics (Fig. 5 quantities)."""

import numpy as np
import pytest

from repro.data.split import train_test_split
from repro.data.stats import (
    distinct_items_per_user,
    gini,
    histogram,
    item_popularity,
    new_items_per_user,
    summarize,
)
from repro.data.transactions import TransactionLog


@pytest.fixture()
def log():
    return TransactionLog(
        [
            [[0, 1], [1, 2]],
            [[3]],
            [[0], [0], [0]],
        ],
        n_items=5,
    )


class TestDistinctItems:
    def test_counts(self, log):
        assert distinct_items_per_user(log).tolist() == [3, 1, 1]


class TestNewItems:
    def test_counts_only_unseen(self):
        train = TransactionLog([[[0]], [[1]]], n_items=4)
        test = TransactionLog([[[0, 2]], [[3]]], n_items=4)
        assert new_items_per_user(train, test).tolist() == [1, 1]

    def test_user_count_mismatch_raises(self):
        train = TransactionLog([[[0]]], n_items=2)
        test = TransactionLog([[[0]], [[1]]], n_items=2)
        with pytest.raises(ValueError):
            new_items_per_user(train, test)


class TestPopularity:
    def test_counts(self, log):
        assert item_popularity(log).tolist() == [4, 2, 1, 1, 0]


class TestHistogram:
    def test_basic(self):
        values, counts = histogram(np.array([0, 1, 1, 3]), max_value=3)
        assert values.tolist() == [0, 1, 2, 3]
        assert counts.tolist() == [1, 2, 0, 1]

    def test_clipping(self):
        _, counts = histogram(np.array([100]), max_value=5)
        assert counts[5] == 1


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(np.full(10, 7)) == pytest.approx(0.0, abs=1e-12)

    def test_concentrated_is_high(self):
        counts = np.zeros(100)
        counts[0] = 1000
        assert gini(counts) > 0.9

    def test_empty_and_zero(self):
        assert gini(np.array([])) == 0.0
        assert gini(np.zeros(5)) == 0.0

    def test_bounds(self, rng):
        for _ in range(10):
            g = gini(rng.integers(0, 50, size=30))
            assert 0.0 <= g <= 1.0


class TestSummarize:
    def test_fields(self, log):
        s = summarize(log)
        assert s.n_users == 3
        assert s.n_items == 5
        assert s.n_transactions == 6
        assert s.n_purchases == 8
        assert s.purchases_per_user == pytest.approx(8 / 3)
        assert s.distinct_items_per_user == pytest.approx(5 / 3)
        assert 0 <= s.gini_popularity <= 1

    def test_as_dict_keys(self, log):
        d = summarize(log).as_dict()
        assert "purchases_per_user" in d and "gini_popularity" in d

    def test_matches_paper_style_sparsity(self, dataset):
        """The default synthetic dataset is sparse like the paper's log
        (~2-5 purchases per user)."""
        s = summarize(dataset.log)
        assert 1.5 <= s.purchases_per_user <= 8.0
