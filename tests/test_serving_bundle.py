"""Bundle save/load round-trips, manifest validation, and the legacy shim."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.mf_model import MFModel
from repro.core.popularity import PopularityModel, RandomModel
from repro.core.tf_model import TaxonomyFactorModel
from repro.serving.bundle import (
    BUNDLE_VERSION,
    MANIFEST_NAME,
    BundleError,
    ModelBundle,
)


def _factor_sets_equal(a, b):
    assert np.array_equal(a.user, b.user)
    assert np.array_equal(a.w, b.w)
    assert np.array_equal(a.bias, b.bias)
    if a.w_next is None:
        assert b.w_next is None
    else:
        assert np.array_equal(a.w_next, b.w_next)


class TestFactorModelRoundTrip:
    @pytest.mark.parametrize("fixture", ["tf_model", "tf_markov_model", "mf_model"])
    def test_round_trip(self, fixture, request, tmp_path, split):
        model = request.getfixturevalue(fixture)
        ModelBundle(model, extra={"mu": 0.5}).save(tmp_path / "b")
        bundle = ModelBundle.load(tmp_path / "b")

        assert type(bundle.model) is type(model)
        assert bundle.model.config == model.config
        assert bundle.extra == {"mu": 0.5}
        _factor_sets_equal(bundle.model.factor_set, model.factor_set)
        np.testing.assert_array_equal(
            bundle.model.taxonomy.parent, model.taxonomy.parent
        )

        restored = bundle.model.attach_log(split.train)
        users = np.arange(20)
        assert np.array_equal(
            restored.recommend_batch(users, k=5),
            model.recommend_batch(users, k=5),
        )

    def test_load_model_convenience(self, tf_model, tmp_path):
        ModelBundle(tf_model).save(tmp_path / "b")
        model = ModelBundle.load_model(tmp_path / "b")
        assert isinstance(model, TaxonomyFactorModel)

    def test_unfitted_model_rejected(self, dataset, tmp_path):
        model = TaxonomyFactorModel(dataset.taxonomy)
        with pytest.raises(BundleError, match="unfitted"):
            ModelBundle(model).save(tmp_path / "b")
        assert not (tmp_path / "b").exists()  # nothing half-written

    def test_existing_file_path_rejected(self, tf_model, tmp_path):
        clash = tmp_path / "tf.npz"
        clash.write_text("old artifact")
        with pytest.raises(BundleError, match="not a directory"):
            ModelBundle(tf_model).save(clash)
        assert clash.read_text() == "old artifact"  # untouched

    def test_unfitted_popularity_rejected(self, tmp_path):
        with pytest.raises(BundleError, match="unfitted PopularityModel"):
            ModelBundle(PopularityModel()).save(tmp_path / "b")


class TestCrashSafeSave:
    """A mid-save crash can never leave a torn manifest behind."""

    def test_no_staging_residue_after_save(self, tf_model, tmp_path):
        ModelBundle(tf_model).save(tmp_path / "b")
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "b"]
        assert leftovers == []

    def test_overwrite_existing_bundle(self, tf_model, mf_model, tmp_path):
        ModelBundle(tf_model, extra={"gen": 1}).save(tmp_path / "b")
        ModelBundle(mf_model, extra={"gen": 2}).save(tmp_path / "b")
        bundle = ModelBundle.load(tmp_path / "b")
        assert type(bundle.model).__name__ == "MFModel"
        assert bundle.extra == {"gen": 2}
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "b"]
        assert leftovers == []

    def test_overwrite_removes_stale_artifacts(self, tf_model, split, tmp_path):
        """Overwriting with a different model class must not leave the old
        class's artifact files behind — the directory IS the artifact."""
        ModelBundle(tf_model).save(tmp_path / "b")
        assert (tmp_path / "b" / "factors.npz").exists()
        ModelBundle(PopularityModel().fit(split.train)).save(tmp_path / "b")
        names = sorted(p.name for p in (tmp_path / "b").iterdir())
        assert names == [MANIFEST_NAME, "popularity.npz"]
        assert isinstance(
            ModelBundle.load(tmp_path / "b").model, PopularityModel
        )

    def test_crash_before_manifest_leaves_no_bundle(
        self, tf_model, tmp_path, monkeypatch
    ):
        """Kill the save after the factors are staged but before the
        manifest: load must cleanly report 'not a bundle', never parse a
        half-written manifest."""
        import repro.serving.bundle as bundle_mod

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(bundle_mod, "save_taxonomy", boom)
        with pytest.raises(OSError, match="disk full"):
            ModelBundle(tf_model).save(tmp_path / "b")
        assert not (tmp_path / "b").exists()
        assert list(tmp_path.iterdir()) == []  # staging cleaned up
        with pytest.raises(BundleError, match="not a model bundle"):
            ModelBundle.load(tmp_path / "b")

    def test_crash_during_overwrite_keeps_old_manifest_loadable(
        self, tf_model, tmp_path, monkeypatch
    ):
        """Crashing mid-overwrite must leave a manifest that parses (the
        previous complete one), not a torn file."""
        import repro.serving.bundle as bundle_mod

        ModelBundle(tf_model, extra={"gen": 1}).save(tmp_path / "b")

        real_dump = json.dump

        def torn_dump(obj, handle, **kwargs):
            handle.write('{"format": "repro-model-bu')  # torn write...
            raise OSError("crash mid-manifest")

        monkeypatch.setattr(bundle_mod.json, "dump", torn_dump)
        with pytest.raises(OSError, match="crash mid-manifest"):
            ModelBundle(tf_model, extra={"gen": 2}).save(tmp_path / "b")
        monkeypatch.setattr(bundle_mod.json, "dump", real_dump)

        bundle = ModelBundle.load(tmp_path / "b")  # old manifest intact
        assert bundle.extra == {"gen": 1}
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "b"]
        assert leftovers == []

    def test_fresh_save_is_one_atomic_rename(self, tf_model, tmp_path):
        """A fresh bundle appears with its manifest already in place."""
        target = tmp_path / "b"
        ModelBundle(tf_model).save(target)
        assert (target / MANIFEST_NAME).exists()
        assert ModelBundle.load(target).model is not None

    def test_concurrent_saves_do_not_collide(self, tf_model, tmp_path):
        """Staging names are unique per attempt, so racing saves to
        different targets in one parent never trip over each other."""
        import threading

        errors = []

        def save(name):
            try:
                ModelBundle(tf_model).save(tmp_path / name)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=save, args=(f"b{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for i in range(4):
            assert ModelBundle.load(tmp_path / f"b{i}").model is not None


class TestBaselineRoundTrip:
    def test_popularity(self, split, tmp_path):
        model = PopularityModel().fit(split.train)
        ModelBundle(model).save(tmp_path / "pop")
        restored = ModelBundle.load(tmp_path / "pop").model
        assert isinstance(restored, PopularityModel)
        np.testing.assert_allclose(
            restored.score_items(0), model.score_items(0)
        )
        assert np.array_equal(restored.recommend(0, k=10), model.recommend(0, k=10))

    def test_random(self, split, tmp_path):
        model = RandomModel(seed=5).fit(split.train)
        ModelBundle(model).save(tmp_path / "rnd")
        restored = ModelBundle.load(tmp_path / "rnd").model
        assert isinstance(restored, RandomModel)
        assert restored.seed == 5
        assert restored.score_items(0).shape == (split.train.n_items,)

    def test_random_numpy_seed_survives(self, split, tmp_path):
        model = RandomModel(seed=np.int64(7)).fit(split.train)
        ModelBundle(model).save(tmp_path / "rnd")
        assert ModelBundle.load(tmp_path / "rnd").model.seed == 7


class TestManifestValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(BundleError, match="no manifest.json"):
            ModelBundle.load(tmp_path)

    def test_corrupt_manifest(self, tf_model, tmp_path):
        ModelBundle(tf_model).save(tmp_path / "b")
        (tmp_path / "b" / MANIFEST_NAME).write_text("{not json!!")
        with pytest.raises(BundleError, match="corrupt manifest"):
            ModelBundle.load(tmp_path / "b")

    def test_future_version_rejected(self, tf_model, tmp_path):
        ModelBundle(tf_model).save(tmp_path / "b")
        path = tmp_path / "b" / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["version"] = BUNDLE_VERSION + 1
        path.write_text(json.dumps(manifest))
        with pytest.raises(BundleError, match="unsupported bundle version"):
            ModelBundle.load(tmp_path / "b")

    def test_wrong_format_rejected(self, tf_model, tmp_path):
        ModelBundle(tf_model).save(tmp_path / "b")
        path = tmp_path / "b" / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["format"] = "something-else"
        path.write_text(json.dumps(manifest))
        with pytest.raises(BundleError, match="not a repro-model-bundle"):
            ModelBundle.load(tmp_path / "b")

    def test_unknown_model_class(self, tf_model, tmp_path):
        ModelBundle(tf_model).save(tmp_path / "b")
        path = tmp_path / "b" / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["model_class"] = "MysteryModel"
        path.write_text(json.dumps(manifest))
        with pytest.raises(BundleError, match="unknown model class"):
            ModelBundle.load(tmp_path / "b")

    def test_unsupported_model_type(self, tmp_path):
        with pytest.raises(BundleError, match="don't know how to bundle"):
            ModelBundle(object()).save(tmp_path / "b")

    def test_manifest_records_version_metadata(self, tf_model, tmp_path):
        from repro import __version__

        ModelBundle(tf_model).save(tmp_path / "b")
        manifest = json.loads((tmp_path / "b" / MANIFEST_NAME).read_text())
        assert manifest["version"] == BUNDLE_VERSION
        assert manifest["repro_version"] == __version__


class TestTaxonomyVersionPinning:
    """The manifest pins the exact tree generation the factors expect."""

    def test_manifest_records_taxonomy_version(self, tf_model, tmp_path):
        ModelBundle(tf_model).save(tmp_path / "b")
        manifest = json.loads((tmp_path / "b" / MANIFEST_NAME).read_text())
        record = manifest["taxonomy_version"]
        assert record["digest"] == tf_model.taxonomy.digest
        assert record["n_items"] == tf_model.taxonomy.n_items
        assert record["revision"] == tf_model.taxonomy.revision

    def test_swapped_taxonomy_file_rejected(self, tf_model, tmp_path):
        """A taxonomy.json regenerated from another run is internally
        consistent (its own digest matches), so ``load_taxonomy`` alone
        cannot catch the swap — the manifest pin must."""
        from repro.core.mf_model import flat_taxonomy
        from repro.taxonomy import save_taxonomy

        ModelBundle(tf_model).save(tmp_path / "b")
        impostor = flat_taxonomy(tf_model.taxonomy.n_items)
        assert impostor.digest != tf_model.taxonomy.digest
        save_taxonomy(impostor, tmp_path / "b" / "taxonomy.json")
        with pytest.raises(BundleError, match="different model generations"):
            ModelBundle.load(tmp_path / "b")

    def test_item_count_mismatch_rejected(self, tf_model, tmp_path):
        ModelBundle(tf_model).save(tmp_path / "b")
        path = tmp_path / "b" / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["taxonomy_version"]["n_items"] += 1
        path.write_text(json.dumps(manifest))
        with pytest.raises(BundleError, match="item"):
            ModelBundle.load(tmp_path / "b")

    def test_corrupt_version_record_rejected(self, tf_model, tmp_path):
        ModelBundle(tf_model).save(tmp_path / "b")
        path = tmp_path / "b" / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["taxonomy_version"] = {"bogus": True}
        path.write_text(json.dumps(manifest))
        with pytest.raises(BundleError, match="corrupt taxonomy_version"):
            ModelBundle.load(tmp_path / "b")

    def test_pre_versioning_bundle_still_loads(self, tf_model, tmp_path):
        """Bundles written before the pin existed carry no record."""
        ModelBundle(tf_model).save(tmp_path / "b")
        path = tmp_path / "b" / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        del manifest["taxonomy_version"]
        path.write_text(json.dumps(manifest))
        bundle = ModelBundle.load(tmp_path / "b")
        _factor_sets_equal(bundle.model.factor_set, tf_model.factor_set)


class TestLegacyShim:
    def test_load_legacy_npz_with_warning(self, tf_model, split, tmp_path):
        legacy = tmp_path / "model.npz"
        tf_model.factor_set.save(legacy)
        Path(str(legacy) + ".meta.json").write_text(
            json.dumps({"levels": 4, "markov": 0, "mu": 0.5, "seed": 11})
        )
        with pytest.warns(DeprecationWarning, match="deprecated"):
            bundle = ModelBundle.load_legacy(legacy, tf_model.taxonomy)
        assert bundle.extra["mu"] == 0.5
        _factor_sets_equal(bundle.model.factor_set, tf_model.factor_set)
        restored = bundle.model.attach_log(split.train)
        assert np.array_equal(restored.recommend(0, k=5), tf_model.recommend(0, k=5))

    def test_legacy_levels_one_builds_mf(self, mf_model, tmp_path):
        legacy = tmp_path / "mf.npz"
        mf_model.factor_set.save(legacy)
        Path(str(legacy) + ".meta.json").write_text(json.dumps({"levels": 1}))
        with pytest.warns(DeprecationWarning):
            bundle = ModelBundle.load_legacy(legacy, mf_model.taxonomy)
        assert isinstance(bundle.model, MFModel)

    def test_legacy_missing_file(self, tf_model, tmp_path):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(BundleError, match="no factor file"):
                ModelBundle.load_legacy(tmp_path / "gone.npz", tf_model.taxonomy)
