"""Event ingestion: encoding, the append-only log, micro-batching, replay."""

import numpy as np
import pytest

from repro.data.transactions import TransactionLog
from repro.streaming.events import (
    EventError,
    EventLog,
    ItemArrival,
    MicroBatch,
    MissingCategoryError,
    PurchaseEvent,
    decode_event,
    encode_event,
    events_from_transactions,
    iter_microbatches,
    replay,
)


class TestPurchaseEvent:
    def test_basket_is_sorted_unique(self):
        event = PurchaseEvent(user=3, items=(5, 2, 5, 9))
        assert event.basket().tolist() == [2, 5, 9]

    def test_rejects_empty_basket(self):
        with pytest.raises(EventError, match="empty"):
            PurchaseEvent(user=0, items=())

    def test_rejects_negative_user_and_item(self):
        with pytest.raises(EventError, match="user"):
            PurchaseEvent(user=-1, items=(0,))
        with pytest.raises(EventError, match="negative item"):
            PurchaseEvent(user=0, items=(-2,))


class TestEncoding:
    def test_purchase_roundtrip(self):
        event = PurchaseEvent(user=7, items=(1, 4))
        assert decode_event(encode_event(event)) == event

    def test_arrival_roundtrip(self):
        event = ItemArrival(parent=12, name="fresh")
        assert decode_event(encode_event(event)) == event
        assert decode_event(encode_event(ItemArrival(3))) == ItemArrival(3)

    def test_corrupt_records_rejected(self):
        with pytest.raises(EventError):
            decode_event("{not json")
        with pytest.raises(EventError):
            decode_event('{"x": 1}')
        with pytest.raises(EventError):
            decode_event("[1, 2]")

    def test_wrong_shape_valid_json_raises_event_error(self):
        """Valid JSON with the wrong field types must still surface as
        EventError, never a raw TypeError/ValueError."""
        for record in ('{"u": 1, "i": 5}', '{"u": "x", "i": [1]}',
                       '{"parent": "deep"}', '{"u": 1, "i": ["a"]}'):
            with pytest.raises(EventError):
                decode_event(record)

    def test_non_integer_items_rejected(self):
        with pytest.raises(EventError, match="non-integer"):
            PurchaseEvent(user=0, items=(1.7,))


class TestCategoryFreeArrivals:
    def test_null_parent_roundtrip(self):
        event = ItemArrival(name="orphan")
        assert not event.has_category
        decoded = decode_event(encode_event(event))
        assert decoded == event
        assert decoded.parent is None

    def test_encoded_record_always_carries_parent_key(self):
        # "parent" is the decode dispatch key, so it must be present
        # (null) even when the arrival has no category.
        import json

        record = json.loads(encode_event(ItemArrival()))
        assert "parent" in record and record["parent"] is None

    def test_require_parent_names_the_placer(self):
        with pytest.raises(MissingCategoryError) as excinfo:
            ItemArrival().require_parent()
        assert "place_item" in str(excinfo.value)

    def test_require_parent_passes_through_category(self):
        assert ItemArrival(parent=5).require_parent() == 5

    def test_missing_category_is_an_event_error(self):
        # Callers catching EventError keep working.
        assert issubclass(MissingCategoryError, EventError)

    def test_negative_parent_still_rejected(self):
        with pytest.raises(EventError):
            ItemArrival(parent=-2)


class TestEventLog:
    def test_append_iter_roundtrip(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        events = [
            PurchaseEvent(0, (1, 2)),
            ItemArrival(5, "x"),
            PurchaseEvent(1, (3,)),
        ]
        log.append(events[0])
        assert log.append_many(events[1:]) == 2
        assert list(log) == events
        assert len(log) == 3

    def test_missing_file_is_empty(self, tmp_path):
        assert list(EventLog(tmp_path / "nope.jsonl")) == []

    def test_torn_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.append(PurchaseEvent(0, (1,)))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"u": 3, "i": [')  # crash mid-append
        assert list(log) == [PurchaseEvent(0, (1,))]

    def test_mid_file_corruption_raises(self, tmp_path):
        """Only the *trailing* line may be torn; a bad record earlier means
        the journal is corrupt and must not silently diverge on replay."""
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.append(PurchaseEvent(0, (1,)))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{corrupt}\n")
        log.append(PurchaseEvent(1, (2,)))
        with pytest.raises(EventError, match="line 2"):
            list(log)


class TestMicroBatch:
    def test_user_deltas_preserve_order(self):
        batch = MicroBatch(
            purchases=[
                PurchaseEvent(1, (5,)),
                PurchaseEvent(0, (2,)),
                PurchaseEvent(1, (7, 3)),
            ]
        )
        deltas = batch.user_deltas()
        assert list(deltas) == [1, 0]
        assert [b.tolist() for b in deltas[1]] == [[5], [3, 7]]
        assert batch.n_events == 3
        assert batch.n_purchases == 4

    def test_purchase_pairs(self):
        batch = MicroBatch(purchases=[PurchaseEvent(2, (9, 4))])
        assert batch.purchase_pairs().tolist() == [[2, 4], [2, 9]]
        assert MicroBatch().purchase_pairs().shape == (0, 2)

    def test_iter_microbatches_splits_and_flushes(self):
        events = [PurchaseEvent(u, (1,)) for u in range(5)]
        events.insert(2, ItemArrival(0))
        batches = list(iter_microbatches(events, batch_size=2))
        assert [b.n_events for b in batches] == [2, 2, 2]
        assert sum(len(b.arrivals) for b in batches) == 1
        assert list(iter_microbatches([], batch_size=2)) == []

    def test_iter_microbatches_rejects_bad_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            list(iter_microbatches([], batch_size=0))

    def test_iter_microbatches_rejects_non_events(self):
        with pytest.raises(EventError, match="not an event"):
            list(iter_microbatches(["nope"], batch_size=2))


class TestTransactionReplay:
    def test_round_robin_by_transaction_index(self):
        log = TransactionLog([[[0], [1], [2]], [[3]], []], n_items=4)
        events = list(events_from_transactions(log))
        assert [(e.user, e.items) for e in events] == [
            (0, (0,)),
            (1, (3,)),
            (0, (1,)),
            (0, (2,)),
        ]

    def test_start_t_skips_trained_prefix(self):
        log = TransactionLog([[[0], [1]], [[2], [3]]], n_items=4)
        events = list(events_from_transactions(log, start_t=1))
        assert [(e.user, e.items) for e in events] == [(0, (1,)), (1, (3,))]

    def test_user_subset(self):
        log = TransactionLog([[[0]], [[1]], [[2]]], n_items=3)
        events = list(events_from_transactions(log, users=[2, 0]))
        assert [e.user for e in events] == [2, 0]

    def test_per_user_start_offsets(self):
        """A warm/stream split hands per-user prefix lengths as start_t."""
        log = TransactionLog([[[0], [1], [2]], [[3], [4]]], n_items=5)
        events = list(events_from_transactions(log, start_t=[2, 1]))
        assert [(e.user, e.items) for e in events] == [
            (0, (2,)),
            (1, (4,)),
        ]


class FakeClock:
    def __init__(self):
        self.now = 0.0
        self.slept = []

    def monotonic(self):
        return self.now

    def sleep(self, seconds):
        self.slept.append(seconds)
        self.now += seconds


class TestReplayPacing:
    def test_unpaced_passthrough(self):
        events = [PurchaseEvent(0, (1,))] * 3
        assert list(replay(events)) == events
        assert list(replay(events, rate=0)) == events

    def test_paced_release_times(self):
        clock = FakeClock()
        events = [PurchaseEvent(0, (1,))] * 5
        out = list(replay(events, rate=10.0, clock=clock))
        assert out == events
        # Event n is due at n/rate; the fake clock only advances in sleep,
        # so the total slept time is the last event's due time.
        assert clock.now == pytest.approx(0.4)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            list(replay([PurchaseEvent(0, (1,))], rate=-1.0))

    def test_no_drift_when_sleeps_wake_early(self):
        """Early timer wake-ups must not release events ahead of schedule.

        A naive ``sleep(due - now)`` trusts one sleep to land on the
        deadline; coarse timers returning early would then release every
        event a little sooner, compounding into drift at high rates.
        The monotonic-deadline loop re-checks after every wake, so the
        total replay duration stays within one tick of ``(N - 1) / rate``
        however badly the timer undershoots.
        """

        class EarlyWakeClock(FakeClock):
            def sleep(self, seconds):
                # Wake after only 40% of the requested time (never less
                # than a real timer's resolution floor), every time.
                super().sleep(max(seconds * 0.4, 1e-7))

        clock = EarlyWakeClock()
        rate, n_events = 1000.0, 500
        events = [PurchaseEvent(0, (1,))] * n_events
        assert len(list(replay(events, rate=rate, clock=clock))) == n_events
        expected = (n_events - 1) / rate
        tick = 1.0 / rate
        assert abs(clock.now - expected) < tick

    def test_no_drift_when_sleeps_oversleep(self):
        """Late wake-ups must not accumulate either: deadlines are
        absolute, so each event's lateness is bounded by its own final
        oversleep instead of the sum of all previous ones."""

        class OversleepClock(FakeClock):
            def sleep(self, seconds):
                super().sleep(seconds * 1.5)

        clock = OversleepClock()
        rate, n_events = 1000.0, 500
        events = [PurchaseEvent(0, (1,))] * n_events
        assert len(list(replay(events, rate=rate, clock=clock))) == n_events
        expected = (n_events - 1) / rate
        tick = 1.0 / rate
        assert abs(clock.now - expected) < tick

    def test_release_never_before_deadline(self):
        class EarlyWakeClock(FakeClock):
            def sleep(self, seconds):
                super().sleep(max(seconds / 3, 1e-7))

        clock = EarlyWakeClock()
        rate = 50.0
        releases = []
        for n, _event in enumerate(
            replay([PurchaseEvent(0, (1,))] * 20, rate=rate, clock=clock)
        ):
            releases.append((n, clock.now))
        for n, released_at in releases:
            assert released_at >= n / rate - 1e-12
