"""Tests for sibling-based training machinery (Sec. 4.2)."""

import numpy as np
import pytest

from repro.core.sibling import SiblingSampler
from repro.taxonomy.generator import complete_taxonomy
from repro.taxonomy.tree import ROOT, Taxonomy


@pytest.fixture()
def taxonomy():
    return complete_taxonomy((3, 2), items_per_leaf=2)  # 12 items


@pytest.fixture()
def sampler(taxonomy):
    return SiblingSampler(taxonomy, levels=3)


class TestSampleSiblings:
    def test_siblings_share_parent(self, taxonomy, sampler, rng):
        nodes = taxonomy.items[:6]
        picks, valid = sampler.sample_siblings(nodes, rng)
        assert valid.all()
        for node, pick in zip(nodes, picks):
            assert taxonomy.parent[pick] == taxonomy.parent[node]
            assert pick != node

    def test_root_has_no_sibling(self, sampler, rng):
        picks, valid = sampler.sample_siblings(np.array([ROOT]), rng)
        assert not valid[0]

    def test_only_child_has_no_sibling(self, rng):
        tax = Taxonomy([-1, 0, 1, 1])  # node 1 is an only child
        sampler = SiblingSampler(tax, levels=2)
        _, valid = sampler.sample_siblings(np.array([1]), rng)
        assert not valid[0]

    def test_counts_match_taxonomy(self, taxonomy, sampler):
        for node in range(taxonomy.n_nodes):
            assert sampler.counts[node] == taxonomy.siblings(node).size


class TestExpandBatch:
    def test_one_example_per_eligible_level(self, taxonomy, sampler, rng):
        items = np.array([0, 1])
        chains = taxonomy.item_ancestor_matrix(3)[items]
        src, pos, neg = sampler.expand_batch(chains, rng)
        # Every chain node below the root has siblings in a complete tree,
        # so each item yields `levels` examples.
        assert src.size == 2 * 3
        assert pos.size == neg.size == src.size

    def test_positives_lie_on_item_chains(self, taxonomy, sampler, rng):
        items = np.array([4])
        chains = taxonomy.item_ancestor_matrix(3)[items]
        src, pos, neg = sampler.expand_batch(chains, rng)
        chain_nodes = set(chains[0].tolist())
        assert set(pos.tolist()) <= chain_nodes

    def test_negatives_are_siblings_of_positives(self, taxonomy, sampler, rng):
        items = np.array([7, 2, 9])
        chains = taxonomy.item_ancestor_matrix(3)[items]
        _, pos, neg = sampler.expand_batch(chains, rng)
        for p, n in zip(pos, neg):
            assert taxonomy.parent[p] == taxonomy.parent[n]
            assert p != n

    def test_source_rows_index_batch(self, taxonomy, sampler, rng):
        items = np.array([0, 5, 11])
        chains = taxonomy.item_ancestor_matrix(3)[items]
        src, _, _ = sampler.expand_batch(chains, rng)
        assert set(src.tolist()) <= {0, 1, 2}

    def test_root_level_skipped(self, taxonomy, rng):
        # With levels > depth, chains include the root and pad entries;
        # neither may generate examples.
        sampler = SiblingSampler(taxonomy, levels=5)
        chains = taxonomy.item_ancestor_matrix(5)[np.array([0])]
        _, pos, _ = sampler.expand_batch(chains, rng)
        assert ROOT not in pos.tolist()
        assert taxonomy.pad_id not in pos.tolist()

    def test_empty_when_no_siblings_anywhere(self, rng):
        # A path taxonomy: root -> a -> item; no node has siblings.
        tax = Taxonomy([-1, 0, 1])
        sampler = SiblingSampler(tax, levels=2)
        chains = tax.item_ancestor_matrix(2)
        src, pos, neg = sampler.expand_batch(chains, rng)
        assert src.size == pos.size == neg.size == 0

    def test_chains_of_pads_short_nodes(self, taxonomy, sampler):
        chains = sampler.chains_of(np.array([ROOT]))
        assert chains[0, 0] == ROOT
        assert chains[0, 1] == taxonomy.pad_id
