"""Tests for repro.core.factors.FactorSet."""

import numpy as np
import pytest

from repro.core.factors import KIND_LONG, KIND_NEXT, FactorSet
from repro.taxonomy.generator import complete_taxonomy


@pytest.fixture()
def taxonomy():
    return complete_taxonomy((2, 2), items_per_leaf=2)  # 8 items, 15 nodes


@pytest.fixture()
def fs(taxonomy):
    return FactorSet(
        n_users=5, taxonomy=taxonomy, factors=4, levels=3, seed=0
    )


class TestConstruction:
    def test_shapes(self, fs, taxonomy):
        assert fs.user.shape == (5, 4)
        assert fs.w.shape == (taxonomy.n_nodes + 1, 4)
        assert fs.w_next.shape == fs.w.shape
        assert fs.bias.shape == (taxonomy.n_nodes + 1,)

    def test_pad_rows_zero(self, fs):
        assert np.all(fs.w[-1] == 0)
        assert np.all(fs.w_next[-1] == 0)
        assert fs.bias[-1] == 0

    def test_without_next(self, taxonomy):
        fs = FactorSet(3, taxonomy, 4, 2, with_next=False, seed=0)
        assert fs.w_next is None
        with pytest.raises(ValueError):
            fs.effective_items(kind=KIND_NEXT)

    def test_chain_matrices(self, fs, taxonomy):
        assert fs.node_chains.shape == (taxonomy.n_nodes + 1, 3)
        assert fs.item_chains.shape == (taxonomy.n_items, 3)
        # The pad row chains to itself.
        assert np.all(fs.node_chains[-1] == taxonomy.pad_id)

    def test_deterministic_init(self, taxonomy):
        a = FactorSet(3, taxonomy, 4, 2, seed=7)
        b = FactorSet(3, taxonomy, 4, 2, seed=7)
        assert np.array_equal(a.w, b.w)
        assert np.array_equal(a.user, b.user)

    def test_invalid_args(self, taxonomy):
        with pytest.raises(ValueError):
            FactorSet(0, taxonomy, 4, 2)
        with pytest.raises(ValueError):
            FactorSet(3, taxonomy, 0, 2)
        with pytest.raises(ValueError):
            FactorSet(3, taxonomy, 4, 0)


class TestEffectiveFactors:
    def test_additivity_eq1(self, fs, taxonomy):
        """Eq. 1: v_j = Σ_m w_{p^m(j)} over the used levels."""
        for item in range(taxonomy.n_items):
            node = taxonomy.node_of_item(item)
            chain = taxonomy.path_to_root(node)[: fs.levels]
            expected = sum(fs.w[v] for v in chain)
            actual = fs.effective_items(np.array([item]))[0]
            np.testing.assert_allclose(actual, expected)

    def test_levels_one_is_flat_model(self, taxonomy):
        fs = FactorSet(3, taxonomy, 4, levels=1, seed=0)
        items = np.arange(taxonomy.n_items)
        np.testing.assert_allclose(
            fs.effective_items(items), fs.w[taxonomy.items]
        )

    def test_all_items_default(self, fs, taxonomy):
        all_eff = fs.effective_items()
        some = fs.effective_items(np.array([0, 3]))
        np.testing.assert_allclose(all_eff[[0, 3]], some)

    def test_effective_nodes_any_shape(self, fs):
        nodes = np.array([[1, 2], [3, 4]])
        eff = fs.effective_nodes(nodes)
        assert eff.shape == (2, 2, 4)
        np.testing.assert_allclose(eff[0, 0], fs.effective_nodes(np.array([1]))[0])

    def test_next_family_independent(self, fs):
        items = np.arange(3)
        long = fs.effective_items(items, kind=KIND_LONG)
        nxt = fs.effective_items(items, kind=KIND_NEXT)
        assert not np.allclose(long, nxt)

    def test_invalid_kind(self, fs):
        with pytest.raises(ValueError):
            fs.effective_items(kind="bogus")

    def test_bias_additivity(self, fs, taxonomy):
        fs.bias[:-1] = np.arange(taxonomy.n_nodes, dtype=float)
        for item in (0, 5):
            node = taxonomy.node_of_item(item)
            chain = taxonomy.path_to_root(node)[: fs.levels]
            expected = sum(fs.bias[v] for v in chain)
            assert fs.bias_of_items(np.array([item]))[0] == pytest.approx(expected)

    def test_bias_of_all_items(self, fs):
        fs.bias[:-1] = 1.0
        np.testing.assert_allclose(fs.bias_of_items(), np.full(8, fs.levels))


class TestMaintenance:
    def test_zero_pad_rows(self, fs):
        fs.w[-1] = 5.0
        fs.bias[-1] = 5.0
        fs.zero_pad_rows()
        assert np.all(fs.w[-1] == 0)
        assert fs.bias[-1] == 0

    def test_squared_norm_positive(self, fs):
        assert fs.squared_norm() > 0

    def test_copy_is_deep(self, fs):
        clone = fs.copy()
        clone.w[0] += 1.0
        clone.bias[0] += 1.0
        assert not np.allclose(clone.w[0], fs.w[0])
        assert clone.bias[0] != fs.bias[0]

    def test_repr(self, fs):
        assert "levels=3" in repr(fs)


class TestSerialization:
    def test_roundtrip(self, fs, taxonomy, tmp_path):
        path = tmp_path / "factors.npz"
        fs.save(path)
        loaded = FactorSet.load(path, taxonomy)
        np.testing.assert_allclose(loaded.user, fs.user)
        np.testing.assert_allclose(loaded.w, fs.w)
        np.testing.assert_allclose(loaded.w_next, fs.w_next)
        np.testing.assert_allclose(loaded.bias, fs.bias)
        assert loaded.levels == fs.levels

    def test_roundtrip_without_next(self, taxonomy, tmp_path):
        fs = FactorSet(3, taxonomy, 4, 2, with_next=False, seed=0)
        path = tmp_path / "factors.npz"
        fs.save(path)
        loaded = FactorSet.load(path, taxonomy)
        assert loaded.w_next is None
