"""The documentation contract: examples run, public API is documented.

Two enforcement layers for the audited packages (``repro.train``,
``repro.serving``, ``repro.streaming``, ``repro.core``, ``repro.parallel``,
``repro.analysis``):

* every doctest in their docstrings must pass (the same snippets the
  MkDocs API reference renders — a rotted example fails tier-1, not just
  the separate ``pytest --doctest-modules`` CI step);
* every public module, class, function, and method must carry a
  docstring (the local mirror of the ruff ``D1`` rules CI runs, so the
  gate also binds in environments without ruff installed).
"""

from __future__ import annotations

import ast
import doctest
import importlib
import pkgutil
from pathlib import Path

import pytest

AUDITED_PACKAGES = (
    "repro.train",
    "repro.serving",
    "repro.streaming",
    "repro.taxonomy",
    "repro.core",
    "repro.parallel",
    "repro.obs",
    "repro.analysis",
    "repro.gateway",
)


def _audited_modules():
    for name in AUDITED_PACKAGES:
        package = importlib.import_module(name)
        yield package
        for info in pkgutil.iter_modules(package.__path__, prefix=name + "."):
            yield importlib.import_module(info.name)


MODULES = list(_audited_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctest_examples_run(module):
    """Every ``>>>`` example in the audited packages must execute cleanly."""
    result = doctest.testmod(module, verbose=False, report=True)
    assert result.failed == 0, (
        f"{result.failed} doctest example(s) failed in {module.__name__}"
    )


def _missing_docstrings(path: Path):
    """Public defs without docstrings — the D100-D103/D106 subset.

    Magic methods and ``__init__`` are exempt (ruff's D105/D107), matching
    the configuration in ``pyproject.toml``.
    """
    tree = ast.parse(path.read_text(encoding="utf-8"))
    missing = []
    if not ast.get_docstring(tree):
        missing.append(f"{path}:1 module")

    def walk(node, prefix="", public=True):
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                is_public = public and not child.name.startswith("_")
                if is_public and not ast.get_docstring(child):
                    missing.append(
                        f"{path}:{child.lineno} {prefix}{child.name}"
                    )
                if isinstance(child, ast.ClassDef):
                    walk(child, prefix=f"{prefix}{child.name}.", public=is_public)

    walk(tree)
    return missing


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_api_is_documented(module):
    """Every public name in the audited packages carries a docstring."""
    missing = _missing_docstrings(Path(module.__file__))
    assert not missing, "undocumented public API:\n" + "\n".join(missing)
