"""Tests for the thread-local factor cache (Sec. 6.1 caching heuristic)."""

import numpy as np
import pytest

from repro.parallel.cache import FactorCache
from repro.parallel.locks import StripedLockManager


@pytest.fixture()
def matrix():
    return np.zeros((6, 3))


@pytest.fixture()
def cache(matrix):
    return FactorCache(matrix, StripedLockManager(8), threshold=0.5)


class TestReadsAndWrites:
    def test_read_returns_global_when_cold(self, cache, matrix):
        matrix[2] = [1.0, 2.0, 3.0]
        np.testing.assert_allclose(cache.read(2), [1.0, 2.0, 3.0])

    def test_read_includes_local_delta(self, cache, matrix):
        cache.accumulate(1, np.array([0.1, 0.0, 0.0]))
        np.testing.assert_allclose(cache.read(1), [0.1, 0.0, 0.0])
        # The global copy is unchanged below the threshold.
        np.testing.assert_allclose(matrix[1], [0.0, 0.0, 0.0])

    def test_read_copy_is_safe(self, cache, matrix):
        view = cache.read(0)
        view[0] = 99.0
        assert matrix[0, 0] == 0.0


class TestReconciliation:
    def test_threshold_triggers_writeback(self, cache, matrix):
        cache.accumulate(0, np.array([0.6, 0.0, 0.0]))  # above threshold 0.5
        np.testing.assert_allclose(matrix[0], [0.6, 0.0, 0.0])
        assert cache.reconciliations == 1
        assert cache.pending_rows == 0

    def test_small_updates_accumulate(self, cache, matrix):
        for _ in range(4):
            cache.accumulate(0, np.array([0.1, 0.0, 0.0]))
        assert matrix[0, 0] == 0.0
        assert cache.pending_rows == 1
        cache.accumulate(0, np.array([0.2, 0.0, 0.0]))  # total 0.6 > 0.5
        assert matrix[0, 0] == pytest.approx(0.6)

    def test_flush_single_row(self, cache, matrix):
        cache.accumulate(3, np.array([0.1, 0.1, 0.1]))
        cache.flush(3)
        np.testing.assert_allclose(matrix[3], [0.1, 0.1, 0.1])

    def test_flush_all(self, cache, matrix):
        cache.accumulate(1, np.array([0.1, 0.0, 0.0]))
        cache.accumulate(2, np.array([0.0, 0.2, 0.0]))
        cache.flush()
        assert cache.pending_rows == 0
        assert matrix[1, 0] == pytest.approx(0.1)
        assert matrix[2, 1] == pytest.approx(0.2)

    def test_flush_missing_row_is_noop(self, cache):
        cache.flush(5)
        assert cache.reconciliations == 0

    def test_negative_deltas_trigger_too(self, cache, matrix):
        cache.accumulate(0, np.array([-0.7, 0.0, 0.0]))
        assert matrix[0, 0] == pytest.approx(-0.7)


class TestMultipleCaches:
    def test_two_caches_merge_additively(self, matrix):
        locks = StripedLockManager(8)
        a = FactorCache(matrix, locks, threshold=10.0)
        b = FactorCache(matrix, locks, threshold=10.0)
        a.accumulate(0, np.array([1.0, 0.0, 0.0]))
        b.accumulate(0, np.array([0.0, 2.0, 0.0]))
        a.flush()
        b.flush()
        np.testing.assert_allclose(matrix[0], [1.0, 2.0, 0.0])

    def test_stats_counted(self, cache):
        cache.read(0)
        cache.accumulate(0, np.array([0.01, 0, 0]))
        assert cache.reads == 1
        assert cache.writes == 1

    def test_rejects_bad_threshold(self, matrix):
        with pytest.raises(ValueError):
            FactorCache(matrix, StripedLockManager(4), threshold=0.0)
