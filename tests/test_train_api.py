"""Tests for the unified ``repro.train`` API: trainers, seeds, callbacks."""

import numpy as np
import pytest

from repro import (
    SyntheticConfig,
    TaxonomyFactorModel,
    TrainConfig,
    evaluate_model,
    evaluate_parallel,
    generate_dataset,
    train_test_split,
)
from repro.parallel.trainer import ThreadedSGDEngine, ThreadedSGDTrainer
from repro.streaming.swap import CheckpointStore
from repro.train import (
    CheckpointCallback,
    EarlyStopping,
    EvalCallback,
    LambdaCallback,
    LRSchedule,
    OnlineTrainer,
    SerialTrainer,
    ThreadedTrainer,
    warm_stream_split,
)
from repro.utils.rng import derive_seed, epoch_seed


@pytest.fixture(scope="module")
def data():
    return generate_dataset(SyntheticConfig(n_users=400, seed=7))


@pytest.fixture(scope="module")
def split(data):
    return train_test_split(data.log, mu=0.5, seed=0)


def config(**overrides):
    base = dict(factors=8, epochs=3, seed=0)
    base.update(overrides)
    return TrainConfig(**base)


def factor_arrays(model):
    fs = model.factor_set
    return fs.user, fs.w, fs.bias


# ----------------------------------------------------------------------
# Seed policy (satellite: route seed plumbing through utils/rng)
# ----------------------------------------------------------------------
class TestSeedPolicy:
    def test_derive_seed_deterministic_and_key_sensitive(self):
        assert derive_seed(0, 1) == derive_seed(0, 1)
        assert derive_seed(0, 1) != derive_seed(1, 0)  # no +epoch collision
        assert derive_seed(0, 1) != derive_seed(0, 2)
        assert derive_seed(None, 5) is None

    def test_epoch_seed_is_derive_seed(self):
        assert epoch_seed(42, 3) == derive_seed(42, 3)

    def test_threaded_trainer_bit_reproducible(self, data, split):
        """Identical specs → bit-identical factors.  With one worker the
        whole threaded run is deterministic (with more, row-lock
        interleaving reorders float additions — the Hogwild trade-off —
        but every worker's *sample stream* is still seed-derived)."""

        def run():
            model = TaxonomyFactorModel(data.taxonomy, config())
            ThreadedTrainer(model, n_workers=1).train(split.train, epochs=2)
            return factor_arrays(model)

        for a, b in zip(run(), run()):
            assert np.array_equal(a, b)

    def test_threaded_negative_streams_seed_derived(self, data, split):
        """The multi-worker sample/negative streams derive from the spec
        seed: two engines at the same epoch draw identical shard orders."""
        cfg = config()
        from repro.core.factors import FactorSet

        def epoch_order(seed_cfg):
            fs = FactorSet(split.train.n_users, data.taxonomy, 8, 4, seed=0)
            engine = ThreadedSGDEngine(fs, split.train, seed_cfg, n_threads=2)
            from repro.utils.rng import spawn_rngs

            rngs = spawn_rngs(derive_seed(seed_cfg.seed, 0), 3)
            return engine.store.epoch_order(rngs[-1], shuffle=True)

        assert np.array_equal(epoch_order(cfg), epoch_order(cfg))
        other = TrainConfig(factors=8, epochs=3, seed=1)
        assert not np.array_equal(epoch_order(cfg), epoch_order(other))

    def test_engine_default_epoch_seeds_follow_policy(self, data, split):
        """train_epoch(seed=None) must derive from (config.seed, epoch)."""
        cfg = config(epochs=2)
        model_a = TaxonomyFactorModel(data.taxonomy, cfg)
        ThreadedTrainer(model_a, n_workers=1).train(split.train, epochs=2)

        model_b = TaxonomyFactorModel(data.taxonomy, cfg)
        trainer_b = ThreadedTrainer(model_b, n_workers=1)
        trainer_b._setup(split.train)
        for epoch in range(2):
            trainer_b.engine.train_epoch()  # engine's own default seeding
        for a, b in zip(factor_arrays(model_a), factor_arrays(model_b)):
            assert np.array_equal(a, b)

    def test_evaluate_parallel_sampling_reproducible(self, data, split):
        model = TaxonomyFactorModel(data.taxonomy, config())
        SerialTrainer(model).train(split.train)
        first = evaluate_parallel(
            model, split, n_workers=3, sample_users=60, seed=5
        )
        again = evaluate_parallel(
            model, split, n_workers=3, sample_users=60, seed=5
        )
        assert first.n_users == again.n_users == 60  # quotas are exact
        assert first.auc == again.auc
        other = evaluate_parallel(
            model, split, n_workers=3, sample_users=60, seed=6
        )
        assert other.n_users == 60
        full = evaluate_parallel(model, split, n_workers=3)
        assert first.n_users < full.n_users

    def test_evaluate_parallel_tiny_sample_not_empty(self, data, split):
        """A sample smaller than the worker count must still evaluate
        exactly that many users (largest-remainder quotas, not per-
        partition rounding that collapses to zero)."""
        model = TaxonomyFactorModel(data.taxonomy, config())
        SerialTrainer(model).train(split.train)
        result = evaluate_parallel(
            model, split, n_workers=4, sample_users=1, seed=0
        )
        assert result.n_users == 1
        assert not np.isnan(result.auc)
        three = evaluate_parallel(
            model, split, n_workers=4, sample_users=3, seed=0
        )
        assert three.n_users == 3

    def test_evaluate_model_sampling_reproducible(self, data, split):
        model = TaxonomyFactorModel(data.taxonomy, config())
        SerialTrainer(model).train(split.train)
        first = evaluate_model(model, split, sample_users=50, seed=3)
        again = evaluate_model(model, split, sample_users=50, seed=3)
        assert first.auc == again.auc
        assert first.n_users <= 50


# ----------------------------------------------------------------------
# Serial-vs-threaded equivalence (satellite)
# ----------------------------------------------------------------------
class TestSerialThreadedEquivalence:
    def test_one_worker_matches_serial_sample_exactly(self, data, split):
        """One epoch, 1 worker ≡ SerialTrainer(update='sample'), bit-for-bit."""
        serial_model = TaxonomyFactorModel(data.taxonomy, config())
        SerialTrainer(serial_model, update="sample").train(
            split.train, epochs=1
        )
        threaded_model = TaxonomyFactorModel(data.taxonomy, config())
        ThreadedTrainer(threaded_model, n_workers=1).train(
            split.train, epochs=1
        )
        for a, b in zip(
            factor_arrays(serial_model), factor_arrays(threaded_model)
        ):
            assert np.array_equal(a, b)

    def test_one_worker_matches_over_multiple_epochs(self, data, split):
        serial_model = TaxonomyFactorModel(data.taxonomy, config())
        SerialTrainer(serial_model, update="sample").train(
            split.train, epochs=3
        )
        threaded_model = TaxonomyFactorModel(data.taxonomy, config())
        ThreadedTrainer(threaded_model, n_workers=1).train(
            split.train, epochs=3
        )
        assert np.array_equal(
            serial_model.factor_set.user, threaded_model.factor_set.user
        )

    def test_n_workers_auc_within_tolerance(self, data, split):
        """More workers interleave the visit order; held-out AUC must stay
        in the serial trainer's neighbourhood."""
        cfg = config(epochs=4)
        serial_model = TaxonomyFactorModel(data.taxonomy, cfg)
        SerialTrainer(serial_model).train(split.train)
        serial_auc = evaluate_model(serial_model, split).auc

        threaded_model = TaxonomyFactorModel(data.taxonomy, cfg)
        ThreadedTrainer(threaded_model, n_workers=4).train(split.train)
        threaded_auc = evaluate_model(threaded_model, split).auc
        assert threaded_auc == pytest.approx(serial_auc, abs=0.08)

    def test_serial_sample_rejects_markov(self, data, split):
        model = TaxonomyFactorModel(data.taxonomy, config(markov_order=1))
        with pytest.raises(ValueError, match="markov_order"):
            SerialTrainer(model, update="sample").train(split.train, epochs=1)

    def test_invalid_update_mode(self, data):
        model = TaxonomyFactorModel(data.taxonomy, config())
        with pytest.raises(ValueError, match="update"):
            SerialTrainer(model, update="bogus")


# ----------------------------------------------------------------------
# Deprecated shims
# ----------------------------------------------------------------------
class TestDeprecatedShims:
    def test_fit_matches_serial_trainer_bit_for_bit(self, data, split):
        """The acceptance criterion: model.fit(...) ≡ SerialTrainer."""
        cfg = config(sibling_ratio=0.5)
        legacy = TaxonomyFactorModel(data.taxonomy, cfg)
        with pytest.warns(DeprecationWarning, match="SerialTrainer"):
            legacy.fit(split.train)
        modern = TaxonomyFactorModel(data.taxonomy, cfg)
        SerialTrainer(modern).train(split.train)
        for a, b in zip(factor_arrays(legacy), factor_arrays(modern)):
            assert np.array_equal(a, b)

    def test_fit_legacy_callback_signature(self, data, split):
        model = TaxonomyFactorModel(data.taxonomy, config(epochs=2))
        calls = []
        with pytest.warns(DeprecationWarning):
            model.fit(
                split.train,
                callback=lambda stats, trainer: calls.append(
                    (stats.epoch, type(trainer).__name__)
                ),
            )
        assert calls == [(0, "SGDTrainer"), (1, "SGDTrainer")]

    def test_threaded_sgd_trainer_warns_but_works(self, data, split):
        from repro.core.factors import FactorSet

        cfg = config()
        fs = FactorSet(split.train.n_users, data.taxonomy, 8, 4, seed=0)
        with pytest.warns(DeprecationWarning, match="ThreadedTrainer"):
            shim = ThreadedSGDTrainer(fs, split.train, cfg, n_threads=2)
        stats = shim.train_epoch()
        assert stats.n_examples == split.train.n_purchases

    def test_shim_matches_engine_exactly(self, data, split):
        from repro.core.factors import FactorSet

        cfg = config()
        fs_shim = FactorSet(split.train.n_users, data.taxonomy, 8, 4, seed=0)
        with pytest.warns(DeprecationWarning):
            shim = ThreadedSGDTrainer(fs_shim, split.train, cfg, n_threads=1)
        shim.train_epoch()
        fs_engine = FactorSet(split.train.n_users, data.taxonomy, 8, 4, seed=0)
        ThreadedSGDEngine(fs_engine, split.train, cfg, n_threads=1).train_epoch()
        assert np.array_equal(fs_shim.user, fs_engine.user)
        assert np.array_equal(fs_shim.w, fs_engine.w)


# ----------------------------------------------------------------------
# Shared loop + callbacks
# ----------------------------------------------------------------------
class TestCallbacks:
    def test_lr_schedule_factories(self):
        assert LRSchedule.step(drop=0.5, every=5).lr_at(4, 0.1) == 0.1
        assert LRSchedule.step(drop=0.5, every=5).lr_at(5, 0.1) == 0.05
        assert LRSchedule.exponential(gamma=0.5).lr_at(2, 0.4) == 0.1
        warm = LRSchedule.warmup(4)
        assert warm.lr_at(0, 0.4) == pytest.approx(0.1)
        assert warm.lr_at(7, 0.4) == 0.4
        chained = LRSchedule.warmup(2, after=LRSchedule.exponential(0.5))
        assert chained.lr_at(3, 0.4) == 0.2  # epoch 1 of the inner schedule

    def test_lr_schedule_applied_per_epoch(self, data, split):
        model = TaxonomyFactorModel(data.taxonomy, config(epochs=4))
        seen = []
        SerialTrainer(
            model,
            callbacks=[
                LRSchedule.exponential(gamma=0.5),
                LambdaCallback(
                    on_epoch_end=lambda e, s, t: seen.append(s.learning_rate)
                ),
            ],
        ).train(split.train)
        assert seen == pytest.approx([0.05, 0.025, 0.0125, 0.00625])

    def test_early_stopping_on_loss(self, data, split):
        model = TaxonomyFactorModel(data.taxonomy, config(epochs=10))
        stopper = EarlyStopping(monitor="loss", patience=2, min_delta=10.0)
        result = SerialTrainer(model, callbacks=[stopper]).train(split.train)
        # min_delta=10 means no epoch ever "improves": stop after patience.
        assert result.stopped_early
        assert result.epochs_run == 3
        assert stopper.stopped_at == 2

    def test_eval_callback_records_history(self, data, split):
        model = TaxonomyFactorModel(data.taxonomy, config(epochs=4))
        evaluator = EvalCallback(split, every=2, sample_users=40)
        result = SerialTrainer(model, callbacks=[evaluator]).train(split.train)
        assert [epoch for epoch, _ in result.evals] == [1, 3]
        assert all(0.0 <= r.auc <= 1.0 for _, r in result.evals)
        assert "auc" in result.history[1].extras

    def test_early_stopping_ignores_stale_evals(self, data, split):
        """Epochs between sparse evaluations (EvalCallback every=N) must
        not count the unchanged AUC against patience."""
        model = TaxonomyFactorModel(data.taxonomy, config(epochs=12))
        result = SerialTrainer(
            model,
            callbacks=[
                EvalCallback(split, every=4, sample_users=40),
                EarlyStopping(monitor="auc", patience=2, min_delta=1.0),
            ],
        ).train(split.train)
        # Evals at epochs 3, 7, 11: the first sets best, the next two are
        # the patience budget — earlier the stale epochs 4-5 tripped it.
        assert result.stopped_early
        assert result.epochs_run == 12
        assert len(result.evals) == 3

    def test_early_stopping_on_auc_needs_eval(self, data, split):
        model = TaxonomyFactorModel(data.taxonomy, config(epochs=6))
        result = SerialTrainer(
            model,
            callbacks=[
                EvalCallback(split, every=1, sample_users=40),
                EarlyStopping(monitor="auc", patience=2, min_delta=1.0),
            ],
        ).train(split.train)
        assert result.stopped_early
        assert result.epochs_run == 3

    def test_checkpoint_callback_writes_versions(self, data, split, tmp_path):
        model = TaxonomyFactorModel(data.taxonomy, config(epochs=4))
        checkpoints = CheckpointCallback(tmp_path / "ckpts", every=2)
        SerialTrainer(model, callbacks=[checkpoints]).train(split.train)
        store = CheckpointStore(tmp_path / "ckpts")
        assert store.versions() == [1, 2]
        bundle = store.load()
        assert bundle.extra["epoch"] == 3
        assert np.array_equal(
            bundle.model.factor_set.user, model.factor_set.user
        )

    def test_callbacks_reusable_across_runs(self, data, split):
        """One callback list must serve several trainings (quickstart
        trains TF then MF with the same list) without carrying state."""
        stopper = EarlyStopping(monitor="loss", patience=2, min_delta=10.0)
        first_model = TaxonomyFactorModel(data.taxonomy, config(epochs=10))
        first = SerialTrainer(first_model, callbacks=[stopper]).train(
            split.train
        )
        second_model = TaxonomyFactorModel(data.taxonomy, config(epochs=10))
        second = SerialTrainer(second_model, callbacks=[stopper]).train(
            split.train
        )
        # Both runs stop at the same epoch: the second didn't inherit the
        # first run's best/best_epoch.
        assert first.epochs_run == second.epochs_run == 3

    def test_retrain_resets_loop_state(self, data, split):
        """A second train() call on one trainer is a fresh run."""
        model = TaxonomyFactorModel(data.taxonomy, config(epochs=3))
        trainer = SerialTrainer(
            model, callbacks=[LRSchedule.exponential(gamma=0.5)]
        )
        first = trainer.train(split.train)
        second = trainer.train(split.train)
        assert second.epochs_run == 3
        assert [e.epoch for e in second.history] == [0, 1, 2]
        # The schedule re-bases on the configured rate, not the annealed one.
        assert second.history[0].learning_rate == first.history[0].learning_rate
        # And the rerun reproduces the first run bit-for-bit (same seeds).
        fresh = TaxonomyFactorModel(data.taxonomy, config(epochs=3))
        SerialTrainer(
            fresh, callbacks=[LRSchedule.exponential(gamma=0.5)]
        ).train(split.train)
        assert np.array_equal(model.factor_set.user, fresh.factor_set.user)

    def test_train_zero_epochs(self, data, split):
        model = TaxonomyFactorModel(data.taxonomy, config())
        result = SerialTrainer(model).train(split.train, epochs=0)
        assert result.epochs_run == 0
        assert model.factor_set is not None  # initialized, untrained

    def test_loss_decreases(self, data, split):
        model = TaxonomyFactorModel(data.taxonomy, config(epochs=5))
        result = SerialTrainer(model).train(split.train)
        assert result.history[-1].loss < result.history[0].loss


# ----------------------------------------------------------------------
# Online backend
# ----------------------------------------------------------------------
class TestOnlineTrainer:
    def test_streams_log_into_fitted_model(self, data, split):
        warm, stream = warm_stream_split(split.train, 0.5)
        model = TaxonomyFactorModel(data.taxonomy, config(epochs=4))
        SerialTrainer(model).train(warm)
        item_factors = model.factor_set.w.copy()
        result = OnlineTrainer(model, steps=2, batch_size=64).train(stream)
        assert result.epochs_run == 1  # online defaults to one pass
        assert result.history[0].n_examples > 0
        assert np.isfinite(result.history[0].loss)
        # Item/taxonomy factors stay frozen; user vectors moved.
        assert np.array_equal(model.factor_set.w, item_factors)
        # The accumulated history (warm + streamed) is attached.
        assert model._train_log.n_purchases == split.train.n_purchases

    def test_learning_rate_override_honored(self, data, split):
        warm, stream = warm_stream_split(split.train, 0.5)
        model = TaxonomyFactorModel(data.taxonomy, config(epochs=2))
        SerialTrainer(model).train(warm)
        trainer = OnlineTrainer(
            model, steps=1, batch_size=128, learning_rate=0.001
        )
        result = trainer.train(stream)
        assert result.history[0].learning_rate == 0.001
        assert trainer.updater.learning_rate == 0.001

    def test_epoch_extras_are_deltas(self, data, split):
        """Multi-pass extras report per-epoch deltas, not lifetime totals."""
        # Warm-train on a truncated user range so the stream brings
        # genuinely new users (they get folded in during pass one).
        head = split.train.subset_users(range(split.train.n_users - 20))
        model = TaxonomyFactorModel(data.taxonomy, config(epochs=2))
        SerialTrainer(model).train(head)
        result = OnlineTrainer(model, steps=1, batch_size=128).train(
            split.train, epochs=2
        )
        first, second = result.history
        assert first.extras["events"] == second.extras["events"]
        assert first.extras["new_users"] > 0
        # Every user is known after pass one; pass two must not
        # re-report pass one's fold-ins.
        assert second.extras["new_users"] == 0.0

    def test_requires_fitted_model(self, data, split):
        from repro.core.tf_model import NotFittedError

        model = TaxonomyFactorModel(data.taxonomy, config())
        with pytest.raises(NotFittedError):
            OnlineTrainer(model).train(split.train)

    def test_callbacks_fire_on_online_backend(self, data, split):
        warm, stream = warm_stream_split(split.train, 0.5)
        model = TaxonomyFactorModel(data.taxonomy, config(epochs=3))
        SerialTrainer(model).train(warm)
        evaluator = EvalCallback(split, every=1, sample_users=40)
        result = OnlineTrainer(
            model, steps=1, batch_size=128, callbacks=[evaluator]
        ).train(stream)
        assert len(result.evals) == 1
