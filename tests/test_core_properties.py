"""Property-based tests (hypothesis) for core model invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.affinity import context_items_weights, decay_weights
from repro.core.factors import FactorSet
from repro.data.split import train_test_split
from repro.data.transactions import TransactionLog
from repro.taxonomy.generator import complete_taxonomy
from repro.taxonomy.tree import Taxonomy

TAXONOMY = complete_taxonomy((3, 2), items_per_leaf=3)  # 18 items


@st.composite
def factor_sets(draw):
    factors = draw(st.integers(min_value=1, max_value=6))
    levels = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return FactorSet(
        n_users=3, taxonomy=TAXONOMY, factors=factors, levels=levels, seed=seed
    )


@given(factor_sets())
@settings(max_examples=40, deadline=None)
def test_effective_factor_is_chain_sum(fs):
    """Eq. 1 holds for every item under any truncation level."""
    items = np.arange(TAXONOMY.n_items)
    effective = fs.effective_items(items)
    for item in items:
        node = TAXONOMY.node_of_item(int(item))
        chain = TAXONOMY.path_to_root(node)[: fs.levels]
        np.testing.assert_allclose(
            effective[item], sum(fs.w[v] for v in chain), atol=1e-12
        )


@given(factor_sets())
@settings(max_examples=40, deadline=None)
def test_deeper_levels_only_add_terms(fs):
    """Increasing U by one adds exactly the next ancestor's offset."""
    if fs.levels >= 5:
        return
    bigger = FactorSet(
        n_users=3,
        taxonomy=TAXONOMY,
        factors=fs.factors,
        levels=fs.levels + 1,
        seed=0,
    )
    bigger.w = fs.w.copy()
    items = np.arange(TAXONOMY.n_items)
    small_eff = fs.effective_items(items)
    big_eff = bigger.effective_items(items)
    for item in items:
        node = TAXONOMY.node_of_item(int(item))
        chain = TAXONOMY.path_to_root(node)
        if len(chain) > fs.levels:
            extra = fs.w[chain[fs.levels]]
        else:
            extra = np.zeros(fs.factors)
        np.testing.assert_allclose(
            big_eff[item] - small_eff[item], extra, atol=1e-12
        )


@given(
    st.integers(min_value=1, max_value=8),
    st.floats(min_value=0.01, max_value=5.0),
)
@settings(max_examples=60, deadline=None)
def test_decay_weights_positive_decreasing(order, alpha):
    weights = decay_weights(order, alpha)
    assert weights.shape == (order,)
    assert np.all(weights > 0)
    assert np.all(np.diff(weights) <= 0)
    assert weights[0] <= alpha  # alpha * e^{-1/N} < alpha


@st.composite
def histories(draw):
    n_baskets = draw(st.integers(min_value=0, max_value=5))
    return [
        np.asarray(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=17),
                    min_size=1,
                    max_size=4,
                    unique=True,
                )
            ),
            dtype=np.int64,
        )
        for _ in range(n_baskets)
    ]


@given(histories(), st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_context_weight_mass_bounded(history, order):
    """Total context weight is at most Σ α_n (each basket contributes α_n)."""
    items, weights = context_items_weights(history, order, alpha=1.0)
    assert items.shape == weights.shape
    assert np.all(weights >= 0)
    limit = decay_weights(order, 1.0).sum() + 1e-9
    assert weights.sum() <= limit


@given(histories(), st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_context_items_come_from_history(history, order):
    items, _ = context_items_weights(history, order)
    allowed = {
        int(x) for basket in history[-order:] for x in basket
    }
    assert set(items.tolist()) <= allowed


@st.composite
def small_logs(draw):
    n_users = draw(st.integers(min_value=1, max_value=8))
    rows = []
    for _ in range(n_users):
        n_txns = draw(st.integers(min_value=1, max_value=5))
        rows.append(
            [
                draw(
                    st.lists(
                        st.integers(min_value=0, max_value=17),
                        min_size=1,
                        max_size=3,
                        unique=True,
                    )
                )
                for _ in range(n_txns)
            ]
        )
    return TransactionLog(rows, n_items=18)


@given(small_logs(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_split_partitions_without_repeat_filter(log, mu):
    split = train_test_split(log, mu=mu, sigma=0.1, remove_repeats=False, seed=0)
    assert split.train.n_users == split.test.n_users == log.n_users
    assert (
        split.train.n_transactions + split.test.n_transactions
        == log.n_transactions
    )
    for user in range(log.n_users):
        assert len(split.train.user_transactions(user)) >= 1


@given(small_logs(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_split_repeat_filter_only_removes(log, mu):
    raw = train_test_split(log, mu=mu, sigma=0.0, remove_repeats=False, seed=3)
    filtered = train_test_split(log, mu=mu, sigma=0.0, remove_repeats=True, seed=3)
    assert filtered.train == raw.train
    assert filtered.test.n_purchases <= raw.test.n_purchases
    # Filtered test items are a subset of raw test items per user.
    for user in range(log.n_users):
        raw_items = {int(i) for b in raw.test.user_transactions(user) for i in b}
        kept = {int(i) for b in filtered.test.user_transactions(user) for i in b}
        assert kept <= raw_items
        # Nothing kept was bought in training.
        train_items = set(filtered.train.user_items(user).tolist())
        assert not (kept & train_items)


@given(small_logs())
@settings(max_examples=40, deadline=None)
def test_log_roundtrip_through_lists(log):
    rebuilt = TransactionLog(log.to_lists(), n_items=log.n_items)
    assert rebuilt == log
    assert rebuilt.n_purchases == log.n_purchases
