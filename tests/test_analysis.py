"""The invariant linter's own contract: each rule fires exactly where advertised.

Three layers:

* per-rule (snippet, expected findings) tables — the positive *and*
  negative space of every REP rule, including the scoping exemptions;
* the waiver machinery — justified ``noqa``, suppression hygiene
  (REP000), and the committed-baseline round trip;
* the meta-gate — the linter run over the real tree (``src benchmarks
  examples``) against the committed baseline must exit 0, and the exact
  raw-``argpartition`` pattern behind the PR 5 tie-break bug must be
  caught if anyone re-introduces it.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Severity,
    fingerprint,
    load_baseline,
    run_analysis,
    write_baseline,
)
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.baseline import BaselineError, TODO_JUSTIFICATION
from repro.analysis.engine import META_RULE, PARSE_RULE
from repro.analysis.registry import all_rules
from repro.analysis.suppress import scan_suppressions

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_snippet(tmp_path, relpath, code, **kwargs):
    """Write *code* at *relpath* under a scratch tree and lint that file."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(code), encoding="utf-8")
    return run_analysis([str(target)], **kwargs)


def codes_of(result):
    """The rule codes of the active findings, in report order."""
    return [f.rule for f in result.findings]


# ----------------------------------------------------------------------
# Per-rule tables: (test id, path shape, snippet, expected codes)
# ----------------------------------------------------------------------

RULE_CASES = [
    # --- REP001: no module-level / unseeded RNG --------------------------
    (
        "rep001-np-random-module-fn",
        "src/repro/core/mod.py",
        """
        import numpy as np
        noise = np.random.rand(3)
        """,
        ["REP001"],
    ),
    (
        "rep001-unseeded-default-rng",
        "src/repro/core/mod.py",
        """
        import numpy as np
        rng = np.random.default_rng()
        """,
        ["REP001"],
    ),
    (
        "rep001-seeded-default-rng-ok",
        "src/repro/core/mod.py",
        """
        import numpy as np
        rng = np.random.default_rng(0)
        """,
        [],
    ),
    (
        "rep001-stdlib-random-import",
        "src/repro/core/mod.py",
        """
        import random
        """,
        ["REP001"],
    ),
    (
        "rep001-utils-rng-exempt",
        "src/repro/utils/rng.py",
        """
        import random
        import numpy as np
        rng = np.random.default_rng()
        """,
        [],
    ),
    (
        "rep001-generator-class-ok",
        "src/repro/core/mod.py",
        """
        from numpy.random import Generator, PCG64
        def make(seed):
            return Generator(PCG64(seed))
        """,
        [],
    ),
    # --- REP002: one top-k total order ----------------------------------
    (
        "rep002-argsort-on-scores",
        "src/repro/core/mod.py",
        """
        import numpy as np
        def rank(scores):
            return np.argsort(-scores)
        """,
        ["REP002"],
    ),
    (
        "rep002-method-sort-on-scores",
        "src/repro/core/mod.py",
        """
        def rank(scores):
            scores.sort()
            return scores
        """,
        ["REP002"],
    ),
    (
        "rep002-sorted-builtin-on-scores",
        "src/repro/core/mod.py",
        """
        def best(candidates):
            return sorted(candidates, key=lambda c: c.score)
        """,
        ["REP002"],
    ),
    (
        "rep002-core-topk-exempt",
        "src/repro/core/topk.py",
        """
        import numpy as np
        def top_k_rows(scores, k):
            return np.argpartition(-scores, k - 1)[:, :k]
        """,
        [],
    ),
    (
        "rep002-non-score-sort-ok",
        "src/repro/core/mod.py",
        """
        import numpy as np
        def histogram(counts, anchors):
            order = np.argsort(anchors)
            return np.sort(counts)[order]
        """,
        [],
    ),
    # --- REP003: monotonic clocks ---------------------------------------
    (
        "rep003-time-time-in-benchmarks",
        "benchmarks/bench_mod.py",
        """
        import time
        def measure(fn):
            start = time.time()
            fn()
            return time.time() - start
        """,
        ["REP003", "REP003"],
    ),
    (
        "rep003-from-time-import-time",
        "src/repro/serving/mod.py",
        """
        from time import time
        """,
        ["REP003"],
    ),
    (
        "rep003-perf-counter-ok",
        "benchmarks/bench_mod.py",
        """
        import time
        def measure(fn):
            start = time.perf_counter()
            fn()
            return time.perf_counter() - start
        """,
        [],
    ),
    (
        "rep003-out-of-scope-tree-ok",
        "src/repro/data/mod.py",
        """
        import time
        stamp = time.time()
        """,
        [],
    ),
    # --- REP004: lock discipline ----------------------------------------
    (
        "rep004-asymmetric-guard",
        "src/repro/serving/mod.py",
        """
        import threading

        class Stats:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self):
                with self._lock:
                    self.count += 1

            def reset(self):
                self.count = 0
        """,
        ["REP004"],
    ),
    (
        "rep004-all-writes-guarded-ok",
        "src/repro/serving/mod.py",
        """
        import threading

        class Stats:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self):
                with self._lock:
                    self.count += 1

            def reset(self):
                with self._lock:
                    self.count = 0
        """,
        [],
    ),
    (
        "rep004-unguarded-everywhere-ok",
        "src/repro/serving/mod.py",
        """
        class Plain:
            def set(self, value):
                self.value = value

            def clear(self):
                self.value = None
        """,
        [],
    ),
    (
        "rep004-out-of-scope-tree-ok",
        "src/repro/core/mod.py",
        """
        import threading

        class Stats:
            def bump(self):
                with self._lock:
                    self.count += 1

            def reset(self):
                self.count = 0
        """,
        [],
    ),
    # --- REP005: shared-memory lifecycle --------------------------------
    (
        "rep005-create-without-teardown",
        "src/repro/serving/mod.py",
        """
        from multiprocessing.shared_memory import SharedMemory

        def publish(size):
            shm = SharedMemory(create=True, size=size)
            return shm.name
        """,
        ["REP005"],
    ),
    (
        "rep005-create-with-finally-ok",
        "src/repro/serving/mod.py",
        """
        from multiprocessing.shared_memory import SharedMemory

        def publish_once(size):
            shm = SharedMemory(create=True, size=size)
            try:
                return bytes(shm.buf[:1])
            finally:
                shm.close()
                shm.unlink()
        """,
        [],
    ),
    (
        "rep005-create-with-release-method-ok",
        "src/repro/serving/mod.py",
        """
        from multiprocessing.shared_memory import SharedMemory

        class Segment:
            def __init__(self, size):
                self._shm = SharedMemory(create=True, size=size)

            def release(self):
                self._shm.close()
                self._shm.unlink()
        """,
        [],
    ),
    (
        "rep005-attach-without-close",
        "src/repro/serving/mod.py",
        """
        from multiprocessing.shared_memory import SharedMemory

        def read(name):
            shm = SharedMemory(name=name)
            return bytes(shm.buf[:1])
        """,
        ["REP005"],
    ),
    (
        "rep005-attach-with-finally-close-ok",
        "src/repro/serving/mod.py",
        """
        from multiprocessing.shared_memory import SharedMemory

        def read(name):
            shm = SharedMemory(name=name)
            try:
                return bytes(shm.buf[:1])
            finally:
                shm.close()
        """,
        [],
    ),
    # --- REP006: no deprecated shims internally -------------------------
    (
        "rep006-model-fit",
        "src/repro/pipeline.py",
        """
        from repro.core.tf_model import TaxonomyFactorModel

        def run(taxonomy, log):
            model = TaxonomyFactorModel(taxonomy)
            model.fit(log)
            return model
        """,
        ["REP006"],
    ),
    (
        "rep006-threaded-trainer-import",
        "src/repro/pipeline.py",
        """
        from repro.parallel.trainer import ThreadedSGDTrainer
        """,
        ["REP006"],
    ),
    (
        "rep006-trainer-module-exempt",
        "src/repro/parallel/trainer.py",
        """
        class ThreadedSGDTrainer:
            pass
        """,
        [],
    ),
    (
        "rep006-load-legacy",
        "src/repro/pipeline.py",
        """
        from repro.serving.bundle import ModelBundle

        def load(path, taxonomy):
            return ModelBundle.load_legacy(path, taxonomy)
        """,
        ["REP006"],
    ),
    (
        "rep006-bundle-module-exempt",
        "src/repro/serving/bundle.py",
        """
        class ModelBundle:
            @classmethod
            def load_legacy(cls, path, taxonomy):
                return cls.load_legacy(path, taxonomy)
        """,
        [],
    ),
    (
        "rep006-trainer-api-ok",
        "src/repro/pipeline.py",
        """
        from repro.core.tf_model import TaxonomyFactorModel
        from repro.train import SerialTrainer

        def run(taxonomy, log):
            model = TaxonomyFactorModel(taxonomy)
            SerialTrainer(model).train(log)
            return model
        """,
        [],
    ),
    # --- REP007: no print() in library code ------------------------------
    (
        "rep007-print-in-library",
        "src/repro/train/mod.py",
        """
        def run(verbose):
            if verbose:
                print("epoch done")
        """,
        ["REP007"],
    ),
    (
        "rep007-cli-exempt",
        "src/repro/cli.py",
        """
        def cmd(args):
            print("served 100 users")
            return 0
        """,
        [],
    ),
    (
        "rep007-main-exempt",
        "src/repro/analysis/__main__.py",
        """
        def main(argv):
            print("2 findings")
            return 1
        """,
        [],
    ),
    (
        "rep007-reporters-exempt",
        "src/repro/analysis/reporters.py",
        """
        def report(findings):
            for finding in findings:
                print(finding)
        """,
        [],
    ),
    (
        "rep007-examples-exempt",
        "examples/repro/quickstart.py",
        """
        print("hello")
        """,
        [],
    ),
    (
        "rep007-logger-ok",
        "src/repro/train/mod.py",
        """
        from repro.utils.logging import get_logger

        logger = get_logger(__name__)

        def run():
            logger.info("epoch done")
        """,
        [],
    ),
    # --- REP008: no blocking calls in the gateway ------------------------
    (
        "rep008-time-sleep",
        "src/repro/gateway/server.py",
        """
        import time

        async def backoff():
            time.sleep(0.1)
        """,
        ["REP008"],
    ),
    (
        "rep008-sleep-alias",
        "src/repro/gateway/loadgen.py",
        """
        from time import sleep as pause

        async def backoff():
            pause(0.1)
        """,
        ["REP008", "REP008"],
    ),
    (
        "rep008-sync-socket",
        "src/repro/gateway/wire.py",
        """
        import socket

        def connect(host, port):
            return socket.create_connection((host, port))
        """,
        ["REP008"],
    ),
    (
        "rep008-untimed-queue-get",
        "src/repro/gateway/batching.py",
        """
        import queue

        work = queue.Queue()

        async def drain():
            return work.get()
        """,
        ["REP008"],
    ),
    (
        "rep008-queue-get-with-timeout-ok",
        "src/repro/gateway/batching.py",
        """
        import queue

        work = queue.Queue()

        def drain():
            return work.get(timeout=0.1)
        """,
        [],
    ),
    (
        "rep008-asyncio-sleep-ok",
        "src/repro/gateway/server.py",
        """
        import asyncio

        async def backoff():
            await asyncio.sleep(0.1)
        """,
        [],
    ),
    (
        "rep008-out-of-scope",
        "src/repro/streaming/runner.py",
        """
        import time

        def wait():
            time.sleep(0.1)
        """,
        [],
    ),
]


@pytest.mark.parametrize(
    "relpath, code, expected",
    [case[1:] for case in RULE_CASES],
    ids=[case[0] for case in RULE_CASES],
)
def test_rule_table(tmp_path, relpath, code, expected):
    """Each rule fires on its positive cases and stays quiet on the rest."""
    result = lint_snippet(tmp_path, relpath, code)
    assert codes_of(result) == expected


def test_pr5_bug_pattern_is_caught(tmp_path):
    """Re-introducing the PR 5 tie-break bug fails the lint.

    The bug: a raw ``argpartition`` top-k outside ``core/topk.py`` picks
    an arbitrary subset of boundary-tied scores, so a sharded merge and
    the single-process path disagree.  REP002 must flag both the
    partition and the follow-up argsort.
    """
    result = lint_snippet(
        tmp_path,
        "src/repro/serving/router.py",
        """
        import numpy as np

        def merge_topk(scores, k):
            top = np.argpartition(-scores, k - 1)[:k]
            return top[np.argsort(-scores[top], kind="stable")]
        """,
    )
    assert codes_of(result) == ["REP002", "REP002"]
    assert result.exit_code() == 1
    assert all(f.severity is Severity.ERROR for f in result.findings)


# ----------------------------------------------------------------------
# Engine plumbing: scoping, test-tree skip, parse errors
# ----------------------------------------------------------------------


def test_test_files_are_skipped_by_default(tmp_path):
    result = lint_snippet(
        tmp_path,
        "src/repro/core/test_mod.py",
        "import random\n",
    )
    assert result.files_scanned == 0 and not result.findings

    result = lint_snippet(
        tmp_path,
        "src/repro/core/test_mod.py",
        "import random\n",
        include_tests=True,
    )
    assert codes_of(result) == ["REP001"]


def test_syntax_error_becomes_rep999(tmp_path):
    result = lint_snippet(tmp_path, "src/repro/core/mod.py", "def broken(:\n")
    assert codes_of(result) == [PARSE_RULE]
    assert result.exit_code() == 1


def test_select_and_ignore_scope_the_rules(tmp_path):
    code = """
    import random
    import numpy as np
    def rank(scores):
        return np.argsort(-scores)
    """
    only_rng = lint_snippet(tmp_path, "src/repro/core/mod.py", code, select=["REP001"])
    assert codes_of(only_rng) == ["REP001"]
    no_rng = lint_snippet(tmp_path, "src/repro/core/mod.py", code, ignore=["REP001"])
    assert codes_of(no_rng) == ["REP002"]
    with pytest.raises(ValueError):
        lint_snippet(tmp_path, "src/repro/core/mod.py", code, select=["NOPE"])


def test_severity_override_downgrades_exit_code(tmp_path):
    result = lint_snippet(
        tmp_path,
        "benchmarks/bench_mod.py",
        "import time\nstart = time.time()\n",
        severities={"REP003": "warning"},
    )
    assert codes_of(result) == ["REP003"]
    assert result.exit_code() == 0
    assert result.exit_code(strict=True) == 1


# ----------------------------------------------------------------------
# Suppressions: justified noqa, REP000 hygiene
# ----------------------------------------------------------------------


def test_justified_noqa_suppresses(tmp_path):
    result = lint_snippet(
        tmp_path,
        "src/repro/core/mod.py",
        """
        import time
        import numpy as np
        def rank(scores):
            return np.argsort(scores)  # repro: noqa[REP002] -- ascending worst-first order for the pruning diagnostic, not a ranking
        """,
    )
    assert not result.findings
    assert [f.rule for f, _ in result.suppressed] == ["REP002"]
    assert result.exit_code() == 0


def test_unjustified_noqa_is_rep000_error(tmp_path):
    result = lint_snippet(
        tmp_path,
        "src/repro/core/mod.py",
        """
        import numpy as np
        def rank(scores):
            return np.argsort(scores)  # repro: noqa[REP002]
        """,
    )
    # The naked noqa suppresses nothing: the REP002 stays active and the
    # suppression itself is flagged.
    assert codes_of(result) == [META_RULE, "REP002"]
    assert result.exit_code() == 1


def test_unused_noqa_is_rep000_warning(tmp_path):
    result = lint_snippet(
        tmp_path,
        "src/repro/core/mod.py",
        "x = 1  # repro: noqa[REP002] -- nothing here actually sorts\n",
    )
    assert codes_of(result) == [META_RULE]
    assert result.findings[0].severity is Severity.WARNING
    assert result.exit_code() == 0
    assert result.exit_code(strict=True) == 1


def test_noqa_lives_in_comments_not_strings():
    suppressions = scan_suppressions(
        'doc = "example: # repro: noqa[REP001] -- not a comment"\n'
        "y = 2  # repro: noqa[REP001, REP002] -- a real waiver\n"
    )
    assert len(suppressions) == 1
    assert suppressions[0].line == 2
    assert suppressions[0].codes == {"REP001", "REP002"}


# ----------------------------------------------------------------------
# Baseline: skeleton, justification gate, fingerprint matching
# ----------------------------------------------------------------------


def test_baseline_roundtrip_grandfathers_findings(tmp_path):
    source = tmp_path / "src" / "repro" / "core" / "mod.py"
    source.parent.mkdir(parents=True)
    source.write_text("import random\n", encoding="utf-8")
    baseline_path = tmp_path / "analysis-baseline.json"

    first = run_analysis([str(source)])
    assert codes_of(first) == ["REP001"]
    write_baseline(first.findings, baseline_path)

    # The skeleton's placeholder justification must not load.
    raw = json.loads(baseline_path.read_text())
    assert raw["entries"][0]["justification"] == TODO_JUSTIFICATION
    with pytest.raises(BaselineError):
        load_baseline(baseline_path)

    raw["entries"][0]["justification"] = "grandfathered pending the seeded rewrite"
    baseline_path.write_text(json.dumps(raw), encoding="utf-8")

    second = run_analysis([str(source)], baseline=load_baseline(baseline_path))
    assert not second.findings
    assert [f.rule for f, _ in second.baselined] == ["REP001"]
    assert not second.unused_baseline
    assert second.exit_code() == 0


def test_baseline_survives_line_drift_but_not_edits(tmp_path):
    source = tmp_path / "src" / "repro" / "core" / "mod.py"
    source.parent.mkdir(parents=True)
    source.write_text("import random\n", encoding="utf-8")
    baseline_path = tmp_path / "analysis-baseline.json"
    write_baseline(run_analysis([str(source)]).findings, baseline_path)
    raw = json.loads(baseline_path.read_text())
    raw["entries"][0]["justification"] = "grandfathered"
    baseline_path.write_text(json.dumps(raw), encoding="utf-8")

    # Pushing the finding to another line keeps the fingerprint match...
    source.write_text("'''docstring'''\n\n\nimport random\n", encoding="utf-8")
    moved = run_analysis([str(source)], baseline=load_baseline(baseline_path))
    assert not moved.findings and len(moved.baselined) == 1

    # ...but editing the flagged line itself invalidates the entry.
    source.write_text("import random as _rnd\n", encoding="utf-8")
    edited = run_analysis([str(source)], baseline=load_baseline(baseline_path))
    assert codes_of(edited) == ["REP001"]
    assert [e.rule for e in edited.unused_baseline] == ["REP001"]


def test_fingerprint_ignores_surrounding_whitespace(tmp_path):
    plain = lint_snippet(tmp_path, "src/repro/core/a.py", "import random\n")
    indented = lint_snippet(
        tmp_path,
        "src/repro/core/a.py",
        "if True:\n    import random\n",
    )
    assert fingerprint(plain.findings[0]) == fingerprint(indented.findings[0])


# ----------------------------------------------------------------------
# CLI: exit codes, JSON report, rule listing
# ----------------------------------------------------------------------


def test_cli_json_report(tmp_path, capsys):
    source = tmp_path / "src" / "repro" / "core" / "mod.py"
    source.parent.mkdir(parents=True)
    source.write_text("import random\n", encoding="utf-8")

    status = analysis_main([str(source), "--format", "json", "--no-baseline"])
    payload = json.loads(capsys.readouterr().out)
    assert status == 1
    assert payload["summary"]["errors"] == 1
    assert [f["rule"] for f in payload["findings"]] == ["REP001"]
    assert all("fingerprint" in f for f in payload["findings"])


def test_cli_list_rules_covers_all_eight(capsys):
    assert analysis_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("REP001", "REP002", "REP003", "REP004", "REP005",
                 "REP006", "REP007", "REP008"):
        assert code in out
    assert sorted(r.code for r in all_rules()) == [
        "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
        "REP007", "REP008",
    ]


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    assert analysis_main([str(tmp_path / "nope")]) == 2


def test_repro_lint_subcommand_dispatches(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["lint", "--list-rules"]) == 0
    assert "REP002" in capsys.readouterr().out


# ----------------------------------------------------------------------
# The meta-gate: the real tree is clean against the committed baseline
# ----------------------------------------------------------------------


def test_tree_is_clean_against_committed_baseline(monkeypatch, capsys):
    """`python -m repro.analysis src benchmarks examples` exits 0 at HEAD.

    This is the same invocation CI's lint-invariants job runs: every
    finding in the tree is either fixed, waived by a justified inline
    noqa, or grandfathered in the committed analysis-baseline.json.
    """
    monkeypatch.chdir(REPO_ROOT)
    status = analysis_main(["src", "benchmarks", "examples"])
    out = capsys.readouterr().out
    assert status == 0, f"invariant linter found new violations:\n{out}"


def test_committed_baseline_is_small_and_justified(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    baseline = load_baseline("analysis-baseline.json")
    entries = baseline.entries
    assert 0 < len(entries) <= 5
    for entry in entries:
        assert len(entry.justification) > 20
        assert entry.justification != TODO_JUSTIFICATION
