"""Tests for score explanations (additive decomposition of Eq. 3)."""

import numpy as np
import pytest

from repro.core.explain import explain_recommendations, explain_score
from repro.core.tf_model import TaxonomyFactorModel
from repro.data.transactions import TransactionLog
from repro.taxonomy.generator import complete_taxonomy
from repro.utils.config import TrainConfig


@pytest.fixture(scope="module")
def taxonomy():
    return complete_taxonomy((2, 2), items_per_leaf=2)


@pytest.fixture(scope="module")
def log():
    return TransactionLog(
        [[[0, 1], [4]], [[2], [6], [7]], [[5]]],
        n_items=8,
    )


@pytest.fixture(scope="module")
def plain_model(taxonomy, log):
    return TaxonomyFactorModel(
        taxonomy, TrainConfig(factors=4, epochs=4, taxonomy_levels=3, seed=0)
    ).fit(log)


@pytest.fixture(scope="module")
def markov_model(taxonomy, log):
    return TaxonomyFactorModel(
        taxonomy,
        TrainConfig(
            factors=4, epochs=4, taxonomy_levels=3, markov_order=2, seed=0
        ),
    ).fit(log)


class TestDecompositionExactness:
    def test_parts_sum_to_score_no_markov(self, plain_model):
        for user in range(3):
            for item in (0, 3, 7):
                explanation = explain_score(plain_model, user, item)
                expected = plain_model.score_items(user)[item]
                assert explanation.score == pytest.approx(expected, abs=1e-10)
                reconstructed = (
                    explanation.long_term
                    + explanation.popularity
                    + explanation.short_term
                )
                assert reconstructed == pytest.approx(expected, abs=1e-10)

    def test_parts_sum_to_score_with_markov(self, markov_model):
        for user in range(3):
            explanation = explain_score(markov_model, user, 5)
            expected = markov_model.score_items(user)[5]
            assert explanation.score == pytest.approx(expected, abs=1e-10)

    def test_explicit_history(self, markov_model):
        history = [np.array([0, 1])]
        explanation = explain_score(markov_model, 0, 6, history=history)
        expected = markov_model.score_items(0, history=history)[6]
        assert explanation.score == pytest.approx(expected, abs=1e-10)


class TestStructure:
    def test_one_term_per_chain_level(self, plain_model, taxonomy):
        explanation = explain_score(plain_model, 0, 0)
        assert len(explanation.long_term_by_level) == 3  # levels = 3
        assert len(explanation.bias_by_level) == 3
        chain_nodes = [node for node, _ in explanation.long_term_by_level]
        assert chain_nodes[0] == taxonomy.node_of_item(0)

    def test_no_short_term_without_markov(self, plain_model):
        explanation = explain_score(plain_model, 0, 0)
        assert explanation.short_term_by_item == []
        assert explanation.short_term == 0.0

    def test_short_term_lists_previous_items(self, markov_model, log):
        explanation = explain_score(markov_model, 1, 3)
        history_items = set(log.user_items(1).tolist())
        for prev, _ in explanation.short_term_by_item:
            assert prev in history_items

    def test_duplicate_previous_items_merged(self, markov_model):
        history = [np.array([2]), np.array([2])]
        explanation = explain_score(markov_model, 0, 4, history=history)
        previous = [p for p, _ in explanation.short_term_by_item]
        assert len(previous) == len(set(previous))

    def test_top_reason_is_a_label(self, markov_model):
        explanation = explain_score(markov_model, 0, 1)
        assert explanation.top_reason() in {
            "long-term interest",
            "popularity",
            "recent purchases",
        }

    def test_describe_renders(self, plain_model, taxonomy):
        text = explain_score(plain_model, 0, 0).describe(taxonomy)
        assert "long-term" in text and "popularity" in text

    def test_invalid_item(self, plain_model):
        with pytest.raises(ValueError):
            explain_score(plain_model, 0, 99)


class TestExplainRecommendations:
    def test_matches_recommend_order(self, plain_model):
        explanations = explain_recommendations(
            plain_model, 0, k=3, exclude_purchased=False
        )
        items = [e.item for e in explanations]
        expected = plain_model.recommend(0, k=3, exclude_purchased=False)
        assert items == expected.tolist()

    def test_scores_descending(self, plain_model):
        explanations = explain_recommendations(
            plain_model, 1, k=4, exclude_purchased=False
        )
        scores = [e.score for e in explanations]
        assert scores == sorted(scores, reverse=True)
