"""Tests for the HTTP serving edge (``repro.gateway``).

Covers the wire format, the coalescer's routing/determinism contract,
admission control (shed + drain), the server's routes and error mapping,
drain-during-swap coherence (no response ever pairs a row with a retired
generation), the load generator's seeded determinism, and the
``ShardRequest`` payload migration with deadline propagation.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np
import pytest

from repro.gateway import (
    SHAPES,
    AdmissionController,
    Coalescer,
    Gateway,
    GatewayConfig,
    LoadGenerator,
    Overloaded,
    zipfian_weights,
)
from repro.gateway.loadgen import shape_diurnal, shape_flash
from repro.gateway.wire import (
    HttpError,
    Request,
    Response,
    encode_request,
    encode_response,
    read_request,
    read_response,
)
from repro.obs.metrics import MetricsRegistry
from repro.serving import RecommenderService
from repro.serving.sharding import (
    DeadlineExceeded,
    ShardRequest,
    ShardRouter,
    _ShardLink,
    _WorkerState,
)


class FakeBackend:
    """Deterministic in-process backend: row ``i`` repeats ``users[i]``."""

    def __init__(self, n_users=100, delay_s=0.0):
        self.generation = 0
        self.n_users = n_users
        self.delay_s = delay_s
        self.calls = []

    def recommend_batch(self, users, k=10, histories=None):
        if self.delay_s:
            time.sleep(self.delay_s)
        self.calls.append(list(users))
        return np.asarray(
            [[-1] * k if u is None else [int(u)] * k for u in users],
            dtype=np.int64,
        )

    def swap_model(self, model, popularity=None):
        self.generation += 1


class DeadlineBackend(FakeBackend):
    """Records the ``deadline`` keyword the coalescer forwards."""

    def __init__(self):
        super().__init__()
        self.deadlines = []

    def recommend_batch(self, users, k=10, histories=None, deadline=None):
        self.deadlines.append(deadline)
        return super().recommend_batch(users, k=k, histories=histories)


async def _roundtrip(port, method, path, payload=None):
    """One HTTP exchange on a fresh connection."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode()
        writer.write(encode_request(method, path, body))
        await writer.drain()
        return await read_response(reader)
    finally:
        writer.close()


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestWire:
    def _serve_bytes(self, blob):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(blob)
            reader.feed_eof()
            return await read_request(reader)

        return asyncio.run(run())

    def test_request_roundtrip(self):
        blob = encode_request(
            "POST", "/v1/recommend?x=1", json.dumps({"user": 3}).encode()
        )
        request = self._serve_bytes(blob)
        assert request.method == "POST"
        assert request.path == "/v1/recommend"
        assert request.query == "x=1"
        assert request.json() == {"user": 3}
        assert request.keep_alive  # HTTP/1.1 default

    def test_clean_eof_returns_none(self):
        assert self._serve_bytes(b"") is None

    def test_partial_head_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            self._serve_bytes(b"POST /v1/recommend HTTP/1.1\r\n")
        assert excinfo.value.status == 400

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            self._serve_bytes(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_oversized_body_is_413(self):
        blob = encode_request("POST", "/v1/recommend", b"x" * 100)

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(blob)
            reader.feed_eof()
            return await read_request(reader, max_body_bytes=10)

        with pytest.raises(HttpError) as excinfo:
            asyncio.run(run())
        assert excinfo.value.status == 413

    def test_bad_json_body_is_400(self):
        request = Request(method="POST", path="/", body=b"{nope")
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_response_roundtrip_with_headers(self):
        blob = encode_response(
            Response.json_payload(429, {"e": 1}, headers={"Retry-After": "2"})
        )

        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(blob)
            reader.feed_eof()
            return await read_response(reader)

        response = asyncio.run(run())
        assert response.status == 429
        assert response.headers["retry-after"] == "2"
        assert response.json() == {"e": 1}


# ----------------------------------------------------------------------
# Coalescer
# ----------------------------------------------------------------------
class TestCoalescer:
    def test_interleaved_submits_route_rows_to_the_right_client(self):
        """Many concurrent clients, shuffled arrival order, one answer each."""
        backend = FakeBackend()

        async def run():
            coalescer = Coalescer(backend, max_batch=8, max_delay_s=0.01)
            users = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3]
            results = await asyncio.gather(
                *(coalescer.submit(u, k=4) for u in users)
            )
            return users, results

        users, results = asyncio.run(run())
        for user, result in zip(users, results):
            assert result.row.tolist() == [user] * 4
        # Coalescing actually happened: fewer backend calls than clients.
        assert 1 <= len(backend.calls) <= len(users) // 4

    def test_rows_bit_identical_to_single_user_reference(self):
        """PR 5 determinism: coalescing changes batching, never content."""
        backend = FakeBackend()
        reference = {
            u: backend.recommend_batch([u], k=6)[0].tolist() for u in range(10)
        }
        backend.calls.clear()

        async def run():
            coalescer = Coalescer(backend, max_batch=4, max_delay_s=0.005)
            return await asyncio.gather(
                *(coalescer.submit(u, k=6) for u in range(10))
            )

        for user, result in enumerate(asyncio.run(run())):
            assert result.row.tolist() == reference[user]

    def test_max_delay_flushes_partial_batch(self):
        backend = FakeBackend()

        async def run():
            coalescer = Coalescer(backend, max_batch=1000, max_delay_s=0.01)
            started = time.monotonic()
            result = await coalescer.submit(5, k=3)
            return result, time.monotonic() - started

        result, elapsed = asyncio.run(run())
        assert result.row.tolist() == [5, 5, 5]
        assert result.batch_size == 1
        assert elapsed < 5.0  # flushed by the timer, not stuck forever

    def test_distinct_k_buckets_do_not_mix(self):
        backend = FakeBackend()

        async def run():
            coalescer = Coalescer(backend, max_batch=2, max_delay_s=0.01)
            return await asyncio.gather(
                coalescer.submit(1, k=3),
                coalescer.submit(2, k=5),
                coalescer.submit(3, k=3),
                coalescer.submit(4, k=5),
            )

        a, b, c, d = asyncio.run(run())
        assert len(a.row) == 3 and len(c.row) == 3
        assert len(b.row) == 5 and len(d.row) == 5

    def test_backend_failure_propagates_to_every_waiter(self):
        class Exploding:
            generation = 0

            def recommend_batch(self, users, k=10, histories=None):
                raise RuntimeError("scan failed")

        async def run():
            coalescer = Coalescer(Exploding(), max_batch=2, max_delay_s=0.01)
            return await asyncio.gather(
                coalescer.submit(1), coalescer.submit(2),
                return_exceptions=True,
            )

        results = asyncio.run(run())
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_deadline_forwarded_only_when_every_member_has_one(self):
        backend = DeadlineBackend()

        async def run():
            coalescer = Coalescer(backend, max_batch=2, max_delay_s=0.01)
            far = time.monotonic() + 60.0
            await asyncio.gather(
                coalescer.submit(1, deadline=far),
                coalescer.submit(2, deadline=far + 5.0),
            )
            await asyncio.gather(
                coalescer.submit(3, deadline=far), coalescer.submit(4)
            )
            return far

        far = asyncio.run(run())
        # First batch carried the tightest member deadline …
        assert backend.deadlines[0] == pytest.approx(far)
        # … but a mixed batch forwards none (no early-failing its
        # unbounded members).
        assert backend.deadlines[1] is None

    def test_batch_size_metric_recorded(self):
        registry = MetricsRegistry()
        backend = FakeBackend()

        async def run():
            coalescer = Coalescer(
                backend, max_batch=4, max_delay_s=0.01, registry=registry
            )
            await asyncio.gather(*(coalescer.submit(u) for u in range(4)))

        asyncio.run(run())
        series = [
            m
            for m in registry.snapshot()["metrics"]
            if m["name"] == "repro_gateway_batch_rows"
        ]
        assert series and series[0]["count"] >= 1


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_sheds_past_max_inflight(self):
        async def run():
            admission = AdmissionController(max_inflight=1, retry_after_s=0.2)
            async with admission.slot():
                with pytest.raises(Overloaded) as excinfo:
                    await admission.acquire()
                return excinfo.value

        exc = asyncio.run(run())
        assert exc.retry_after_s == pytest.approx(0.2)
        assert exc.retry_after_header == "1"

    def test_zero_inflight_sheds_everything(self):
        async def run():
            admission = AdmissionController(max_inflight=0)
            with pytest.raises(Overloaded):
                await admission.acquire()

        asyncio.run(run())

    def test_drain_waits_for_idle_and_parks_arrivals(self):
        """The 0-stale/0-dropped choreography, observed step by step."""
        events = []

        async def run():
            admission = AdmissionController(max_inflight=8)

            async def request(name, hold_s):
                async with admission.slot():
                    events.append(f"{name}:admitted")
                    await asyncio.sleep(hold_s)
                events.append(f"{name}:done")

            async def swap():
                await asyncio.sleep(0.01)  # let early requests get admitted
                async with admission.drain():
                    events.append(f"swap:quiet(inflight={admission.inflight})")
                events.append("swap:done")

            early = asyncio.create_task(request("early", 0.05))
            swapper = asyncio.create_task(swap())
            await asyncio.sleep(0.02)  # drain is now parked across the door
            late = asyncio.create_task(request("late", 0.0))
            await asyncio.sleep(0.005)
            assert admission.draining and admission.queued == 1
            await asyncio.gather(early, swapper, late)

        asyncio.run(run())
        assert events.index("early:done") < events.index("swap:quiet(inflight=0)")
        assert events.index("swap:quiet(inflight=0)") < events.index("late:admitted")

    def test_drain_queue_bound_sheds_excess_waiters(self):
        async def run():
            admission = AdmissionController(max_inflight=8, max_queued=1)
            async with admission.slot():
                drain_task = asyncio.create_task(self._drain(admission))
                await asyncio.sleep(0.01)  # drain parked, waiting for idle
                waiter = asyncio.create_task(admission.acquire())
                await asyncio.sleep(0.01)
                with pytest.raises(Overloaded):
                    await admission.acquire()  # queue already full
                waiter.cancel()
                drain_task.cancel()

        asyncio.run(run())

    @staticmethod
    async def _drain(admission):
        async with admission.drain():
            pass


# ----------------------------------------------------------------------
# The server, end to end over real sockets
# ----------------------------------------------------------------------
class TestGatewayServer:
    def test_recommend_healthz_metrics_and_errors(self):
        backend = FakeBackend(n_users=42)

        async def run():
            async with Gateway(
                backend, GatewayConfig(max_delay_s=0.001)
            ) as gateway:
                health = await _roundtrip(gateway.port, "GET", "/healthz")
                rec = await _roundtrip(
                    gateway.port, "POST", "/v1/recommend", {"user": 7, "k": 4}
                )
                batch = await _roundtrip(
                    gateway.port, "POST", "/v1/recommend",
                    {"users": [1, 2], "k": 3},
                )
                metrics = await _roundtrip(gateway.port, "GET", "/metrics")
                missing = await _roundtrip(gateway.port, "GET", "/nope")
                wrong_method = await _roundtrip(gateway.port, "GET", "/v1/recommend")
                bad_k = await _roundtrip(
                    gateway.port, "POST", "/v1/recommend", {"user": 1, "k": 0}
                )
                return health, rec, batch, metrics, missing, wrong_method, bad_k

        health, rec, batch, metrics, missing, wrong_method, bad_k = asyncio.run(run())
        assert health.status == 200
        assert health.json() == {
            "status": "ok", "generation": 0, "inflight": 0, "users": 42,
        }
        assert rec.status == 200
        assert rec.json()["items"] == [7, 7, 7, 7]
        assert rec.json()["generation"] == 0
        assert batch.status == 200
        assert batch.json()["items"] == [[1, 1, 1], [2, 2, 2]]
        assert metrics.status == 200
        assert "repro_gateway_request_latency_seconds" in metrics.body.decode()
        assert "repro_gateway_requests_total" in metrics.body.decode()
        assert missing.status == 404
        assert wrong_method.status == 405
        assert bad_k.status == 400

    def test_keep_alive_serves_many_requests_on_one_connection(self):
        backend = FakeBackend()

        async def run():
            async with Gateway(
                backend, GatewayConfig(max_delay_s=0.001)
            ) as gateway:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )
                statuses = []
                try:
                    for user in range(5):
                        writer.write(encode_request(
                            "POST", "/v1/recommend",
                            json.dumps({"user": user}).encode(),
                        ))
                        await writer.drain()
                        response = await read_response(reader)
                        statuses.append(response.status)
                finally:
                    writer.close()
                return statuses

        assert asyncio.run(run()) == [200] * 5

    def test_overload_answers_429_with_retry_after(self):
        backend = FakeBackend()

        async def run():
            config = GatewayConfig(max_inflight=0, retry_after_s=0.25)
            async with Gateway(backend, config) as gateway:
                shed = await _roundtrip(
                    gateway.port, "POST", "/v1/recommend", {"user": 1}
                )
                health = await _roundtrip(gateway.port, "GET", "/healthz")
                return shed, health

        shed, health = asyncio.run(run())
        assert shed.status == 429
        assert shed.headers["retry-after"] == "1"
        assert health.status == 200  # health bypasses admission

    def test_expired_deadline_answers_504(self):
        backend = FakeBackend(delay_s=0.05)

        async def run():
            async with Gateway(
                backend, GatewayConfig(max_delay_s=0.0)
            ) as gateway:
                return await _roundtrip(
                    gateway.port, "POST", "/v1/recommend",
                    {"user": 1, "deadline_ms": 1},
                )

        assert asyncio.run(run()).status == 504

    def test_malformed_json_answers_400(self):
        backend = FakeBackend()

        async def run():
            async with Gateway(backend, GatewayConfig()) as gateway:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", gateway.port
                )
                try:
                    writer.write(encode_request("POST", "/v1/recommend", b"{nope"))
                    await writer.drain()
                    return await read_response(reader)
                finally:
                    writer.close()

        assert asyncio.run(run()).status == 400


# ----------------------------------------------------------------------
# Drain-during-swap: the 0-stale / 0-dropped contract
# ----------------------------------------------------------------------
class TestSwapUnderLoad:
    def test_no_response_pairs_a_row_with_a_retired_generation(
        self, tf_model, mf_model, split
    ):
        """Hammer the gateway while the model hot-swaps underneath it.

        Generations alternate between two real models; every 200
        response's items must equal the reference rows of the generation
        it claims to have been served by.  A stale pair (old rows, new
        generation — or the reverse) means the drain leaked a request
        across a publication.
        """
        service = RecommenderService(tf_model, history_log=split.train)
        references = {
            0: RecommenderService(tf_model, history_log=split.train),
            1: RecommenderService(mf_model, history_log=split.train),
        }
        users = list(range(12))
        k = 8
        expected = {
            parity: {
                u: ref.recommend_batch([u], k=k)[0].tolist() for u in users
            }
            for parity, ref in references.items()
        }
        mismatches = []
        statuses = []

        async def client(gateway, user):
            for _ in range(12):
                response = await _roundtrip(
                    gateway.port, "POST", "/v1/recommend", {"user": user, "k": k}
                )
                statuses.append(response.status)
                if response.status != 200:
                    continue
                payload = response.json()
                parity = payload["generation"] % 2
                if payload["items"] != [
                    i for i in expected[parity][user] if i >= 0
                ]:
                    mismatches.append((user, payload["generation"]))

        async def swapper(gateway):
            for generation in range(1, 5):
                await asyncio.sleep(0.01)
                model = mf_model if generation % 2 else tf_model
                seen = await gateway.swap_model(model)
                assert seen == generation

        async def run():
            config = GatewayConfig(
                max_batch=8, max_delay_s=0.001, max_inflight=64, max_queued=256
            )
            async with Gateway(service, config) as gateway:
                await asyncio.gather(
                    swapper(gateway),
                    *(client(gateway, u) for u in users),
                )

        asyncio.run(run())
        assert mismatches == []  # 0 stale
        assert statuses and all(s == 200 for s in statuses)  # 0 dropped
        assert service.generation == 4

    def test_draining_healthz_reports_state(self):
        backend = FakeBackend()

        async def run():
            async with Gateway(backend, GatewayConfig()) as gateway:
                async with gateway.admission.drain():
                    response = await _roundtrip(gateway.port, "GET", "/healthz")
                    return response.json()["status"]

        assert asyncio.run(run()) == "draining"


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------
class TestLoadGenerator:
    def test_zipfian_weights_normalized_and_head_heavy(self):
        weights = zipfian_weights(100, exponent=1.0)
        assert weights.sum() == pytest.approx(1.0)
        assert weights[0] > weights[1] > weights[50]
        flat = zipfian_weights(10, exponent=0.0)
        np.testing.assert_allclose(flat, 0.1)

    def test_shapes_are_bounded_and_named(self):
        assert set(SHAPES) == {"constant", "diurnal", "flash"}
        for shape in SHAPES.values():
            for frac in np.linspace(0.0, 1.0, 21):
                assert 0.0 < shape(float(frac)) <= 1.0
        assert shape_flash(0.5) == 1.0 and shape_flash(0.05) == pytest.approx(0.3)
        assert shape_diurnal(0.5) == pytest.approx(1.0)

    def test_user_draws_replay_for_a_fixed_seed(self):
        from repro.utils.rng import derive_seed, ensure_rng

        first = LoadGenerator("127.0.0.1", 1, n_users=500, seed=99)
        second = LoadGenerator("127.0.0.1", 1, n_users=500, seed=99)
        other = LoadGenerator("127.0.0.1", 1, n_users=500, seed=100)
        rng_a = ensure_rng(derive_seed(99, 0))
        rng_b = ensure_rng(derive_seed(99, 0))
        rng_c = ensure_rng(derive_seed(100, 0))
        draws_a = [first.draw_user(rng_a) for _ in range(200)]
        draws_b = [second.draw_user(rng_b) for _ in range(200)]
        draws_c = [other.draw_user(rng_c) for _ in range(200)]
        assert draws_a == draws_b
        assert draws_a != draws_c

    def test_active_clients_follows_the_shape(self):
        generator = LoadGenerator(
            "127.0.0.1", 1, concurrency=10, shape="flash"
        )
        assert generator.active_clients(0.5) == 10
        assert generator.active_clients(0.05) == 3
        assert generator.active_clients(0.0) >= 1

    def test_short_closed_loop_run_against_a_live_gateway(self):
        backend = FakeBackend(n_users=50)

        async def run():
            registry = MetricsRegistry()
            async with Gateway(
                backend, GatewayConfig(max_delay_s=0.001), registry=registry
            ) as gateway:
                generator = LoadGenerator(
                    "127.0.0.1", gateway.port,
                    n_users=50, duration_s=0.3, concurrency=4, seed=7,
                    registry=registry,
                )
                return await generator.run(), registry

        report, registry = asyncio.run(run())
        assert report.ok > 0
        assert report.errors == 0
        assert report.generations == [0]
        assert report.qps > 0
        assert report.p99_ms >= report.p50_ms >= 0
        names = {m["name"] for m in registry.snapshot()["metrics"]}
        assert "repro_gateway_client_latency_seconds" in names

    def test_report_as_dict_is_json_serializable(self):
        report = LoadGenerator("h", 1).__class__  # class exists
        from repro.gateway.loadgen import LoadReport

        payload = LoadReport(requests=3, ok=2, shed=1).as_dict()
        assert json.loads(json.dumps(payload)) == payload


# ----------------------------------------------------------------------
# ShardRequest payloads + deadline propagation (satellite of this PR)
# ----------------------------------------------------------------------
class TestShardRequest:
    def test_unpack_accepts_dataclass_and_legacy_tuples(self):
        users = np.asarray([1, 2], dtype=np.int64)
        request = ShardRequest(users=users, k=5, deadline=123.0)
        assert request.version == 1
        unpacked = _WorkerState._unpack(request)
        assert unpacked[0] is users
        assert unpacked[1] == 5 and unpacked[4] == 123.0
        legacy3 = _WorkerState._unpack((users, 7, None))
        assert legacy3[1] == 7 and legacy3[3] is None and legacy3[4] is None
        legacy4 = _WorkerState._unpack((users, 7, None, "ctx"))
        assert legacy4[3] == "ctx" and legacy4[4] is None

    def test_check_deadline_raises_typed_error_when_expired(self):
        _WorkerState._check_deadline(None)
        _WorkerState._check_deadline(time.monotonic() + 60.0)
        with pytest.raises(DeadlineExceeded):
            _WorkerState._check_deadline(time.monotonic() - 0.01)

    def test_link_decodes_expired_status_as_deadline_exceeded(self):
        link = _ShardLink(index=0, process=None, conn=None)
        with pytest.raises(DeadlineExceeded, match="shard 0"):
            link._decode("expired", "too late")
        with pytest.raises(Exception, match="request failed"):
            link._decode("error", "boom")
        assert link._decode("ok", 42) == 42

    def test_router_rejects_already_expired_deadline(self, tf_model, split):
        with ShardRouter(tf_model, n_shards=2, history_log=split.train) as router:
            with pytest.raises(DeadlineExceeded):
                router.recommend_batch(
                    [1, 2], k=5, deadline=time.monotonic() - 1.0
                )
            # A generous deadline serves normally, bit-identical.
            rows = router.recommend_batch(
                [1, 2], k=5, deadline=time.monotonic() + 60.0
            )
            baseline = router.recommend_batch([1, 2], k=5)
            np.testing.assert_array_equal(rows, baseline)
            assert router.n_users == tf_model.factor_set.n_users


# ----------------------------------------------------------------------
# Gateway over a shard fleet (integration)
# ----------------------------------------------------------------------
class TestGatewayOverFleet:
    def test_gateway_serves_router_rows_and_maps_expiry_to_504(
        self, tf_model, split
    ):
        with ShardRouter(tf_model, n_shards=2, history_log=split.train) as router:
            reference = router.recommend_batch([3], k=6)[0]

            async def run():
                async with Gateway(
                    router, GatewayConfig(max_delay_s=0.001)
                ) as gateway:
                    ok = await _roundtrip(
                        gateway.port, "POST", "/v1/recommend", {"user": 3, "k": 6}
                    )
                    expired = await _roundtrip(
                        gateway.port, "POST", "/v1/recommend",
                        {"user": 3, "k": 6, "deadline_ms": 0},
                    )
                    return ok, expired

            ok, expired = asyncio.run(run())
            assert ok.status == 200
            assert ok.json()["items"] == [int(i) for i in reference if i >= 0]
            assert expired.status == 504
