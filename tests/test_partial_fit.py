"""Tests for incremental training (partial_fit / ensure_users)."""

import numpy as np
import pytest

from repro.core.factors import FactorSet
from repro.core.tf_model import NotFittedError, TaxonomyFactorModel
from repro.data.transactions import TransactionLog
from repro.taxonomy.generator import complete_taxonomy
from repro.utils.config import TrainConfig


@pytest.fixture()
def taxonomy():
    return complete_taxonomy((2, 2), items_per_leaf=2)


@pytest.fixture()
def log():
    return TransactionLog(
        [[[0, 1], [4]], [[2], [6]]],
        n_items=8,
    )


class TestEnsureUsers:
    def test_grows_user_matrix(self, taxonomy):
        fs = FactorSet(2, taxonomy, 4, 2, seed=0)
        before = fs.user.copy()
        fs.ensure_users(5, seed=1)
        assert fs.user.shape == (5, 4)
        np.testing.assert_array_equal(fs.user[:2], before)

    def test_noop_when_smaller(self, taxonomy):
        fs = FactorSet(3, taxonomy, 4, 2, seed=0)
        before = fs.user.copy()
        fs.ensure_users(2)
        assert fs.user.shape == (3, 4)
        np.testing.assert_array_equal(fs.user, before)


class TestPartialFit:
    def test_continues_training(self, taxonomy, log):
        model = TaxonomyFactorModel(
            taxonomy, TrainConfig(factors=4, epochs=2, taxonomy_levels=3, seed=0)
        ).fit(log)
        w_before = model.factor_set.w.copy()
        model.partial_fit(epochs=2)
        assert len(model.history_) == 4
        assert not np.allclose(model.factor_set.w, w_before)

    def test_requires_fit_first(self, taxonomy, log):
        model = TaxonomyFactorModel(taxonomy)
        with pytest.raises(NotFittedError):
            model.partial_fit(log)

    def test_new_log_with_more_users(self, taxonomy, log):
        model = TaxonomyFactorModel(
            taxonomy, TrainConfig(factors=4, epochs=2, taxonomy_levels=3, seed=0)
        ).fit(log)
        bigger = TransactionLog(
            log.to_lists() + [[[3], [5]], [[7]]], n_items=8
        )
        model.partial_fit(bigger, epochs=1)
        assert model.n_users == 4
        assert np.isfinite(model.score_items(3)).all()

    def test_item_mismatch_rejected(self, taxonomy, log):
        model = TaxonomyFactorModel(
            taxonomy, TrainConfig(factors=4, epochs=1, taxonomy_levels=3, seed=0)
        ).fit(log)
        with pytest.raises(ValueError, match="item universe"):
            model.partial_fit(TransactionLog([[[0]]], n_items=3))

    def test_more_epochs_do_not_hurt_training_loss(self, taxonomy):
        rng = np.random.default_rng(0)
        rows = [
            [[int(rng.integers(0, 8))] for _ in range(3)] for _ in range(60)
        ]
        log = TransactionLog(rows, n_items=8)
        model = TaxonomyFactorModel(
            taxonomy, TrainConfig(factors=4, epochs=2, taxonomy_levels=3, seed=0)
        ).fit(log)
        first = model.history_[-1].loss
        model.partial_fit(epochs=6)
        assert model.history_[-1].loss <= first * 1.1

    def test_preserves_existing_user_factors_on_growth(self, taxonomy, log):
        model = TaxonomyFactorModel(
            taxonomy, TrainConfig(factors=4, epochs=1, taxonomy_levels=3, seed=0)
        ).fit(log)
        user0 = model.factor_set.user[0].copy()
        bigger = TransactionLog(
            log.to_lists() + [[[3]]], n_items=8
        )
        # Train 0 epochs: just grow; user 0's factors must be untouched.
        model.partial_fit(bigger, epochs=0)
        np.testing.assert_array_equal(model.factor_set.user[0], user0)
