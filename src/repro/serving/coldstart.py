"""Protocol adapter for cold-start users served via fold-in.

:func:`~repro.core.folding.fold_in_user` estimates a user vector against
frozen item factors; :class:`FoldInRecommender` wraps that into the
:class:`~repro.serving.protocol.Recommender` shape, so a brand-new user with
a purchase history can be served through exactly the same code path as a
trained user.  "User" indices are meaningless here — identity lives entirely
in the supplied history — so the ``user``/``users`` arguments are accepted
(per the protocol) and ignored.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.folding import fold_in_user, fold_in_users, score_for_vector
from repro.core.tf_model import TaxonomyFactorModel
from repro.core.topk import top_k_rows
from repro.serving.protocol import History
from repro.utils.rng import RngLike


class FoldInRecommender:
    """Serve unseen users from their histories alone.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.tf_model.TaxonomyFactorModel`; its
        factors stay frozen.
    steps, learning_rate, reg, seed:
        Fold-in SGD parameters (see :func:`~repro.core.folding.fold_in_user`).
        The fixed *seed* makes every method deterministic per history, so
        batch and per-user results agree.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import SyntheticConfig, TaxonomyFactorModel, generate_dataset
    >>> from repro.train import train_model
    >>> data = generate_dataset(SyntheticConfig(n_users=40, seed=0))
    >>> model = train_model(
    ...     TaxonomyFactorModel(data.taxonomy, factors=4, epochs=1, seed=0),
    ...     data.log,
    ... )
    >>> fold = FoldInRecommender(model, steps=10, seed=0)
    >>> fold.recommend(k=3, history=[np.array([0, 1])]).shape
    (3,)
    """

    def __init__(
        self,
        model: TaxonomyFactorModel,
        steps: int = 200,
        learning_rate: float = 0.05,
        reg: Optional[float] = None,
        seed: RngLike = 0,
    ):
        self.model = model
        self.steps = steps
        self.learning_rate = learning_rate
        self.reg = reg
        self.seed = seed

    def user_vector(self, history: Optional[History]) -> np.ndarray:
        """The folded-in user vector for *history* (zeros when empty)."""
        return fold_in_user(
            self.model,
            list(history) if history else [],
            steps=self.steps,
            learning_rate=self.learning_rate,
            reg=self.reg,
            seed=self.seed,
        )

    # ------------------------------------------------------------------
    # Recommender protocol
    # ------------------------------------------------------------------
    def score_items(
        self,
        user: int = -1,
        history: Optional[History] = None,
        items: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Affinity scores of the folded-in vector for *items* (all by default)."""
        return score_for_vector(
            self.model, self.user_vector(history), history, items
        )

    def score_matrix(
        self,
        users: np.ndarray,
        histories: Optional[Sequence[History]] = None,
    ) -> np.ndarray:
        """Dense score matrix for a batch of histories (one row each)."""
        n = len(users)
        if histories is not None and len(histories) != n:
            raise ValueError(
                f"got {len(histories)} histories for {n} users"
            )
        if n == 0:
            return np.empty((0, self.model.n_items))
        resolved = [
            list(histories[i]) if histories is not None and histories[i] else []
            for i in range(n)
        ]
        vectors = fold_in_users(
            self.model, resolved, steps=self.steps,
            learning_rate=self.learning_rate, reg=self.reg, seed=self.seed,
        )
        return np.stack([
            score_for_vector(self.model, vectors[i], resolved[i])
            for i in range(n)
        ])

    def recommend(
        self,
        user: int = -1,
        k: int = 10,
        history: Optional[History] = None,
        **_ignored,
    ) -> np.ndarray:
        """Top-*k* new items for *history* (history items excluded)."""
        row = self.recommend_batch(
            np.empty(1, dtype=np.int64), k=k, histories=[history]
        )[0]
        return row[row >= 0]

    def recommend_batch(
        self,
        users: np.ndarray,
        k: int = 10,
        histories: Optional[Sequence[History]] = None,
    ) -> np.ndarray:
        """Vectorized top-*k* per history; ``-1``-padded, best first."""
        scores = self.score_matrix(users, histories)
        if histories is not None:
            for row, history in enumerate(histories):
                if history:
                    bought = np.unique(np.concatenate(list(history)))
                    scores[row, bought] = -np.inf
        return top_k_rows(scores, k)
