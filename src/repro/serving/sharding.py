"""Sharded multi-process serving: one model, N worker processes, zero copies.

A single :class:`~repro.serving.service.RecommenderService` is bounded by
the GIL: one Python process can only push one scoring pass at a time, no
matter how many cores the box has.  This module turns the service into a
**fleet**:

* :class:`SharedFactors` publishes the model's factor matrices exactly
  once into POSIX shared memory (``multiprocessing.shared_memory``).
  Every shard worker maps the same pages and reconstructs a read-only
  :class:`~repro.core.factors.FactorSet` over them with
  :meth:`~repro.core.factors.FactorSet.from_arrays` — zero-copy reads,
  no per-worker model duplication;
* :func:`shard_of` hashes user ids onto shards (a Murmur3-style mixer,
  so striding or clustered id spaces still balance);
* each shard process hosts a full :class:`RecommenderService` (fold-in,
  popularity fallback, query cache, optional taxonomy cascade) over the
  shared factors and serves the users hashed to it;
* :class:`ShardRouter` is the front door: it batches each request's rows
  per shard, scatters them over duplex pipes, gathers the answers, and —
  in the item-partitioned mode — merges per-shard top-k pages with
  :func:`repro.core.topk.merge_top_k_rows`.

Partitioning modes
------------------
``partition="users"`` (default)
    Users are hashed across shards; every shard scores its users against
    the full catalog.  Results are **bit-identical** to the unsharded
    service — same arrays, same BLAS calls, same tie behavior — because
    each row runs the exact single-process code path inside one worker.
``partition="items"``
    Every shard serves all users but scores only its contiguous slice of
    the item catalog, returning a top-k *page* (items + scores); the
    router k-way merges the pages.  This is the shape for catalogs too
    large to score in one pass; cold users are routed whole to one shard
    (every shard maps the full factors, so any of them can).

Hot swap across the fleet
-------------------------
:meth:`ShardRouter.swap_model` extends the PR 2 swap-coherence
invariants across processes.  A publication (a) copies the new factors
into **generation-stamped** shared-memory segments, (b) sends a swap
message down every shard's pipe, and (c) waits for every shard to
acknowledge before retiring the previous generation's segments.  Pipes
are FIFO, batches and swaps are serialized through a readers/writer
lock (one batch sees one generation, exactly like the single-process
service), and each worker applies its local
:meth:`~repro.serving.service.RecommenderService.swap_model` (which
flushes and generation-stamps its query cache), so any request sent
after ``swap_model`` returns is served by the new model on every shard —
no stale reads, no downtime.  A publication that fails part-way closes
the router (fail-stop) rather than ever serving a split-brain fleet.
:class:`~repro.streaming.swap.HotSwapper` accepts a router wherever it
accepts a service, so a streaming pipeline publishes to the whole fleet
with one call.

Examples
--------
The shared-memory layer round-trips a factor set without copying:

>>> import numpy as np
>>> from repro import SyntheticConfig, TaxonomyFactorModel, generate_dataset
>>> from repro.train import train_model
>>> from repro.serving.sharding import SharedFactors, attach_factors
>>> data = generate_dataset(SyntheticConfig(n_users=50, seed=0))
>>> model = train_model(
...     TaxonomyFactorModel(data.taxonomy, factors=4, epochs=1, seed=0),
...     data.log,
... )
>>> shared = SharedFactors(model.factor_set, generation=0)
>>> fs, segments = attach_factors(shared.handle, data.taxonomy)
>>> bool(np.array_equal(fs.user, model.factor_set.user))
True
>>> fs.user.flags.writeable
False
>>> del fs  # drop the views before closing the mapping
>>> for segment in segments:
...     segment.close()
>>> shared.release()

Spinning up an actual fleet (see ``python -m repro serve-sharded`` and
``benchmarks/bench_sharding.py`` for complete runs)::

    router = ShardRouter(model, n_shards=4, history_log=split.train)
    with router:
        top = router.recommend_batch(users, k=10)   # == unsharded output
        router.swap_model(updater.snapshot())       # fleet-wide hot swap
"""

from __future__ import annotations

import inspect
import itertools
import threading
import time
import traceback
import uuid
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import multiprocessing as mp

import numpy as np

from repro.core.factors import FactorSet
from repro.core.popularity import PopularityModel
from repro.core.topk import PAD_ITEM, merge_top_k_rows, top_k_rows
from repro.data.transactions import TransactionLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, SpanContext, Tracer
from repro.serving.index import SubtreeIndex
from repro.serving.protocol import History
from repro.serving.service import (
    APPROX_RETRIEVAL_MODES,
    RecommenderService,
    _check_retrieval_config,
)
from repro.taxonomy.tree import Taxonomy
from repro.utils.config import CascadeConfig, TrainConfig
from repro.utils.rng import RngLike


class ShardingError(RuntimeError):
    """A shard worker failed, died, or could not be reached in time."""


class DeadlineExceeded(ShardingError):
    """A request's deadline expired before the fleet could serve it.

    Raised router-side when a shard reports an ``expired`` status (the
    worker checked the request's deadline at dequeue and declined to
    scan) or when :meth:`ShardRouter.recommend_batch` finds the deadline
    already past on entry.  Typed separately from the transport errors
    so callers — the gateway maps it to ``504 Gateway Timeout`` — can
    tell "too late" apart from "broken".
    """


@dataclass(frozen=True)
class ShardRequest:
    """One versioned batch/page request payload on a shard pipe.

    Replaces the positional ``(users, k, histories[, span_context])``
    tuples of earlier revisions: adding a field (``deadline`` arrived
    this way) no longer reshuffles positional slots, and ``version``
    lets a future revision change semantics detectably.  Workers still
    accept the legacy tuples, so a mixed-revision router/worker pair
    fails soft rather than misinterpreting positions.

    Attributes
    ----------
    users:
        ``int64`` user ids for this shard's sub-batch (``-1`` = cold).
    k:
        Top-k width requested.
    histories:
        Optional per-row histories, aligned with ``users``.
    span_context:
        Optional :class:`~repro.obs.tracing.SpanContext` stamped by a
        traced router, parenting worker-side spans.
    deadline:
        Optional absolute :func:`time.monotonic` deadline; a worker
        that dequeues the request after this instant answers
        ``expired`` instead of scanning (monotonic clocks are
        host-wide, and shards are processes on the router's host).
    version:
        Payload schema version; currently ``1``.
    """

    users: np.ndarray
    k: int
    histories: Optional[list] = None
    span_context: Optional[SpanContext] = None
    deadline: Optional[float] = None
    version: int = 1


class _ReadWriteLock:
    """Writer-preferring readers/writer lock.

    Request batches take the read side (many may be in flight at once);
    a fleet swap takes the write side.  This restores the single-process
    batch contract across processes: a swap waits for every in-flight
    batch to finish gathering, and no batch can start while a swap is
    publishing — so one returned array never mixes rows from two model
    generations.  Writer preference keeps a steady request stream from
    starving publications.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()


# ----------------------------------------------------------------------
# Shared-memory factor publication
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedArraySpec:
    """Where to find one factor matrix in shared memory.

    Attributes
    ----------
    name:
        The ``multiprocessing.shared_memory`` segment name.
    shape, dtype:
        How to view the raw buffer as an ndarray.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedFactorsHandle:
    """A picklable description of one published factor-set generation.

    The handle is what travels down a worker's pipe on startup and on
    every hot swap; :func:`attach_factors` turns it back into a
    zero-copy :class:`~repro.core.factors.FactorSet`.

    Attributes
    ----------
    generation:
        The fleet generation these factors belong to (stamped into the
        segment names, so two generations can coexist during a swap).
    levels, init_scale:
        :class:`~repro.core.factors.FactorSet` metadata that is not
        derivable from the arrays.
    arrays:
        One :class:`SharedArraySpec` per factor family (``user``, ``w``,
        ``bias``, and ``w_next`` when the model has a Markov term).
    """

    generation: int
    levels: int
    init_scale: float
    arrays: Dict[str, SharedArraySpec]


try:
    #: Whether this Python's SharedMemory supports ``track=False`` (3.13+).
    _TRACK_SUPPORTED = (
        "track" in inspect.signature(shared_memory.SharedMemory).parameters
    )
except (TypeError, ValueError):  # pragma: no cover - exotic interpreters
    _TRACK_SUPPORTED = False


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting ownership.

    On Python >= 3.13 ``track=False`` keeps the attaching process's
    resource tracker out of it.  Earlier versions register every attach
    with the tracker; worker processes neutralize that with
    :func:`_disown_attached_segments` instead (an explicit
    ``unregister`` here would corrupt the fork-shared tracker, which
    also holds the creating process's legitimate registration).
    """
    if _TRACK_SUPPORTED:  # pragma: no cover - depends on the Python version
        return shared_memory.SharedMemory(name=name, track=False)
    return shared_memory.SharedMemory(name=name)


def _disown_attached_segments() -> None:
    """Pre-3.13 fallback, called once inside each worker process.

    A spawned worker's resource tracker would otherwise adopt every
    segment the worker merely attaches and *unlink it* when the worker
    exits — yanking the factors out from under the rest of the fleet
    (python/cpython#82300).  Filtering ``shared_memory`` registrations
    out of this process is safe on every start method: workers never
    create segments, and the owning router's registration (in its own
    process) is untouched.
    """
    if _TRACK_SUPPORTED:  # pragma: no cover - track=False already opts out
        return
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = register


class SharedFactors:
    """Owner of one generation of factor matrices in shared memory.

    Constructing one copies each factor family of *factor_set* into its
    own named segment — the **only** copy the whole fleet ever makes;
    every shard maps the same physical pages read-only.  The creating
    process must keep the object alive while any shard uses it and call
    :meth:`release` once the generation is retired.

    Parameters
    ----------
    factor_set:
        The fitted :class:`~repro.core.factors.FactorSet` to publish.
    generation:
        Generation stamp baked into the segment names.
    prefix:
        Name prefix shared by the fleet (random when omitted), so
        concurrent fleets on one host cannot collide.
    """

    def __init__(
        self,
        factor_set: FactorSet,
        generation: int = 0,
        prefix: Optional[str] = None,
    ):
        self.generation = int(generation)
        self._segments: List[shared_memory.SharedMemory] = []
        self._released = False
        prefix = prefix or uuid.uuid4().hex[:8]
        families: Dict[str, np.ndarray] = {
            "user": factor_set.user,
            "w": factor_set.w,
            "bias": factor_set.bias,
        }
        if factor_set.w_next is not None:
            families["w_next"] = factor_set.w_next
        specs: Dict[str, SharedArraySpec] = {}
        try:
            for i, (key, array) in enumerate(families.items()):
                array = np.ascontiguousarray(array)
                # Short names: macOS caps shm names at ~30 characters.
                name = f"rs{prefix}g{self.generation}a{i}"
                segment = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, array.nbytes)
                )
                self._segments.append(segment)
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                view[...] = array
                del view  # keep no buffer exports: close() must not fail
                specs[key] = SharedArraySpec(
                    name=name, shape=tuple(array.shape), dtype=str(array.dtype)
                )
        except BaseException:
            self.release()
            raise
        self.handle = SharedFactorsHandle(
            generation=self.generation,
            levels=factor_set.levels,
            init_scale=factor_set.init_scale,
            arrays=specs,
        )

    def release(self) -> None:
        """Close and unlink every segment (idempotent).

        Workers still mapping the pages keep valid views until they close
        their own attachments — ``shm_unlink`` only removes the name.
        """
        if self._released:
            return
        self._released = True
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - no exports are kept
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.release()
        except Exception:
            pass


def attach_factors(
    handle: SharedFactorsHandle, taxonomy: Taxonomy
) -> Tuple[FactorSet, List[shared_memory.SharedMemory]]:
    """Map a published generation into this process, zero-copy.

    Returns the reconstructed read-only
    :class:`~repro.core.factors.FactorSet` plus the attached segments;
    the caller must drop every view *before* closing the segments
    (NumPy keeps the underlying ``mmap`` pinned while views exist).
    """
    segments: List[shared_memory.SharedMemory] = []
    views: Dict[str, np.ndarray] = {}
    try:
        for key, spec in handle.arrays.items():
            segment = _attach_shm(spec.name)
            segments.append(segment)
            view: np.ndarray = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf
            )
            view.flags.writeable = False
            views[key] = view
        factor_set = FactorSet.from_arrays(
            taxonomy,
            user=views["user"],
            w=views["w"],
            bias=views["bias"],
            w_next=views.get("w_next"),
            levels=handle.levels,
            init_scale=handle.init_scale,
        )
    except BaseException:
        views.clear()
        for segment in segments:
            try:
                segment.close()
            except BufferError:
                pass
        raise
    return factor_set, segments


# ----------------------------------------------------------------------
# Shard assignment
# ----------------------------------------------------------------------
def shard_of(users: np.ndarray, n_shards: int) -> np.ndarray:
    """Deterministic shard index for each user id.

    A Murmur3-style 64-bit finalizer spreads arbitrary id spaces (dense,
    strided, clustered) uniformly, so ``users % n_shards`` pathologies —
    e.g. every even user landing on shard 0 of 2 when ids are doubled —
    cannot unbalance the fleet.  The mapping depends only on
    ``(user, n_shards)``: routers, tests, and external load generators
    all agree on where a user lives.

    Examples
    --------
    >>> import numpy as np
    >>> shards = shard_of(np.arange(1000), 4)
    >>> sorted(np.unique(shards).tolist())
    [0, 1, 2, 3]
    >>> bool((np.bincount(shards, minlength=4) > 150).all())
    True
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    mixed = np.asarray(users, dtype=np.int64).astype(np.uint64)
    mixed ^= mixed >> np.uint64(33)
    mixed *= np.uint64(0xFF51AFD7ED558CCD)
    mixed ^= mixed >> np.uint64(33)
    mixed *= np.uint64(0xC4CEB9FE1A85EC53)
    mixed ^= mixed >> np.uint64(33)
    return (mixed % np.uint64(n_shards)).astype(np.int64)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
@dataclass
class _ModelPayload:
    """Everything a worker needs to (re)build its model — factors excluded.

    The factor matrices travel as a :class:`SharedFactorsHandle`; the
    rest (taxonomy, config, histories, fallback) is pickled down the
    pipe once per publication.
    """

    handle: SharedFactorsHandle
    model_class: str
    config: TrainConfig
    taxonomy: Taxonomy
    history_log: Optional[TransactionLog]
    popularity: Optional[PopularityModel]
    #: Swap-only optimization: when the history is the same object the
    #: fleet already serves, the router ships ``history_log=None`` with
    #: this flag set and each worker keeps its current log + fallback
    #: instead of re-pickling the whole log down every pipe.
    reuse_history: bool = False


@dataclass
class _WorkerSpec:
    """Static per-shard configuration (constant across hot swaps)."""

    shard_index: int
    n_shards: int
    partition: str
    cascade: Optional[CascadeConfig]
    fold_in_steps: int
    fold_in_seed: RngLike
    cache_size: int
    payload: _ModelPayload
    retrieval: str = "exact"
    budget: Optional[int] = None
    nprobe: Optional[int] = None
    page_dtype: Optional[str] = None


def _slice_bounds(shard_index: int, n_shards: int, n_items: int) -> Tuple[int, int]:
    """The contiguous catalog slice an item-partitioned shard serves."""
    return (
        (n_items * shard_index) // n_shards,
        (n_items * (shard_index + 1)) // n_shards,
    )


class _WorkerState:
    """One generation of a worker's world: model, service, mapped segments."""

    def __init__(
        self,
        spec: _WorkerSpec,
        service: RecommenderService,
        segments: List[shared_memory.SharedMemory],
        slice_index: Optional[SubtreeIndex] = None,
    ):
        self.spec = spec
        self.service = service
        self.segments = segments
        #: Item-partitioned pruned retrieval over this shard's catalog
        #: slice (None in the user partition / exact mode).  Rebuilt with
        #: the rest of the state on every swap, so it always covers the
        #: live generation's factors.
        self.slice_index = slice_index

    @classmethod
    def build(
        cls,
        spec: _WorkerSpec,
        payload: _ModelPayload,
        previous: Optional["_WorkerState"] = None,
    ) -> "_WorkerState":
        from repro.serving.bundle import _FACTOR_MODELS

        if payload.model_class not in _FACTOR_MODELS:
            raise ShardingError(
                f"cannot shard a {payload.model_class}; supported: "
                f"{sorted(_FACTOR_MODELS)}"
            )
        history_log = payload.history_log
        popularity = payload.popularity
        if payload.reuse_history and previous is not None:
            previous_state = previous.service.model_state
            history_log = previous_state.history_log
            popularity = previous_state.popularity
        factor_set, segments = attach_factors(payload.handle, payload.taxonomy)
        model = _FACTOR_MODELS[payload.model_class](
            payload.taxonomy, payload.config
        )
        model._factors = factor_set
        if history_log is not None:
            model.attach_log(history_log)
        service = RecommenderService(
            model,
            history_log=history_log,
            popularity=popularity,
            cascade=spec.cascade,
            fold_in_steps=spec.fold_in_steps,
            fold_in_seed=spec.fold_in_seed,
            cache_size=spec.cache_size,
            # In the item partition the service only ever serves cold
            # users (known traffic goes through page()), so the full
            # catalog index would be dead weight; the slice index below
            # carries the pruning there instead.
            retrieval=spec.retrieval if spec.partition == "users" else "exact",
            budget=spec.budget if spec.partition == "users" else None,
            nprobe=spec.nprobe if spec.partition == "users" else None,
            page_dtype=spec.page_dtype if spec.partition == "users" else None,
        )
        slice_index = None
        if spec.partition == "items" and spec.retrieval != "exact":
            state = service.model_state
            lo, hi = _slice_bounds(
                spec.shard_index, spec.n_shards, state.model.n_items
            )
            # Approximate slice indexes still rank the FULL catalog's
            # cells (global statistics over the shared factor pages), so
            # every shard selects the same cells per row and the merged
            # pages reproduce the single-process ranking byte-for-byte —
            # each slice simply serves its share of the global budget.
            slice_index = SubtreeIndex(
                state.effective,
                state.bias,
                payload.taxonomy,
                items=np.arange(lo, hi, dtype=np.int64),
                approx=spec.retrieval in APPROX_RETRIEVAL_MODES,
                page_dtype=spec.page_dtype,
            )
        return cls(spec, service, segments, slice_index)

    def swapped(self, payload: _ModelPayload) -> "_WorkerState":
        """Install *payload* as the new generation; retire this one."""
        fresh = _WorkerState.build(self.spec, payload, previous=self)
        # Count the publication on the surviving stats object, mirroring
        # what RecommenderService.swap_model would have recorded.
        fresh.service._stats = self.service._stats
        fresh.service._stats.add(swaps=1)
        self.release()
        return fresh

    def release(self) -> None:
        """Drop every factor view, then close the mapped segments."""
        import gc

        self.service = None
        self.slice_index = None
        gc.collect()  # the mmap stays pinned while ndarray views survive
        for segment in self.segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - views still alive
                pass
        self.segments = []

    # -- request handlers ------------------------------------------------
    @staticmethod
    def _unpack(
        payload,
    ) -> Tuple[np.ndarray, int, Optional[list], Optional[SpanContext], Optional[float]]:
        """Normalize a request payload to its five fields.

        Current routers send a :class:`ShardRequest`; payloads from
        earlier revisions arrive as ``(users, k, histories)`` or
        ``(users, k, histories, span_context)`` tuples.  Accepting all
        three keeps the pipe protocol compatible in either direction.
        """
        if isinstance(payload, ShardRequest):
            return (
                payload.users,
                payload.k,
                payload.histories,
                payload.span_context,
                payload.deadline,
            )
        if len(payload) == 4:
            users, k, histories, ctx = payload
            return users, k, histories, ctx, None
        users, k, histories = payload
        return users, k, histories, None, None

    @staticmethod
    def _check_deadline(deadline: Optional[float]) -> None:
        """Refuse work whose deadline passed while it sat in the pipe."""
        if deadline is not None and time.monotonic() > deadline:
            raise DeadlineExceeded(
                f"request deadline expired {time.monotonic() - deadline:.3f}s "
                "before the shard dequeued it"
            )

    def _traced(self, ctx: SpanContext, tracer: Tracer, name: str) -> Span:
        """Open a worker-side child span under the router's batch span."""
        span = tracer.child_from_context(
            ctx, name, tags={"shard": self.spec.shard_index}
        )
        return span

    def batch(self, payload, tracer: Optional[Tracer] = None):
        users, k, histories, ctx, deadline = self._unpack(payload)
        self._check_deadline(deadline)
        if ctx is None or tracer is None:
            return self.service.recommend_batch(users, k=k, histories=histories)
        # Queue wait: time between the router stamping the context and
        # this worker picking the message off its FIFO pipe.
        wait = ctx.queue_wait()
        queued = self._traced(ctx, tracer, "queue_wait")
        queued.duration_s = wait
        queued.finish()
        with self._traced(ctx, tracer, "scan") as scan:
            result = self.service.recommend_batch(
                users, k=k, histories=histories
            )
            scan.set_tag("requests", int(np.asarray(users).size))
        records = [span.as_dict() for span in tracer.buffer.drain()]
        return result, records

    def page(self, payload, tracer: Optional[Tracer] = None):
        """Item-partitioned scoring: this shard's slice of the catalog."""
        users, k, histories, ctx, deadline = self._unpack(payload)
        self._check_deadline(deadline)
        if ctx is not None and tracer is not None:
            wait = ctx.queue_wait()
            queued = self._traced(ctx, tracer, "queue_wait")
            queued.duration_s = wait
            queued.finish()
            with self._traced(ctx, tracer, "scan"):
                page = self._score_page(users, k, histories)
            records = [span.as_dict() for span in tracer.buffer.drain()]
            return page, records
        return self._score_page(users, k, histories)

    def _score_page(
        self, users: np.ndarray, k: int, histories: Optional[list]
    ) -> Tuple[np.ndarray, np.ndarray]:
        started = time.perf_counter()
        state = self.service.model_state
        lo, hi = _slice_bounds(
            self.spec.shard_index, self.spec.n_shards, state.model.n_items
        )
        users = np.asarray(users, dtype=np.int64)
        queries = state.model.query_matrix(users, histories)
        log = state.history_log
        width = min(int(k), hi - lo)
        if self.slice_index is not None:
            banned = [
                log.user_items(int(user))
                if log is not None and user < log.n_users
                else np.empty(0, dtype=np.int64)
                for user in users
            ]
            if self.spec.retrieval == "budget":
                result = self.slice_index.top_k_budget(
                    queries, width, banned=banned, budget=self.spec.budget
                )
            elif self.spec.retrieval == "ivf":
                result = self.slice_index.top_k_ivf(
                    queries, width, banned=banned, nprobe=self.spec.nprobe
                )
            else:
                result = self.slice_index.top_k(queries, width, banned=banned)
            items, page_scores = result.items, result.scores
            nodes_scored = result.nodes_scored
        else:
            scores = queries @ state.effective[lo:hi].T + state.bias[None, lo:hi]
            if log is not None:
                for row, user in enumerate(users):
                    if user < log.n_users:
                        banned_row = log.user_items(int(user))
                        banned_row = banned_row[
                            (banned_row >= lo) & (banned_row < hi)
                        ]
                        if banned_row.size:
                            scores[row, banned_row - lo] = -np.inf
            local = top_k_rows(scores, width)
            page_scores = np.take_along_axis(
                scores, np.clip(local, 0, None), axis=1
            )
            page_scores[local < 0] = -np.inf
            items = np.where(local >= 0, local + lo, PAD_ITEM)
            nodes_scored = int(scores.size)
        stats = self.service.stats
        stats.add(known_user_requests=int(users.size), nodes_scored=nodes_scored)
        stats.record_latency(time.perf_counter() - started, count=int(users.size))
        return items, page_scores

    def stats(self) -> Dict[str, float]:
        payload = self.service.stats.as_dict()
        payload["shard"] = self.spec.shard_index
        payload["generation"] = self.service.generation
        return payload


def _shard_worker_main(conn, spec: _WorkerSpec) -> None:
    """Entry point of one shard process: a FIFO request loop over a pipe.

    FIFO is the swap-coherence backbone: a ``swap`` message is applied
    strictly after every batch that was sent before it, so once the
    router has the ack, later requests can only see the new generation.
    """
    _disown_attached_segments()
    #: Worker-side tracer: the per-shard prefix keeps span IDs minted
    #: here disjoint from the router's and from every other shard's, so
    #: stitched trees never collide.
    tracer = Tracer(prefix=f"w{spec.shard_index}")
    try:
        state = _WorkerState.build(spec, spec.payload)
    except BaseException:
        try:
            conn.send((-1, "error", traceback.format_exc()))
        finally:
            conn.close()
        return
    conn.send((-1, "ready", spec.shard_index))
    try:
        while True:
            try:
                req_id, kind, payload = conn.recv()
            except (EOFError, OSError, KeyboardInterrupt):
                break
            try:
                if kind == "stop":
                    conn.send((req_id, "ok", None))
                    break
                elif kind == "batch":
                    result: Any = state.batch(payload, tracer)
                elif kind == "page":
                    result = state.page(payload, tracer)
                elif kind == "swap":
                    state = state.swapped(payload)
                    result = payload.handle.generation
                elif kind == "stats":
                    result = state.stats()
                else:
                    raise ShardingError(f"unknown message kind {kind!r}")
                conn.send((req_id, "ok", result))
            except DeadlineExceeded as exc:
                conn.send((req_id, "expired", str(exc)))
            except BaseException:
                conn.send((req_id, "error", traceback.format_exc()))
    finally:
        state.release()
        conn.close()


# ----------------------------------------------------------------------
# Router-side link: one pipe, many requesting threads
# ----------------------------------------------------------------------
class _ShardLink:
    """Multiplex one worker pipe across concurrently requesting threads.

    Sends are stamped with a per-link request id; whichever thread is
    waiting becomes the designated reader and stashes other threads'
    responses as they arrive, so many in-flight requests (and a hot swap)
    can share one shard without a global serialize-everything lock.
    """

    def __init__(self, index: int, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        self._send_lock = threading.Lock()
        self._counter = itertools.count()
        self._state = threading.Condition()
        self._responses: Dict[int, Tuple[str, Any]] = {}
        self._reader_busy = False
        self._broken: Optional[BaseException] = None

    def send(self, kind: str, payload: Any) -> int:
        with self._send_lock:
            req_id = next(self._counter)
            try:
                self.conn.send((req_id, kind, payload))
            except (OSError, ValueError, BrokenPipeError) as exc:
                self._mark_broken(exc)
                raise ShardingError(
                    f"shard {self.index} is unreachable: {exc}"
                ) from exc
        return req_id

    def receive(self, req_id: int, timeout: float) -> Any:
        deadline = time.monotonic() + float(timeout)
        with self._state:
            while True:
                if req_id in self._responses:
                    return self._resolve(req_id)
                if self._broken is not None:
                    raise ShardingError(
                        f"shard {self.index} is down: {self._broken}"
                    )
                if not self._reader_busy:
                    self._reader_busy = True
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardingError(
                        f"shard {self.index} timed out after {timeout:.0f}s"
                    )
                self._state.wait(timeout=min(remaining, 0.1))
        try:
            return self._drain_until(req_id, deadline)
        finally:
            with self._state:
                self._reader_busy = False
                self._state.notify_all()

    def request(self, kind: str, payload: Any, timeout: float) -> Any:
        return self.receive(self.send(kind, payload), timeout)

    def _drain_until(self, req_id: int, deadline: float) -> Any:
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ShardingError(f"shard {self.index} timed out")
            try:
                if not self.conn.poll(min(remaining, 0.2)):
                    if not self.process.is_alive():
                        exc = ShardingError(
                            f"shard {self.index} died (exit code "
                            f"{self.process.exitcode})"
                        )
                        self._mark_broken(exc)
                        raise exc
                    continue
                msg_id, status, value = self.conn.recv()
            except (EOFError, OSError) as exc:
                self._mark_broken(exc)
                raise ShardingError(
                    f"shard {self.index} connection lost: {exc}"
                ) from exc
            if msg_id == req_id:
                return self._decode(status, value)
            with self._state:
                self._responses[msg_id] = (status, value)
                self._state.notify_all()

    def _resolve(self, req_id: int) -> Any:
        status, value = self._responses.pop(req_id)
        return self._decode(status, value)

    def _decode(self, status: str, value: Any) -> Any:
        if status == "error":
            raise ShardingError(f"shard {self.index} request failed:\n{value}")
        if status == "expired":
            raise DeadlineExceeded(f"shard {self.index}: {value}")
        return value

    def _mark_broken(self, exc: BaseException) -> None:
        with self._state:
            if self._broken is None:
                self._broken = exc
            self._state.notify_all()


# ----------------------------------------------------------------------
# The front door
# ----------------------------------------------------------------------
class ShardRouter:
    """Serve recommendation traffic through a fleet of shard processes.

    The router speaks the same request vocabulary as
    :class:`~repro.serving.service.RecommenderService` (``recommend`` /
    ``recommend_batch`` / ``swap_model``), so callers — including
    :class:`~repro.streaming.swap.HotSwapper` — can treat a fleet and a
    single process interchangeably.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.tf_model.TaxonomyFactorModel` or
        :class:`~repro.core.mf_model.MFModel`.  Its factor matrices are
        published once into shared memory; each worker maps them
        read-only.
    n_shards:
        Number of worker processes.
    history_log:
        Per-user histories for Markov context, purchased-item exclusion,
        and the popularity fallback (defaults to the model's training
        log, exactly like the single-process service).
    popularity:
        Explicit cold-user fallback; rebuilt from *history_log* in each
        worker when omitted.
    cascade:
        A :class:`~repro.utils.config.CascadeConfig` to serve known
        users through taxonomy-pruned cascaded inference inside every
        shard (``partition="users"`` only).
    fold_in_steps, fold_in_seed, cache_size:
        Forwarded to each worker's :class:`RecommenderService`.
    partition:
        ``"users"`` (hash-routed, bit-identical to unsharded) or
        ``"items"`` (catalog slices + top-k page merge); see the module
        docstring.
    retrieval:
        ``"exact"`` (dense scoring), ``"pruned"`` (taxonomy-pruned
        retrieval with bit-identical rankings), or the approximate
        sub-linear tiers ``"budget"`` / ``"ivf"`` — every shard serves
        known users through a
        :class:`~repro.serving.index.SubtreeIndex` over its catalog
        (its slice, in the item partition).  The approximate modes
        select taxonomy cells from catalog-**global** statistics, so an
        item-sliced fleet of any shard count returns the same bytes as
        a single process — each slice serves its share of the global
        budget/probe set.  Every index is rebuilt inside each worker on
        every :meth:`swap_model`, so hot swaps stay coherent.
    budget:
        Per-row node budget for ``retrieval="budget"`` (``None`` = scan
        everything, exact results); rejected with any other mode.
    nprobe:
        Cells probed per row for ``retrieval="ivf"`` (``None`` = probe
        everything, exact results); rejected with any other mode.
    page_dtype:
        Optional compact factor-page dtype (``"float32"``/``"float16"``)
        for the approximate scans; only valid with ``"budget"``/``"ivf"``.
    mp_context:
        A :mod:`multiprocessing` start-method name or context (defaults
        to the platform default — ``fork`` on Linux, ``spawn`` on
        macOS/Windows).
    start_timeout, request_timeout:
        Seconds to wait for worker startup / any single request.
    registry:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry`; the
        router records its request counter and — when traced — per-shard
        span-duration histograms
        (``repro_router_span_seconds{span=...,shard=...}``) into it.
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`.  When set, every
        :meth:`recommend_batch` opens a root span, ships a
        :class:`~repro.obs.tracing.SpanContext` down each shard's pipe,
        and adopts the workers' ``queue_wait`` / ``scan`` child spans
        back into its buffer so the whole request stitches into one tree
        (:func:`repro.obs.tracing.stitch`).  ``None`` (default) keeps
        the classic 3-tuple pipe payloads and zero tracing overhead.

    Notes
    -----
    The router owns OS resources (processes, pipes, shared memory); use
    it as a context manager or call :meth:`close` when done.
    """

    def __init__(
        self,
        model,
        n_shards: int = 2,
        *,
        history_log: Optional[TransactionLog] = None,
        popularity: Optional[PopularityModel] = None,
        cascade: Optional[CascadeConfig] = None,
        fold_in_steps: int = 200,
        fold_in_seed: RngLike = 0,
        cache_size: int = 4096,
        partition: str = "users",
        retrieval: str = "exact",
        budget: Optional[int] = None,
        nprobe: Optional[int] = None,
        page_dtype: Optional[str] = None,
        mp_context: Union[str, Any, None] = None,
        start_timeout: float = 120.0,
        request_timeout: float = 120.0,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if partition not in ("users", "items"):
            raise ValueError(
                f"partition must be 'users' or 'items', got {partition!r}"
            )
        if partition == "items" and cascade is not None:
            raise ValueError(
                "cascaded inference prunes whole categories and cannot be "
                "combined with item-sliced shards; use partition='users'"
            )
        _check_retrieval_config(retrieval, cascade, budget, nprobe, page_dtype)
        self.n_shards = int(n_shards)
        self.partition = partition
        self.retrieval = retrieval
        self.budget = None if budget is None else int(budget)
        self.nprobe = None if nprobe is None else int(nprobe)
        self.page_dtype = page_dtype
        self.request_timeout = float(request_timeout)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        if isinstance(mp_context, str):
            ctx = mp.get_context(mp_context)
        elif mp_context is not None:
            ctx = mp_context
        else:
            ctx = mp.get_context()
        self._token = uuid.uuid4().hex[:8]
        self._generation = 0
        self._swaps = 0
        self._swap_lock = threading.RLock()
        self._rw = _ReadWriteLock()
        self._count_lock = threading.Lock()
        self._requests = 0
        self._closed = False
        self._links: List[_ShardLink] = []

        history_log = (
            history_log if history_log is not None else model._train_log
        )
        #: Identity of the history last shipped to the fleet — lets a
        #: swap with the same log skip re-pickling it to every worker.
        self._published_log = history_log
        self._n_users = model.factor_set.n_users
        self._n_items = model.n_items
        self._taxonomy_version = model.taxonomy.version
        self._shared = SharedFactors(
            model.factor_set, generation=0, prefix=self._token
        )
        payload = _ModelPayload(
            handle=self._shared.handle,
            model_class=type(model).__name__,
            config=model.config,
            taxonomy=model.taxonomy,
            history_log=history_log,
            popularity=popularity,
        )
        try:
            for index in range(self.n_shards):
                spec = _WorkerSpec(
                    shard_index=index,
                    n_shards=self.n_shards,
                    partition=partition,
                    cascade=cascade,
                    fold_in_steps=fold_in_steps,
                    fold_in_seed=fold_in_seed,
                    cache_size=cache_size,
                    payload=payload,
                    retrieval=retrieval,
                    budget=self.budget,
                    nprobe=self.nprobe,
                    page_dtype=page_dtype,
                )
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=_shard_worker_main,
                    args=(child_conn, spec),
                    name=f"repro-shard-{index}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._links.append(_ShardLink(index, process, parent_conn))
            self._await_ready(start_timeout)
        except BaseException:
            self.close()
            raise

    def _await_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        for link in self._links:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ShardingError(
                        f"shard {link.index} did not start within {timeout:.0f}s"
                    )
                if link.conn.poll(min(remaining, 0.2)):
                    break
                if not link.process.is_alive():
                    raise ShardingError(
                        f"shard {link.index} exited during startup "
                        f"(code {link.process.exitcode})"
                    )
            try:
                _msg_id, status, value = link.conn.recv()
            except (EOFError, OSError) as exc:
                raise ShardingError(
                    f"shard {link.index} startup failed: {exc}"
                ) from exc
            if status != "ready":
                raise ShardingError(
                    f"shard {link.index} failed to build its service:\n{value}"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Fleet generation — bumped by every :meth:`swap_model`."""
        return self._generation

    @property
    def swaps(self) -> int:
        """Number of fleet-wide publications applied so far."""
        return self._swaps

    @property
    def n_users(self) -> int:
        """Users known to the currently published model."""
        return self._n_users

    @property
    def taxonomy_version(self):
        """The tree generation the whole fleet is serving.

        Updated only after every shard has acknowledged a swap, so the
        value never describes a partially published (model, taxonomy)
        pair — it is the fleet-wide analogue of
        :attr:`repro.serving.service.RecommenderService.taxonomy_version`.
        """
        return self._taxonomy_version

    def stats(self) -> Dict[str, Any]:
        """Aggregate serving statistics across the fleet.

        ``requests`` counts **end-user request rows** the router served
        (one per batch row, whatever the partition — in the item
        partition each row fans out to every shard, so the per-shard
        numbers under ``"shards"`` count shard-local page work instead).
        The remaining counters are shard-local work, summed;
        ``requests_per_second`` divides router requests by the *busiest*
        shard's serving seconds (shards run concurrently, so summing
        their seconds would under-report the fleet's real throughput).
        """
        self._ensure_open()
        pending = [
            (link, link.send("stats", None)) for link in self._links
        ]
        shards = [
            link.receive(req_id, self.request_timeout)
            for link, req_id in pending
        ]
        summed = {
            key: float(sum(shard[key] for shard in shards))
            for key in (
                "known_user_requests", "fold_in_requests",
                "fallback_requests", "cache_hits", "cache_misses",
                "nodes_scored", "seconds",
            )
        }
        with self._count_lock:
            summed["requests"] = float(self._requests)
        busiest = max((shard["seconds"] for shard in shards), default=0.0)
        summed["requests_per_second"] = (
            summed["requests"] / busiest if busiest > 0 else float("nan")
        )
        summed["swaps"] = self._swaps
        summed["generation"] = self._generation
        summed["taxonomy_digest"] = self._taxonomy_version.short
        summed["taxonomy_revision"] = self._taxonomy_version.revision
        summed["shards"] = shards
        return summed

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def recommend(
        self,
        user: Optional[int] = None,
        k: int = 10,
        history: Optional[History] = None,
    ) -> np.ndarray:
        """Top-*k* for one request, routed to the owning shard."""
        row = self.recommend_batch(
            [user], k=k, histories=None if history is None else [history]
        )[0]
        return row[row >= 0]

    def recommend_batch(
        self,
        users: Sequence[Optional[int]],
        k: int = 10,
        histories: Optional[Sequence[Optional[History]]] = None,
        deadline: Optional[float] = None,
    ) -> np.ndarray:
        """Serve a batch across the fleet; same contract as the service.

        *deadline* is an optional absolute :func:`time.monotonic` stamp
        propagated to every shard: a worker that dequeues the sub-batch
        after the deadline answers ``expired`` instead of scanning, and
        the router raises :class:`DeadlineExceeded` — the backpressure
        signal the gateway turns into ``504``.

        Rows are grouped into one sub-batch per shard (the in-flight
        batching the fleet amortizes IPC over), scattered down every
        pipe, then gathered — concurrently across shards, so the fleet's
        wall-clock is the slowest shard, not the sum.  Returns the same
        ``(n, min(k, n_items))`` ``-1``-padded int64 array as
        :meth:`RecommenderService.recommend_batch`; in the default user
        partition the rows are bit-identical to the unsharded service.

        Like the single-process service, one batch sees one model: the
        whole scatter/gather holds the read side of a readers/writer
        lock that :meth:`swap_model` takes exclusively, so a concurrent
        publication can never split a batch across two generations.
        """
        self._ensure_open()
        if deadline is not None and time.monotonic() > deadline:
            raise DeadlineExceeded(
                "request deadline expired before the router dispatched it"
            )
        user_ids = np.asarray(
            [-1 if u is None else int(u) for u in users], dtype=np.int64
        )
        n = user_ids.size
        if histories is not None and len(histories) != n:
            raise ValueError(f"got {len(histories)} histories for {n} users")
        width = min(int(k), self._n_items)
        out = np.full((n, width), PAD_ITEM, dtype=np.int64)
        if n == 0 or width <= 0:
            return out
        self._rw.acquire_read()
        try:
            if self.tracer is None:
                self._dispatch(user_ids, k, histories, out, None, deadline)
            else:
                root = self.tracer.span(
                    "recommend_batch",
                    tags={
                        "requests": int(n),
                        "partition": self.partition,
                        "generation": self._generation,
                    },
                )
                with root:
                    self._dispatch(user_ids, k, histories, out, root, deadline)
                self._record_span_seconds(root.as_dict(), shard="router")
        finally:
            self._rw.release_read()
        with self._count_lock:
            self._requests += n
        return out

    def _dispatch(
        self,
        user_ids: np.ndarray,
        k: int,
        histories: Optional[Sequence[Optional[History]]],
        out: np.ndarray,
        root: Optional[Span],
        deadline: Optional[float] = None,
    ) -> None:
        if self.partition == "users":
            self._scatter_user_mode(user_ids, k, histories, out, root, deadline)
        else:
            self._scatter_item_mode(user_ids, k, histories, out, root, deadline)

    def _payload(
        self,
        users: np.ndarray,
        k: int,
        histories: Optional[list],
        root: Optional[Span],
        deadline: Optional[float] = None,
    ) -> ShardRequest:
        """A pipe payload, with a freshly-stamped SpanContext when traced."""
        return ShardRequest(
            users=users,
            k=k,
            histories=histories,
            span_context=None if root is None else self.tracer.context_for(root),
            deadline=deadline,
        )

    def _gather(self, link: "_ShardLink", req_id: int, root: Optional[Span]):
        """Receive one response, absorbing worker span records if traced."""
        result = link.receive(req_id, self.request_timeout)
        if root is None:
            return result
        result, records = result
        self.tracer.adopt(records)
        for record in records:
            self._record_span_seconds(
                record, shard=str(record.get("tags", {}).get("shard", "?"))
            )
        return result

    def _record_span_seconds(self, record: Dict[str, Any], shard: str) -> None:
        duration = record.get("duration_s")
        if duration is None:
            return
        self.registry.histogram(
            "repro_router_span_seconds",
            help="Per-span durations across the shard fleet.",
            labels={"span": str(record["name"]), "shard": shard},
        ).observe(max(0.0, float(duration)))

    def _scatter_user_mode(
        self,
        user_ids: np.ndarray,
        k: int,
        histories: Optional[Sequence[Optional[History]]],
        out: np.ndarray,
        root: Optional[Span] = None,
        deadline: Optional[float] = None,
    ) -> None:
        shards = shard_of(np.maximum(user_ids, 0), self.n_shards)
        cold = (user_ids < 0) | (user_ids >= self._n_users)
        cold_rows = np.flatnonzero(cold)
        # Cold rows carry no shard affinity (identity lives in the
        # history, and every shard maps the full model) — spread them.
        shards[cold_rows] = np.arange(cold_rows.size) % self.n_shards
        pending = []
        for shard in range(self.n_shards):
            rows = np.flatnonzero(shards == shard)
            if rows.size == 0:
                continue
            sub_histories = (
                None
                if histories is None
                else [histories[row] for row in rows]
            )
            req_id = self._links[shard].send(
                "batch",
                self._payload(user_ids[rows], k, sub_histories, root, deadline),
            )
            pending.append((shard, rows, req_id))
        for shard, rows, req_id in pending:
            result = self._gather(self._links[shard], req_id, root)
            out[rows, : result.shape[1]] = result

    def _scatter_item_mode(
        self,
        user_ids: np.ndarray,
        k: int,
        histories: Optional[Sequence[Optional[History]]],
        out: np.ndarray,
        root: Optional[Span] = None,
        deadline: Optional[float] = None,
    ) -> None:
        known = (user_ids >= 0) & (user_ids < self._n_users)
        known_rows = np.flatnonzero(known)
        cold_rows = np.flatnonzero(~known)
        pending_pages = []
        if known_rows.size:
            sub_histories = (
                None
                if histories is None
                else [histories[row] for row in known_rows]
            )
            for link in self._links:
                req_id = link.send(
                    "page",
                    self._payload(
                        user_ids[known_rows], k, sub_histories, root, deadline
                    ),
                )
                pending_pages.append((link, req_id))
        pending_cold = []
        for slot, row in enumerate(cold_rows):
            link = self._links[slot % self.n_shards]
            history = None if histories is None else histories[row]
            req_id = link.send(
                "batch",
                self._payload(
                    user_ids[row : row + 1],
                    k,
                    None if history is None else [history],
                    root,
                    deadline,
                ),
            )
            pending_cold.append((link, row, req_id))
        if pending_pages:
            pages = [
                self._gather(link, req_id, root)
                for link, req_id in pending_pages
            ]
            if root is None:
                merged = merge_top_k_rows(
                    [items for items, _scores in pages],
                    [scores for _items, scores in pages],
                    k,
                )
            else:
                with self.tracer.span(
                    "merge", tags={"shard": "router", "pages": len(pages)}
                ) as merge_span:
                    merged = merge_top_k_rows(
                        [items for items, _scores in pages],
                        [scores for _items, scores in pages],
                        k,
                    )
                self._record_span_seconds(merge_span.as_dict(), shard="router")
            out[known_rows, : merged.shape[1]] = merged
        for link, row, req_id in pending_cold:
            result = self._gather(link, req_id, root)
            out[row, : result.shape[1]] = result[0]

    # ------------------------------------------------------------------
    # Fleet-wide hot swap
    # ------------------------------------------------------------------
    def swap_model(
        self,
        model,
        history_log: Optional[TransactionLog] = None,
        popularity: Optional[PopularityModel] = None,
    ) -> int:
        """Publish *model* to every shard atomically — zero downtime.

        The new factors are copied once into fresh generation-stamped
        shared-memory segments, the publication waits for in-flight
        batches to finish (the write side of the batch/swap lock), a
        swap message goes down every shard's FIFO pipe, and only after
        **all** shards acknowledge is the previous generation unlinked.
        Requests issued after this method returns are therefore served
        by the new model on every shard; requests already in flight
        finish on the old one (the single-process swap contract, fleet
        wide).  When *history_log* resolves to the same object the fleet
        already serves (and no explicit *popularity* is given), the log
        is not re-pickled — workers keep their current history and
        fallback and only the factors change.

        A publication that fails part-way (one shard dead or timed out
        after others already applied it) would leave the fleet
        **split-brain** — different shards serving different models with
        no way to converge — so the router fails *stop*: it closes
        itself and raises, refusing to serve mixed-generation traffic.
        Returns the new fleet generation.
        """
        self._ensure_open()
        with self._swap_lock:
            generation = self._generation + 1
            shared = SharedFactors(
                model.factor_set, generation=generation, prefix=self._token
            )
            resolved_log = (
                history_log if history_log is not None else model._train_log
            )
            reuse = (
                resolved_log is not None
                and resolved_log is self._published_log
                and popularity is None
            )
            payload = _ModelPayload(
                handle=shared.handle,
                model_class=type(model).__name__,
                config=model.config,
                taxonomy=model.taxonomy,
                history_log=None if reuse else resolved_log,
                popularity=popularity,
                reuse_history=reuse,
            )
            self._rw.acquire_write()
            failure: Optional[BaseException] = None
            try:
                pending = [
                    (link, link.send("swap", payload)) for link in self._links
                ]
                for link, req_id in pending:
                    link.receive(req_id, self.request_timeout)
            except BaseException as exc:
                failure = exc
            finally:
                self._rw.release_write()
            if failure is not None:
                shared.release()
                self.close()
                raise ShardingError(
                    f"fleet swap to generation {generation} failed part-way "
                    f"({failure}); the router has been closed — shards may "
                    f"disagree on the live model and a closed fleet can "
                    f"never serve mixed-generation traffic"
                ) from failure
            retired = self._shared
            self._shared = shared
            self._generation = generation
            self._swaps += 1
            self._n_users = model.factor_set.n_users
            self._n_items = model.n_items
            self._taxonomy_version = model.taxonomy.version
            self._published_log = resolved_log
            retired.release()
        return generation

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Stop every worker and release shared memory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for link in self._links:
            try:
                link.send("stop", None)
            except Exception:
                pass
        deadline = time.monotonic() + timeout
        for link in self._links:
            link.process.join(timeout=max(0.1, deadline - time.monotonic()))
            if link.process.is_alive():  # pragma: no cover - stuck worker
                link.process.terminate()
                link.process.join(timeout=1.0)
            try:
                link.conn.close()
            except Exception:
                pass
        if self._shared is not None:
            self._shared.release()

    def _ensure_open(self) -> None:
        if self._closed:
            raise ShardingError("this ShardRouter has been closed")

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close(timeout=1.0)
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ShardRouter(n_shards={self.n_shards}, "
            f"partition={self.partition!r}, retrieval={self.retrieval!r}, "
            f"generation={self._generation})"
        )
