"""The ``Recommender`` protocol — the serving layer's structural contract.

Every model in the library (:class:`~repro.core.tf_model.TaxonomyFactorModel`
and its :class:`~repro.core.mf_model.MFModel` baselines, the popularity and
random baselines, and the fold-in cold-start adapter) exposes the same four
inference methods; :class:`Recommender` names that contract so that serving
code, the evaluation protocol, and the benchmarks can accept "any model"
without inheritance.

The batch methods are the production entry points: ``score_matrix`` and
``recommend_batch`` amortize the per-request Python overhead into one BLAS
product and one row-wise partition, which is where the 10-100x serving
speedups come from (see ``benchmarks/bench_serving.py``).

Conventions
-----------
* ``recommend_batch`` returns an ``(n_users, min(k, n_items))`` int64 array,
  best items first, padded with ``-1`` where a row has fewer than ``k``
  rankable candidates.
* ``histories[i]``, when given, overrides row *i*'s stored history; models
  without a history concept accept and ignore the argument.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, runtime_checkable

import numpy as np

History = Sequence[np.ndarray]


@runtime_checkable
class Recommender(Protocol):
    """Structural type of everything the serving layer can execute.

    ``isinstance(model, Recommender)`` checks method presence at runtime
    (``typing.runtime_checkable`` cannot check signatures); the semantic
    contract is documented in the module docstring.

    Examples
    --------
    >>> from repro.core.popularity import PopularityModel, RandomModel
    >>> isinstance(PopularityModel(), Recommender)
    True
    >>> isinstance(RandomModel(), Recommender)
    True
    >>> isinstance(object(), Recommender)
    False
    """

    def score_items(
        self,
        user: int,
        history: Optional[History] = None,
        items: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Affinity scores of one user for *items* (default: every item)."""
        ...

    def score_matrix(
        self,
        users: np.ndarray,
        histories: Optional[Sequence[History]] = None,
    ) -> np.ndarray:
        """Dense ``(len(users), n_items)`` score matrix."""
        ...

    def recommend(self, user: int, k: int = 10, **kwargs) -> np.ndarray:
        """Top-*k* item indices for one user, best first."""
        ...

    def recommend_batch(
        self,
        users: np.ndarray,
        k: int = 10,
        histories: Optional[Sequence[History]] = None,
    ) -> np.ndarray:
        """Vectorized top-*k* per user; ``-1``-padded, best first."""
        ...
