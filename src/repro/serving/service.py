"""Batch-first request routing: the single front door for inference.

:class:`RecommenderService` is what a web tier would talk to.  Each request
is ``(user, k, history)`` and is routed by user type (Sec. 1's three
serving situations):

* **known user** — scored against the trained factors, either exactly (one
  vectorized pass over the items) or through
  :class:`~repro.core.cascade.CascadedRecommender` when a cascade is
  configured (Sec. 5.1);
* **cold user with a history** — folded in against frozen factors via
  :class:`~repro.serving.coldstart.FoldInRecommender`;
* **cold user without a history** — popularity fallback.

Known-user query vectors (``v^U_u + ctx``) are memoized in a bounded LRU
cache, so repeat traffic skips the context reconstruction entirely; every
request is accounted in :class:`ServingStats` (work in scored nodes, cache
hits, latency percentiles).  ``recommend_batch`` is the production path: it
serves all known users of a batch with one BLAS product and one row-wise
partition.
"""

from __future__ import annotations

import copy
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.cascade import CascadedRecommender
from repro.core.popularity import PopularityModel
from repro.core.tf_model import TaxonomyFactorModel
from repro.core.topk import top_k_rows
from repro.data.transactions import TransactionLog
from repro.serving.coldstart import FoldInRecommender
from repro.serving.protocol import History
from repro.utils.config import CascadeConfig
from repro.utils.rng import RngLike


class ServingError(RuntimeError):
    """A request cannot be routed (e.g. no fallback model configured)."""


#: Sliding window of per-request latencies kept for percentile reporting.
#: Counters (requests, seconds, ...) are exact forever; only the latency
#: *distribution* is windowed, so a long-lived service stays bounded.
LATENCY_WINDOW = 10_000


@dataclass
class ServingStats:
    """Cumulative accounting of everything the service has served.

    ``nodes_scored`` counts affinity dot products (the paper's
    hardware-independent work measure); ``latencies`` holds one entry per
    request — batch calls record the amortized per-request latency — and
    is trimmed to the most recent :data:`LATENCY_WINDOW` entries, so the
    percentiles describe recent traffic.
    """

    requests: int = 0
    known_user_requests: int = 0
    fold_in_requests: int = 0
    fallback_requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    nodes_scored: int = 0
    seconds: float = 0.0
    latencies: List[float] = field(default_factory=list, repr=False)

    def record_latency(self, seconds: float, count: int = 1) -> None:
        """Account *count* requests that took *seconds* in total."""
        self.requests += count
        self.seconds += seconds
        if count == 1:
            self.latencies.append(seconds)
        elif count > 1:
            # Only the last LATENCY_WINDOW entries survive the trim, so
            # never materialize more than that for one batch.
            kept = min(count, LATENCY_WINDOW)
            self.latencies.extend([seconds / count] * kept)
        if len(self.latencies) > LATENCY_WINDOW:
            del self.latencies[:-LATENCY_WINDOW]

    def latency_percentile(self, q: float) -> float:
        """The *q*-th percentile of per-request latency, in seconds."""
        if not self.latencies:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies), q))

    @property
    def p50(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95(self) -> float:
        return self.latency_percentile(95.0)

    @property
    def requests_per_second(self) -> float:
        if self.seconds <= 0:
            return float("nan")
        return self.requests / self.seconds

    def as_dict(self) -> Dict[str, float]:
        """Flat summary (for logs, the CLI, and the benchmark payloads)."""
        return {
            "requests": self.requests,
            "known_user_requests": self.known_user_requests,
            "fold_in_requests": self.fold_in_requests,
            "fallback_requests": self.fallback_requests,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "nodes_scored": self.nodes_scored,
            "seconds": self.seconds,
            "requests_per_second": self.requests_per_second,
            "latency_p50": self.p50,
            "latency_p95": self.p95,
        }


class QueryVectorCache:
    """Bounded LRU map from user id to query vector (``capacity <= 0``
    disables caching)."""

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        self._data: "OrderedDict[int, np.ndarray]" = OrderedDict()

    def get(self, user: int) -> Optional[np.ndarray]:
        vector = self._data.get(user)
        if vector is not None:
            self._data.move_to_end(user)
        return vector

    def put(self, user: int, vector: np.ndarray) -> None:
        if self.capacity <= 0:
            return
        self._data[user] = vector
        self._data.move_to_end(user)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class RecommenderService:
    """Route recommendation requests to the right inference path.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.tf_model.TaxonomyFactorModel` (or
        :class:`~repro.core.mf_model.MFModel`).
    history_log:
        Per-user purchase histories for Markov context and purchased-item
        exclusion; defaults to the log the model was trained on.  When
        given, the service works on a shallow copy of the model with this
        log attached, so the query-vector context and the exclusion masks
        come from the same source (the standard pattern after
        ``ModelBundle.load``) without mutating the caller's model.
    popularity:
        Fallback for cold users without a history.  Built automatically
        from *history_log* when omitted.
    cascade:
        A :class:`~repro.utils.config.CascadeConfig` (or prebuilt
        :class:`~repro.core.cascade.CascadedRecommender`) to serve known
        users through taxonomy-pruned inference instead of the exact pass.
    fold_in_steps, fold_in_seed:
        Fold-in SGD budget and seed for cold users with a history.
    cache_size:
        Capacity of the known-user query-vector LRU cache (0 disables).

    Notes
    -----
    The service snapshots the model's effective item factors at
    construction; call :meth:`refresh` after retraining the model.
    """

    def __init__(
        self,
        model: TaxonomyFactorModel,
        history_log: Optional[TransactionLog] = None,
        popularity: Optional[PopularityModel] = None,
        cascade: Optional[Union[CascadeConfig, CascadedRecommender]] = None,
        fold_in_steps: int = 200,
        fold_in_seed: RngLike = 0,
        cache_size: int = 4096,
    ):
        factor_set = model.factor_set  # fail fast when unfitted
        if history_log is None:
            history_log = model._train_log
        elif history_log is not model._train_log:
            # Shallow copy: factors are shared (read-only here), only the
            # attached log differs — the caller's model stays untouched.
            model = copy.copy(model)
            model.attach_log(history_log)
        self.model = model
        self.history_log = history_log
        if popularity is None and history_log is not None:
            popularity = PopularityModel().fit(history_log)
        self.popularity = popularity
        if isinstance(cascade, CascadeConfig):
            cascade = CascadedRecommender(model, cascade)
        self.cascade = cascade
        self.fold_in = FoldInRecommender(
            model, steps=fold_in_steps, seed=fold_in_seed
        )
        self.query_cache = QueryVectorCache(cache_size)
        self._stats = ServingStats()
        self._effective = factor_set.effective_items()
        self._bias = factor_set.bias_of_items()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ServingStats:
        """Cumulative serving statistics since the last reset."""
        return self._stats

    def reset_stats(self) -> ServingStats:
        """Zero the counters; returns the retired stats object."""
        retired = self._stats
        self._stats = ServingStats()
        return retired

    def refresh(self) -> None:
        """Re-snapshot item factors and drop cached query vectors.

        Required after ``model.partial_fit`` / ``model.onboard_items`` so
        the service stops serving stale factors.
        """
        factor_set = self.model.factor_set
        self._effective = factor_set.effective_items()
        self._bias = factor_set.bias_of_items()
        self.query_cache.clear()
        if self.cascade is not None:
            self.cascade = CascadedRecommender(self.model, self.cascade.config)

    def is_known(self, user: Optional[int]) -> bool:
        """Whether *user* indexes a trained user-factor row."""
        return user is not None and 0 <= int(user) < self.model.n_users

    # ------------------------------------------------------------------
    # Single-request path
    # ------------------------------------------------------------------
    def recommend(
        self,
        user: Optional[int] = None,
        k: int = 10,
        history: Optional[History] = None,
    ) -> np.ndarray:
        """Top-*k* items for one request, routed by user type.

        ``user=None`` (or an out-of-range index) marks a cold user: with a
        *history* they are folded in, without one they get the popularity
        fallback.
        """
        started = time.perf_counter()
        if self.is_known(user):
            top = self._recommend_known(int(user), k, history)
            self._stats.known_user_requests += 1
        elif history:
            top = self.fold_in.recommend(k=k, history=history)
            self._stats.nodes_scored += self.model.n_items
            self._stats.fold_in_requests += 1
        else:
            top = self._fallback(k)
            self._stats.fallback_requests += 1
        self._stats.record_latency(time.perf_counter() - started)
        return top

    def _recommend_known(
        self, user: int, k: int, history: Optional[History]
    ) -> np.ndarray:
        if self.cascade is not None:
            result = self.cascade.rank(user, history)
            self._stats.nodes_scored += result.nodes_scored
            items = result.items
            banned = self._banned_items(user)
            if banned.size:
                keep = ~np.isin(items, banned)
                items = items[keep]
            return items[:k]
        query = self._query_vector(user, history)
        scores = self._effective @ query + self._bias
        self._stats.nodes_scored += scores.size
        banned = self._banned_items(user)
        if banned.size:
            scores[banned] = -np.inf
        row = top_k_rows(scores[None, :], k)[0]
        return row[row >= 0]

    def _query_vector(
        self, user: int, history: Optional[History]
    ) -> np.ndarray:
        if history is not None:
            # Explicit histories bypass the cache: the vector is
            # request-specific, not a property of the user.
            self._stats.cache_misses += 1
            return self.model.query_vector(user, history)
        cached = self.query_cache.get(user)
        if cached is not None:
            self._stats.cache_hits += 1
            return cached
        self._stats.cache_misses += 1
        vector = self.model.query_vector(user)
        self.query_cache.put(user, vector)
        return vector

    def _banned_items(self, user: int) -> np.ndarray:
        log = self.history_log
        if log is None or user >= log.n_users:
            return np.empty(0, dtype=np.int64)
        return log.user_items(user)

    def _fallback(self, k: int) -> np.ndarray:
        if self.popularity is None:
            raise ServingError(
                "no history and no popularity fallback configured; pass "
                "popularity= or history_log= to RecommenderService"
            )
        return self.popularity.recommend(0, k=k)

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def recommend_batch(
        self,
        users: Sequence[Optional[int]],
        k: int = 10,
        histories: Optional[Sequence[Optional[History]]] = None,
    ) -> np.ndarray:
        """Serve a whole batch; the known-user fraction is fully vectorized.

        ``users`` may contain ``None`` / negative / out-of-range entries for
        cold users (routed per row like :meth:`recommend`).  Returns an
        ``(n, min(k, n_items))`` int64 array padded with ``-1``.
        """
        started = time.perf_counter()
        user_ids = np.asarray(
            [-1 if u is None else int(u) for u in users], dtype=np.int64
        )
        n = user_ids.size
        if histories is not None and len(histories) != n:
            raise ValueError(f"got {len(histories)} histories for {n} users")
        width = min(int(k), self.model.n_items)
        out = np.full((n, width), -1, dtype=np.int64)

        known_mask = (user_ids >= 0) & (user_ids < self.model.n_users)
        known_rows = np.flatnonzero(known_mask)
        if known_rows.size:
            if self.cascade is not None:
                for row in known_rows:
                    history = None if histories is None else histories[row]
                    top = self._recommend_known(int(user_ids[row]), width, history)
                    out[row, : top.size] = top
            else:
                out[known_rows] = self._batch_known(
                    user_ids[known_rows],
                    None
                    if histories is None
                    else [histories[row] for row in known_rows],
                    width,
                )
            self._stats.known_user_requests += int(known_rows.size)

        for row in np.flatnonzero(~known_mask):
            history = None if histories is None else histories[row]
            if history:
                top = self.fold_in.recommend(k=width, history=history)
                self._stats.nodes_scored += self.model.n_items
                self._stats.fold_in_requests += 1
            else:
                top = self._fallback(width)
                self._stats.fallback_requests += 1
            out[row, : top.size] = top

        self._stats.record_latency(time.perf_counter() - started, count=n)
        return out

    def _batch_known(
        self,
        users: np.ndarray,
        histories: Optional[List[Optional[History]]],
        width: int,
    ) -> np.ndarray:
        """Exact scoring for known users: cache-assisted queries, one BLAS
        product, one row-wise partition."""
        factors = self._effective.shape[1]
        queries = np.empty((users.size, factors))
        miss_slots: List[int] = []
        for slot, user in enumerate(users):
            history = None if histories is None else histories[slot]
            if history is None:
                cached = self.query_cache.get(int(user))
                if cached is not None:
                    queries[slot] = cached
                    self._stats.cache_hits += 1
                    continue
            miss_slots.append(slot)
        if miss_slots:
            miss_users = users[miss_slots]
            miss_histories = (
                None
                if histories is None
                else [histories[slot] for slot in miss_slots]
            )
            fresh = self.model.query_matrix(miss_users, miss_histories)
            for i, slot in enumerate(miss_slots):
                queries[slot] = fresh[i]
                if histories is None or histories[slot] is None:
                    # copy() so the cache holds a K-vector, not a view
                    # pinning the whole (n_miss, K) batch matrix alive.
                    self.query_cache.put(int(users[slot]), fresh[i].copy())
            self._stats.cache_misses += len(miss_slots)

        scores = queries @ self._effective.T + self._bias[None, :]
        self._stats.nodes_scored += scores.size
        for row, user in enumerate(users):
            banned = self._banned_items(int(user))
            if banned.size:
                scores[row, banned] = -np.inf
        return top_k_rows(scores, width)
