"""Batch-first request routing: the single front door for inference.

:class:`RecommenderService` is what a web tier would talk to.  Each request
is ``(user, k, history)`` and is routed by user type (Sec. 1's three
serving situations):

* **known user** — scored against the trained factors, either exactly (one
  vectorized pass over the items) or through
  :class:`~repro.core.cascade.CascadedRecommender` when a cascade is
  configured (Sec. 5.1);
* **cold user with a history** — folded in against frozen factors via
  :class:`~repro.serving.coldstart.FoldInRecommender`;
* **cold user without a history** — popularity fallback.

Known-user query vectors (``v^U_u + ctx``) are memoized in a bounded LRU
cache, so repeat traffic skips the context reconstruction entirely; every
request is accounted in :class:`ServingStats` (work in scored nodes, cache
hits, latency percentiles).  ``recommend_batch`` is the production path: it
serves all known users of a batch with one BLAS product and one row-wise
partition.

Hot swap
--------
The service supports **zero-downtime model replacement**: everything a
request needs (model, factor snapshots, fold-in adapter, cascade, history
log, fallback) lives in one immutable :class:`ModelState` that each request
reads exactly once, so a request in flight keeps scoring against a
consistent model while :meth:`RecommenderService.swap_model` installs a new
one.  Swapping (or :meth:`invalidate_cache`) bumps a **generation counter**
on the query-vector cache: entries written by requests that started before
the swap are rejected, so a post-swap request can never be served a vector
computed against retired factors.  ``repro.streaming`` drives this to apply
online updates between full retrains.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.cascade import CascadedRecommender
from repro.core.popularity import PopularityModel
from repro.core.tf_model import TaxonomyFactorModel
from repro.core.topk import top_k_rows
from repro.data.transactions import TransactionLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.serving.coldstart import FoldInRecommender
from repro.serving.index import SubtreeIndex
from repro.serving.protocol import History
from repro.taxonomy.version import TaxonomyVersion
from repro.utils.config import CascadeConfig
from repro.utils.rng import RngLike


class ServingError(RuntimeError):
    """A request cannot be routed (e.g. no fallback model configured)."""


#: Every known-user ranking strategy the service (and the shard router)
#: accepts: two exact ("exact" dense pass, "pruned" SubtreeIndex scan with
#: bit-identical output) and two approximate-but-deterministic ("budget"
#: bound-ordered scan under a node budget, "ivf" top-nprobe cell probing).
RETRIEVAL_MODES = ("exact", "pruned", "budget", "ivf")

#: The subset of :data:`RETRIEVAL_MODES` that trades recall for speed.
#: Same model + same knobs still means byte-identical rankings across
#: runs and shard counts — approximate refers to recall, not determinism.
APPROX_RETRIEVAL_MODES = ("budget", "ivf")


def _check_retrieval_config(
    retrieval: str,
    cascade,
    budget: Optional[int],
    nprobe: Optional[int],
    page_dtype: Optional[str],
) -> None:
    """Reject invalid (retrieval, cascade, knob) combinations up front.

    Shared by :class:`RecommenderService` and
    :class:`~repro.serving.sharding.ShardRouter`, so a fleet and a single
    process refuse exactly the same configurations with the same message.
    """
    if retrieval not in RETRIEVAL_MODES:
        raise ValueError(
            f"retrieval must be one of {'/'.join(RETRIEVAL_MODES)}, "
            f"got {retrieval!r}"
        )
    if retrieval != "exact" and cascade is not None:
        raise ValueError(
            f"retrieval={retrieval!r} already prunes the catalog scan "
            "('pruned' exactly, 'budget'/'ivf' approximately) and cannot "
            "be combined with cascaded (approximate) inference; drop one"
        )
    if budget is not None:
        if retrieval != "budget":
            raise ValueError(
                f"budget= only applies to retrieval='budget', "
                f"got retrieval={retrieval!r}"
            )
        if int(budget) < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
    if nprobe is not None:
        if retrieval != "ivf":
            raise ValueError(
                f"nprobe= only applies to retrieval='ivf', "
                f"got retrieval={retrieval!r}"
            )
        if int(nprobe) < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
    if page_dtype is not None and retrieval not in APPROX_RETRIEVAL_MODES:
        raise ValueError(
            "page_dtype= only applies to the approximate modes "
            f"{'/'.join(APPROX_RETRIEVAL_MODES)}, got retrieval={retrieval!r}"
        )


#: Sliding window of per-request latencies kept for percentile reporting.
#: Counters (requests, seconds, ...) are exact forever; only the latency
#: *distribution* is windowed, so a long-lived service stays bounded.
LATENCY_WINDOW = 10_000

#: Counter fields a ServingStats accounts, in as_dict order.  All are
#: integers except ``seconds``.
_STAT_FIELDS = (
    "requests",
    "known_user_requests",
    "fold_in_requests",
    "fallback_requests",
    "cache_hits",
    "cache_misses",
    "nodes_scored",
    "swaps",
    "seconds",
)


class ServingStats:
    """Cumulative accounting of everything the service has served.

    Since 1.6 the class is a thin view over a
    :class:`~repro.obs.metrics.MetricsRegistry`: every counter field
    (``requests``, ``nodes_scored``, ...) is backed by a Prometheus-style
    counter (``repro_serving_requests_total``, ...) and the latency
    distribution by the fixed-bucket histogram
    ``repro_serving_request_latency_seconds`` — so percentiles are O(1)
    per observation and ``registry.snapshot()`` exports everything the
    attribute API reports.  The public surface (field reads, :meth:`add`,
    :meth:`record_latency`, ``p50``/``p95``, :meth:`as_dict`) is
    unchanged.

    ``nodes_scored`` counts affinity dot products (the paper's
    hardware-independent work measure); :attr:`latencies` additionally
    keeps a bounded window of the most recent :data:`LATENCY_WINDOW`
    amortized per-call latencies for exact-sample inspection — a
    ``deque(maxlen=...)``, so recording is O(1), not the old list-slice
    trim, and a batch records **one** amortized entry instead of
    materializing ``count`` duplicates.

    Mutations go through :meth:`add` / :meth:`record_latency`; each
    backing instrument holds its own lock — the service promises requests
    keep flowing from multiple threads during a hot swap, and racy ``+=``
    read-modify-writes would silently drop counts under exactly that
    load.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` to record into; a
        private one is created when omitted.  Pass a shared registry to
        combine serving metrics with streaming/training telemetry in one
        snapshot.
    labels:
        Optional constant labels stamped on every backing series (the
        shard fleet uses ``{"shard": "3"}``).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        labels: Optional[Dict[str, str]] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.labels = dict(labels) if labels else {}
        self._counters = {
            name: self.registry.counter(
                f"repro_serving_{name}_total",
                help=f"Cumulative serving {name.replace('_', ' ')}.",
                labels=self.labels,
            )
            for name in _STAT_FIELDS
        }
        self._latency = self.registry.histogram(
            "repro_serving_request_latency_seconds",
            help="Amortized per-request latency distribution.",
            labels=self.labels,
        )
        self._lock = threading.Lock()
        self._window: deque = deque(maxlen=LATENCY_WINDOW)

    def __getattr__(self, name: str):
        # Only consulted for attributes not found normally: resolve the
        # stat fields from their backing counters (ints except seconds).
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            value = counters[name].value
            return value if name == "seconds" else int(value)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @property
    def latencies(self) -> List[float]:
        """The recent amortized per-call latencies (bounded window).

        One entry per :meth:`record_latency` call — a batch contributes a
        single amortized value, not ``count`` duplicates.  Percentiles
        (:meth:`latency_percentile`) come from the histogram, which
        weights batches by their request count; this window is the raw
        sample view for debugging and tests.
        """
        with self._lock:
            return list(self._window)

    @property
    def latency_histogram(self):
        """The backing request-latency :class:`~repro.obs.metrics.Histogram`."""
        return self._latency

    def add(self, **deltas: float) -> None:
        """Atomically increment the named counters."""
        counters = self._counters
        for name, delta in deltas.items():
            counter = counters.get(name)
            if counter is None:
                raise AttributeError(f"unknown serving stat {name!r}")
            counter.inc(delta)

    def record_latency(self, seconds: float, count: int = 1) -> None:
        """Account *count* requests served in *seconds* total — O(1).

        The histogram takes one weighted observation of the amortized
        per-request latency (``seconds / count`` with weight *count*) and
        the sample window keeps one amortized entry per call, so a 10k
        batch costs the same as a single request.
        """
        if count < 1:
            return
        amortized = seconds / count
        self._counters["requests"].inc(count)
        self._counters["seconds"].inc(max(0.0, seconds))
        self._latency.observe(max(0.0, amortized), count=count)
        with self._lock:
            self._window.append(amortized)

    def latency_percentile(self, q: float) -> float:
        """The *q*-th percentile of per-request latency, in seconds.

        Interpolated from the fixed-bucket histogram (every request ever
        recorded, batches weighted by size); ``nan`` when empty.
        """
        return self._latency.percentile(q)

    @property
    def p50(self) -> float:
        """Median per-request latency (histogram-interpolated), seconds."""
        return self.latency_percentile(50.0)

    @property
    def p95(self) -> float:
        """95th-percentile per-request latency, seconds."""
        return self.latency_percentile(95.0)

    @property
    def p99(self) -> float:
        """99th-percentile per-request latency, seconds."""
        return self.latency_percentile(99.0)

    @property
    def requests_per_second(self) -> float:
        """Lifetime throughput: requests divided by serving seconds."""
        seconds = self.seconds
        if seconds <= 0:
            return float("nan")
        return self.requests / seconds

    def as_dict(self) -> Dict[str, float]:
        """Flat summary (for logs, the CLI, and the benchmark payloads)."""
        summary: Dict[str, float] = {
            name: getattr(self, name) for name in _STAT_FIELDS
        }
        summary["requests_per_second"] = self.requests_per_second
        summary["latency_p50"] = self.p50
        summary["latency_p95"] = self.p95
        summary["latency_p99"] = self.p99
        return summary


class QueryVectorCache:
    """Bounded LRU map from user id to query vector (``capacity <= 0``
    disables caching).

    The cache is **generation-stamped**: :meth:`invalidate` clears all
    entries and bumps :attr:`generation`.  ``get``/``put`` accept the
    generation the caller's model state was built at; a mismatch is treated
    as a miss (``get``) or silently dropped (``put``), so a request that
    started before a model swap can neither read vectors computed for the
    new model nor poison the cache with vectors from the retired one.

    All operations hold one internal lock: the hot-swap design promises
    requests keep flowing from multiple threads during a swap, and an
    unlocked ``get`` racing a ``put`` eviction would raise ``KeyError``
    inside a live request.
    """

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        self.generation = 0
        self._lock = threading.Lock()
        self._data: "OrderedDict[int, np.ndarray]" = OrderedDict()

    def get(
        self, user: int, generation: Optional[int] = None
    ) -> Optional[np.ndarray]:
        """The cached vector for *user*, or ``None`` on miss/stale stamp."""
        with self._lock:
            if generation is not None and generation != self.generation:
                return None
            vector = self._data.get(user)
            if vector is not None:
                self._data.move_to_end(user)
            return vector

    def put(
        self, user: int, vector: np.ndarray, generation: Optional[int] = None
    ) -> None:
        """Insert *vector* for *user*; dropped when *generation* is stale."""
        with self._lock:
            if self.capacity <= 0:
                return
            if generation is not None and generation != self.generation:
                return
            self._data[user] = vector
            self._data.move_to_end(user)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def invalidate(self) -> int:
        """Drop every entry and retire the current generation.

        Returns the new generation number; only puts stamped with it are
        accepted afterwards.
        """
        with self._lock:
            self.generation += 1
            self._data.clear()
            return self.generation

    def clear(self) -> None:
        """Drop every entry without retiring the current generation."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


@dataclass(frozen=True)
class ModelState:
    """Everything one request needs, captured in a single attribute read.

    Immutable so that a swap can never expose a half-updated service to a
    request already in flight: either the whole old state or the whole new
    one.  ``generation`` stamps cache traffic (see :class:`QueryVectorCache`).

    The state is public API: :attr:`RecommenderService.model_state` hands
    out the current snapshot so external machinery — most importantly the
    :mod:`repro.serving.sharding` fleet, which exports the state's factor
    matrices into ``multiprocessing.shared_memory`` — can read one
    coherent (model, history, fallback, cascade, generation) tuple without
    racing a concurrent hot swap.

    Attributes
    ----------
    model:
        The fitted model all scoring runs against.
    history_log:
        History source for Markov context and purchased-item exclusion.
    popularity:
        Cold-user fallback (``None`` when unconfigured).
    cascade:
        Taxonomy-pruned inference wrapper (``None`` = exact scoring).
    fold_in:
        Adapter serving cold users with a history.
    effective, bias:
        Snapshots of the model's effective item factors and chain biases —
        the matrices one batched scoring pass multiplies against.
    generation:
        The cache generation this state was installed at.
    retrieval:
        How known users are ranked against the catalog: ``"exact"``
        (dense pass over every item), ``"pruned"`` (taxonomy-pruned
        exact retrieval through :attr:`index`), or the approximate —
        but still deterministic — sub-linear modes ``"budget"`` /
        ``"ivf"`` (see :data:`RETRIEVAL_MODES`).
    index:
        The :class:`~repro.serving.index.SubtreeIndex` built over this
        state's factor snapshots (``None`` when ``retrieval="exact"``;
        built with ``approx=True`` for the approximate modes).  Rebuilt
        by every swap, so it can never serve retired factors.
    taxonomy_version:
        The :class:`~repro.taxonomy.version.TaxonomyVersion` of the tree
        this state serves.  Everything in the state — factors, index,
        cascade — was derived from that one tree generation, so a single
        attribute read answers "which (model, taxonomy) generation am I
        on?" coherently even mid-swap.
    """

    model: TaxonomyFactorModel
    history_log: Optional[TransactionLog]
    popularity: Optional[PopularityModel]
    cascade: Optional[CascadedRecommender]
    fold_in: FoldInRecommender
    effective: np.ndarray
    bias: np.ndarray
    generation: int
    retrieval: str = "exact"
    index: Optional[SubtreeIndex] = None
    taxonomy_version: Optional[TaxonomyVersion] = None


#: Backwards-compatible alias — the state class was private before 1.4.
_ModelState = ModelState


class RecommenderService:
    """Route recommendation requests to the right inference path.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.core.tf_model.TaxonomyFactorModel` (or
        :class:`~repro.core.mf_model.MFModel`).
    history_log:
        Per-user purchase histories for Markov context and purchased-item
        exclusion; defaults to the log the model was trained on.  When
        given, the service works on a shallow copy of the model with this
        log attached, so the query-vector context and the exclusion masks
        come from the same source (the standard pattern after
        ``ModelBundle.load``) without mutating the caller's model.
    popularity:
        Fallback for cold users without a history.  Built automatically
        from *history_log* when omitted.
    cascade:
        A :class:`~repro.utils.config.CascadeConfig` (or prebuilt
        :class:`~repro.core.cascade.CascadedRecommender`) to serve known
        users through taxonomy-pruned inference instead of the exact pass.
    fold_in_steps, fold_in_seed:
        Fold-in SGD budget and seed for cold users with a history.
    cache_size:
        Capacity of the known-user query-vector LRU cache (0 disables).
    retrieval:
        ``"exact"`` (default) ranks known users with one dense pass over
        the whole catalog; ``"pruned"`` serves the *same rankings* —
        bit-identical, ties included — through a
        :class:`~repro.serving.index.SubtreeIndex` that scans taxonomy
        subtrees in descending score-bound order and stops early, the
        fast path for large catalogs.  ``"budget"`` and ``"ivf"`` are the
        *sub-linear approximate* tiers for catalogs past ~1M items:
        budget stops the bound-ordered scan after *budget* catalog nodes
        per row (the paper's cascaded inference on the index's own
        ordering), ivf probes only the *nprobe* best taxonomy cells by
        centroid score.  Both stay deterministic — same model + same
        knobs means byte-identical rankings across runs and shard counts
        — and degrade to the exact ranking when their knob is ``None``.
        All three index-backed modes are incompatible with *cascade*
        (cascaded inference is its own — approximate — pruning scheme).
    index_level:
        Taxonomy depth of the index's subtree grouping (default: auto,
        about ``sqrt(n_items)`` groups).  Ignored when
        ``retrieval="exact"``.
    budget:
        Per-row node budget for ``retrieval="budget"`` (``None`` = scan
        everything, i.e. exact results).  Rejected with any other mode.
    nprobe:
        Cells probed per row for ``retrieval="ivf"`` (``None`` = probe
        everything, i.e. exact results).  Rejected with any other mode.
    page_dtype:
        Optional compact factor-page dtype (``"float32"``/``"float16"``)
        for the approximate scans — cache-friendlier blocked GEMM at the
        cost of bit-identity with the float64 dense pass (rankings stay
        deterministic).  Only valid with ``"budget"`` / ``"ivf"``.
    registry:
        Optional shared :class:`~repro.obs.metrics.MetricsRegistry` the
        service's :class:`ServingStats` records into; a private registry
        is created when omitted.
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`.  When set, every
        :meth:`recommend_batch` call opens a root span (and the shard
        workers hang queue-wait/scan children under it); when ``None``
        (the default) tracing is skipped entirely on the hot path.

    Notes
    -----
    The service snapshots the model's effective item factors at
    construction; call :meth:`refresh` after mutating the model in place,
    or :meth:`swap_model` to atomically replace it with another one (the
    hot-swap path used by ``repro.streaming``).

    Examples
    --------
    >>> from repro import SyntheticConfig, TaxonomyFactorModel, generate_dataset
    >>> from repro.train import train_model
    >>> data = generate_dataset(SyntheticConfig(n_users=40, seed=0))
    >>> model = train_model(
    ...     TaxonomyFactorModel(data.taxonomy, factors=4, epochs=1, seed=0),
    ...     data.log,
    ... )
    >>> service = RecommenderService(model, history_log=data.log)
    >>> service.recommend_batch([0, 1, None], k=3).shape
    (3, 3)
    >>> service.stats.requests
    3
    """

    def __init__(
        self,
        model: TaxonomyFactorModel,
        history_log: Optional[TransactionLog] = None,
        popularity: Optional[PopularityModel] = None,
        cascade: Optional[Union[CascadeConfig, CascadedRecommender]] = None,
        fold_in_steps: int = 200,
        fold_in_seed: RngLike = 0,
        cache_size: int = 4096,
        retrieval: str = "exact",
        index_level: Optional[int] = None,
        budget: Optional[int] = None,
        nprobe: Optional[int] = None,
        page_dtype: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        _check_retrieval_config(retrieval, cascade, budget, nprobe, page_dtype)
        self.retrieval = retrieval
        self.index_level = index_level
        self.budget = None if budget is None else int(budget)
        self.nprobe = None if nprobe is None else int(nprobe)
        self.page_dtype = page_dtype
        self.fold_in_steps = int(fold_in_steps)
        self.fold_in_seed = fold_in_seed
        self.query_cache = QueryVectorCache(cache_size)
        self.tracer = tracer
        self._stats = ServingStats(registry=registry)
        # Reentrant: refresh() re-enters swap_model() under the same lock.
        self._swap_lock = threading.RLock()
        self._state = self._build_state(
            model, history_log, popularity, cascade, generation=0
        )

    def _build_state(
        self,
        model: TaxonomyFactorModel,
        history_log: Optional[TransactionLog],
        popularity: Optional[PopularityModel],
        cascade: Optional[Union[CascadeConfig, CascadedRecommender]],
        generation: int,
    ) -> ModelState:
        factor_set = model.factor_set  # fail fast when unfitted
        if history_log is None:
            history_log = model._train_log
        elif history_log is not model._train_log:
            # Shallow copy: factors are shared (read-only here), only the
            # attached log differs — the caller's model stays untouched.
            model = copy.copy(model)
            model.attach_log(history_log)
        if popularity is None and history_log is not None:
            popularity = PopularityModel().fit(history_log)
        if isinstance(cascade, CascadeConfig):
            cascade = CascadedRecommender(model, cascade)
        fold_in = FoldInRecommender(
            model, steps=self.fold_in_steps, seed=self.fold_in_seed
        )
        effective = factor_set.effective_items()
        bias = factor_set.bias_of_items()
        index = None
        if self.retrieval != "exact":
            # Rebuilt on every swap/refresh: the index snapshots the
            # factors, so a stale index could silently serve a retired
            # model long after the dense path moved on.
            index = SubtreeIndex(
                effective,
                bias,
                model.taxonomy,
                level=self.index_level,
                registry=self._stats.registry,
                approx=self.retrieval in APPROX_RETRIEVAL_MODES,
                page_dtype=self.page_dtype,
            )
        return ModelState(
            model=model,
            history_log=history_log,
            popularity=popularity,
            cascade=cascade,
            fold_in=fold_in,
            effective=effective,
            bias=bias,
            generation=generation,
            retrieval=self.retrieval,
            index=index,
            taxonomy_version=model.taxonomy.version,
        )

    # ------------------------------------------------------------------
    # Introspection (reads delegate to the current state snapshot)
    # ------------------------------------------------------------------
    @property
    def model(self) -> TaxonomyFactorModel:
        """The model currently being served."""
        return self._state.model

    @property
    def history_log(self) -> Optional[TransactionLog]:
        """The history source of the current model state."""
        return self._state.history_log

    @property
    def fold_in(self) -> FoldInRecommender:
        """The fold-in adapter bound to the current model."""
        return self._state.fold_in

    @property
    def cascade(self) -> Optional[CascadedRecommender]:
        """The cascade bound to the current model (``None`` = exact)."""
        return self._state.cascade

    @property
    def popularity(self) -> Optional[PopularityModel]:
        """Fallback model for cold users without a history."""
        return self._state.popularity

    @popularity.setter
    def popularity(self, value: Optional[PopularityModel]) -> None:
        """Replace the fallback inside the immutable state (atomically)."""
        with self._swap_lock:
            self._state = replace(self._state, popularity=value)

    @property
    def generation(self) -> int:
        """Bumped by every swap / cache invalidation (0 at construction)."""
        return self._state.generation

    @property
    def taxonomy_version(self) -> Optional[TaxonomyVersion]:
        """The tree generation currently being served (digest + revision)."""
        return self._state.taxonomy_version

    @property
    def model_state(self) -> ModelState:
        """The current immutable :class:`ModelState` snapshot.

        One attribute read hands back everything a request (or an external
        exporter such as :class:`~repro.serving.sharding.ShardRouter`)
        needs, coherent even while another thread is mid-:meth:`swap_model`.
        """
        return self._state

    @property
    def stats(self) -> ServingStats:
        """Cumulative serving statistics since the last reset."""
        return self._stats

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry the service's stats record into."""
        return self._stats.registry

    def reset_stats(self) -> ServingStats:
        """Zero the counters; returns the retired stats object.

        The replacement stats get a **fresh private registry** (counters
        are monotonic, so zeroing means new instruments); a shared
        registry passed at construction keeps the retired series.
        """
        retired = self._stats
        self._stats = ServingStats(labels=retired.labels)
        return retired

    # ------------------------------------------------------------------
    # Model lifecycle: invalidation, refresh, hot swap
    # ------------------------------------------------------------------
    def invalidate_cache(self) -> int:
        """Drop all cached query vectors and retire their generation.

        Returns the new generation.  This flushes the *cache only* — the
        item-factor snapshots the service scores against are untouched, so
        after mutating the model's factors in place (``partial_fit``,
        ``onboard_items``) call :meth:`refresh` (or :meth:`swap_model`),
        which re-snapshots them and invalidates the cache in one step.
        """
        with self._swap_lock:
            generation = self.query_cache.invalidate()
            self._state = replace(self._state, generation=generation)
        return generation

    def refresh(self) -> None:
        """Re-snapshot the current model's factors and drop cached vectors.

        Required after ``model.partial_fit`` / ``model.onboard_items`` so
        the service stops serving stale factors.
        """
        with self._swap_lock:
            state = self._state
            self.swap_model(
                state.model,
                history_log=state.history_log,
                popularity=state.popularity,
            )

    def swap_model(
        self,
        model: TaxonomyFactorModel,
        history_log: Optional[TransactionLog] = None,
        popularity: Optional[PopularityModel] = None,
    ) -> int:
        """Atomically replace the served model with *model* — zero downtime.

        The replacement state (factor snapshots, fold-in adapter, cascade
        rebuilt against the new model, fallback) is constructed *before*
        the switch, then installed with one reference assignment; requests
        in flight finish against the old state, later requests see only the
        new one.  The query-vector cache is invalidated, and its generation
        counter guarantees in-flight requests cannot re-poison it with
        vectors from the retired model.

        Lifecycle calls (``swap_model`` / ``refresh`` / ``invalidate_cache``)
        are serialized: the whole build-and-install runs under one lock, so
        two concurrent swappers cannot both build from the same retired
        state and silently lose one publication.  Requests never take this
        lock — serving continues throughout.

        Parameters
        ----------
        model:
            The fitted replacement model.
        history_log:
            History source for the new state; defaults to the log attached
            to *model* (``model.attach_log`` / training log).
        popularity:
            Replacement fallback; rebuilt from *history_log* when omitted.

        Returns the new cache generation.
        """
        with self._swap_lock:
            old = self._state
            cascade_cfg = old.cascade.config if old.cascade is not None else None
            state = self._build_state(
                model, history_log, popularity, cascade_cfg, generation=-1
            )
            generation = self.query_cache.invalidate()
            self._state = replace(state, generation=generation)
            self._stats.add(swaps=1)
        return generation

    def is_known(self, user: Optional[int]) -> bool:
        """Whether *user* indexes a trained user-factor row."""
        return self._known(self._state, user)

    @staticmethod
    def _known(state: ModelState, user: Optional[int]) -> bool:
        return user is not None and 0 <= int(user) < state.model.n_users

    # ------------------------------------------------------------------
    # Single-request path
    # ------------------------------------------------------------------
    def recommend(
        self,
        user: Optional[int] = None,
        k: int = 10,
        history: Optional[History] = None,
    ) -> np.ndarray:
        """Top-*k* items for one request, routed by user type.

        ``user=None`` (or an out-of-range index) marks a cold user: with a
        *history* they are folded in, without one they get the popularity
        fallback.
        """
        state = self._state  # one read: the whole request sees one model
        started = time.perf_counter()
        if self._known(state, user):
            top = self._recommend_known(state, int(user), k, history)
            self._stats.add(known_user_requests=1)
        elif history:
            top = state.fold_in.recommend(k=k, history=history)
            self._stats.add(nodes_scored=state.model.n_items)
            self._stats.add(fold_in_requests=1)
        else:
            top = self._fallback(state, k)
            self._stats.add(fallback_requests=1)
        self._stats.record_latency(time.perf_counter() - started)
        return top

    def _recommend_known(
        self, state: ModelState, user: int, k: int, history: Optional[History]
    ) -> np.ndarray:
        if state.cascade is not None:
            result = state.cascade.rank(user, history)
            self._stats.add(nodes_scored=result.nodes_scored)
            items = result.items
            banned = self._banned_items(state, user)
            if banned.size:
                keep = ~np.isin(items, banned)
                items = items[keep]
            return items[:k]
        query = self._query_vector(state, user, history)
        banned = self._banned_items(state, user)
        if state.index is not None:
            page = self._index_page(state, query[None, :], k, [banned])
            self._stats.add(nodes_scored=page.nodes_scored)
            row = page.items[0]
            return row[row >= 0]
        scores = state.effective @ query + state.bias
        self._stats.add(nodes_scored=scores.size)
        if banned.size:
            scores[banned] = -np.inf
        row = top_k_rows(scores[None, :], k)[0]
        return row[row >= 0]

    def _index_page(
        self,
        state: ModelState,
        queries: np.ndarray,
        k: int,
        banned: List[np.ndarray],
    ):
        """One index scan in the state's retrieval mode (incl. knobs)."""
        if state.retrieval == "budget":
            return state.index.top_k_budget(
                queries, k, banned=banned, budget=self.budget
            )
        if state.retrieval == "ivf":
            return state.index.top_k_ivf(
                queries, k, banned=banned, nprobe=self.nprobe
            )
        return state.index.top_k(queries, k, banned=banned)

    def _query_vector(
        self, state: ModelState, user: int, history: Optional[History]
    ) -> np.ndarray:
        if history is not None:
            # Explicit histories bypass the cache: the vector is
            # request-specific, not a property of the user.
            self._stats.add(cache_misses=1)
            return state.model.query_vector(user, history)
        cached = self.query_cache.get(user, state.generation)
        if cached is not None:
            self._stats.add(cache_hits=1)
            return cached
        self._stats.add(cache_misses=1)
        vector = state.model.query_vector(user)
        self.query_cache.put(user, vector, state.generation)
        return vector

    @staticmethod
    def _banned_items(state: ModelState, user: int) -> np.ndarray:
        log = state.history_log
        if log is None or user >= log.n_users:
            return np.empty(0, dtype=np.int64)
        return log.user_items(user)

    def _fallback(self, state: ModelState, k: int) -> np.ndarray:
        if state.popularity is None:
            raise ServingError(
                "no history and no popularity fallback configured; pass "
                "popularity= or history_log= to RecommenderService"
            )
        return state.popularity.recommend(0, k=k)

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------
    def recommend_batch(
        self,
        users: Sequence[Optional[int]],
        k: int = 10,
        histories: Optional[Sequence[Optional[History]]] = None,
    ) -> np.ndarray:
        """Serve a whole batch; the known-user fraction is fully vectorized.

        ``users`` may contain ``None`` / negative / out-of-range entries for
        cold users (routed per row like :meth:`recommend`).  Returns an
        ``(n, min(k, n_items))`` int64 array padded with ``-1``.

        When a :class:`~repro.obs.tracing.Tracer` is configured the call
        runs under a ``recommend_batch`` root span tagged with the batch
        size and model generation; with no tracer the span machinery is
        skipped entirely.
        """
        state = self._state  # one read: the whole batch sees one model
        started = time.perf_counter()
        if self.tracer is None:
            out = self._serve_batch(state, users, k, histories)
        else:
            with self.tracer.span(
                "recommend_batch",
                tags={"requests": len(users), "generation": state.generation},
            ):
                out = self._serve_batch(state, users, k, histories)
        self._stats.record_latency(
            time.perf_counter() - started, count=len(users)
        )
        return out

    def _serve_batch(
        self,
        state: ModelState,
        users: Sequence[Optional[int]],
        k: int,
        histories: Optional[Sequence[Optional[History]]],
    ) -> np.ndarray:
        user_ids = np.asarray(
            [-1 if u is None else int(u) for u in users], dtype=np.int64
        )
        n = user_ids.size
        if histories is not None and len(histories) != n:
            raise ValueError(f"got {len(histories)} histories for {n} users")
        width = min(int(k), state.model.n_items)
        out = np.full((n, width), -1, dtype=np.int64)

        known_mask = (user_ids >= 0) & (user_ids < state.model.n_users)
        known_rows = np.flatnonzero(known_mask)
        if known_rows.size:
            if state.cascade is not None:
                for row in known_rows:
                    history = None if histories is None else histories[row]
                    top = self._recommend_known(
                        state, int(user_ids[row]), width, history
                    )
                    out[row, : top.size] = top
            else:
                out[known_rows] = self._batch_known(
                    state,
                    user_ids[known_rows],
                    None
                    if histories is None
                    else [histories[row] for row in known_rows],
                    width,
                )
            self._stats.add(known_user_requests=int(known_rows.size))

        for row in np.flatnonzero(~known_mask):
            history = None if histories is None else histories[row]
            if history:
                top = state.fold_in.recommend(k=width, history=history)
                self._stats.add(nodes_scored=state.model.n_items)
                self._stats.add(fold_in_requests=1)
            else:
                top = self._fallback(state, width)
                self._stats.add(fallback_requests=1)
            out[row, : top.size] = top

        return out

    def _batch_known(
        self,
        state: ModelState,
        users: np.ndarray,
        histories: Optional[List[Optional[History]]],
        width: int,
    ) -> np.ndarray:
        """Known-user scoring: cache-assisted queries, then one BLAS
        product plus one row-wise partition (``retrieval="exact"``), a
        taxonomy-pruned scan returning the identical rankings
        (``retrieval="pruned"``), or a budgeted/IVF approximate scan
        (``retrieval="budget"`` / ``"ivf"``)."""
        factors = state.effective.shape[1]
        queries = np.empty((users.size, factors))
        miss_slots: List[int] = []
        for slot, user in enumerate(users):
            history = None if histories is None else histories[slot]
            if history is None:
                cached = self.query_cache.get(int(user), state.generation)
                if cached is not None:
                    queries[slot] = cached
                    self._stats.add(cache_hits=1)
                    continue
            miss_slots.append(slot)
        if miss_slots:
            miss_users = users[miss_slots]
            miss_histories = (
                None
                if histories is None
                else [histories[slot] for slot in miss_slots]
            )
            fresh = state.model.query_matrix(miss_users, miss_histories)
            for i, slot in enumerate(miss_slots):
                queries[slot] = fresh[i]
                if histories is None or histories[slot] is None:
                    # copy() so the cache holds a K-vector, not a view
                    # pinning the whole (n_miss, K) batch matrix alive.
                    self.query_cache.put(
                        int(users[slot]), fresh[i].copy(), state.generation
                    )
            self._stats.add(cache_misses=len(miss_slots))

        banned = [self._banned_items(state, int(user)) for user in users]
        if state.index is not None:
            page = self._index_page(state, queries, width, banned)
            self._stats.add(nodes_scored=page.nodes_scored)
            return page.items
        scores = queries @ state.effective.T + state.bias[None, :]
        self._stats.add(nodes_scored=scores.size)
        for row, row_banned in enumerate(banned):
            if row_banned.size:
                scores[row, row_banned] = -np.inf
        return top_k_rows(scores, width)
