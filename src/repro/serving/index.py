"""Taxonomy-pruned exact top-k retrieval for large catalogs.

The brute-force serving path scores every catalog item for every request
row — one ``(n_rows, n_items)`` GEMM plus a full-width partition.  That is
unbeatable for small catalogs, but at hundreds of thousands of items most
of the work scores items that never had a chance of entering the top-k.

:class:`SubtreeIndex` is a two-stage **exact** maximum-inner-product
retrieval layer that exploits the same structure the paper's model learns
from: the taxonomy.  Items under one subtree share the ancestor offsets of
Eq. 1, so their effective factors cluster tightly around the subtree's
ancestor sum — which makes per-subtree score upper bounds sharp enough to
prune with.

Build stage (once per model generation)
    Items are partitioned by their ancestor subtree at one taxonomy depth
    (:meth:`repro.taxonomy.tree.Taxonomy.item_groups_at_level`).  For each
    group the index precomputes its factor centroid ``c_g``, covering
    radius ``r_g = max_i ||f_i - c_g||``, and maximum chain bias.

Query stage (per batch)
    For every request row the Cauchy–Schwarz bound

    ``score(q, i) = q·f_i + b_i  <=  q·c_g + ||q||·r_g + max_bias_g``

    caps what any item of group ``g`` can score (with an all-zero
    centroid this reduces to the plain group-max-norm × query-norm
    bound).  Groups are scanned in descending bound order in blocks sized
    for one GEMM each; each block's local top-k page is folded into the
    row's running top-k with :func:`repro.core.topk.merge_top_k_pages`,
    and a row retires as soon as its running k-th score **strictly**
    beats the best bound of every unscanned group.

Exactness
---------
The result is *provably identical* to the brute-force ranking, including
tie behavior:

* every scanned item's score is the same dot product the dense pass
  computes, so scanned candidates sort identically;
* block pages and the running merge both order candidates by
  (score desc, item asc) — the deterministic total order
  :func:`repro.core.topk.top_k_rows` applies — so assembling the top-k
  from blocks cannot reorder or drop tied candidates;
* a row only stops once its k-th score is **strictly** above the bound of
  every remaining group, so an unscanned item can never tie its way into
  the top-k; with tied scores everywhere (bound never strictly beaten)
  the index degrades gracefully to a full — still exact — scan.

``benchmarks/bench_index.py`` enforces this bit-for-bit on a 100k-item
catalog (including forced score ties and fully-banned rows) and gates the
pruned path at >= 2x brute-force batch throughput at full scale.

Approximate tiers (``approx=True``)
-----------------------------------
Exactness caps how much the bound-ordered scan can skip: past ~1M items
the strict stop rule still touches most groups.  An index built with
``approx=True`` additionally supports two *sub-linear* query modes that
trade recall for throughput while staying **deterministic**:

* :meth:`SubtreeIndex.top_k_budget` — the paper's cascaded-inference
  idea: per row, rank the subtree cells by the same Cauchy–Schwarz bound
  and stop selecting once the cumulative catalog-wide cell size reaches a
  node *budget*; only items of selected cells are scored.
* :meth:`SubtreeIndex.top_k_ivf` — classic IVF probing with the taxonomy
  as the coarse quantizer: per row, score only the top-``nprobe`` cells
  by centroid affinity.  Optional ``page_dtype="float16"`` factor pages
  halve the scan's memory traffic.

Both modes select cells per row from **catalog-global** statistics (an
item-sliced shard still ranks the full catalog's cells and then scores
only its local members), so the selected candidate set — and therefore
the merged ranking — is a pure function of (model, knob): byte-identical
across runs *and* across shard counts.  ``budget=None`` / ``nprobe=None``
(or any knob covering every cell) selects the whole catalog and is
bit-identical to :meth:`SubtreeIndex.top_k` / the dense pass (with the
default float64 pages); recall@k is monotone non-decreasing in the knob
because a larger budget/nprobe only ever *adds* cells to each row's
selection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.topk import PAD_ITEM, merge_top_k_pages, top_k_rows
from repro.taxonomy.tree import Taxonomy

#: Relative inflation applied to precomputed radii/bias caps so float
#: rounding in the bound arithmetic can never undercut a true score.
_BOUND_SLACK = 1e-9


@dataclass(frozen=True)
class RetrievalPage:
    """The result of one pruned top-k batch.

    Attributes
    ----------
    items:
        ``(n_rows, width)`` int64 dense item indices, best first, padded
        with :data:`repro.core.topk.PAD_ITEM` — exactly what the
        brute-force ``top_k_rows`` pass would have returned.
    scores:
        Matching float scores (``-inf`` in pad slots), so callers merging
        further (the item-partitioned shard router) keep exact ordering.
    nodes_scored:
        Dot products actually computed — the paper's hardware-independent
        work measure; compare against ``n_rows * n_indexed`` for the
        brute-force cost.
    groups_scanned:
        Subtree groups whose items were scored (over all rows scanning
        stops independently, so this counts block work, not per-row work).
    """

    items: np.ndarray
    scores: np.ndarray
    nodes_scored: int
    groups_scanned: int


class SubtreeIndex:
    """Exact taxonomy-pruned top-k over a (subset of a) factored catalog.

    Parameters
    ----------
    effective:
        ``(n_catalog, K)`` effective item factors — the matrix the dense
        pass multiplies against (``FactorSet.effective_items()``).  A
        full-catalog index references it zero-copy (so a shard fleet
        never duplicates the factors); do not mutate it in place while
        the index is live — rebuild on ``swap_model`` instead, as the
        serving layer does.  Subset indexes gather a private copy of
        their rows.
    bias:
        ``(n_catalog,)`` summed chain biases (``bias_of_items()``).
    taxonomy:
        The item taxonomy the grouping is derived from.
    level:
        Taxonomy depth of the grouping subtrees.  Default (``None``)
        picks the depth whose group count is closest to
        ``sqrt(n_indexed)`` — balancing per-group bound sharpness against
        per-group scan overhead.
    items:
        Dense item indices this index covers (default: the whole
        catalog).  Item-partitioned shards index only their slice;
        returned pages still carry *global* dense indices.
    block_items:
        Minimum items per scan block: consecutive groups (in bound
        order) are packed until a block reaches this size, so each block
        is one worthwhile GEMM instead of one tiny GEMV per subtree.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; each
        :meth:`top_k` call then records its wall time in the
        ``repro_index_scan_seconds`` histogram and its work in the
        ``repro_index_nodes_scored_total`` / ``repro_index_rows_total``
        counters (pruning effectiveness = nodes scored per row versus
        ``n_indexed``).  ``None`` (default) records nothing.
    approx:
        Build the approximate-query machinery on top of the exact scan:
        catalog-**global** cell statistics (anchors, centroids, radii,
        sizes at :attr:`level`, computed over *all* ``n_catalog`` items
        even when *items* restricts the scan to a slice) that
        :meth:`top_k_budget` and :meth:`top_k_ivf` select cells from.
        Global statistics are what make the approximate modes invariant
        to sharding: every item-sliced index ranks the same cells with
        the same keys, so the union of the slices' candidates is exactly
        the single-process candidate set.  When ``approx=True`` and
        *level* is ``None`` the grouping depth is also chosen from the
        full catalog, for the same reason.
    page_dtype:
        Optional compact dtype (``"float32"`` / ``"float16"``) for the
        approximate scan's factor pages — halves/quarters the memory the
        blocked GEMM streams.  Scores are computed from the compact page
        and are deterministic, but no longer bit-identical to the float64
        dense pass, so this knob requires ``approx=True`` and only
        affects :meth:`top_k_budget` / :meth:`top_k_ivf`;
        :meth:`top_k` always scans the exact float64 factors.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.topk import top_k_rows
    >>> from repro.taxonomy.tree import Taxonomy
    >>> tax = Taxonomy([-1, 0, 0, 1, 1, 2, 2])    # two 2-leaf subtrees
    >>> rng = np.random.default_rng(0)
    >>> eff = rng.normal(size=(4, 3))
    >>> bias = rng.normal(size=4)
    >>> queries = rng.normal(size=(2, 3))
    >>> index = SubtreeIndex(eff, bias, tax, level=1)
    >>> page = index.top_k(queries, k=2)
    >>> bool(np.array_equal(page.items, top_k_rows(queries @ eff.T + bias, 2)))
    True
    """

    def __init__(
        self,
        effective: np.ndarray,
        bias: np.ndarray,
        taxonomy: Taxonomy,
        *,
        level: Optional[int] = None,
        items: Optional[np.ndarray] = None,
        block_items: int = 4096,
        registry=None,
        approx: bool = False,
        page_dtype: Optional[str] = None,
    ):
        self._scan_seconds = None
        self._nodes_counter = None
        self._rows_counter = None
        if registry is not None:
            self._scan_seconds = registry.histogram(
                "repro_index_scan_seconds",
                help="Wall time of one pruned top-k batch scan.",
            )
            self._nodes_counter = registry.counter(
                "repro_index_nodes_scored_total",
                help="Dot products computed by pruned scans.",
            )
            self._rows_counter = registry.counter(
                "repro_index_rows_total",
                help="Query rows served by pruned scans.",
            )
        effective = np.asarray(effective, dtype=np.float64)
        bias = np.asarray(bias, dtype=np.float64)
        if effective.ndim != 2:
            raise ValueError(
                f"effective must be 2-d, got shape {effective.shape}"
            )
        if bias.shape != (effective.shape[0],):
            raise ValueError(
                f"bias shape {bias.shape} does not match "
                f"{effective.shape[0]} items"
            )
        if effective.shape[0] != taxonomy.n_items:
            raise ValueError(
                f"effective has {effective.shape[0]} rows for a taxonomy "
                f"of {taxonomy.n_items} items"
            )
        if block_items < 1:
            raise ValueError(f"block_items must be >= 1, got {block_items}")
        self.taxonomy = taxonomy
        #: The tree generation the cells were carved from — checkable
        #: against the serving state's version, so a refined taxonomy can
        #: never be paired with an index built over the previous tree.
        self.taxonomy_version = taxonomy.version
        self.block_items = int(block_items)
        self._n_catalog = int(effective.shape[0])

        if items is None:
            indexed = np.arange(self._n_catalog, dtype=np.int64)
        else:
            indexed = np.unique(np.asarray(items, dtype=np.int64))
            if indexed.size and (
                indexed[0] < 0 or indexed[-1] >= self._n_catalog
            ):
                raise ValueError(
                    f"items out of range 0..{self._n_catalog - 1}"
                )
        self._indexed_items = indexed
        self.approx = bool(approx)
        if page_dtype is not None and not self.approx:
            raise ValueError(
                "page_dtype= only applies to approximate queries; "
                "build with approx=True"
            )
        if page_dtype is not None and page_dtype not in ("float32", "float16"):
            raise ValueError(
                f"page_dtype must be 'float32' or 'float16', got {page_dtype!r}"
            )
        self.page_dtype = page_dtype
        if level is None:
            # Approximate cell selection must rank the SAME cells on every
            # shard, so the default depth is chosen from the full catalog,
            # not from whatever slice this index happens to cover.
            pick_items = (
                np.arange(self._n_catalog, dtype=np.int64)
                if self.approx
                else indexed
            )
            self.level = self._pick_level(taxonomy, pick_items)
        else:
            self.level = int(level)
        if not 0 <= self.level <= taxonomy.max_depth:
            raise ValueError(
                f"level must be in 0..{taxonomy.max_depth}, got {self.level}"
            )

        # Full-catalog indexes reference the caller's matrices directly:
        # both serving call sites hand in freshly-computed (or shared,
        # read-only) snapshots and rebuild the index on every swap, and
        # copying here would duplicate the factors once per shard worker
        # — the very thing the shared-memory fleet design avoids.  Subset
        # indexes must gather their rows (fancy indexing copies anyway).
        if indexed.size == self._n_catalog:
            self._eff = np.ascontiguousarray(effective)
            self._bias = np.ascontiguousarray(bias)
        else:
            self._eff = np.ascontiguousarray(effective[indexed])
            self._bias = np.ascontiguousarray(bias[indexed])
        # Row position of each global item inside the snapshot (-1 when
        # the item is outside this index) — resolves banned-item ids.
        self._row_of = np.full(self._n_catalog, -1, dtype=np.int64)
        self._row_of[indexed] = np.arange(indexed.size)

        groups = taxonomy.item_groups_at_level(self.level, items=indexed)
        self.anchors = np.asarray(
            [node for node, _members in groups], dtype=np.int64
        )
        # Member ids are ascending and `indexed` is sorted, so the row
        # positions of each group are ascending in global item id too —
        # the order the determinism contract ranks ties by.
        self._group_rows: List[np.ndarray] = [
            self._row_of[members] for _node, members in groups
        ]
        self._group_sizes = np.asarray(
            [rows.size for rows in self._group_rows], dtype=np.int64
        )

        centroids = np.zeros((len(groups), self._eff.shape[1]))
        radii = np.zeros(len(groups))
        max_bias = np.zeros(len(groups))
        for g, rows in enumerate(self._group_rows):
            block = self._eff[rows]
            centroids[g] = block.mean(axis=0)
            radii[g] = np.sqrt(
                ((block - centroids[g]) ** 2).sum(axis=1).max()
            )
            max_bias[g] = self._bias[rows].max()
        scale = np.abs(max_bias) + radii + 1.0
        self._centroids = centroids
        self._radii = radii + _BOUND_SLACK * scale
        self._max_bias = max_bias

        # Approximate-mode cell statistics, always over the FULL catalog:
        # item-sliced shard indexes must rank identical cells with
        # identical keys so the per-row selection is a global function of
        # (model, knob) — that is what makes budget/ivf rankings
        # invariant to the shard count.
        self._pages = None
        if self.page_dtype is not None:
            self._pages = self._eff.astype(self.page_dtype)
        if self.approx:
            if indexed.size == self._n_catalog:
                self._cell_anchors = self.anchors
                self._cell_centroids = self._centroids
                self._cell_radii = self._radii
                self._cell_max_bias = self._max_bias
                self._cell_sizes = self._group_sizes
            else:
                cells = taxonomy.item_groups_at_level(self.level)
                self._cell_anchors = np.asarray(
                    [node for node, _members in cells], dtype=np.int64
                )
                n_cells = len(cells)
                cell_centroids = np.zeros((n_cells, effective.shape[1]))
                cell_radii = np.zeros(n_cells)
                cell_max_bias = np.zeros(n_cells)
                cell_sizes = np.zeros(n_cells, dtype=np.int64)
                for c, (_node, members) in enumerate(cells):
                    block = effective[members]
                    cell_centroids[c] = block.mean(axis=0)
                    cell_radii[c] = np.sqrt(
                        ((block - cell_centroids[c]) ** 2).sum(axis=1).max()
                    )
                    cell_max_bias[c] = bias[members].max()
                    cell_sizes[c] = members.size
                cell_scale = np.abs(cell_max_bias) + cell_radii + 1.0
                self._cell_centroids = cell_centroids
                self._cell_radii = cell_radii + _BOUND_SLACK * cell_scale
                self._cell_max_bias = cell_max_bias
                self._cell_sizes = cell_sizes
            # Position of each locally-present cell in the global ranking.
            self._local_cell = np.searchsorted(
                self._cell_anchors, self.anchors
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_indexed(self) -> int:
        """Number of catalog items this index covers."""
        return int(self._indexed_items.size)

    @property
    def n_groups(self) -> int:
        """Number of subtree groups the catalog is partitioned into."""
        return len(self._group_rows)

    @property
    def n_cells(self) -> int:
        """Catalog-global cell count the approximate modes select from.

        Raises :class:`ValueError` unless built with ``approx=True``.
        ``nprobe >= n_cells`` makes :meth:`top_k_ivf` exhaustive, the
        same way ``budget >= n_indexed_catalog`` does for
        :meth:`top_k_budget`.
        """
        self._require_approx("n_cells")
        return int(self._cell_anchors.size)

    def _require_approx(self, what: str) -> None:
        if not self.approx:
            raise ValueError(
                f"{what} requires an index built with approx=True "
                "(this one only supports the exact top_k scan)"
            )

    @staticmethod
    def _pick_level(taxonomy: Taxonomy, items: np.ndarray) -> int:
        """The deepest depth whose bound stage stays cheap.

        Deeper groupings are strictly better for pruning — smaller
        subtrees have smaller covering radii, so their Cauchy–Schwarz
        bounds hug the true scores tighter — until the per-group
        overhead (the ``(n_rows, n_groups)`` bound GEMM and the group
        bookkeeping) stops being negligible next to the scan it saves.
        Pick the deepest level with at most ``n_indexed / 8`` groups
        averaging at least 8 items each; fall back to the level whose
        group count is closest to ``sqrt(n_indexed)`` when no level
        qualifies (very flat or very skewed taxonomies).
        """
        if taxonomy.max_depth <= 1 or items.size == 0:
            return min(1, taxonomy.max_depth)
        counts = {}
        for level in range(1, taxonomy.max_depth + 1):
            anchors = taxonomy.item_category(items, level)
            counts[level] = int(np.unique(anchors).size)
        eligible = [
            level
            for level, count in counts.items()
            if count * 8 <= items.size
        ]
        if eligible:
            return max(eligible)
        target = np.sqrt(items.size)
        return min(counts, key=lambda level: abs(counts[level] - target))

    # ------------------------------------------------------------------
    # Query stage
    # ------------------------------------------------------------------
    def top_k(
        self,
        queries: np.ndarray,
        k: int,
        banned: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> RetrievalPage:
        """Exact top-``k`` of the indexed items for a batch of queries.

        Parameters
        ----------
        queries:
            ``(n_rows, K)`` query vectors (``model.query_matrix`` output).
        k:
            Ranking depth; the page width is ``min(k, n_indexed)``.
        banned:
            Optional per-row arrays of *global* dense item indices to
            exclude (a user's past purchases); ids outside this index are
            ignored, banned slots score ``-inf`` exactly like the dense
            pass.

        Returns
        -------
        A :class:`RetrievalPage` whose ``items`` are bit-identical to
        ``top_k_rows`` over the dense scores of the indexed items.
        """
        started = time.perf_counter()
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2:
            raise ValueError(
                f"queries must be 2-d, got shape {queries.shape}"
            )
        n_rows = queries.shape[0]
        width = min(int(k), self.n_indexed)
        items_out = np.full((n_rows, width), PAD_ITEM, dtype=np.int64)
        scores_out = np.full((n_rows, width), -np.inf)
        if width <= 0 or n_rows == 0 or self.n_groups == 0:
            return RetrievalPage(items_out, scores_out, 0, 0)
        if banned is not None and len(banned) != n_rows:
            raise ValueError(
                f"got {len(banned)} banned rows for {n_rows} queries"
            )

        # Stage 1: per-row group bounds, one shared scan order (by mean
        # bound), and per-row suffix maxima so each row knows the best
        # bound among the groups it has not scanned yet.
        norms = np.linalg.norm(queries, axis=1)
        bounds = (
            queries @ self._centroids.T
            + norms[:, None] * self._radii[None, :]
            + self._max_bias[None, :]
        )
        shared = np.argsort(-bounds.mean(axis=0), kind="stable")
        ordered = bounds[:, shared]
        suffix = np.maximum.accumulate(ordered[:, ::-1], axis=1)[:, ::-1]

        banned_rows = self._resolve_banned(banned, n_rows)

        # Stage 2: blocked descending-bound scan with per-row early stop.
        active = np.arange(n_rows)
        nodes_scored = 0
        groups_scanned = 0
        n_groups = self.n_groups
        g_pos = 0
        while g_pos < n_groups:
            # A row retires once its running k-th score STRICTLY beats
            # the best remaining bound: an unscanned item then scores
            # strictly below the k-th and cannot tie its way in.
            keep = ~(scores_out[active, width - 1] > suffix[active, g_pos])
            active = active[keep]
            if active.size == 0:
                break
            g_end = g_pos
            packed = 0
            while g_end < n_groups and (packed < self.block_items or g_end == g_pos):
                packed += int(self._group_sizes[shared[g_end]])
                g_end += 1
            rows = np.concatenate(
                [self._group_rows[shared[g]] for g in range(g_pos, g_end)]
            )
            # Ascending snapshot row == ascending global item id, so the
            # block-local tie order below matches the global contract.
            rows.sort()
            ids = self._indexed_items[rows]
            scores = queries[active] @ self._eff[rows].T + self._bias[rows]
            nodes_scored += scores.size
            groups_scanned += g_end - g_pos
            if banned_rows is not None:
                for slot, row in enumerate(active):
                    hits = banned_rows[row]
                    if hits is None:
                        continue
                    at = np.searchsorted(rows, hits)
                    inside = at < rows.size
                    at, hits = at[inside], hits[inside]
                    at = at[rows[at] == hits]
                    if at.size:
                        scores[slot, at] = -np.inf
            local = top_k_rows(scores, width)
            looked = np.clip(local, 0, None)
            page_scores = np.take_along_axis(scores, looked, axis=1)
            page_scores[local < 0] = -np.inf
            page_items = np.where(local >= 0, ids[looked], PAD_ITEM)
            merged_items, merged_scores = merge_top_k_pages(
                [items_out[active], page_items],
                [scores_out[active], page_scores],
                width,
            )
            items_out[active] = merged_items
            scores_out[active] = merged_scores
            g_pos = g_end
        if self._scan_seconds is not None:
            self._scan_seconds.observe(
                max(0.0, time.perf_counter() - started)
            )
            self._nodes_counter.inc(nodes_scored)
            self._rows_counter.inc(n_rows)
        return RetrievalPage(items_out, scores_out, nodes_scored, groups_scanned)

    # ------------------------------------------------------------------
    # Approximate query modes (require approx=True)
    # ------------------------------------------------------------------
    def top_k_budget(
        self,
        queries: np.ndarray,
        k: int,
        banned: Optional[Sequence[Optional[np.ndarray]]] = None,
        budget: Optional[int] = None,
    ) -> RetrievalPage:
        """Budgeted top-``k``: scan cells in bound order until *budget* nodes.

        The paper's cascaded-inference idea on the index's own ordering
        machinery: per row, cells are ranked by the same Cauchy–Schwarz
        bound the exact scan orders by (ties broken by ascending cell
        anchor), and cells are selected until the cumulative
        catalog-global cell size reaches *budget* — so *budget* caps the
        dot products a row may spend, to within one cell.  At least one
        cell is always selected; ``budget=None`` (or any value covering
        the whole catalog) selects every cell and returns the exact
        ranking bit-for-bit.

        Cell sizes and bounds are catalog-global even on an item-sliced
        index (each slice then scores only its local members of the
        selected cells), so merged shard pages reproduce the
        single-process ranking byte-for-byte for any shard count.

        Examples
        --------
        >>> import numpy as np
        >>> from repro.taxonomy.tree import Taxonomy
        >>> tax = Taxonomy([-1, 0, 0, 1, 1, 2, 2])
        >>> rng = np.random.default_rng(0)
        >>> eff, bias = rng.normal(size=(4, 3)), rng.normal(size=4)
        >>> index = SubtreeIndex(eff, bias, tax, level=1, approx=True)
        >>> queries = rng.normal(size=(2, 3))
        >>> exhaustive = index.top_k_budget(queries, k=2, budget=4)
        >>> bool(np.array_equal(exhaustive.items, index.top_k(queries, 2).items))
        True
        """
        self._require_approx("top_k_budget")
        if budget is not None and int(budget) < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        return self._top_k_selected(
            queries, k, banned, mode="budget", knob=budget
        )

    def top_k_ivf(
        self,
        queries: np.ndarray,
        k: int,
        banned: Optional[Sequence[Optional[np.ndarray]]] = None,
        nprobe: Optional[int] = None,
    ) -> RetrievalPage:
        """IVF top-``k``: probe only the best *nprobe* cells per row.

        The taxonomy subtrees act as an IVF coarse quantizer: per row the
        catalog-global cells are ranked by centroid affinity
        ``q·c_g + max_bias_g`` (ties broken by ascending cell anchor) and
        only the top ``nprobe`` are scored.  ``nprobe=None`` (or
        ``>= n_cells``) probes everything and returns the exact ranking
        bit-for-bit (with the default float64 pages).  Selection sets are
        nested in ``nprobe``, so recall@k is monotone non-decreasing in
        it; like :meth:`top_k_budget`, the selection is catalog-global
        and therefore invariant to item slicing.
        """
        self._require_approx("top_k_ivf")
        if nprobe is not None and int(nprobe) < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        return self._top_k_selected(
            queries, k, banned, mode="ivf", knob=nprobe
        )

    def _select_cells(
        self, queries: np.ndarray, mode: str, knob: Optional[int]
    ) -> np.ndarray:
        """Per-row boolean selection over the catalog-global cells.

        A pure per-row function of (model statistics, *knob*): no batch
        aggregate enters the keys, so a row selects the same cells
        whatever batch — or shard — it arrives in.  Selections are
        nested in the knob (a prefix of the same per-row cell ranking),
        which is what makes recall monotone in budget/nprobe.
        """
        n_cells = self._cell_anchors.size
        if mode == "budget":
            norms = np.linalg.norm(queries, axis=1)
            keys = (
                queries @ self._cell_centroids.T
                + norms[:, None] * self._cell_radii[None, :]
                + self._cell_max_bias[None, :]
            )
        else:
            keys = queries @ self._cell_centroids.T + self._cell_max_bias
        # Full per-row ranking under the global (key desc, cell asc)
        # order — cell positions are ascending anchors, so top_k_rows'
        # ascending-index tie-break is the ascending-anchor tie-break.
        order = top_k_rows(keys, n_cells)
        if mode == "budget":
            if knob is None:
                picked = np.ones(order.shape, dtype=bool)
            else:
                sizes = self._cell_sizes[order]
                started = np.cumsum(sizes, axis=1) - sizes
                picked = started < int(knob)
        else:
            picked = np.zeros(order.shape, dtype=bool)
            picked[:, : n_cells if knob is None else min(int(knob), n_cells)] = True
        selected = np.zeros(order.shape, dtype=bool)
        np.put_along_axis(selected, order, picked, axis=1)
        return selected

    def _top_k_selected(
        self,
        queries: np.ndarray,
        k: int,
        banned: Optional[Sequence[Optional[np.ndarray]]],
        mode: str,
        knob: Optional[int],
    ) -> RetrievalPage:
        """Score only the selected cells; merge under the global order."""
        started = time.perf_counter()
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2:
            raise ValueError(
                f"queries must be 2-d, got shape {queries.shape}"
            )
        n_rows = queries.shape[0]
        width = min(int(k), self.n_indexed)
        items_out = np.full((n_rows, width), PAD_ITEM, dtype=np.int64)
        scores_out = np.full((n_rows, width), -np.inf)
        if width <= 0 or n_rows == 0 or self.n_groups == 0:
            return RetrievalPage(items_out, scores_out, 0, 0)
        if banned is not None and len(banned) != n_rows:
            raise ValueError(
                f"got {len(banned)} banned rows for {n_rows} queries"
            )
        selected = self._select_cells(queries, mode, knob)
        banned_rows = self._resolve_banned(banned, n_rows)

        # Candidate pool: per row, the local members of its selected
        # cells, gathered into one padded (ids, scores) page and merged
        # once under the global (score desc, item asc) order.  Pad slots
        # carry (PAD_ITEM, -inf), which the merge never promotes.
        local_selected = selected[:, self._local_cell]
        counts = (local_selected * self._group_sizes[None, :]).sum(axis=1)
        pool = int(counts.max()) if counts.size else 0
        if pool == 0:
            return RetrievalPage(items_out, scores_out, 0, 0)
        pool_items = np.full((n_rows, pool), PAD_ITEM, dtype=np.int64)
        pool_scores = np.full((n_rows, pool), -np.inf)
        fill = np.zeros(n_rows, dtype=np.int64)
        nodes_scored = 0
        groups_scanned = 0
        queries_page = (
            None
            if self._pages is None
            else np.ascontiguousarray(queries, dtype=np.float32)
        )
        for g in range(self.n_groups):
            hit = np.flatnonzero(local_selected[:, g])
            if hit.size == 0:
                continue
            rows = self._group_rows[g]
            ids = self._indexed_items[rows]
            if self._pages is None:
                scores = (
                    queries[hit] @ self._eff[rows].T + self._bias[rows]
                )
            else:
                # Elementwise fp16->fp32 casts and fixed-K fp32 dots:
                # deterministic, and independent of how the catalog is
                # sliced — but NOT bit-identical to the float64 pass.
                block = self._pages[rows].astype(np.float32)
                scores = (queries_page[hit] @ block.T).astype(
                    np.float64
                ) + self._bias[rows]
            nodes_scored += scores.size
            groups_scanned += 1
            if banned_rows is not None:
                for slot, row in enumerate(hit):
                    hits = banned_rows[row]
                    if hits is None:
                        continue
                    at = np.searchsorted(rows, hits)
                    inside = at < rows.size
                    at, row_hits = at[inside], hits[inside]
                    at = at[rows[at] == row_hits]
                    if at.size:
                        scores[slot, at] = -np.inf
            for slot, row in enumerate(hit):
                offset = fill[row]
                pool_items[row, offset : offset + ids.size] = ids
                pool_scores[row, offset : offset + ids.size] = scores[slot]
                fill[row] += ids.size
        merged_items, merged_scores = merge_top_k_pages(
            [pool_items], [pool_scores], width
        )
        got = merged_items.shape[1]
        items_out[:, :got] = merged_items
        scores_out[:, :got] = merged_scores
        if self._scan_seconds is not None:
            self._scan_seconds.observe(
                max(0.0, time.perf_counter() - started)
            )
            self._nodes_counter.inc(nodes_scored)
            self._rows_counter.inc(n_rows)
        return RetrievalPage(
            items_out, scores_out, nodes_scored, groups_scanned
        )

    def _resolve_banned(
        self,
        banned: Optional[Sequence[Optional[np.ndarray]]],
        n_rows: int,
    ) -> Optional[List[Optional[np.ndarray]]]:
        """Per-row banned ids mapped to sorted snapshot row positions."""
        if banned is None:
            return None
        resolved: List[Optional[np.ndarray]] = []
        any_banned = False
        for row_banned in banned:
            if row_banned is None or len(row_banned) == 0:
                resolved.append(None)
                continue
            positions = self._row_of[np.asarray(row_banned, dtype=np.int64)]
            positions = np.sort(positions[positions >= 0])
            if positions.size:
                resolved.append(positions)
                any_banned = True
            else:
                resolved.append(None)
        return resolved if any_banned else None

    def __repr__(self) -> str:
        approx = ""
        if self.approx:
            approx = f", approx=True, page_dtype={self.page_dtype!r}"
        return (
            f"SubtreeIndex(n_indexed={self.n_indexed}, "
            f"n_groups={self.n_groups}, level={self.level}{approx})"
        )
