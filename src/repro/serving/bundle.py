"""One-directory model artifacts: factors + taxonomy + config + manifest.

Deploying a taxonomy-aware model needs three coupled pieces — the learned
factor matrices, the exact tree they index into, and the training
configuration that decides how they are combined at inference time
(``taxonomy_levels``, ``markov_order``, ``alpha``).  Historically these were
scattered over a ``.npz`` file, a separate taxonomy JSON, and an ad-hoc
``.meta.json`` sidecar written by the CLI.  A :class:`ModelBundle` packages
them into a single directory with a versioned ``manifest.json``::

    bundle/
      manifest.json     format, version, model class, config, extras
      factors.npz       FactorSet arrays          (TF / MF models)
      taxonomy.json     the item taxonomy         (TF / MF models)
      popularity.npz    per-item purchase scores  (popularity baseline)

``ModelBundle(model).save(path)`` / ``ModelBundle.load(path)`` round-trip
every model class the serving layer accepts.  The old ``.npz`` +
``.meta.json`` convention is still readable through
:meth:`ModelBundle.load_legacy` (with a :class:`DeprecationWarning`).
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import shutil
import warnings
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.core.factors import FactorSet
from repro.core.mf_model import MFModel
from repro.core.popularity import PopularityModel, RandomModel
from repro.core.tf_model import TaxonomyFactorModel
from repro.taxonomy.io import load_taxonomy, save_taxonomy
from repro.taxonomy.tree import Taxonomy
from repro.taxonomy.version import TaxonomyVersion
from repro.utils.config import TrainConfig

PathLike = Union[str, Path]

MANIFEST_NAME = "manifest.json"
BUNDLE_FORMAT = "repro-model-bundle"
BUNDLE_VERSION = 1

_FACTOR_MODELS = {"TaxonomyFactorModel": TaxonomyFactorModel, "MFModel": MFModel}


class BundleError(RuntimeError):
    """A bundle directory is missing, corrupt, or from the future."""


class ModelBundle:
    """A loadable serving artifact: one model plus everything it needs.

    Parameters
    ----------
    model:
        A fitted model — :class:`TaxonomyFactorModel`, :class:`MFModel`,
        :class:`PopularityModel`, or :class:`RandomModel`.
    extra:
        Free-form JSON-serializable metadata carried in the manifest
        (the CLI stores its split parameters here).  Three keys are
        serving-significant: ``"retrieval"`` (one of
        :data:`~repro.serving.service.RETRIEVAL_MODES`) records how the
        bundle should be served, and ``"budget"`` / ``"nprobe"`` carry
        the measured operating point of the approximate modes — the
        ``serve-batch`` / ``serve-sharded`` / ``gateway`` commands use
        them as defaults when the matching flag is not given, so a
        large-catalog bundle ships with its retrieval tier and knobs
        chosen at save time.

    Examples
    --------
    >>> import tempfile
    >>> from repro import SyntheticConfig, TaxonomyFactorModel, generate_dataset
    >>> from repro.train import train_model
    >>> data = generate_dataset(SyntheticConfig(n_users=40, seed=0))
    >>> model = train_model(
    ...     TaxonomyFactorModel(data.taxonomy, factors=4, epochs=1, seed=0),
    ...     data.log,
    ... )
    >>> tmp = tempfile.TemporaryDirectory()
    >>> _ = ModelBundle(model, extra={"mu": 0.5}).save(tmp.name + "/tf")
    >>> restored = ModelBundle.load(tmp.name + "/tf")
    >>> restored.extra["mu"]
    0.5
    >>> type(restored.model).__name__
    'TaxonomyFactorModel'
    >>> tmp.cleanup()
    """

    def __init__(self, model: Any, extra: Optional[Dict[str, Any]] = None):
        self.model = model
        self.extra: Dict[str, Any] = dict(extra or {})

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------
    def save(self, directory: PathLike) -> Path:
        """Write the bundle into *directory* (created if needed).

        The write is **crash-safe**: every artifact is staged into a
        temporary sibling directory and moved into place with
        ``os.replace``, the manifest last.  A crash mid-save therefore
        leaves either the previous complete bundle or no manifest at all —
        never a half-written ``manifest.json`` that :meth:`load` rejects.
        """
        directory = Path(directory)
        name = type(self.model).__name__
        self._check_saveable(name)
        if directory.exists() and not directory.is_dir():
            raise BundleError(
                f"{directory} exists and is not a directory; bundles are "
                f"directories (remove the file or pick another path)"
            )
        directory.parent.mkdir(parents=True, exist_ok=True)
        staging = self._make_staging_dir(directory)
        try:
            self._write_artifacts(staging, name)
            if not directory.exists():
                # Fresh target: one atomic rename publishes the whole bundle.
                os.replace(staging, directory)
            else:
                # Overwrite in place: move artifacts first, manifest last,
                # so a crash leaves the old manifest (still loadable against
                # old artifacts is not guaranteed, but load never sees a
                # torn manifest) or the complete new bundle.
                staged_names = {path.name for path in staging.iterdir()}
                for artifact in sorted(staged_names - {MANIFEST_NAME}):
                    os.replace(staging / artifact, directory / artifact)
                os.replace(staging / MANIFEST_NAME, directory / MANIFEST_NAME)
                # Drop files the new bundle no longer contains (e.g. a
                # factors.npz left behind when overwriting with a
                # popularity bundle) — the directory IS the artifact.
                for path in directory.iterdir():
                    if path.is_file() and path.name not in staged_names:
                        path.unlink()
        finally:
            if staging.exists():
                shutil.rmtree(staging, ignore_errors=True)
        return directory

    @staticmethod
    def _make_staging_dir(directory: Path) -> Path:
        """A fresh hidden sibling of *directory* (same filesystem, so the
        final ``os.replace`` is an atomic rename)."""
        for attempt in itertools.count():
            staging = directory.parent / (
                f".{directory.name}.staging-{os.getpid()}-{attempt}"
            )
            try:
                staging.mkdir()
                return staging
            except FileExistsError:
                continue
        raise AssertionError("unreachable")  # pragma: no cover

    def _write_artifacts(self, directory: Path, name: str) -> None:
        """Write every bundle file into *directory*, the manifest last."""
        from repro import __version__  # deferred: repro imports this module

        manifest: Dict[str, Any] = {
            "format": BUNDLE_FORMAT,
            "version": BUNDLE_VERSION,
            "repro_version": __version__,
            "model_class": name,
            "extra": self.extra,
        }
        if name in _FACTOR_MODELS:
            self.model.factor_set.save(directory / "factors.npz")
            save_taxonomy(self.model.taxonomy, directory / "taxonomy.json")
            manifest["config"] = dataclasses.asdict(self.model.config)
            # The taxonomy is a versioned artifact: the manifest pins the
            # exact tree generation the factors were trained against, so
            # load() can reject a bundle whose pieces drifted apart.
            manifest["taxonomy_version"] = self.model.taxonomy.version.as_dict()
            manifest["artifacts"] = {
                "factors": "factors.npz",
                "taxonomy": "taxonomy.json",
            }
        elif isinstance(self.model, PopularityModel):
            scores = self.model.score_items(0)
            np.savez_compressed(directory / "popularity.npz", scores=scores)
            manifest["artifacts"] = {"scores": "popularity.npz"}
        elif isinstance(self.model, RandomModel):
            manifest["n_items"] = int(self.model._n_items)
            manifest["seed"] = self.model.seed
            manifest["artifacts"] = {}
        with open(directory / MANIFEST_NAME, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)

    def _check_saveable(self, name: str) -> None:
        """Reject unsupported or unfitted models before touching disk."""
        if name in _FACTOR_MODELS:
            if self.model._factors is None:
                raise BundleError(f"cannot bundle an unfitted {name}")
        elif isinstance(self.model, PopularityModel):
            if self.model._scores is None:
                raise BundleError("cannot bundle an unfitted PopularityModel")
        elif isinstance(self.model, RandomModel):
            if self.model._n_items is None:
                raise BundleError("cannot bundle an unfitted RandomModel")
        else:
            raise BundleError(
                f"don't know how to bundle a {name}; supported: "
                f"{sorted(_FACTOR_MODELS)} + ['PopularityModel', 'RandomModel']"
            )

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, directory: PathLike) -> "ModelBundle":
        """Restore a bundle saved with :meth:`save`."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise BundleError(
                f"{directory} is not a model bundle (no {MANIFEST_NAME})"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise BundleError(f"corrupt manifest in {directory}: {exc}") from exc
        if not isinstance(manifest, dict) or manifest.get("format") != BUNDLE_FORMAT:
            raise BundleError(f"{manifest_path} is not a {BUNDLE_FORMAT} manifest")
        version = manifest.get("version")
        if version != BUNDLE_VERSION:
            raise BundleError(
                f"unsupported bundle version {version!r} "
                f"(this build reads version {BUNDLE_VERSION})"
            )

        name = manifest.get("model_class")
        if name in _FACTOR_MODELS:
            model = cls._load_factor_model(directory, manifest, name)
        elif name == "PopularityModel":
            with np.load(directory / "popularity.npz") as data:
                scores = data["scores"]
            model = PopularityModel()
            model._scores = scores
        elif name == "RandomModel":
            model = RandomModel(seed=manifest.get("seed"))
            model._n_items = int(manifest["n_items"])
        else:
            raise BundleError(f"unknown model class {name!r} in manifest")
        return cls(model, extra=manifest.get("extra", {}))

    @staticmethod
    def _load_factor_model(
        directory: Path, manifest: Dict[str, Any], name: str
    ) -> TaxonomyFactorModel:
        taxonomy = load_taxonomy(directory / "taxonomy.json")
        ModelBundle._check_taxonomy_version(directory, manifest, taxonomy)
        config = TrainConfig(**manifest.get("config", {}))
        model = _FACTOR_MODELS[name](taxonomy, config)
        model._factors = FactorSet.load(directory / "factors.npz", taxonomy)
        return model

    @staticmethod
    def _check_taxonomy_version(
        directory: Path, manifest: Dict[str, Any], taxonomy: Taxonomy
    ) -> None:
        """Verify the loaded tree is the generation the manifest pins.

        The factors were trained against one exact tree; a
        ``taxonomy.json`` swapped in from another run (or truncated and
        regenerated) would silently mis-index every ancestor chain.  The
        manifest's recorded :class:`~repro.taxonomy.version.
        TaxonomyVersion` must match the loaded tree's digest and item
        count.  Bundles written before the taxonomy was versioned carry
        no record and load as before.
        """
        recorded = manifest.get("taxonomy_version")
        if recorded is None:
            return
        try:
            pinned = TaxonomyVersion.from_dict(recorded)
        except (KeyError, TypeError, ValueError) as exc:
            raise BundleError(
                f"corrupt taxonomy_version record in {directory}: {exc}"
            ) from exc
        actual = taxonomy.version
        if pinned.digest != actual.digest:
            raise BundleError(
                f"taxonomy mismatch in {directory}: manifest pins tree "
                f"{pinned.short}... but taxonomy.json holds "
                f"{actual.short}... — the bundle's artifacts are from "
                f"different model generations"
            )
        if pinned.n_items != actual.n_items:
            raise BundleError(
                f"taxonomy mismatch in {directory}: manifest records "
                f"{pinned.n_items} items but taxonomy.json holds "
                f"{actual.n_items}"
            )

    @classmethod
    def load_model(cls, directory: PathLike) -> Any:
        """Convenience: load a bundle and return just its model."""
        return cls.load(directory).model

    # ------------------------------------------------------------------
    # Legacy format
    # ------------------------------------------------------------------
    @classmethod
    def load_legacy(
        cls, npz_path: PathLike, taxonomy: Taxonomy
    ) -> "ModelBundle":
        """Read the pre-bundle ``model.npz`` + ``model.npz.meta.json`` pair.

        The taxonomy was never part of the old artifact and must be
        supplied by the caller.  Deprecated: re-save with
        ``ModelBundle(model).save(dir)`` to migrate.
        """
        warnings.warn(
            "loading bare .npz factor files is deprecated; re-save the "
            "model as a bundle directory with ModelBundle(model).save(dir) "
            "— see docs/migration.md for the full upgrade guide",
            DeprecationWarning,
            stacklevel=2,
        )
        npz_path = Path(npz_path)
        if not npz_path.exists():
            raise BundleError(f"no factor file at {npz_path}")
        meta_path = Path(str(npz_path) + ".meta.json")
        meta = (
            json.loads(meta_path.read_text(encoding="utf-8"))
            if meta_path.exists()
            else {}
        )
        config = TrainConfig(
            taxonomy_levels=meta.get("levels", 4),
            markov_order=meta.get("markov", 0),
            seed=meta.get("seed", 0),
        )
        model_cls = MFModel if config.taxonomy_levels == 1 else TaxonomyFactorModel
        model = model_cls(taxonomy, config)
        model._factors = FactorSet.load(npz_path, taxonomy)
        return cls(model, extra=meta)

    def __repr__(self) -> str:
        return f"ModelBundle(model={self.model!r}, extra={self.extra})"
