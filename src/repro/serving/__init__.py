"""The serving layer: the recommended front door for all inference.

Five pieces turn the trained models into a deployable system:

* :class:`~repro.serving.protocol.Recommender` — the structural protocol
  (``score_items`` / ``score_matrix`` / ``recommend`` / ``recommend_batch``)
  every model class implements;
* :class:`~repro.serving.bundle.ModelBundle` — a one-directory artifact
  (factors + taxonomy + config + versioned manifest) that ``save``/``load``
  round-trips every supported model;
* :class:`~repro.serving.service.RecommenderService` — batch-first request
  routing (known users → factors, cold users with history → fold-in, cold
  users without → popularity fallback), optional cascaded inference, a
  generation-stamped LRU query-vector cache, per-request
  :class:`ServingStats`, and atomic zero-downtime ``swap_model`` (the
  hot-swap contract ``repro.streaming`` publishes through);
* :class:`~repro.serving.index.SubtreeIndex` — taxonomy-pruned top-k
  retrieval for large catalogs: item factors grouped by taxonomy
  subtree, per-group Cauchy–Schwarz score bounds, blocked descending-bound
  scan with early termination — bit-identical rankings to the dense pass
  with ``retrieval="pruned"``, plus the sub-linear
  approximate-but-deterministic tiers ``retrieval="budget"`` (bounded
  node budget per row) and ``retrieval="ivf"`` (top-``nprobe`` taxonomy
  cells, optional fp16 factor pages) for catalogs past ~1M items;
* :class:`~repro.serving.sharding.ShardRouter` — the multi-process fleet:
  factor matrices published once via ``multiprocessing.shared_memory``,
  N shard workers each hosting a full service over zero-copy views, user
  hashing + per-shard batching in front, and fleet-wide generation-stamped
  hot swap.

Quickstart::

    from repro.serving import ModelBundle, RecommenderService, ShardRouter

    ModelBundle(model).save("artifacts/tf")            # package for serving
    bundle = ModelBundle.load("artifacts/tf")
    service = RecommenderService(bundle.model, history_log=split.train)
    top = service.recommend_batch(users, k=10)         # one BLAS pass
    print(service.stats.as_dict())

    with ShardRouter(bundle.model, n_shards=4,
                     history_log=split.train) as router:
        top = router.recommend_batch(users, k=10)      # same rows, N cores
"""

from repro.serving.bundle import BUNDLE_VERSION, BundleError, ModelBundle
from repro.serving.coldstart import FoldInRecommender
from repro.serving.index import RetrievalPage, SubtreeIndex
from repro.serving.protocol import Recommender
from repro.serving.service import (
    APPROX_RETRIEVAL_MODES,
    RETRIEVAL_MODES,
    ModelState,
    QueryVectorCache,
    RecommenderService,
    ServingError,
    ServingStats,
)
from repro.serving.sharding import (
    DeadlineExceeded,
    ShardingError,
    ShardRequest,
    ShardRouter,
    SharedFactors,
    SharedFactorsHandle,
    shard_of,
)

__all__ = [
    "Recommender",
    "ModelBundle",
    "BundleError",
    "BUNDLE_VERSION",
    "FoldInRecommender",
    "RecommenderService",
    "ModelState",
    "RETRIEVAL_MODES",
    "APPROX_RETRIEVAL_MODES",
    "ServingError",
    "ServingStats",
    "QueryVectorCache",
    "ShardRouter",
    "ShardingError",
    "DeadlineExceeded",
    "ShardRequest",
    "SharedFactors",
    "SharedFactorsHandle",
    "shard_of",
    "SubtreeIndex",
    "RetrievalPage",
]
