"""Shared utilities: seeded randomness, configuration, validation, logging."""

from repro.utils.config import CascadeConfig, SyntheticConfig, TrainConfig
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_in,
    check_non_negative,
    check_positive,
    check_type,
)

__all__ = [
    "CascadeConfig",
    "SyntheticConfig",
    "TrainConfig",
    "ensure_rng",
    "spawn_rngs",
    "check_fraction",
    "check_in",
    "check_non_negative",
    "check_positive",
    "check_type",
]
