"""Small argument-validation helpers used across the library.

These raise early with actionable messages instead of letting bad values
propagate into numpy broadcasting errors deep inside the trainers.
"""

from __future__ import annotations

from typing import Any, Iterable


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def check_fraction(name: str, value: float, inclusive: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` lies in ``[0, 1]`` (or ``(0, 1)``)."""
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value!r}")


def check_in(name: str, value: Any, allowed: Iterable[Any]) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed}, got {value!r}")


def check_type(name: str, value: Any, expected: type) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
