"""Library logging setup.

The library logs under the ``repro`` namespace and never configures the root
logger; applications opt in via :func:`enable_console_logging`.

Two formatter flavours are available:

* the default human-readable line format;
* an opt-in JSON-lines format (``json_format=True``) that emits one
  object per record and stamps ``trace_id`` whenever a
  :mod:`repro.obs.tracing` span is active on the logging thread, so log
  lines can be joined against exported trace trees.
"""

from __future__ import annotations

import json
import logging
import sys

#: Marker attribute stamped on handlers owned by enable_console_logging,
#: so repeated calls reconfigure *our* handler instead of stacking new
#: ones (and never touch handlers the application attached itself).
_HANDLER_ATTR = "_repro_console_handler"

_TEXT_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


class JsonFormatter(logging.Formatter):
    """Format records as one JSON object per line.

    Fields: ``ts`` (record wall-clock time as formatted by
    :meth:`logging.Formatter.formatTime`), ``logger``, ``level``,
    ``message``, plus ``trace_id`` when the logging thread has an active
    :class:`repro.obs.tracing.Span` — the join key between application
    logs and exported trace trees.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": self.formatTime(record),
            "logger": record.name,
            "level": record.levelname,
            "message": record.getMessage(),
        }
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_info"] = self.formatException(record.exc_info)
        trace_id = _current_trace_id()
        if trace_id is not None:
            payload["trace_id"] = trace_id
        return json.dumps(payload, sort_keys=True)


def _current_trace_id():
    """Trace id of the active span on this thread, if any."""
    # Imported lazily: utils.logging must stay importable without the
    # obs package in the stack (and obs itself logs through here).
    try:
        from repro.obs.tracing import current_trace_id
    except ImportError:  # pragma: no cover - obs always ships, but be safe
        return None
    return current_trace_id()


def get_logger(name: str) -> logging.Logger:
    """Return a logger scoped under the ``repro`` namespace."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def enable_console_logging(
    level: int = logging.INFO, json_format: bool = False
) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` logger (idempotent).

    Truly idempotent: repeated calls never stack handlers, and they
    *reconfigure* the one handler this function owns — so a later
    ``enable_console_logging(logging.DEBUG, json_format=True)`` switches
    both level and format in place.  Handlers attached by the
    application are left alone.

    Examples
    --------
    >>> import logging
    >>> first = enable_console_logging()
    >>> second = enable_console_logging(logging.DEBUG, json_format=True)
    >>> ours = [h for h in second.handlers
    ...         if getattr(h, "_repro_console_handler", False)]
    >>> len(ours)
    1
    >>> isinstance(ours[0].formatter, JsonFormatter)
    True
    """
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    handler = next(
        (h for h in logger.handlers if getattr(h, _HANDLER_ATTR, False)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler(sys.stderr)
        setattr(handler, _HANDLER_ATTR, True)
        logger.addHandler(handler)
    handler.setLevel(level)
    handler.setFormatter(
        JsonFormatter() if json_format else logging.Formatter(_TEXT_FORMAT)
    )
    return logger
