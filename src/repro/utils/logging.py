"""Library logging setup.

The library logs under the ``repro`` namespace and never configures the root
logger; applications opt in via :func:`enable_console_logging`.
"""

from __future__ import annotations

import logging
import sys


def get_logger(name: str) -> logging.Logger:
    """Return a logger scoped under the ``repro`` namespace."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` logger (idempotent)."""
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    return logger
