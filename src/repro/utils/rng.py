"""Seeded random-number utilities.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` and funnels it through
:func:`ensure_rng` so that experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, or an existing generator
        (returned unchanged so that callers can thread one generator through
        a whole experiment).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int, or numpy Generator, got {type(seed)!r}")


def derive_seed(master: Optional[int], *keys: int) -> Optional[int]:
    """Derive a child seed from *master* and an integer key path.

    The single seed-derivation rule of the library: every component that
    needs an epoch-, worker-, or stage-local stream derives it as
    ``derive_seed(master, *keys)`` instead of ad-hoc arithmetic like
    ``master + epoch`` (which collides across runs — seed 0/epoch 1 and
    seed 1/epoch 0 would share a stream).  Built on
    :class:`numpy.random.SeedSequence`, so distinct key paths give
    statistically independent streams and identical paths reproduce
    bit-identical ones.

    ``None`` propagates (no master seed → fresh entropy downstream).
    """
    if master is None:
        return None
    entropy = [int(master)] + [int(k) for k in keys]
    sequence = np.random.SeedSequence(entropy)
    return int(sequence.generate_state(1, dtype=np.uint64)[0] >> 1)


def epoch_seed(master: Optional[int], epoch: int) -> Optional[int]:
    """The per-epoch training seed: ``derive_seed(master, epoch)``.

    Shared by every trainer backend (serial, threaded, online) so that one
    :class:`~repro.utils.config.ExperimentSpec` reproduces bit-identical
    factors no matter which front door launched it.
    """
    return derive_seed(master, epoch)


def spawn_rngs(seed: RngLike, count: int) -> list:
    """Derive *count* independent generators from one seed.

    Used by parallel components so each worker gets its own stream while the
    overall run stays deterministic for a fixed master seed.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    master = ensure_rng(seed)
    seeds = master.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
