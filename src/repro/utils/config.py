"""Configuration dataclasses for models, training, data generation, inference.

The parameter names follow the paper where one exists:

* ``taxonomy_levels`` is the paper's ``taxonomyUpdateLevels`` (``U``): how
  many levels of the taxonomy, counted up from the item level, contribute
  offset factors to an item's effective factor.  ``U = 1`` disables the
  taxonomy (plain latent factor model).
* ``markov_order`` is the paper's ``maxPrevtransactions`` (``B``/``N``): how
  many previous transactions feed the short-term affinity term.  ``B = 0``
  disables the Markov term.
* ``alpha`` scales the exponential decay ``α_n = α·exp(-n/N)`` of Eq. 3.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
)

PathLike = Union[str, Path]


@dataclass
class TrainConfig:
    """Hyper-parameters for BPR/SGD training of MF and TF models.

    Attributes
    ----------
    factors:
        Dimensionality ``K`` of every latent factor.
    epochs:
        Number of full passes over the training purchases.
    learning_rate:
        SGD step size ``ε``.
    reg:
        L2 regularization strength ``λ`` (the Gaussian-prior precision).
    taxonomy_levels:
        ``U`` — taxonomy levels used, counted from the items upward.
    markov_order:
        ``B`` — previous transactions used by the short-term term.
    alpha:
        Scale of the exponential transaction-decay weights.
    sibling_ratio:
        Fraction of SGD updates drawn from the sibling-based sampler
        (Sec. 4.2); ``0`` reproduces plain random-negative training.
    sibling_min_level:
        Lowest taxonomy level sibling examples are generated for.  The
        paper's Fig. 3 includes the item level (``0``); on small leaf
        categories item-level sibling negatives frequently coincide with
        the user's future purchases, so ``1`` (categories and above) is a
        safer default at laptop scale — see the abl-sibling ablation.
    batch_size:
        Minibatch size of the vectorized SGD implementation.
    init_scale:
        Standard deviation of the Gaussian factor initialization.
    use_bias:
        Learn per-node popularity bias terms (an item's bias is the sum
        along its chain).  The paper elides biases "for simplicity of
        exposition"; they are standard in BPR implementations.
    negative_attempts:
        Resampling attempts when a negative item collides with the positive
        transaction.
    negative_pool:
        Where negatives are drawn from: ``"all"`` items (the paper's
        ``j ∉ B_t`` over the whole universe) or ``"purchased"`` items only.
        The latter leaves never-purchased items at their prior (their
        category factors), which matters for cold-start behaviour on small
        item universes — see EXPERIMENTS.md (Fig. 7c).
    seed:
        Master seed for sampling and initialization.
    shuffle:
        Whether to reshuffle the training tuples every epoch.
    """

    factors: int = 16
    epochs: int = 10
    learning_rate: float = 0.05
    reg: float = 0.01
    taxonomy_levels: int = 4
    markov_order: int = 0
    alpha: float = 1.0
    sibling_ratio: float = 0.0
    sibling_min_level: int = 1
    batch_size: int = 512
    init_scale: float = 0.1
    use_bias: bool = True
    negative_attempts: int = 8
    negative_pool: str = "all"
    seed: Optional[int] = 0
    shuffle: bool = True

    def __post_init__(self) -> None:
        if self.negative_pool not in ("all", "purchased"):
            raise ValueError(
                f"negative_pool must be 'all' or 'purchased', "
                f"got {self.negative_pool!r}"
            )
        check_positive("factors", self.factors)
        check_non_negative("epochs", self.epochs)
        check_positive("learning_rate", self.learning_rate)
        check_non_negative("reg", self.reg)
        check_positive("taxonomy_levels", self.taxonomy_levels)
        check_non_negative("markov_order", self.markov_order)
        check_non_negative("alpha", self.alpha)
        check_fraction("sibling_ratio", self.sibling_ratio)
        check_non_negative("sibling_min_level", self.sibling_min_level)
        check_positive("batch_size", self.batch_size)
        check_positive("init_scale", self.init_scale)
        check_positive("negative_attempts", self.negative_attempts)


@dataclass
class CascadeConfig:
    """Parameters of cascaded inference (Sec. 5.1).

    ``keep_fractions[i]`` is the paper's ``k_i``: the fraction of nodes kept
    at taxonomy level ``i + 1`` (level 1 = children of the root) before the
    search descends into their children.  A fraction of ``1.0`` keeps the
    whole level, which makes the cascade exact.
    """

    keep_fractions: Tuple[float, ...] = (1.0, 1.0, 1.0)
    min_keep: int = 1

    def __post_init__(self) -> None:
        if not self.keep_fractions:
            raise ValueError("keep_fractions must contain at least one level")
        for i, frac in enumerate(self.keep_fractions):
            check_fraction(f"keep_fractions[{i}]", frac)
        check_positive("min_keep", self.min_keep)


@dataclass
class SyntheticConfig:
    """Parameters of the synthetic purchase-log generator.

    The defaults produce a laptop-scale analogue of the paper's dataset: a
    3-internal-level taxonomy whose per-level sizes keep the Yahoo! Shopping
    ratios (23 : 270 : 1500), heavy-tailed item popularity, ~2-3 purchases
    per user, and leaf-category transition structure for the Markov term.
    """

    # Taxonomy shape: children per node at each internal level, then items
    # per leaf category.  Default: 8 top categories x 4 x 4 = 128 leaf
    # categories, 6 items each = 768 items.
    branching: Tuple[int, ...] = (8, 4, 4)
    items_per_leaf: int = 6
    n_users: int = 2000
    # Transactions per user ~ 1 + Poisson(mean_transactions - 1).
    mean_transactions: float = 3.0
    # Items per transaction ~ 1 + Poisson(mean_basket_size - 1).
    mean_basket_size: float = 1.5
    # Zipf exponent of within-leaf item popularity.
    popularity_exponent: float = 1.1
    # Dirichlet concentration of user interest over top-level categories;
    # smaller = more focused users = stronger hierarchical signal.
    interest_concentration: float = 0.25
    # Probability that a transaction is driven by the short-term transition
    # kernel (vs. the user's long-term interests).
    transition_strength: float = 0.5
    # Number of "related" leaf categories each leaf category points to.
    transitions_per_leaf: int = 3
    # Fraction of items withheld from the training period so they first
    # appear in test transactions (cold start, Fig. 7c).
    new_item_fraction: float = 0.05
    # Probability that a user's transaction repeats a previously bought item.
    repeat_probability: float = 0.1
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if not self.branching:
            raise ValueError("branching must contain at least one level")
        for i, width in enumerate(self.branching):
            check_positive(f"branching[{i}]", width)
        check_positive("items_per_leaf", self.items_per_leaf)
        check_positive("n_users", self.n_users)
        check_positive("mean_transactions", self.mean_transactions)
        check_positive("mean_basket_size", self.mean_basket_size)
        check_positive("popularity_exponent", self.popularity_exponent)
        check_positive("interest_concentration", self.interest_concentration)
        check_fraction("transition_strength", self.transition_strength)
        check_positive("transitions_per_leaf", self.transitions_per_leaf)
        check_fraction("new_item_fraction", self.new_item_fraction)
        check_fraction("repeat_probability", self.repeat_probability)

    @property
    def n_leaf_categories(self) -> int:
        """Number of lowest-level internal nodes."""
        total = 1
        for width in self.branching:
            total *= width
        return total

    @property
    def n_items(self) -> int:
        """Total number of items (taxonomy leaves)."""
        return self.n_leaf_categories * self.items_per_leaf


# ----------------------------------------------------------------------
# Declarative experiments
# ----------------------------------------------------------------------
MODEL_KINDS = ("tf", "mf", "fpmc", "bpr-mf")
TRAINER_BACKENDS = ("serial", "threaded", "online")


@dataclass
class DataSpec:
    """Where an experiment's transactions and taxonomy come from.

    ``source="synthetic"`` generates the dataset from ``synthetic``;
    ``source="files"`` loads ``taxonomy.json`` / ``transactions.jsonl``
    from ``data_dir`` (the CLI's on-disk convention).  The split fields
    reproduce the paper's per-user temporal protocol (Sec. 7.1).
    """

    source: str = "synthetic"
    data_dir: Optional[str] = None
    synthetic: SyntheticConfig = field(default_factory=SyntheticConfig)
    mu: float = 0.5
    sigma: float = 0.05
    split_seed: int = 0

    def __post_init__(self) -> None:
        if self.source not in ("synthetic", "files"):
            raise ValueError(
                f"data.source must be 'synthetic' or 'files', "
                f"got {self.source!r}"
            )
        if self.source == "files" and not self.data_dir:
            raise ValueError("data.source='files' requires data.data_dir")
        check_fraction("mu", self.mu)
        check_non_negative("sigma", self.sigma)


@dataclass
class TrainerSpec:
    """Which backend fits the model, and its loop-level options.

    The hyper-parameters of the objective itself live in
    :class:`TrainConfig`; this spec selects *how* the identical objective
    is optimized — serial/threaded/online — plus the callback knobs every
    backend shares (schedule, early stopping, periodic eval/checkpoint).
    """

    backend: str = "serial"
    # serial
    update: str = "batch"  # "batch" (vectorized) | "sample" (per-sample)
    # threaded
    n_workers: int = 4
    use_cache: bool = False
    cache_threshold: float = 0.1
    # online (warm offline prefix, then stream the remainder)
    warm_fraction: float = 0.5
    online_steps: int = 4
    online_batch_size: int = 256
    fold_in_steps: int = 100
    # callbacks
    lr_schedule: Optional[str] = None  # "step" | "exponential" | "warmup"
    lr_decay: float = 0.5
    lr_step_every: int = 5
    lr_warmup_epochs: int = 3
    early_stopping: bool = False
    patience: int = 3
    min_delta: float = 0.0
    eval_every: int = 0  # 0 = no mid-training evaluation
    eval_sample_users: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 1

    def __post_init__(self) -> None:
        if self.backend not in TRAINER_BACKENDS:
            raise ValueError(
                f"trainer.backend must be one of {TRAINER_BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.update not in ("batch", "sample"):
            raise ValueError(
                f"trainer.update must be 'batch' or 'sample', "
                f"got {self.update!r}"
            )
        if self.lr_schedule not in (None, "step", "exponential", "warmup"):
            raise ValueError(
                f"trainer.lr_schedule must be one of "
                f"(None, 'step', 'exponential', 'warmup'), "
                f"got {self.lr_schedule!r}"
            )
        check_positive("n_workers", self.n_workers)
        check_fraction("warm_fraction", self.warm_fraction)
        check_positive("online_steps", self.online_steps)
        check_positive("online_batch_size", self.online_batch_size)
        check_positive("lr_decay", self.lr_decay)
        check_positive("lr_step_every", self.lr_step_every)
        check_positive("patience", self.patience)
        check_non_negative("eval_every", self.eval_every)
        check_positive("checkpoint_every", self.checkpoint_every)


@dataclass
class EvalSpec:
    """The final evaluation protocol applied after training."""

    k: int = 10
    first_t: int = 1
    sample_users: Optional[int] = None
    cold_start: bool = False

    def __post_init__(self) -> None:
        check_positive("k", self.k)
        check_positive("first_t", self.first_t)


@dataclass
class ExperimentSpec:
    """A complete, declarative experiment: data → model → trainer → eval.

    The single artifact that reproduces a run end to end.  ``model``
    names the primary variant (``"tf"``, ``"mf"``, ``"fpmc"``,
    ``"bpr-mf"``); ``compare`` lists extra variants trained on the same
    data and split for side-by-side tables (the paper's TF-vs-MF
    comparisons are one spec with ``compare=["mf"]``).  ``output``
    optionally names a :class:`~repro.serving.bundle.ModelBundle`
    directory for the trained model(s).

    Serialize with :func:`save_spec` / :func:`load_spec` (JSON or TOML by
    extension); tweak programmatically with :func:`apply_overrides`.
    """

    name: str = "experiment"
    model: str = "tf"
    compare: List[str] = field(default_factory=list)
    data: DataSpec = field(default_factory=DataSpec)
    train: TrainConfig = field(default_factory=TrainConfig)
    trainer: TrainerSpec = field(default_factory=TrainerSpec)
    eval: EvalSpec = field(default_factory=EvalSpec)
    output: Optional[str] = None

    def __post_init__(self) -> None:
        for kind in [self.model, *self.compare]:
            if kind not in MODEL_KINDS:
                raise ValueError(
                    f"model kind must be one of {MODEL_KINDS}, got {kind!r}"
                )

    def variants(self) -> List[str]:
        """The primary model followed by its comparison variants."""
        return [self.model, *self.compare]


_SPEC_SECTIONS = {
    "data": DataSpec,
    "train": TrainConfig,
    "trainer": TrainerSpec,
    "eval": EvalSpec,
}


def _build_dataclass(cls, payload: Dict[str, Any], context: str):
    """Instantiate *cls* from a dict, rejecting unknown keys loudly."""
    if not isinstance(payload, dict):
        raise ValueError(f"{context} must be a table/object, got {payload!r}")
    field_map = {f.name: f for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - set(field_map))
    if unknown:
        raise ValueError(
            f"unknown key(s) {unknown} in {context} "
            f"(valid: {sorted(field_map)})"
        )
    kwargs = {}
    for key, value in payload.items():
        default = field_map[key].default
        if isinstance(default, tuple) and isinstance(value, list):
            value = tuple(value)
        kwargs[key] = value
    return cls(**kwargs)


def spec_to_dict(spec: ExperimentSpec) -> Dict[str, Any]:
    """A plain JSON/TOML-ready dict (tuples become lists)."""
    return json.loads(json.dumps(dataclasses.asdict(spec)))


def spec_from_dict(payload: Dict[str, Any]) -> ExperimentSpec:
    """Build an :class:`ExperimentSpec` from a (possibly partial) dict.

    Missing sections and fields take their defaults; unknown keys raise
    ``ValueError`` naming the offender (typos in a config file should
    fail, not silently train the default).
    """
    if not isinstance(payload, dict):
        raise ValueError(f"spec must be a table/object, got {payload!r}")
    payload = dict(payload)
    kwargs: Dict[str, Any] = {}
    for section, cls in _SPEC_SECTIONS.items():
        if section in payload:
            body = payload.pop(section)
            if section == "data" and isinstance(body, dict) and "synthetic" in body:
                body = dict(body)
                body["synthetic"] = _build_dataclass(
                    SyntheticConfig, body["synthetic"], "data.synthetic"
                )
            kwargs[section] = _build_dataclass(cls, body, section)
    top = _build_dataclass(ExperimentSpec, payload, "spec")
    return dataclasses.replace(top, **kwargs)


def _toml_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_scalar(v) for v in value) + "]"
    raise ValueError(f"cannot serialize {value!r} to TOML")


def _to_toml(table: Dict[str, Any], prefix: str = "") -> List[str]:
    """Minimal TOML emitter for the spec's nested-dict shape.

    ``None`` values are omitted (TOML has no null; loaders fall back to
    the field defaults).
    """
    lines: List[str] = []
    subtables = []
    for key, value in table.items():
        if value is None:
            continue
        if isinstance(value, dict):
            subtables.append((key, value))
        else:
            lines.append(f"{key} = {_toml_scalar(value)}")
    for key, value in subtables:
        path = f"{prefix}.{key}" if prefix else key
        lines.append("")
        lines.append(f"[{path}]")
        lines.extend(_to_toml(value, path))
    return lines


def save_spec(spec: ExperimentSpec, path: PathLike) -> Path:
    """Write *spec* as JSON (default) or TOML (``.toml`` extension)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix.lower() == ".toml":
        text = "\n".join(_to_toml(spec_to_dict(spec))).lstrip("\n") + "\n"
    else:
        text = json.dumps(spec_to_dict(spec), indent=2, sort_keys=True) + "\n"
    path.write_text(text, encoding="utf-8")
    return path


def _toml_reader():
    """``tomllib`` (Python >= 3.11) or the ``tomli`` backport, else None."""
    try:
        import tomllib

        return tomllib
    except ModuleNotFoundError:  # pragma: no cover - version-dependent
        try:
            import tomli

            return tomli
        except ModuleNotFoundError:
            return None


def load_spec(path: PathLike) -> ExperimentSpec:
    """Read a spec saved by :func:`save_spec` (or hand-written)."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no experiment spec at {path}")
    if path.suffix.lower() == ".toml":
        toml = _toml_reader()
        if toml is None:  # pragma: no cover - version-dependent
            raise RuntimeError(
                f"reading {path} requires tomllib (Python >= 3.11) or the "
                f"tomli package; on older interpreters save the spec as "
                f"JSON instead"
            )
        with open(path, "rb") as handle:
            payload = toml.load(handle)
    else:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt experiment spec {path}: {exc}") from exc
    return spec_from_dict(payload)


def _coerce_override(value: Any) -> Any:
    """Parse CLI-style override strings: JSON first, bare string second."""
    if not isinstance(value, str):
        return value
    try:
        return json.loads(value)
    except json.JSONDecodeError:
        return value


def apply_overrides(
    spec: ExperimentSpec, overrides: Dict[str, Any]
) -> ExperimentSpec:
    """A new spec with dotted-path *overrides* applied.

    >>> spec = ExperimentSpec()
    >>> apply_overrides(spec, {"train.factors": 8}).train.factors
    8
    >>> apply_overrides(spec, {"compare": '["mf"]'}).compare
    ['mf']

    String values are JSON-decoded when possible (so ``"8"`` becomes the
    int 8 and ``'["mf"]'`` a list) and kept as strings otherwise.
    Unknown paths raise ``ValueError``.
    """
    payload = spec_to_dict(spec)
    for dotted, value in overrides.items():
        parts = dotted.split(".")
        table = payload
        for part in parts[:-1]:
            if not isinstance(table.get(part), dict):
                raise ValueError(f"unknown spec path {dotted!r}")
            table = table[part]
        if parts[-1] not in table:
            raise ValueError(
                f"unknown spec path {dotted!r} "
                f"(valid keys here: {sorted(table)})"
            )
        table[parts[-1]] = _coerce_override(value)
    return spec_from_dict(payload)
