"""Configuration dataclasses for models, training, data generation, inference.

The parameter names follow the paper where one exists:

* ``taxonomy_levels`` is the paper's ``taxonomyUpdateLevels`` (``U``): how
  many levels of the taxonomy, counted up from the item level, contribute
  offset factors to an item's effective factor.  ``U = 1`` disables the
  taxonomy (plain latent factor model).
* ``markov_order`` is the paper's ``maxPrevtransactions`` (``B``/``N``): how
  many previous transactions feed the short-term affinity term.  ``B = 0``
  disables the Markov term.
* ``alpha`` scales the exponential decay ``α_n = α·exp(-n/N)`` of Eq. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
)


@dataclass
class TrainConfig:
    """Hyper-parameters for BPR/SGD training of MF and TF models.

    Attributes
    ----------
    factors:
        Dimensionality ``K`` of every latent factor.
    epochs:
        Number of full passes over the training purchases.
    learning_rate:
        SGD step size ``ε``.
    reg:
        L2 regularization strength ``λ`` (the Gaussian-prior precision).
    taxonomy_levels:
        ``U`` — taxonomy levels used, counted from the items upward.
    markov_order:
        ``B`` — previous transactions used by the short-term term.
    alpha:
        Scale of the exponential transaction-decay weights.
    sibling_ratio:
        Fraction of SGD updates drawn from the sibling-based sampler
        (Sec. 4.2); ``0`` reproduces plain random-negative training.
    sibling_min_level:
        Lowest taxonomy level sibling examples are generated for.  The
        paper's Fig. 3 includes the item level (``0``); on small leaf
        categories item-level sibling negatives frequently coincide with
        the user's future purchases, so ``1`` (categories and above) is a
        safer default at laptop scale — see the abl-sibling ablation.
    batch_size:
        Minibatch size of the vectorized SGD implementation.
    init_scale:
        Standard deviation of the Gaussian factor initialization.
    use_bias:
        Learn per-node popularity bias terms (an item's bias is the sum
        along its chain).  The paper elides biases "for simplicity of
        exposition"; they are standard in BPR implementations.
    negative_attempts:
        Resampling attempts when a negative item collides with the positive
        transaction.
    negative_pool:
        Where negatives are drawn from: ``"all"`` items (the paper's
        ``j ∉ B_t`` over the whole universe) or ``"purchased"`` items only.
        The latter leaves never-purchased items at their prior (their
        category factors), which matters for cold-start behaviour on small
        item universes — see EXPERIMENTS.md (Fig. 7c).
    seed:
        Master seed for sampling and initialization.
    shuffle:
        Whether to reshuffle the training tuples every epoch.
    """

    factors: int = 16
    epochs: int = 10
    learning_rate: float = 0.05
    reg: float = 0.01
    taxonomy_levels: int = 4
    markov_order: int = 0
    alpha: float = 1.0
    sibling_ratio: float = 0.0
    sibling_min_level: int = 1
    batch_size: int = 512
    init_scale: float = 0.1
    use_bias: bool = True
    negative_attempts: int = 8
    negative_pool: str = "all"
    seed: Optional[int] = 0
    shuffle: bool = True

    def __post_init__(self) -> None:
        if self.negative_pool not in ("all", "purchased"):
            raise ValueError(
                f"negative_pool must be 'all' or 'purchased', "
                f"got {self.negative_pool!r}"
            )
        check_positive("factors", self.factors)
        check_non_negative("epochs", self.epochs)
        check_positive("learning_rate", self.learning_rate)
        check_non_negative("reg", self.reg)
        check_positive("taxonomy_levels", self.taxonomy_levels)
        check_non_negative("markov_order", self.markov_order)
        check_non_negative("alpha", self.alpha)
        check_fraction("sibling_ratio", self.sibling_ratio)
        check_non_negative("sibling_min_level", self.sibling_min_level)
        check_positive("batch_size", self.batch_size)
        check_positive("init_scale", self.init_scale)
        check_positive("negative_attempts", self.negative_attempts)


@dataclass
class CascadeConfig:
    """Parameters of cascaded inference (Sec. 5.1).

    ``keep_fractions[i]`` is the paper's ``k_i``: the fraction of nodes kept
    at taxonomy level ``i + 1`` (level 1 = children of the root) before the
    search descends into their children.  A fraction of ``1.0`` keeps the
    whole level, which makes the cascade exact.
    """

    keep_fractions: Tuple[float, ...] = (1.0, 1.0, 1.0)
    min_keep: int = 1

    def __post_init__(self) -> None:
        if not self.keep_fractions:
            raise ValueError("keep_fractions must contain at least one level")
        for i, frac in enumerate(self.keep_fractions):
            check_fraction(f"keep_fractions[{i}]", frac)
        check_positive("min_keep", self.min_keep)


@dataclass
class SyntheticConfig:
    """Parameters of the synthetic purchase-log generator.

    The defaults produce a laptop-scale analogue of the paper's dataset: a
    3-internal-level taxonomy whose per-level sizes keep the Yahoo! Shopping
    ratios (23 : 270 : 1500), heavy-tailed item popularity, ~2-3 purchases
    per user, and leaf-category transition structure for the Markov term.
    """

    # Taxonomy shape: children per node at each internal level, then items
    # per leaf category.  Default: 8 top categories x 4 x 4 = 128 leaf
    # categories, 6 items each = 768 items.
    branching: Tuple[int, ...] = (8, 4, 4)
    items_per_leaf: int = 6
    n_users: int = 2000
    # Transactions per user ~ 1 + Poisson(mean_transactions - 1).
    mean_transactions: float = 3.0
    # Items per transaction ~ 1 + Poisson(mean_basket_size - 1).
    mean_basket_size: float = 1.5
    # Zipf exponent of within-leaf item popularity.
    popularity_exponent: float = 1.1
    # Dirichlet concentration of user interest over top-level categories;
    # smaller = more focused users = stronger hierarchical signal.
    interest_concentration: float = 0.25
    # Probability that a transaction is driven by the short-term transition
    # kernel (vs. the user's long-term interests).
    transition_strength: float = 0.5
    # Number of "related" leaf categories each leaf category points to.
    transitions_per_leaf: int = 3
    # Fraction of items withheld from the training period so they first
    # appear in test transactions (cold start, Fig. 7c).
    new_item_fraction: float = 0.05
    # Probability that a user's transaction repeats a previously bought item.
    repeat_probability: float = 0.1
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if not self.branching:
            raise ValueError("branching must contain at least one level")
        for i, width in enumerate(self.branching):
            check_positive(f"branching[{i}]", width)
        check_positive("items_per_leaf", self.items_per_leaf)
        check_positive("n_users", self.n_users)
        check_positive("mean_transactions", self.mean_transactions)
        check_positive("mean_basket_size", self.mean_basket_size)
        check_positive("popularity_exponent", self.popularity_exponent)
        check_positive("interest_concentration", self.interest_concentration)
        check_fraction("transition_strength", self.transition_strength)
        check_positive("transitions_per_leaf", self.transitions_per_leaf)
        check_fraction("new_item_fraction", self.new_item_fraction)
        check_fraction("repeat_probability", self.repeat_probability)

    @property
    def n_leaf_categories(self) -> int:
        """Number of lowest-level internal nodes."""
        total = 1
        for width in self.branching:
            total *= width
        return total

    @property
    def n_items(self) -> int:
        """Total number of items (taxonomy leaves)."""
        return self.n_leaf_categories * self.items_per_leaf
