"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the end-to-end workflow on files:

* ``generate`` — write a synthetic taxonomy + purchase log,
* ``train`` — fit a TF/MF model on a log and save the factors,
* ``evaluate`` — score a trained model with the paper's protocol,
* ``recommend`` — print top-k items for a user,
* ``stats`` — dataset characteristics (the Fig. 5 quantities).

Example session::

    python -m repro generate --users 2000 --out-dir /tmp/shop
    python -m repro train    --data-dir /tmp/shop --model /tmp/shop/tf.npz
    python -m repro evaluate --data-dir /tmp/shop --model /tmp/shop/tf.npz
    python -m repro recommend --data-dir /tmp/shop --model /tmp/shop/tf.npz --user 0
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core.factors import FactorSet
from repro.core.mf_model import MFModel
from repro.core.tf_model import TaxonomyFactorModel
from repro.data.split import train_test_split
from repro.data.stats import summarize
from repro.data.synthetic import generate_dataset
from repro.data.transactions import TransactionLog
from repro.eval.protocol import evaluate_cold_start, evaluate_model
from repro.taxonomy.io import load_taxonomy, save_taxonomy
from repro.utils.config import SyntheticConfig, TrainConfig

TAXONOMY_FILE = "taxonomy.json"
LOG_FILE = "transactions.jsonl"


def _data_paths(data_dir: str) -> tuple:
    directory = Path(data_dir)
    return directory / TAXONOMY_FILE, directory / LOG_FILE


def cmd_generate(args: argparse.Namespace) -> int:
    config = SyntheticConfig(
        n_users=args.users,
        mean_transactions=args.transactions,
        seed=args.seed,
    )
    data = generate_dataset(config)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    taxonomy_path, log_path = _data_paths(args.out_dir)
    save_taxonomy(data.taxonomy, taxonomy_path)
    data.log.save(log_path)
    print(f"wrote {taxonomy_path} ({data.taxonomy})")
    print(f"wrote {log_path} ({data.log})")
    return 0


def _load_data(data_dir: str):
    taxonomy_path, log_path = _data_paths(data_dir)
    if not taxonomy_path.exists() or not log_path.exists():
        raise SystemExit(
            f"missing {TAXONOMY_FILE} / {LOG_FILE} in {data_dir} "
            f"(run `python -m repro generate` first)"
        )
    return load_taxonomy(taxonomy_path), TransactionLog.load(log_path)


def _build_model(taxonomy, args) -> TaxonomyFactorModel:
    config = TrainConfig(
        factors=args.factors,
        epochs=args.epochs,
        learning_rate=args.learning_rate,
        reg=args.reg,
        taxonomy_levels=args.levels,
        markov_order=args.markov,
        sibling_ratio=args.sibling,
        seed=args.seed,
    )
    if args.levels == 1:
        return MFModel(taxonomy, config)
    return TaxonomyFactorModel(taxonomy, config)


def cmd_train(args: argparse.Namespace) -> int:
    taxonomy, log = _load_data(args.data_dir)
    split = train_test_split(log, mu=args.mu, seed=args.seed)
    model = _build_model(taxonomy, args)
    model.fit(split.train, callback=lambda s, _t: print(f"  {s}"))
    model.factor_set.save(args.model)
    meta = {
        "levels": args.levels,
        "markov": args.markov,
        "mu": args.mu,
        "seed": args.seed,
    }
    Path(str(args.model) + ".meta.json").write_text(json.dumps(meta))
    print(f"wrote {args.model}")
    return 0


def _load_model(args) -> tuple:
    taxonomy, log = _load_data(args.data_dir)
    meta_path = Path(str(args.model) + ".meta.json")
    meta = json.loads(meta_path.read_text()) if meta_path.exists() else {}
    split = train_test_split(
        log, mu=meta.get("mu", 0.5), seed=meta.get("seed", 0)
    )
    config = TrainConfig(
        taxonomy_levels=meta.get("levels", 4),
        markov_order=meta.get("markov", 0),
        seed=meta.get("seed", 0),
    )
    model = TaxonomyFactorModel(taxonomy, config)
    model._factors = FactorSet.load(args.model, taxonomy)
    model._train_log = split.train
    return model, split


def cmd_evaluate(args: argparse.Namespace) -> int:
    model, split = _load_model(args)
    result = evaluate_model(model, split)
    print(
        f"AUC={result.auc:.4f} meanRank={result.mean_rank:.1f} "
        f"({result.n_users} users)"
    )
    cold = evaluate_cold_start(model, split)
    if cold.n_events:
        print(
            f"cold-start score={cold.score:.4f} over {cold.n_events} "
            f"purchases of {cold.n_new_items} unseen items"
        )
    return 0


def cmd_recommend(args: argparse.Namespace) -> int:
    model, _split = _load_model(args)
    if not 0 <= args.user < model.n_users:
        raise SystemExit(f"user {args.user} out of range (0..{model.n_users - 1})")
    taxonomy = model.taxonomy
    for item in model.recommend(args.user, k=args.k):
        node = taxonomy.node_of_item(int(item))
        category = taxonomy.name_of(int(taxonomy.parent[node]))
        print(f"item {int(item):6d}  category={category}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    _taxonomy, log = _load_data(args.data_dir)
    for key, value in summarize(log).as_dict().items():
        if isinstance(value, float):
            print(f"{key:25s} {value:.3f}")
        else:
            print(f"{key:25s} {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Taxonomy-aware recommender (VLDB 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset")
    gen.add_argument("--out-dir", required=True)
    gen.add_argument("--users", type=int, default=2000)
    gen.add_argument("--transactions", type=float, default=3.0)
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=cmd_generate)

    train = sub.add_parser("train", help="fit a model and save its factors")
    train.add_argument("--data-dir", required=True)
    train.add_argument("--model", required=True)
    train.add_argument("--factors", type=int, default=20)
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--learning-rate", type=float, default=0.05)
    train.add_argument("--reg", type=float, default=0.01)
    train.add_argument("--levels", type=int, default=4,
                       help="taxonomyUpdateLevels; 1 = MF baseline")
    train.add_argument("--markov", type=int, default=0,
                       help="maxPrevtransactions (Markov order)")
    train.add_argument("--sibling", type=float, default=0.5)
    train.add_argument("--mu", type=float, default=0.5)
    train.add_argument("--seed", type=int, default=0)
    train.set_defaults(func=cmd_train)

    ev = sub.add_parser("evaluate", help="paper-protocol evaluation")
    ev.add_argument("--data-dir", required=True)
    ev.add_argument("--model", required=True)
    ev.set_defaults(func=cmd_evaluate)

    rec = sub.add_parser("recommend", help="top-k items for one user")
    rec.add_argument("--data-dir", required=True)
    rec.add_argument("--model", required=True)
    rec.add_argument("--user", type=int, required=True)
    rec.add_argument("-k", type=int, default=10)
    rec.set_defaults(func=cmd_recommend)

    stats = sub.add_parser("stats", help="dataset characteristics (Fig. 5)")
    stats.add_argument("--data-dir", required=True)
    stats.set_defaults(func=cmd_stats)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
