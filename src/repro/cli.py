"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the end-to-end workflow on files:

* ``generate`` — write a synthetic taxonomy + purchase log,
* ``train`` — fit a TF/MF model and save it as a model bundle (flags, or
  an :class:`~repro.utils.config.ExperimentSpec` via ``--config`` with
  flags acting as overrides),
* ``run`` — execute a declarative experiment spec end to end (train every
  variant, print the comparison table, optionally save bundles),
* ``sweep`` — grid-sweep any spec fields (``--grid train.factors=10,20``),
* ``evaluate`` — score a trained model with the paper's protocol,
* ``recommend`` — print top-k items for one user,
* ``serve-batch`` — serve top-k for many users through the batched
  :class:`~repro.serving.service.RecommenderService`,
* ``serve-sharded`` — serve the same workload through a multi-process
  :class:`~repro.serving.sharding.ShardRouter` fleet (factor matrices in
  shared memory, one worker per shard),
* ``stream`` — replay held-out transactions as a live event stream
  through the online updater, hot-swapping the served model as it goes,
* ``learn-taxonomy`` — build a taxonomy for a log that has none, by
  clustering bootstrap MF factors (deterministic; prints the tree digest),
* ``stats`` — dataset characteristics (the Fig. 5 quantities).

All model fitting goes through the unified ``repro.train`` front door —
``--backend serial|threaded|online`` selects the execution regime without
changing the objective.

Models persist as :class:`~repro.serving.bundle.ModelBundle` directories
(factors + taxonomy + config + manifest).  The pre-1.1 ``model.npz`` +
``model.npz.meta.json`` sidecar convention is still readable (with a
``DeprecationWarning``); re-run ``train`` to migrate.

Example session::

    python -m repro generate --users 2000 --out-dir /tmp/shop
    python -m repro train    --data-dir /tmp/shop --model /tmp/shop/tf
    python -m repro run      --config examples/specs/tf_vs_mf.json
    python -m repro sweep    --config examples/specs/tf_vs_mf.json \\
        --grid train.factors=10,20,50
    python -m repro evaluate --data-dir /tmp/shop --model /tmp/shop/tf
    python -m repro recommend --data-dir /tmp/shop --model /tmp/shop/tf --user 0
    python -m repro serve-batch --data-dir /tmp/shop --model /tmp/shop/tf \\
        --users 0:100 -k 5 --out /tmp/shop/recs.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import __version__
from repro.core.tf_model import TaxonomyFactorModel
from repro.obs import (
    TraceBuffer,
    Tracer,
    read_snapshot,
    read_trace_jsonl,
    stitch,
    to_json_lines,
    to_prometheus_text,
    to_table,
    write_snapshot,
    write_trace_jsonl,
)
from repro.data.split import TrainTestSplit, train_test_split
from repro.data.stats import summarize
from repro.data.synthetic import generate_dataset
from repro.data.transactions import TransactionLog
from repro.eval.protocol import evaluate_cold_start, evaluate_model, evaluate_topk
from repro.serving.bundle import MANIFEST_NAME, BundleError, ModelBundle
from repro.serving.service import RETRIEVAL_MODES, RecommenderService
from repro.serving.sharding import ShardRouter, ShardingError
from repro.streaming.events import events_from_transactions
from repro.streaming.pipeline import StreamingPipeline
from repro.streaming.swap import CheckpointStore
from repro.streaming.updater import OnlineUpdater
from repro.taxonomy.io import load_taxonomy, save_taxonomy
from repro.train.runner import ExperimentRunner, sweep, sweep_table
from repro.utils.config import (
    CascadeConfig,
    DataSpec,
    EvalSpec,
    ExperimentSpec,
    SyntheticConfig,
    TrainConfig,
    _coerce_override,
    apply_overrides,
    load_spec,
)
from repro.utils.logging import enable_console_logging

TAXONOMY_FILE = "taxonomy.json"
LOG_FILE = "transactions.jsonl"


def _data_paths(data_dir: str) -> tuple:
    directory = Path(data_dir)
    return directory / TAXONOMY_FILE, directory / LOG_FILE


def cmd_generate(args: argparse.Namespace) -> int:
    config = SyntheticConfig(
        n_users=args.users,
        mean_transactions=args.transactions,
        seed=args.seed,
    )
    data = generate_dataset(config)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    taxonomy_path, log_path = _data_paths(args.out_dir)
    save_taxonomy(data.taxonomy, taxonomy_path)
    data.log.save(log_path)
    print(f"wrote {taxonomy_path} ({data.taxonomy})")
    print(f"wrote {log_path} ({data.log})")
    return 0


def _load_data(data_dir: str):
    taxonomy_path, log_path = _data_paths(data_dir)
    if not taxonomy_path.exists() or not log_path.exists():
        raise SystemExit(
            f"missing {TAXONOMY_FILE} / {LOG_FILE} in {data_dir} "
            f"(run `python -m repro generate` first)"
        )
    return load_taxonomy(taxonomy_path), TransactionLog.load(log_path)


def _parse_sets(pairs: Sequence[str]) -> Dict[str, str]:
    """``--set key.path=value`` pairs into an overrides dict."""
    overrides: Dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"invalid --set {pair!r} (expected KEY.PATH=VALUE)"
            )
        overrides[key] = value
    return overrides


#: The ``train`` command's historical flag defaults, expressed as a spec.
def _default_train_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="cli-train",
        model="tf",
        train=TrainConfig(
            factors=20,
            epochs=10,
            learning_rate=0.05,
            reg=0.01,
            taxonomy_levels=4,
            markov_order=0,
            sibling_ratio=0.5,
            seed=0,
        ),
    )


def _train_spec(args: argparse.Namespace) -> ExperimentSpec:
    """Resolve ``train``'s spec: ``--config`` base, flags as overrides."""
    try:
        spec = load_spec(args.config) if args.config else _default_train_spec()
        overrides: Dict[str, object] = {}
        for flag, path in (
            ("factors", "train.factors"),
            ("epochs", "train.epochs"),
            ("learning_rate", "train.learning_rate"),
            ("reg", "train.reg"),
            ("levels", "train.taxonomy_levels"),
            ("markov", "train.markov_order"),
            ("sibling", "train.sibling_ratio"),
            ("mu", "data.mu"),
            ("backend", "trainer.backend"),
            ("workers", "trainer.n_workers"),
        ):
            value = getattr(args, flag)
            if value is not None:
                overrides[path] = value
        if args.seed is not None:
            overrides["train.seed"] = args.seed
            overrides["data.split_seed"] = args.seed
        if overrides:
            spec = apply_overrides(spec, overrides)
        spec = apply_overrides(spec, _parse_sets(args.set))
    except (ValueError, FileNotFoundError) as exc:
        raise SystemExit(str(exc))
    if args.data_dir:
        spec.data = DataSpec(
            source="files",
            data_dir=args.data_dir,
            mu=spec.data.mu,
            sigma=spec.data.sigma,
            split_seed=spec.data.split_seed,
        )
    elif not args.config or (
        spec.data.source == "files" and not spec.data.data_dir
    ):
        raise SystemExit(
            "train needs --data-dir (or a --config whose data section "
            "names a source)"
        )
    # Historical convention: --levels 1 trains the MF baseline.
    if spec.train.taxonomy_levels == 1 and spec.model == "tf":
        spec.model = "mf"
    spec.output = args.model
    return spec


def cmd_train(args: argparse.Namespace) -> int:
    model_path = Path(args.model)
    if model_path.exists() and not model_path.is_dir():
        # Fail before the (expensive) training run, not after.
        raise SystemExit(
            f"--model {args.model} is an existing file; models are saved "
            f"as bundle directories now (pick a directory path)"
        )
    spec = _train_spec(args)
    spec.compare = []  # train fits exactly one model
    try:
        # No evaluation: `train` only fits and persists the bundle
        # (score it with `evaluate` or `run`), matching the old command.
        ExperimentRunner(spec).run(verbose=True, evaluate=False)
    except FileNotFoundError as exc:
        raise SystemExit(
            f"{exc} (run `python -m repro generate` first)"
        )
    except (ValueError, BundleError) as exc:
        raise SystemExit(str(exc))
    print(f"wrote bundle {args.model}")
    return 0


def _report_out(report, out: Optional[str]) -> None:
    print(report.table())
    for result in report.results:
        if result.bundle_path:
            print(f"wrote bundle {result.bundle_path}")
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2)
        print(f"wrote {out}")


def _spec_from_run_args(args: argparse.Namespace) -> ExperimentSpec:
    try:
        spec = load_spec(args.config)
        spec = apply_overrides(spec, _parse_sets(args.set))
    except (ValueError, FileNotFoundError) as exc:
        raise SystemExit(str(exc))
    if args.data_dir:
        spec.data.source = "files"
        spec.data.data_dir = args.data_dir
    if getattr(args, "bundle_out", None):
        spec.output = args.bundle_out
    return spec


def cmd_run(args: argparse.Namespace) -> int:
    spec = _spec_from_run_args(args)
    try:
        report = ExperimentRunner(spec).run(verbose=not args.quiet)
    except (ValueError, FileNotFoundError, BundleError) as exc:
        raise SystemExit(str(exc))
    _report_out(report, args.out)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    spec = _spec_from_run_args(args)
    grid: Dict[str, List[object]] = {}
    for item in args.grid:
        key, sep, values = item.partition("=")
        if not sep or not key or not values:
            raise SystemExit(
                f"invalid --grid {item!r} (expected KEY.PATH=V1,V2,...)"
            )
        grid[key] = [_coerce_override(v) for v in values.split(",")]
    if not grid:
        raise SystemExit("sweep needs at least one --grid KEY.PATH=V1,V2")
    try:
        cells = sweep(spec, grid, verbose=not args.quiet)
    except (ValueError, FileNotFoundError, BundleError) as exc:
        raise SystemExit(str(exc))
    print(sweep_table(cells))
    if args.out:
        payload = [
            {"overrides": cell.overrides, **cell.report.as_dict()}
            for cell in cells
        ]
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.out}")
    return 0


def _load_bundle(args) -> Tuple[ModelBundle, TransactionLog]:
    """Resolve ``--model`` into a bundle: directory, or legacy ``.npz``."""
    taxonomy, log = _load_data(args.data_dir)
    path = Path(args.model)
    try:
        if (path / MANIFEST_NAME).exists():
            bundle = ModelBundle.load(path)
        elif path.is_file():
            # Surface the DeprecationWarning even under Python's default
            # warning filters, which hide it outside __main__.
            print(
                f"note: {path} uses the deprecated .npz+.meta.json format; "
                f"re-run `train` to migrate to a bundle directory "
                f"(see docs/migration.md)",
                file=sys.stderr,
            )
            bundle = ModelBundle.load_legacy(path, taxonomy)  # repro: noqa[REP006] -- the CLI is the supported migration path for user-held legacy .npz artifacts
        else:
            bundle = None
    except BundleError as exc:
        raise SystemExit(str(exc))
    if bundle is None:
        raise SystemExit(
            f"no model bundle at {path} (expected a directory with "
            f"{MANIFEST_NAME}, or a legacy .npz factor file)"
        )
    return bundle, log


def _load_model(args) -> Tuple[TaxonomyFactorModel, TrainTestSplit, Dict]:
    bundle, log = _load_bundle(args)
    if not isinstance(bundle.model, TaxonomyFactorModel):
        raise SystemExit(
            f"{args.model} contains a {type(bundle.model).__name__}; this "
            f"command serves TaxonomyFactorModel/MFModel bundles only"
        )
    extra = bundle.extra
    split = train_test_split(
        log,
        mu=extra.get("mu", 0.5),
        seed=extra.get("split_seed", extra.get("seed", 0)),
    )
    model = bundle.model.attach_log(split.train)
    return model, split, extra


def _serving_retrieval(args, extra: Dict) -> str:
    """Resolve ``--retrieval``: flag first, then the bundle's manifest hint.

    A bundle saved with ``extra={"retrieval": "pruned"}`` (or ``"budget"``
    / ``"ivf"``) serves that mode by default; the flag always wins.
    """
    value = args.retrieval or extra.get("retrieval", "exact")
    if value not in RETRIEVAL_MODES:
        raise SystemExit(
            f"invalid retrieval mode {value!r} in the bundle manifest "
            f"(expected one of {'/'.join(RETRIEVAL_MODES)})"
        )
    return value


def _serving_knob(args, extra: Dict, name: str) -> Optional[int]:
    """Resolve ``--budget`` / ``--nprobe``: flag first, then manifest hint.

    A bundle saved with ``extra={"retrieval": "budget", "budget": 50000}``
    carries its measured operating point with it; the flag always wins.
    """
    value = getattr(args, name, None)
    if value is None:
        value = extra.get(name)
    if value is None:
        return None
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise SystemExit(
            f"invalid {name} {value!r} in the bundle manifest "
            f"(expected a positive integer)"
        )
    if value < 1:
        raise SystemExit(f"{name} must be >= 1, got {value}")
    return value


def cmd_evaluate(args: argparse.Namespace) -> int:
    eval_spec = EvalSpec()
    if args.config:
        try:
            eval_spec = load_spec(args.config).eval
        except (ValueError, FileNotFoundError) as exc:
            raise SystemExit(str(exc))
    k = args.k if args.k is not None else eval_spec.k
    model, split, _extra = _load_model(args)
    result = evaluate_model(
        model,
        split,
        first_t=eval_spec.first_t,
        sample_users=eval_spec.sample_users,
    )
    print(
        f"AUC={result.auc:.4f} meanRank={result.mean_rank:.1f} "
        f"({result.n_users} users)"
    )
    topk = evaluate_topk(model, split, k=k)
    print(
        f"precision@{topk.k}={topk.precision:.4f} "
        f"recall@{topk.k}={topk.recall:.4f} "
        f"hitRate@{topk.k}={topk.hit_rate:.4f}"
    )
    cold = evaluate_cold_start(model, split)
    if cold.n_events:
        print(
            f"cold-start score={cold.score:.4f} over {cold.n_events} "
            f"purchases of {cold.n_new_items} unseen items"
        )
    return 0


def cmd_recommend(args: argparse.Namespace) -> int:
    model, _split, _extra = _load_model(args)
    if not 0 <= args.user < model.n_users:
        raise SystemExit(f"user {args.user} out of range (0..{model.n_users - 1})")
    taxonomy = model.taxonomy
    for item in model.recommend(args.user, k=args.k):
        node = taxonomy.node_of_item(int(item))
        category = taxonomy.name_of(int(taxonomy.parent[node]))
        print(f"item {int(item):6d}  category={category}")
    return 0


def _parse_users(spec: str, n_users: int) -> np.ndarray:
    """``all``, ``start:stop``, or a comma list of user indices."""
    try:
        if spec == "all":
            return np.arange(n_users, dtype=np.int64)
        if ":" in spec:
            start, _, stop = spec.partition(":")
            requested = int(stop or n_users)
            if requested > n_users:
                print(
                    f"note: --users {spec} clamped to the model's "
                    f"{n_users} users",
                    file=sys.stderr,
                )
            return np.arange(
                int(start or 0), min(requested, n_users), dtype=np.int64
            )
        return np.asarray([int(u) for u in spec.split(",")], dtype=np.int64)
    except ValueError:
        raise SystemExit(
            f"invalid --users spec {spec!r} (expected 'all', 'start:stop', "
            f"or a comma list of indices)"
        )


def _serving_users(args, model) -> np.ndarray:
    """Resolve and range-check the ``--users`` spec of a serve command."""
    users = _parse_users(args.users, model.n_users)
    if users.size and (users.min() < 0 or users.max() >= model.n_users):
        raise SystemExit(
            f"user index out of range (0..{model.n_users - 1}) in {args.users!r}"
        )
    return users


def _serving_cascade(args) -> Optional[CascadeConfig]:
    """The ``--cascade`` flag as a config (uniform keep fraction)."""
    if args.cascade is None:
        return None
    return CascadeConfig(keep_fractions=(args.cascade,) * 3)


def _emit_recommendations(
    users: np.ndarray, recommendations: np.ndarray, out: Optional[str]
) -> None:
    """Write one ``{"user", "items"}`` JSONL row per user (stdout or file)."""
    sink = open(out, "w", encoding="utf-8") if out else sys.stdout
    try:
        for row, user in enumerate(users):
            items = recommendations[row]
            payload = {
                "user": int(user),
                "items": [int(i) for i in items[items >= 0]],
            }
            sink.write(json.dumps(payload) + "\n")
    finally:
        if out:
            sink.close()


def _telemetry_tracer(args) -> Optional[Tracer]:
    """A tracer writing to a buffer, when ``--trace-out`` asks for one."""
    if not getattr(args, "trace_out", None):
        return None
    return Tracer(buffer=TraceBuffer())


def _flush_telemetry(args, registry, tracer: Optional[Tracer]) -> None:
    """Write ``--metrics-out`` / ``--trace-out`` artifacts if requested."""
    if getattr(args, "metrics_out", None):
        write_snapshot(args.metrics_out, registry.snapshot())
        print(f"wrote metrics snapshot {args.metrics_out}", file=sys.stderr)
    if getattr(args, "trace_out", None) and tracer is not None:
        written = write_trace_jsonl(args.trace_out, tracer.buffer.drain())
        print(
            f"wrote {written} span(s) to {args.trace_out}", file=sys.stderr
        )


def cmd_serve_batch(args: argparse.Namespace) -> int:
    model, split, extra = _load_model(args)
    users = _serving_users(args, model)
    tracer = _telemetry_tracer(args)
    try:
        service = RecommenderService(
            model, history_log=split.train, cascade=_serving_cascade(args),
            cache_size=args.cache_size,
            retrieval=_serving_retrieval(args, extra),
            budget=_serving_knob(args, extra, "budget"),
            nprobe=_serving_knob(args, extra, "nprobe"),
            tracer=tracer,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    recommendations = service.recommend_batch(users, k=args.k)
    _emit_recommendations(users, recommendations, args.out)
    _flush_telemetry(args, service.registry, tracer)
    stats = service.stats
    print(
        f"served {stats.requests} users at "
        f"{stats.requests_per_second:.0f} users/sec "
        f"(nodes scored: {stats.nodes_scored}, "
        f"cache hits: {stats.cache_hits})",
        file=sys.stderr if not args.out else sys.stdout,
    )
    if args.out:
        print(f"wrote {args.out}")
    return 0


def cmd_serve_sharded(args: argparse.Namespace) -> int:
    model, split, extra = _load_model(args)
    users = _serving_users(args, model)
    cascade = _serving_cascade(args)
    retrieval = _serving_retrieval(args, extra)
    budget = _serving_knob(args, extra, "budget")
    nprobe = _serving_knob(args, extra, "nprobe")
    tracer = _telemetry_tracer(args)
    try:
        router = ShardRouter(
            model,
            n_shards=args.shards,
            history_log=split.train,
            cascade=cascade,
            cache_size=args.cache_size,
            partition=args.partition,
            retrieval=retrieval,
            budget=budget,
            nprobe=nprobe,
            tracer=tracer,
        )
    except (ValueError, ShardingError) as exc:
        raise SystemExit(str(exc))
    with router:
        batches = [
            users[start : start + args.batch_size]
            for start in range(0, users.size, args.batch_size)
        ]
        recommendations = np.concatenate(
            [router.recommend_batch(batch, k=args.k) for batch in batches]
        ) if batches else np.empty((0, args.k), dtype=np.int64)

        if args.verify:
            service = RecommenderService(
                model, history_log=split.train, cascade=cascade,
                cache_size=args.cache_size, retrieval=retrieval,
                budget=budget, nprobe=nprobe,
            )
            reference = service.recommend_batch(users, k=args.k)
            if np.array_equal(recommendations, reference):
                print(
                    f"verify: fleet output identical to the single-process "
                    f"service over {users.size} users", file=sys.stderr,
                )
            else:
                diverging = int(
                    (recommendations != reference).any(axis=1).sum()
                )
                raise SystemExit(
                    f"verify FAILED: {diverging}/{users.size} rows diverge "
                    f"from the single-process service"
                )

        _emit_recommendations(users, recommendations, args.out)
        _flush_telemetry(args, router.registry, tracer)
        stats = router.stats()
        print(
            f"served {int(stats['requests'])} users over {args.shards} "
            f"shard processes ({router.partition}-partitioned) at "
            f"{stats['requests_per_second']:.0f} users/sec per busiest "
            f"shard (nodes scored: {int(stats['nodes_scored'])}, "
            f"cache hits: {int(stats['cache_hits'])})",
            file=sys.stderr if not args.out else sys.stdout,
        )
    if args.out:
        print(f"wrote {args.out}")
    return 0


def cmd_gateway(args: argparse.Namespace) -> int:
    import asyncio

    from repro.gateway import Gateway, GatewayConfig

    model, split, extra = _load_model(args)
    tracer = _telemetry_tracer(args)
    try:
        service = RecommenderService(
            model, history_log=split.train,
            retrieval=_serving_retrieval(args, extra),
            budget=_serving_knob(args, extra, "budget"),
            nprobe=_serving_knob(args, extra, "nprobe"),
            tracer=tracer,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    config = GatewayConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_delay_s=args.max_delay_ms / 1000.0,
        max_inflight=args.max_inflight,
    )
    gateway = Gateway(service, config, tracer=tracer)

    async def run() -> None:
        async with gateway:
            print(
                f"gateway listening on http://{args.host}:{gateway.port} "
                f"(generation {service.generation})",
                file=sys.stderr,
            )
            if args.duration is not None:
                await asyncio.sleep(args.duration)
            else:
                await gateway.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    _flush_telemetry(args, service.registry, tracer)
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.gateway import LoadGenerator
    from repro.gateway.wire import encode_request, read_response

    async def run():
        n_users = args.users
        if n_users is None:
            # Size the zipfian draw to the served catalog via /healthz.
            reader, writer = await asyncio.open_connection(
                args.host, args.port
            )
            try:
                writer.write(encode_request("GET", "/healthz"))
                await writer.drain()
                health = (await read_response(reader)).json()
            finally:
                writer.close()
            n_users = int(health.get("users", 0)) or 1000
        generator = LoadGenerator(
            args.host, args.port,
            n_users=n_users,
            duration_s=args.duration,
            concurrency=args.concurrency,
            k=args.k,
            shape=args.shape,
            exponent=args.exponent,
            seed=args.seed,
        )
        return await generator.run()

    try:
        report = asyncio.run(run())
    except (OSError, ConnectionError) as exc:
        raise SystemExit(
            f"cannot reach gateway at {args.host}:{args.port}: {exc}"
        )
    payload = json.dumps(report.as_dict(), sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)
    print(
        f"{report.ok}/{report.requests} ok at {report.qps:.0f} qps "
        f"(p50={report.p50_ms:.1f}ms p99={report.p99_ms:.1f}ms, "
        f"shed={report.shed}, errors={report.errors}, "
        f"shape={report.shape})",
        file=sys.stderr,
    )
    return 0 if report.errors == 0 else 1


def cmd_stream(args: argparse.Namespace) -> int:
    model, split, _extra = _load_model(args)
    service = RecommenderService(model, history_log=split.train)
    store = CheckpointStore(args.checkpoints) if args.checkpoints else None
    updater = OnlineUpdater(
        model, steps=args.steps, fold_in_steps=args.fold_in_steps,
        seed=args.seed, registry=service.registry,
    )
    pipeline = StreamingPipeline(
        service,
        updater=updater,
        batch_size=args.batch_size,
        swap_every=args.swap_every,
        store=store,
    )
    stats = pipeline.run(
        events_from_transactions(split.test),
        rate=args.rate or None,
        max_events=args.events,
    )
    print(
        f"streamed {stats.events} events ({stats.purchases} purchases) in "
        f"{stats.seconds:.2f}s update time — "
        f"{stats.events_per_second:.0f} events/sec over {stats.batches} "
        f"micro-batches"
    )
    print(
        f"applied {stats.pair_steps} pair steps, folded in "
        f"{stats.new_users} new users, onboarded {stats.new_items} items"
    )
    where = args.checkpoints if store else "checkpoints disabled"
    print(f"published {pipeline.swaps} model versions ({where})")
    _flush_telemetry(args, service.registry, None)
    top = service.recommend_batch(list(range(min(3, model.n_users))), k=args.k)
    for row in range(top.shape[0]):
        items = top[row][top[row] >= 0]
        print(f"post-stream user {row}: {[int(i) for i in items]}")
    return 0


def _emit_snapshot(snapshot: Dict, fmt: str) -> None:
    """Print a repro.obs/v1 snapshot in the requested format."""
    if fmt == "prom":
        sys.stdout.write(to_prometheus_text(snapshot))
    elif fmt == "json":
        sys.stdout.write(to_json_lines(snapshot))
    else:
        sys.stdout.write(to_table(snapshot))


def _print_span(node: Dict, depth: int) -> None:
    record = node["span"]
    duration = float(record.get("duration_s") or 0.0)
    tags = record.get("tags") or {}
    tag_text = " ".join(f"{k}={v}" for k, v in sorted(tags.items()))
    print(
        f"{'  ' * depth}{record['name']} [{record['span_id']}] "
        f"{duration * 1e3:.3f}ms" + (f"  {tag_text}" if tag_text else "")
    )
    for child in node["children"]:
        _print_span(child, depth + 1)


def cmd_learn_taxonomy(args: argparse.Namespace) -> int:
    """Learn a taxonomy for a transaction log that ships without one.

    Trains the flat MF baseline on the log, agglomeratively clusters the
    resulting item factors into a tree
    (:func:`repro.taxonomy.learn.bootstrap_taxonomy`), and writes it in
    the native taxonomy format — after which ``train`` / ``serve-batch``
    / ``serve-sharded`` work exactly as on a curated catalog.  The run
    is deterministic: same log, same flags → byte-identical tree and
    digest.
    """
    from repro.taxonomy.learn import bootstrap_taxonomy

    log_path = Path(args.data_dir) / LOG_FILE
    if not log_path.exists():
        raise SystemExit(
            f"missing {LOG_FILE} in {args.data_dir} "
            f"(run `python -m repro generate` first)"
        )
    log = TransactionLog.load(log_path)
    out = (
        Path(args.out) if args.out else Path(args.data_dir) / TAXONOMY_FILE
    )
    if out.exists() and not args.force:
        raise SystemExit(
            f"{out} already exists; pass --force to replace it with the "
            f"learned tree"
        )
    taxonomy = bootstrap_taxonomy(
        log,
        factors=args.factors,
        epochs=args.epochs,
        branching=args.branching,
        max_depth=args.depth,
        seed=args.seed,
        sample=args.sample,
    )
    save_taxonomy(taxonomy, out)
    print(f"wrote {out} ({taxonomy})")
    print(f"taxonomy version: {taxonomy.version}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Dataset characteristics, or post-hoc telemetry rendering.

    Three modes: ``--data-dir`` summarizes a dataset (Fig. 5 quantities),
    ``--snapshot`` re-renders a saved metrics snapshot (``--format
    table|prom|json``), ``--traces`` prints stitched span trees from a
    trace JSONL file.
    """
    ran = False
    if args.snapshot:
        _emit_snapshot(read_snapshot(args.snapshot), args.format)
        ran = True
    if args.traces:
        traces = stitch(read_trace_jsonl(args.traces))
        for tree in traces:
            print(f"trace {tree['trace_id']}")
            _print_span(tree["root"], 1)
        print(f"{len(traces)} trace(s)")
        ran = True
    if args.data_dir:
        _taxonomy, log = _load_data(args.data_dir)
        for key, value in summarize(log).as_dict().items():
            if isinstance(value, float):
                print(f"{key:25s} {value:.3f}")
            else:
                print(f"{key:25s} {value}")
        ran = True
    if not ran:
        raise SystemExit(
            "stats needs at least one of --data-dir, --snapshot, --traces"
        )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the invariant linter (``repro.analysis``) over the tree.

    All arguments after ``lint`` are handed to the analysis CLI verbatim,
    so ``repro lint --format json src`` and
    ``python -m repro.analysis --format json src`` are the same command.
    """
    from repro.analysis.__main__ import main as lint_main

    return lint_main(args.rest)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Taxonomy-aware recommender (VLDB 2012 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset")
    gen.add_argument("--out-dir", required=True)
    gen.add_argument("--users", type=int, default=2000)
    gen.add_argument("--transactions", type=float, default=3.0)
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=cmd_generate)

    train = sub.add_parser(
        "train", help="fit a model and save it as a bundle directory"
    )
    train.add_argument("--data-dir", default=None,
                       help="dataset directory (optional with --config)")
    train.add_argument("--model", required=True,
                       help="output bundle directory")
    train.add_argument("--config", default=None,
                       help="ExperimentSpec file (JSON or TOML); other "
                            "flags become overrides on top of it")
    train.add_argument("--set", action="append", default=[],
                       metavar="KEY.PATH=VALUE",
                       help="override any spec field, e.g. "
                            "--set train.use_bias=false (repeatable)")
    train.add_argument("--backend", default=None,
                       choices=("serial", "threaded", "online"),
                       help="training backend (default: spec / serial)")
    train.add_argument("--workers", type=int, default=None,
                       help="worker threads for --backend threaded")
    train.add_argument("--factors", type=int, default=None)
    train.add_argument("--epochs", type=int, default=None)
    train.add_argument("--learning-rate", type=float, default=None)
    train.add_argument("--reg", type=float, default=None)
    train.add_argument("--levels", type=int, default=None,
                       help="taxonomyUpdateLevels; 1 = MF baseline")
    train.add_argument("--markov", type=int, default=None,
                       help="maxPrevtransactions (Markov order)")
    train.add_argument("--sibling", type=float, default=None)
    train.add_argument("--mu", type=float, default=None)
    train.add_argument("--seed", type=int, default=None)
    train.set_defaults(func=cmd_train)

    run = sub.add_parser(
        "run",
        help="run a declarative ExperimentSpec (all variants, one table)",
    )
    run.add_argument("--config", required=True,
                     help="ExperimentSpec file (JSON or TOML)")
    run.add_argument("--set", action="append", default=[],
                     metavar="KEY.PATH=VALUE",
                     help="override any spec field (repeatable)")
    run.add_argument("--data-dir", default=None,
                     help="use on-disk data instead of the spec's source")
    run.add_argument("--bundle-out", default=None,
                     help="override the spec's output bundle directory")
    run.add_argument("--out", default=None,
                     help="write the full report as JSON here")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-epoch progress")
    run.set_defaults(func=cmd_run)

    sweep_cmd = sub.add_parser(
        "sweep", help="grid-sweep spec fields over repeated runs"
    )
    sweep_cmd.add_argument("--config", required=True)
    sweep_cmd.add_argument("--grid", action="append", default=[],
                           metavar="KEY.PATH=V1,V2,...",
                           help="one grid axis, e.g. "
                                "--grid train.factors=10,20 (repeatable)")
    sweep_cmd.add_argument("--set", action="append", default=[],
                           metavar="KEY.PATH=VALUE")
    sweep_cmd.add_argument("--data-dir", default=None)
    sweep_cmd.add_argument("--out", default=None,
                           help="write all cell reports as JSON here")
    sweep_cmd.add_argument("--quiet", action="store_true")
    sweep_cmd.set_defaults(func=cmd_sweep)

    ev = sub.add_parser("evaluate", help="paper-protocol evaluation")
    ev.add_argument("--data-dir", required=True)
    ev.add_argument("--model", required=True)
    ev.add_argument("--config", default=None,
                    help="ExperimentSpec whose [eval] section sets the "
                         "protocol (k, first_t, sample_users)")
    ev.add_argument("-k", type=int, default=None,
                    help="depth for the top-k serving metrics "
                         "(default: spec / 10)")
    ev.set_defaults(func=cmd_evaluate)

    rec = sub.add_parser("recommend", help="top-k items for one user")
    rec.add_argument("--data-dir", required=True)
    rec.add_argument("--model", required=True)
    rec.add_argument("--user", type=int, required=True)
    rec.add_argument("-k", type=int, default=10)
    rec.set_defaults(func=cmd_recommend)

    serve = sub.add_parser(
        "serve-batch",
        help="serve top-k for many users via the batched RecommenderService",
    )
    serve.add_argument("--data-dir", required=True)
    serve.add_argument("--model", required=True)
    serve.add_argument("--users", default="all",
                       help="'all', 'start:stop', or comma list (default: all)")
    serve.add_argument("-k", type=int, default=10)
    serve.add_argument("--cascade", type=float, default=None,
                       help="serve through a cascade keeping this fraction "
                            "per level (Sec. 5.1)")
    serve.add_argument("--retrieval", default=None,
                       choices=RETRIEVAL_MODES,
                       help="dense scoring, taxonomy-pruned exact "
                            "retrieval (identical rankings, large-catalog "
                            "fast path), or the approximate sub-linear "
                            "tiers budget/ivf; default: bundle hint / "
                            "exact")
    serve.add_argument("--budget", type=int, default=None,
                       help="per-row node budget for --retrieval budget "
                            "(default: bundle hint / scan everything)")
    serve.add_argument("--nprobe", type=int, default=None,
                       help="taxonomy cells probed per row for "
                            "--retrieval ivf (default: bundle hint / "
                            "probe everything)")
    serve.add_argument("--cache-size", type=int, default=4096)
    serve.add_argument("--out", default=None,
                       help="write JSONL here instead of stdout")
    serve.add_argument("--metrics-out", default=None,
                       help="write a repro.obs/v1 metrics snapshot here "
                            "(re-render with `repro stats --snapshot`)")
    serve.add_argument("--trace-out", default=None,
                       help="trace every request and append span records "
                            "here as JSONL (`repro stats --traces`)")
    serve.set_defaults(func=cmd_serve_batch)

    sharded = sub.add_parser(
        "serve-sharded",
        help="serve top-k through a multi-process ShardRouter fleet",
    )
    sharded.add_argument("--data-dir", required=True)
    sharded.add_argument("--model", required=True)
    sharded.add_argument("--users", default="all",
                         help="'all', 'start:stop', or comma list (default: all)")
    sharded.add_argument("-k", type=int, default=10)
    sharded.add_argument("--shards", type=int, default=4,
                         help="number of shard worker processes")
    sharded.add_argument("--partition", default="users",
                         choices=("users", "items"),
                         help="hash users across shards, or slice the item "
                              "catalog and merge per-shard top-k pages")
    sharded.add_argument("--batch-size", type=int, default=1024,
                         help="users per scatter/gather round")
    sharded.add_argument("--cascade", type=float, default=None,
                         help="serve through a cascade keeping this fraction "
                              "per level (users partition only)")
    sharded.add_argument("--retrieval", default=None,
                         choices=RETRIEVAL_MODES,
                         help="dense scoring, taxonomy-pruned exact "
                              "retrieval inside every shard (per-slice "
                              "indexes in the item partition), or the "
                              "approximate budget/ivf tiers (rankings "
                              "invariant to the shard count); default: "
                              "bundle hint / exact")
    sharded.add_argument("--budget", type=int, default=None,
                         help="per-row node budget for --retrieval budget "
                              "(default: bundle hint / scan everything)")
    sharded.add_argument("--nprobe", type=int, default=None,
                         help="taxonomy cells probed per row for "
                              "--retrieval ivf (default: bundle hint / "
                              "probe everything)")
    sharded.add_argument("--cache-size", type=int, default=4096)
    sharded.add_argument("--verify", action="store_true",
                         help="also run the single-process service and fail "
                              "unless the fleet output is identical")
    sharded.add_argument("--out", default=None,
                         help="write JSONL here instead of stdout")
    sharded.add_argument("--metrics-out", default=None,
                         help="write the router's repro.obs/v1 snapshot "
                              "(per-shard span timings) here")
    sharded.add_argument("--trace-out", default=None,
                         help="trace every scatter/gather round and append "
                              "the stitched span records here as JSONL")
    sharded.set_defaults(func=cmd_serve_sharded)

    gateway = sub.add_parser(
        "gateway",
        help="serve HTTP traffic through the asyncio gateway edge",
    )
    gateway.add_argument("--data-dir", required=True)
    gateway.add_argument("--model", required=True)
    gateway.add_argument("--host", default="127.0.0.1")
    gateway.add_argument("--port", type=int, default=8080,
                         help="listen port (0 = ephemeral)")
    gateway.add_argument("--max-batch", type=int, default=32,
                         help="coalescer flush size")
    gateway.add_argument("--max-delay-ms", type=float, default=2.0,
                         help="max extra latency a request may spend "
                              "buffered in the coalescer")
    gateway.add_argument("--max-inflight", type=int, default=128,
                         help="admitted requests beyond which the edge "
                              "sheds with 429")
    gateway.add_argument("--retrieval", default=None,
                         choices=RETRIEVAL_MODES,
                         help="backend retrieval mode (default: bundle "
                              "hint / exact)")
    gateway.add_argument("--budget", type=int, default=None,
                         help="per-row node budget for --retrieval budget "
                              "(default: bundle hint / scan everything)")
    gateway.add_argument("--nprobe", type=int, default=None,
                         help="taxonomy cells probed per row for "
                              "--retrieval ivf (default: bundle hint / "
                              "probe everything)")
    gateway.add_argument("--duration", type=float, default=None,
                         help="serve for this many seconds then exit "
                              "(default: run until interrupted)")
    gateway.add_argument("--metrics-out", default=None,
                         help="write the shared repro.obs/v1 snapshot on "
                              "shutdown")
    gateway.add_argument("--trace-out", default=None,
                         help="trace requests socket-to-scan and append "
                              "span records here as JSONL")
    gateway.set_defaults(func=cmd_gateway)

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a running gateway with seeded closed-loop HTTP load",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument("--duration", type=float, default=5.0,
                         help="seconds to keep the client fleet running")
    loadgen.add_argument("--concurrency", type=int, default=16,
                         help="client coroutines at full load")
    loadgen.add_argument("--users", type=int, default=None,
                         help="user-id range for the zipfian draw "
                              "(default: probe /healthz)")
    loadgen.add_argument("-k", type=int, default=10)
    loadgen.add_argument("--shape", default="constant",
                         choices=("constant", "diurnal", "flash"),
                         help="traffic shape over the run")
    loadgen.add_argument("--exponent", type=float, default=1.0,
                         help="zipfian skew (0 = uniform)")
    loadgen.add_argument("--seed", type=int, default=1234)
    loadgen.add_argument("--out", default=None,
                         help="write the JSON report here instead of stdout")
    loadgen.set_defaults(func=cmd_loadgen)

    stream = sub.add_parser(
        "stream",
        help="replay held-out transactions as live events with hot-swaps",
    )
    stream.add_argument("--data-dir", required=True)
    stream.add_argument("--model", required=True)
    stream.add_argument("--rate", type=float, default=0.0,
                        help="target events/sec (0 = replay unpaced)")
    stream.add_argument("--events", type=int, default=None,
                        help="stop after this many events (default: all)")
    stream.add_argument("--batch-size", type=int, default=256,
                        help="events per micro-batch")
    stream.add_argument("--swap-every", type=int, default=4,
                        help="hot-swap the served model every N micro-batches")
    stream.add_argument("--steps", type=int, default=4,
                        help="SGD passes per micro-batch")
    stream.add_argument("--fold-in-steps", type=int, default=100,
                        help="fold-in budget for brand-new users")
    stream.add_argument("--checkpoints", default=None,
                        help="directory for versioned model checkpoints")
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("-k", type=int, default=5,
                        help="depth of the post-stream sample recommendations")
    stream.add_argument("--metrics-out", default=None,
                        help="write the combined serving+streaming "
                             "repro.obs/v1 snapshot here")
    stream.set_defaults(func=cmd_stream)

    learn = sub.add_parser(
        "learn-taxonomy",
        help="learn a taxonomy from a taxonomy-free transaction log",
    )
    learn.add_argument("--data-dir", required=True,
                       help="dataset directory holding transactions.jsonl")
    learn.add_argument("--out", default=None,
                       help="where to write the learned taxonomy "
                            "(default: <data-dir>/taxonomy.json)")
    learn.add_argument("--force", action="store_true",
                       help="replace an existing taxonomy file")
    learn.add_argument("--branching", type=int, default=8,
                       help="target fan-out per tree level")
    learn.add_argument("--depth", type=int, default=3,
                       help="maximum tree depth, items inclusive")
    learn.add_argument("--factors", type=int, default=16,
                       help="latent dimensionality of the MF bootstrap")
    learn.add_argument("--epochs", type=int, default=5,
                       help="MF bootstrap training epochs")
    learn.add_argument("--sample", type=int, default=None,
                       help="cluster at most this many anchor items "
                            "(default: all; the agglomeration is O(n^2))")
    learn.add_argument("--seed", type=int, default=0)
    learn.set_defaults(func=cmd_learn_taxonomy)

    stats = sub.add_parser(
        "stats",
        help="dataset characteristics (Fig. 5) and telemetry rendering",
    )
    stats.add_argument("--data-dir", default=None,
                       help="dataset directory to summarize")
    stats.add_argument("--snapshot", default=None,
                       help="re-render a saved repro.obs/v1 metrics "
                            "snapshot (see --metrics-out on the serve "
                            "and stream commands)")
    stats.add_argument("--traces", default=None,
                       help="print stitched span trees from a trace JSONL "
                            "file (see --trace-out)")
    stats.add_argument("--format", default="table",
                       choices=("table", "prom", "json"),
                       help="snapshot output format (default: table)")
    stats.set_defaults(func=cmd_stats)

    lint = sub.add_parser(
        "lint",
        help="check the tree against the repo's reproducibility invariants",
        add_help=False,
    )
    lint.add_argument("rest", nargs=argparse.REMAINDER,
                      help="arguments for repro.analysis "
                           "(see `repro lint --help`)")
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Library loggers are silent by default; the CLI is an application,
    # so progress lines (ProgressCallback, grid search, ...) go to stderr.
    enable_console_logging()
    # argparse.REMAINDER cannot capture leading optionals ("lint --format
    # json"), so the lint subcommand is dispatched before parsing.
    if argv[:1] == ["lint"]:
        from repro.analysis.__main__ import main as lint_main

        return lint_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
