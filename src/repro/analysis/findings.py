"""Finding and severity types shared by every rule and reporter."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum


class Severity(str, Enum):
    """How bad a finding is; ``error`` fails the run, ``warning`` only
    under ``--strict``."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # "error", not "Severity.ERROR", in reports
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``snippet`` is the stripped source line the finding points at; it is
    the content half of the finding's :func:`fingerprint`, so baseline
    entries keep matching when unrelated edits shift line numbers.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    snippet: str = field(default="", compare=False)

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of a report line."""
        return f"{self.path}:{self.line}:{self.col}"


def fingerprint(finding_or_entry) -> str:
    """Stable identity of a finding: rule + file + source-line content.

    Deliberately excludes the line *number* so a baseline survives code
    moving around it, and excludes the message so rule rewording does
    not orphan entries.  Works on anything with ``rule``, ``path`` and
    ``snippet`` attributes (findings and baseline entries alike).
    """
    key = "\x1f".join(
        (
            finding_or_entry.rule,
            finding_or_entry.path.replace("\\", "/"),
            " ".join(finding_or_entry.snippet.split()),
        )
    )
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]
