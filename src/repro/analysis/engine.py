"""The analysis engine: files × rules → findings, minus waivers.

:func:`run_analysis` walks the requested paths, parses each file once,
runs every applicable rule, and then routes each raw finding through the
two waiver layers — inline justified ``noqa`` comments first, then the
committed baseline.  Meta-findings (REP000) are produced for suppression
hygiene: a ``noqa`` without a justification, and a ``noqa`` that waives
nothing.  Files that fail to parse become REP999 findings rather than
crashing the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, all_rules
from repro.analysis.source import SourceFile, collect_py_files, load_source
from repro.analysis.suppress import Suppression, scan_suppressions

#: Meta-rule code for suppression hygiene problems.
META_RULE = "REP000"
#: Pseudo-rule code for files the parser rejects.
PARSE_RULE = "REP999"


@dataclass
class AnalysisResult:
    """Everything one analysis run produced, pre-sorted for reporting."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, Suppression]] = field(default_factory=list)
    baselined: List[Tuple[Finding, BaselineEntry]] = field(default_factory=list)
    unused_baseline: List[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        """Active findings that fail the run unconditionally."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        """Active findings that fail only under ``--strict``."""
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def exit_code(self, strict: bool = False) -> int:
        """1 when findings should fail the invocation, else 0."""
        if self.errors:
            return 1
        if strict and self.warnings:
            return 1
        return 0


def _severity_overrides(
    rules: Sequence[Rule], overrides: Optional[Dict[str, str]]
) -> None:
    if not overrides:
        return
    by_code = {rule.code: rule for rule in rules}
    for code, level in overrides.items():
        code = code.strip().upper()
        if code not in by_code:
            raise ValueError(f"--severity names unknown rule {code}")
        by_code[code].severity = Severity(level.strip().lower())


def _check_file(
    src: SourceFile, rules: Sequence[Rule]
) -> Tuple[List[Finding], List[Suppression]]:
    """Raw findings and parsed suppressions for one file."""
    if src.parse_error is not None:
        err = src.parse_error
        return (
            [
                Finding(
                    rule=PARSE_RULE,
                    severity=Severity.ERROR,
                    path=src.display,
                    line=err.lineno or 1,
                    col=(err.offset or 0) + 1,
                    message=f"file does not parse: {err.msg}",
                    snippet=src.line_at(err.lineno or 1),
                )
            ],
            [],
        )
    raw: List[Finding] = []
    for rule in rules:
        if rule.applies_to(src):
            raw.extend(rule.check(src))
    return raw, scan_suppressions(src.text)


def run_analysis(
    paths: Sequence[str],
    baseline: Optional[Baseline] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    severities: Optional[Dict[str, str]] = None,
    include_tests: bool = False,
) -> AnalysisResult:
    """Run every (selected) rule over *paths* and apply the waiver layers.

    Parameters
    ----------
    paths:
        Files and/or directories to scan.
    baseline:
        Grandfathered findings; matching findings are reported separately
        and do not affect the exit code.
    select / ignore:
        Restrict or exclude rule codes.
    severities:
        Per-rule overrides, e.g. ``{"REP004": "warning"}``.
    include_tests:
        Also scan test files (skipped by default: tests legitimately
        construct the very patterns the rules outlaw).
    """
    rules = all_rules(select=select, ignore=ignore)
    _severity_overrides(rules, severities)
    result = AnalysisResult(rules_run=[rule.code for rule in rules])

    for path in collect_py_files(paths):
        src = load_source(path)
        if src.in_test_tree() and not include_tests:
            continue
        result.files_scanned += 1
        raw, suppressions = _check_file(src, rules)

        for finding in sorted(raw, key=lambda f: (f.line, f.col, f.rule)):
            waiver = next(
                (s for s in suppressions if s.covers(finding.rule, finding.line)),
                None,
            )
            if waiver is not None:
                waiver.used = True
                result.suppressed.append((finding, waiver))
                continue
            if baseline is not None:
                entry = baseline.match(finding)
                if entry is not None:
                    result.baselined.append((finding, entry))
                    continue
            result.findings.append(finding)

        # Suppression hygiene: unjustified noqa is an error (and did not
        # suppress anything above); a justified noqa that waived nothing
        # is a warning so stale waivers surface.
        for sup in suppressions:
            if sup.justification is None:
                result.findings.append(
                    Finding(
                        rule=META_RULE,
                        severity=Severity.ERROR,
                        path=src.display,
                        line=sup.line,
                        col=1,
                        message=(
                            "suppression without justification — write "
                            "`# repro: noqa[CODE] -- why this is exempt`"
                        ),
                        snippet=src.line_at(sup.line),
                    )
                )
            elif not sup.used:
                result.findings.append(
                    Finding(
                        rule=META_RULE,
                        severity=Severity.WARNING,
                        path=src.display,
                        line=sup.line,
                        col=1,
                        message=(
                            f"unused suppression for {', '.join(sorted(sup.codes))} "
                            f"— nothing on this line triggers it; delete the noqa"
                        ),
                        snippet=src.line_at(sup.line),
                    )
                )

    if baseline is not None:
        result.unused_baseline = baseline.unused()
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
