"""REP004 — lock discipline: guarded attributes stay guarded.

The serving/streaming/parallel trees promise that requests keep flowing
from multiple threads during hot swaps, and the parallel trainer's whole
point is concurrent factor updates.  The failure mode that survives
tests is the *asymmetric* guard: an attribute written under
``with self._lock:`` in one method and bare in another — the bare write
races the guarded read-modify-write and silently drops updates (exactly
the ``+=`` hazard ``ServingStats`` documents).

For every class in scope, the rule collects the ``self.X`` attributes
assigned inside a ``with`` block whose context expression mentions a
lock-ish name (``lock``, ``rw``, ``mutex``), then flags assignments to
those same attributes outside any such block.  Constructors
(``__init__`` and friends) are exempt — the object is not shared yet.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.analysis.rules._ast_util import assigned_self_attrs, identifiers_in
from repro.analysis.source import SourceFile

_SCOPED_DIRS = {"serving", "streaming", "parallel"}

_LOCKISH_RE = re.compile(r"lock|mutex|(?:^|_)rw(?:$|_)", re.IGNORECASE)

#: Methods where unguarded writes are fine: the instance is not yet (or
#: no longer) visible to other threads.
_CTOR_METHODS = {
    "__init__",
    "__new__",
    "__post_init__",
    "__setstate__",
    "__del__",
}


def _is_lockish(expr: ast.AST) -> bool:
    """Whether a with-item's context expression looks like a lock acquire."""
    return any(_LOCKISH_RE.search(name) for name in identifiers_in(expr))


def _walk_method(
    node: ast.AST,
    in_lock: bool,
    lock_label: str,
    writes: List[Tuple[str, ast.AST, bool, str]],
) -> None:
    """Record ``(attr, node, guarded, lock_label)`` for self.X writes."""
    if isinstance(node, (ast.With, ast.AsyncWith)):
        lockish = [
            item.context_expr
            for item in node.items
            if _is_lockish(item.context_expr)
        ]
        if lockish:
            label = ast.unparse(lockish[0])
            for child in node.body:
                _walk_method(child, True, label, writes)
            return
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        for attr, stmt in assigned_self_attrs(node):
            if not _LOCKISH_RE.search(attr):
                writes.append((attr, stmt, in_lock, lock_label))
        return
    # Nested defs get their own pass as methods of no class — skip here.
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    for child in ast.iter_child_nodes(node):
        _walk_method(child, in_lock, lock_label, writes)


@register
class LockDiscipline(Rule):
    """Flag attributes guarded by a lock in one method, bare in another."""

    code = "REP004"
    name = "lock-discipline"
    severity = Severity.ERROR
    description = (
        "An attribute assigned inside `with self._lock:` anywhere in a "
        "class must be assigned under the lock everywhere (outside "
        "__init__): one bare write races every guarded read-modify-write."
    )

    def applies_to(self, src: SourceFile) -> bool:
        """Only the concurrent trees (serving, streaming, parallel)."""
        return any(part in _SCOPED_DIRS for part in src.parts)

    def check(self, src: SourceFile) -> Iterator[Finding]:
        """Cross-method guarded/unguarded write analysis per class."""
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(src, node)

    def _check_class(
        self, src: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        # attr -> (lock label, method) of one guarded write, for messages.
        guarded: Dict[str, Tuple[str, str]] = {}
        # (attr, stmt, method) of every unguarded non-ctor write.
        unguarded: List[Tuple[str, ast.AST, str]] = []
        seen: Set[int] = set()

        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            writes: List[Tuple[str, ast.AST, bool, str]] = []
            for stmt in item.body:
                _walk_method(stmt, False, "", writes)
            for attr, stmt, in_lock, label in writes:
                if in_lock:
                    guarded.setdefault(attr, (label, item.name))
                elif item.name not in _CTOR_METHODS:
                    unguarded.append((attr, stmt, item.name))

        for attr, stmt, method in unguarded:
            if attr in guarded and id(stmt) not in seen:
                seen.add(id(stmt))
                label, guarded_method = guarded[attr]
                yield self.finding(
                    src,
                    stmt,
                    f"self.{attr} is written under `with {label}:` in "
                    f"{guarded_method}() but written here in {method}() "
                    f"without the lock — this write races every guarded "
                    f"read-modify-write",
                )
