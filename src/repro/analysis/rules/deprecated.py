"""REP006 — deprecated shims are for users, not internal call sites.

``model.fit(...)``, ``parallel.ThreadedSGDTrainer`` and legacy ``.npz``
loading (``ModelBundle.load_legacy``) are compatibility surface kept for
external users, each emitting a ``DeprecationWarning`` that points at
``docs/migration.md``.  Internal code calling them keeps the shims
load-bearing forever (and trains contributors to copy the deprecated
idiom).  New ``src/`` code must use the replacement: the
``repro.train`` front door, ``ThreadedSGDEngine`` / ``ThreadedTrainer``,
and bundle directories.

The ``.fit`` check is type-blind by design: it flags ``.fit(...)`` only
on receivers provably constructed from the deprecated model classes in
the same scope (direct ``TaxonomyFactorModel(...).fit(...)`` chains or a
local variable assigned from the constructor), so unrelated ``fit``
methods (e.g. ``PopularityModel.fit``, which is not deprecated) never
false-positive.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.analysis.rules._ast_util import dotted_name
from repro.analysis.source import SourceFile

#: Model classes whose ``fit`` is the deprecated entry point.
_DEPRECATED_FIT_CLASSES = {"TaxonomyFactorModel", "MFModel"}

#: Deprecated names and the module allowed to define/host them.
_SHIM_DEFINERS = {
    "ThreadedSGDTrainer": ("parallel", "trainer.py"),
    "load_legacy": ("serving", "bundle.py"),
}


def _constructor_name(node: ast.AST) -> str:
    """Class name when *node* is ``SomeClass(...)``, else ''."""
    if isinstance(node, ast.Call):
        name = dotted_name(node.func) or ""
        return name.rsplit(".", 1)[-1]
    return ""


@register
class NoDeprecatedShims(Rule):
    """Flag internal use of model.fit / ThreadedSGDTrainer / legacy .npz."""

    code = "REP006"
    name = "no-deprecated-shims-internally"
    severity = Severity.ERROR
    description = (
        "model.fit(...), ThreadedSGDTrainer, and ModelBundle.load_legacy "
        "are DeprecationWarning shims for external users; internal code "
        "must use repro.train trainers and bundle directories."
    )

    def applies_to(self, src: SourceFile) -> bool:
        """Library code only (the package under ``src``)."""
        return "src" in src.parts or "repro" in src.parts

    def check(self, src: SourceFile) -> Iterator[Finding]:
        """Flag references to the shims outside their defining modules."""
        tail = src.parts[-2:]

        if tail != _SHIM_DEFINERS["ThreadedSGDTrainer"]:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.ImportFrom):
                    for alias in node.names:
                        if alias.name == "ThreadedSGDTrainer":
                            yield self.finding(
                                src,
                                node,
                                "ThreadedSGDTrainer is a deprecated shim — "
                                "use repro.train.ThreadedTrainer (or "
                                "parallel.ThreadedSGDEngine directly)",
                            )
                elif isinstance(node, ast.Name) and node.id == "ThreadedSGDTrainer":
                    yield self.finding(
                        src,
                        node,
                        "ThreadedSGDTrainer is a deprecated shim — use "
                        "repro.train.ThreadedTrainer",
                    )

        if tail != _SHIM_DEFINERS["load_legacy"]:
            for node in ast.walk(src.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "load_legacy"
                ):
                    yield self.finding(
                        src,
                        node,
                        "legacy .npz loading is a deprecated shim — persist "
                        "and load ModelBundle directories instead",
                    )

        yield from self._check_deprecated_fit(src)

    def _check_deprecated_fit(self, src: SourceFile) -> Iterator[Finding]:
        if src.parts[-1] in ("tf_model.py", "mf_model.py"):
            return  # the defining modules (MFModel inherits TF's fit)
        # Names assigned from a deprecated constructor anywhere in the
        # file (scope-blind on purpose: a rare cross-scope false positive
        # is a justified-noqa away, a miss is a silent contract break).
        model_vars: Set[str] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Assign):
                if _constructor_name(node.value) in _DEPRECATED_FIT_CLASSES:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            model_vars.add(target.id)
        for node in ast.walk(src.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "fit"
            ):
                continue
            receiver = node.func.value
            chained = _constructor_name(receiver) in _DEPRECATED_FIT_CLASSES
            named = isinstance(receiver, ast.Name) and receiver.id in model_vars
            if chained or named:
                yield self.finding(
                    src,
                    node,
                    "model.fit(...) is a deprecated shim — use "
                    "repro.train.SerialTrainer(model).train(log) or an "
                    "ExperimentSpec (identical factors for the same seed)",
                )
