"""REP003 — monotonic clocks for durations and deadlines.

``time.time()`` is wall-clock: NTP steps, DST, and manual adjustments
can make it jump backwards or leap forwards.  A duration measured with
it can go negative; a deadline computed from it can stall a replay loop
or fire early.  Everything latency- or deadline-shaped in the streaming,
serving, parallel, and benchmark trees must use ``time.perf_counter()``
(durations) or ``time.monotonic()`` (deadlines) — the replay hardening
in PR 5 (``streaming/events.py``) exists precisely because of this.

Genuine wall-clock timestamps (event ingestion times, log lines) are
what the justified ``noqa`` is for.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.analysis.rules._ast_util import dotted_name
from repro.analysis.source import SourceFile

#: Directory names whose contracts are duration/deadline-heavy.
_SCOPED_DIRS = {"streaming", "serving", "parallel", "train", "benchmarks"}


@register
class MonotonicClocks(Rule):
    """Flag wall-clock reads where durations/deadlines are computed."""

    code = "REP003"
    name = "monotonic-clocks"
    severity = Severity.ERROR
    description = (
        "time.time() is wall-clock and can step; durations must use "
        "time.perf_counter() and deadlines time.monotonic() in the "
        "streaming/serving/parallel/train/benchmarks trees (justified "
        "noqa for genuine timestamps)."
    )

    def applies_to(self, src: SourceFile) -> bool:
        """Only the latency-contract trees."""
        return any(part in _SCOPED_DIRS for part in src.parts)

    def check(self, src: SourceFile) -> Iterator[Finding]:
        """Flag ``time.time()`` calls and ``from time import time``."""
        time_aliases = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
                        yield self.finding(
                            src,
                            node,
                            "`from time import time` hides the wall clock "
                            "behind a bare name; import the module and use "
                            "time.perf_counter()/time.monotonic()",
                        )
                    elif alias.name == "clock":
                        yield self.finding(
                            src,
                            node,
                            "time.clock was removed in Python 3.8; use "
                            "time.perf_counter()",
                        )
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name == "time.time" or (name and name in time_aliases):
                yield self.finding(
                    src,
                    node,
                    "time.time() is wall-clock (can step backwards); use "
                    "time.perf_counter() for durations or time.monotonic() "
                    "for deadlines — justified noqa if this is a real "
                    "timestamp",
                )
