"""REP008 — no blocking calls on the gateway's event loop.

``repro.gateway`` serves every connection from one :mod:`asyncio` event
loop; a single blocking call — ``time.sleep``, synchronous socket I/O, a
``queue.Queue.get()`` with no timeout — freezes *every* inflight request
for its duration and turns a p99 SLO into a lottery.  Blocking work
belongs on the executor (``loop.run_in_executor``), waiting belongs to
``await asyncio.sleep(...)`` / stream primitives.

The rule is scoped to the ``gateway`` package tree only: the rest of the
codebase is thread-based and blocks on purpose.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.analysis.rules._ast_util import dotted_name
from repro.analysis.source import SourceFile

#: Synchronous socket constructors/helpers that would block the loop.
_SYNC_SOCKET_CALLS = {
    "socket.socket",
    "socket.create_connection",
    "socket.create_server",
    "socket.socketpair",
}

#: ``queue`` classes whose ``.get()`` parks the calling thread.
_BLOCKING_QUEUE_CLASSES = {
    "queue.Queue",
    "queue.LifoQueue",
    "queue.PriorityQueue",
    "queue.SimpleQueue",
}


@register
class NoBlockingInGateway(Rule):
    """Flag event-loop-freezing calls inside ``repro/gateway``."""

    code = "REP008"
    name = "async-no-blocking"
    severity = Severity.ERROR
    description = (
        "the gateway runs on one asyncio event loop: time.sleep(), "
        "synchronous socket I/O, and untimed queue.get() freeze every "
        "inflight request — use await asyncio.sleep(), asyncio streams, "
        "or loop.run_in_executor() instead."
    )

    def applies_to(self, src: SourceFile) -> bool:
        """Only the asyncio-based gateway package."""
        return "gateway" in src.parts

    def check(self, src: SourceFile) -> Iterator[Finding]:
        """Flag sleeps, sync sockets, and untimed blocking queue reads."""
        sleep_aliases = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        sleep_aliases.add(alias.asname or "sleep")
                        yield self.finding(
                            src,
                            node,
                            "`from time import sleep` imports a loop-"
                            "blocking sleep into async code; use "
                            "`await asyncio.sleep(...)`",
                        )
        queue_vars = self._blocking_queue_vars(src)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name == "time.sleep" or (name and name in sleep_aliases):
                yield self.finding(
                    src,
                    node,
                    "time.sleep() blocks the event loop for every inflight "
                    "request; use `await asyncio.sleep(...)` (or run the "
                    "blocking work in the executor)",
                )
            elif name in _SYNC_SOCKET_CALLS:
                yield self.finding(
                    src,
                    node,
                    f"{name}() is synchronous socket I/O; the gateway must "
                    "use asyncio.start_server()/open_connection() streams",
                )
            elif self._is_untimed_queue_get(node, queue_vars):
                yield self.finding(
                    src,
                    node,
                    "queue .get() with no timeout parks the event loop "
                    "indefinitely; use asyncio.Queue, or hand the wait to "
                    "the executor with a timeout",
                )

    @staticmethod
    def _blocking_queue_vars(src: SourceFile) -> set:
        """Names assigned directly from a blocking ``queue`` constructor."""
        names = set()
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            if dotted_name(node.value.func) not in _BLOCKING_QUEUE_CLASSES:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, ast.Attribute):
                    names.add(target.attr)
        return names

    @staticmethod
    def _is_untimed_queue_get(node: ast.Call, queue_vars: set) -> bool:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "get":
            return False
        receiver = func.value
        name = (
            receiver.id
            if isinstance(receiver, ast.Name)
            else receiver.attr
            if isinstance(receiver, ast.Attribute)
            else None
        )
        if name is None or name not in queue_vars:
            return False
        has_timeout = any(kw.arg == "timeout" for kw in node.keywords)
        has_block_false = len(node.args) >= 1 or any(
            kw.arg == "block" for kw in node.keywords
        )
        return not (has_timeout or has_block_false)
