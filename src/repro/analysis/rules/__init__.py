"""The shipped invariant rules.

Importing this package registers every rule module with
:mod:`repro.analysis.registry`; a new rule is a new module here plus an
import line below (deliberately explicit, so grep finds the full rule
set and no filesystem scanning happens at import time).
"""

from repro.analysis.rules import (  # noqa: F401  (imports register the rules)
    asyncblocking,
    clocks,
    deprecated,
    determinism,
    locks,
    noprint,
    sharedmem,
    topk,
)

__all__ = [
    "asyncblocking",
    "clocks",
    "deprecated",
    "determinism",
    "locks",
    "noprint",
    "sharedmem",
    "topk",
]
