"""REP005 — shared-memory lifecycle: every mapping has an exit path.

``multiprocessing.shared_memory`` segments are kernel objects, not
garbage-collected Python ones: a created segment leaks until
``unlink()``, an attached mapping leaks an fd until ``close()`` — and a
leaked name from a crashed run blocks the next publication.  The
convention in ``serving/sharding.py`` is that every creation site lives
next to a reachable teardown: a ``finally`` / ``except`` block or a
dedicated cleanup method (``release``, ``close``, ``__exit__``, ...).

The rule checks that convention per module: a module that *creates*
segments (``SharedMemory(create=True)`` or a ``SharedFactors(...)``
publication) must contain both ``.close()`` and ``.unlink()`` (or a
``.release()``) in a cleanup context; a module that only *attaches* must
contain ``.close()`` in one.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.analysis.rules._ast_util import dotted_name
from repro.analysis.source import SourceFile

#: Method names that count as a deliberate teardown path.
_CLEANUP_METHODS = {
    "release",
    "close",
    "unlink",
    "cleanup",
    "shutdown",
    "stop",
    "drop",
    "__exit__",
    "__del__",
}

#: Call attributes that tear a segment down.
_TEARDOWN_ATTRS = {"close", "unlink", "release"}


def _is_shared_memory_call(node: ast.Call) -> Tuple[bool, bool]:
    """``(is_shm, creates)`` for a call node."""
    name = dotted_name(node.func) or ""
    tail = name.rsplit(".", 1)[-1]
    if tail == "SharedMemory":
        creates = any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )
        return True, creates
    if tail == "SharedFactors":
        # Publishing a factor generation creates segments internally.
        return True, True
    return False, False


def _teardowns_in(node: ast.AST, found: Set[str]) -> None:
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and isinstance(child.func, ast.Attribute):
            if child.func.attr in _TEARDOWN_ATTRS:
                found.add(child.func.attr)


def _collect_cleanup_teardowns(tree: ast.Module) -> Set[str]:
    """Teardown calls reachable from an explicit cleanup context."""
    found: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Try):
            for handler in node.handlers:
                for stmt in handler.body:
                    _teardowns_in(stmt, found)
            for stmt in node.finalbody:
                _teardowns_in(stmt, found)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in _CLEANUP_METHODS:
                for stmt in node.body:
                    _teardowns_in(stmt, found)
    return found


@register
class SharedMemoryLifecycle(Rule):
    """Flag SharedMemory/SharedFactors creation without a teardown path."""

    code = "REP005"
    name = "shared-memory-lifecycle"
    severity = Severity.ERROR
    description = (
        "SharedMemory segments are kernel objects: a module creating them "
        "(SharedMemory(create=True) / SharedFactors(...)) must tear them "
        "down — close() and unlink()/release() — in a finally/except block "
        "or a cleanup method (release/close/__exit__/...), and a module "
        "that attaches must close() in one."
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        """Compare creation/attach sites against reachable teardowns."""
        creations: List[ast.Call] = []
        attaches: List[ast.Call] = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                is_shm, creates = _is_shared_memory_call(node)
                if is_shm:
                    (creations if creates else attaches).append(node)
        if not creations and not attaches:
            return

        teardowns = _collect_cleanup_teardowns(src.tree)
        closes = bool(teardowns & {"close", "release"})
        unlinks = bool(teardowns & {"unlink", "release"})

        for node in creations:
            missing = []
            if not closes:
                missing.append("close()")
            if not unlinks:
                missing.append("unlink()")
            if missing:
                yield self.finding(
                    src,
                    node,
                    f"shared-memory segment created here but the module has "
                    f"no reachable {' / '.join(missing)} in a finally/except "
                    f"block or cleanup method — a leaked segment survives "
                    f"the process and blocks the next publication",
                )
        for node in attaches:
            if not closes:
                yield self.finding(
                    src,
                    node,
                    "shared-memory attachment here but the module has no "
                    "reachable close() in a finally/except block or cleanup "
                    "method — every mapping holds an fd until closed",
                )
