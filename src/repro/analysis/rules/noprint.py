"""REP007 — no ``print()`` in library code.

A ``print()`` inside the library writes straight to stdout: it cannot be
silenced, leveled, redirected, or JSON-formatted, and it corrupts any
pipeline that consumes the process's stdout (the CLI's machine-readable
modes, benchmark harnesses, exporter snapshots).  Library modules must
log through :func:`repro.utils.logging.get_logger` instead — the
``repro`` namespace is silent until an application opts in via
``enable_console_logging``, which is the contract applications rely on.

Out of scope, because printing *is* their interface:

* ``cli.py`` — the command-line front door;
* ``analysis/reporters.py`` — lint reporters write the report;
* any ``__main__.py`` — script entry points;
* anything under an ``examples`` directory.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.analysis.rules._ast_util import dotted_name
from repro.analysis.source import SourceFile

#: File names whose job is writing to stdout.
_EXEMPT_FILES = {"cli.py", "__main__.py"}


@register
class NoPrintInLibrary(Rule):
    """Flag ``print()`` calls in library modules under ``repro``."""

    code = "REP007"
    name = "no-print-in-library"
    severity = Severity.ERROR
    description = (
        "print() in library code bypasses the logging contract and "
        "corrupts stdout consumers; use "
        "repro.utils.logging.get_logger(...) (cli.py, __main__.py, "
        "analysis/reporters.py, and examples/ are exempt)."
    )

    def applies_to(self, src: SourceFile) -> bool:
        """Library modules only: under ``repro``, minus stdout-owners."""
        if "repro" not in src.parts or "examples" in src.parts:
            return False
        if src.parts[-1] in _EXEMPT_FILES:
            return False
        if src.parts[-1] == "reporters.py" and "analysis" in src.parts:
            return False
        return True

    def check(self, src: SourceFile) -> Iterator[Finding]:
        """Flag every call to the ``print`` builtin."""
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) == "print":
                yield self.finding(
                    src,
                    node,
                    "print() in library code writes uncontrollable "
                    "stdout; route through "
                    "repro.utils.logging.get_logger(__name__) — justified "
                    "noqa only where stdout is the documented interface",
                )
