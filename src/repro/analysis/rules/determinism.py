"""REP001 — seeded reproducibility: no global or unseeded RNG.

The library's contract (see ``repro.utils.rng``) is that every
stochastic component accepts a seed / ``numpy.random.Generator`` and
funnels it through ``ensure_rng``, so one master seed reproduces a whole
experiment bit-for-bit.  Module-level numpy RNG (``np.random.rand`` and
friends) mutates process-global state, unseeded ``default_rng()`` takes
fresh OS entropy, and the stdlib ``random`` module is both global *and*
unseeded by default — any of them anywhere on a library or entry-point
path silently breaks end-to-end reproducibility.

``repro/utils/rng.py`` itself is exempt: it is the one place allowed to
touch the underlying constructors.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.analysis.rules._ast_util import dotted_name
from repro.analysis.source import SourceFile

#: numpy.random attributes fine to reference anywhere: generator classes
#: and seeding machinery take or carry explicit seeds.
_ALLOWED_NP_RANDOM = {
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

_UNSEEDED_MSG = (
    "unseeded default_rng() draws fresh OS entropy — accept a seed and "
    "call repro.utils.rng.ensure_rng(seed)"
)


@register
class NoGlobalRng(Rule):
    """Flag module-level numpy RNG, unseeded ``default_rng``, stdlib random."""

    code = "REP001"
    name = "no-global-or-unseeded-rng"
    severity = Severity.ERROR
    description = (
        "All randomness must flow through repro.utils.rng (seeded "
        "Generators); np.random.* module-level functions, unseeded "
        "default_rng(), and the stdlib random module break end-to-end "
        "reproducibility."
    )

    def applies_to(self, src: SourceFile) -> bool:
        """Everywhere except the RNG utility module itself."""
        return src.parts[-2:] != ("utils", "rng.py")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        """Scan imports and calls for global-state RNG usage."""
        stdlib_random_aliases = set()
        default_rng_aliases = set()

        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        stdlib_random_aliases.add(alias.asname or "random")
                        yield self.finding(
                            src,
                            node,
                            "stdlib `random` relies on hidden process-global "
                            "state; use repro.utils.rng.ensure_rng(seed) and "
                            "thread the Generator through",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        src,
                        node,
                        "importing from stdlib `random` pulls in process-"
                        "global RNG state; use repro.utils.rng instead",
                    )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name == "default_rng":
                            default_rng_aliases.add(alias.asname or "default_rng")

        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            head, _, attr = name.rpartition(".")
            if head in ("np.random", "numpy.random"):
                if attr == "default_rng":
                    if not node.args and not node.keywords:
                        yield self.finding(src, node, _UNSEEDED_MSG)
                elif attr not in _ALLOWED_NP_RANDOM:
                    yield self.finding(
                        src,
                        node,
                        f"np.random.{attr}() uses numpy's module-level global "
                        f"RNG; thread a seeded Generator from "
                        f"repro.utils.rng.ensure_rng instead",
                    )
            elif not head and attr in default_rng_aliases:
                if not node.args and not node.keywords:
                    yield self.finding(src, node, _UNSEEDED_MSG)
            elif head in stdlib_random_aliases:
                yield self.finding(
                    src,
                    node,
                    f"{name}() mutates the stdlib global RNG; use a seeded "
                    f"Generator from repro.utils.rng.ensure_rng",
                )
