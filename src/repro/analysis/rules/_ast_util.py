"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    Subscripts and calls inside the chain (``a[0].b``, ``a().b``) yield
    ``None`` — the callers only match plain module/attribute paths.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def identifiers_in(node: ast.AST) -> Set[str]:
    """Every Name id and Attribute attr mentioned anywhere under *node*."""
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
        elif isinstance(child, ast.arg):
            names.add(child.arg)
    return names


def call_args(node: ast.Call) -> Iterator[ast.AST]:
    """All positional and keyword argument expressions of a call."""
    yield from node.args
    for keyword in node.keywords:
        yield keyword.value


def self_attr_target(node: ast.AST) -> Optional[str]:
    """``X`` when *node* is the store target ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def assigned_self_attrs(node: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(attr, node)`` for every ``self.X = / += / : T =`` under *node*."""
    for child in ast.walk(node):
        targets: List[ast.AST] = []
        if isinstance(child, ast.Assign):
            targets = list(child.targets)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            targets = [child.target]
        for target in targets:
            # Tuple targets: self.a, self.b = ...
            elements = (
                list(target.elts) if isinstance(target, ast.Tuple) else [target]
            )
            for element in elements:
                attr = self_attr_target(element)
                if attr is not None:
                    yield attr, child


def enclosing_functions(tree: ast.Module) -> Iterator[ast.AST]:
    """Every function/method definition in the module, depth-first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
