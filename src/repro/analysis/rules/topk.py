"""REP002 — one top-k total order: no raw sorts on score arrays.

The PR 5 tie-break bug: ``ShardRouter``'s item-partitioned merge and the
single-process path disagreed on tied scores because one call site did
its own ``argpartition`` instead of going through ``repro.core.topk``.
The fix established a single total order — **descending score, then
ascending index** — implemented exactly once.  This rule keeps it that
way: any ``argsort`` / ``argpartition`` / ``sort`` / ``lexsort`` /
``partition`` / ``sorted`` whose operand mentions a score-like
identifier, outside ``core/topk.py``, is a finding.

Detection is intentionally name-based (an operand identifier matching
``score``): the AST cannot know an array's meaning, and in this codebase
the convention that score arrays are *named* scores is itself part of
the contract.  Sorting genuinely non-ranking data under a score-ish name
is what the justified ``noqa`` is for.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register
from repro.analysis.rules._ast_util import call_args, dotted_name, identifiers_in
from repro.analysis.source import SourceFile

_SCORE_RE = re.compile(r"score", re.IGNORECASE)

_SORTING_ATTRS = {"argsort", "argpartition", "sort", "lexsort", "partition"}


def _mentions_score(node: ast.AST) -> bool:
    return any(_SCORE_RE.search(name) for name in identifiers_in(node))


@register
class TopKTotalOrder(Rule):
    """Flag raw sorting/partitioning of score arrays outside core/topk."""

    code = "REP002"
    name = "topk-total-order"
    severity = Severity.ERROR
    description = (
        "Rankings must flow through repro.core.topk (top_k, top_k_rows, "
        "top_k_pairs, merge_top_k_pages) so every path — single process, "
        "sharded fleet, pruned index — agrees on the (score desc, index "
        "asc) total order; raw argsort/argpartition/sort on score arrays "
        "re-introduces the PR 5 tie-break bug."
    )

    def applies_to(self, src: SourceFile) -> bool:
        """Everywhere except the module that implements the total order."""
        return src.parts[-2:] != ("core", "topk.py")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        """Flag sorting calls whose operands mention score identifiers."""
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _SORTING_ATTRS:
                root = dotted_name(func.value)
                if root in ("np", "numpy"):
                    # np.argsort(scores) — operands are the arguments.
                    suspicious = any(_mentions_score(a) for a in call_args(node))
                else:
                    # scores.argsort() / scores.sort() — operand is the
                    # receiver (arguments like axis= don't carry meaning).
                    suspicious = _mentions_score(func.value)
                if suspicious:
                    yield self.finding(
                        src,
                        node,
                        f"raw {func.attr}() on a score array — route the "
                        f"ranking through repro.core.topk so ties keep the "
                        f"one (score desc, index asc) total order",
                    )
            elif (
                isinstance(func, ast.Name)
                and func.id == "sorted"
                and any(_mentions_score(a) for a in call_args(node))
            ):
                yield self.finding(
                    src,
                    node,
                    "sorted() over scores — route the ranking through "
                    "repro.core.topk so ties keep the one (score desc, "
                    "index asc) total order",
                )
