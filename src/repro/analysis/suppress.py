"""Inline ``# repro: noqa[RULE]`` suppressions with required justification.

The suppression grammar is deliberately strict::

    # repro: noqa[REP002] -- full ranking for rank statistics, not a top-k
    # repro: noqa[REP001, REP003] -- demo script; wall-clock banner only

* the bracketed list names the exact rule codes being waived (no blanket
  ``noqa``), and
* the text after ``--`` is a mandatory justification; a suppression
  without one does **not** suppress and is itself reported (REP000), so
  "why is this exempt?" is always answered in the diff that adds it.

A suppression that matches no finding is reported as an unused-
suppression warning — stale waivers rot into blind spots otherwise.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

#: ``# repro: noqa[CODES]`` with an optional ``-- justification`` tail.
NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\s*\[(?P<codes>[A-Za-z0-9_,\s]+)\]"
    r"(?:\s*--\s*(?P<why>\S.*?))?\s*$"
)


@dataclass
class Suppression:
    """One parsed suppression comment on one line."""

    line: int
    codes: FrozenSet[str]
    justification: Optional[str]
    raw: str
    used: bool = field(default=False, compare=False)

    def covers(self, rule: str, line: int) -> bool:
        """Whether this suppression waives *rule* findings on *line*."""
        return line == self.line and rule in self.codes and bool(self.justification)


def scan_suppressions(text: str) -> List[Suppression]:
    """Parse every suppression comment in a file's source *text*.

    Tokenize-based, so only genuine ``#`` comments count — a docstring
    *describing* the noqa syntax (like this module's) is not a
    suppression.  Token errors fall back to no suppressions; the engine
    reports unparsable files separately.
    """
    found: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):
        return found
    for lineno, comment in comments:
        match = NOQA_RE.search(comment)
        if not match:
            continue
        codes = frozenset(
            code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        found.append(
            Suppression(
                line=lineno,
                codes=codes,
                justification=match.group("why"),
                raw=comment.strip(),
            )
        )
    return found
